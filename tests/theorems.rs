//! Direct validation of the paper's theorems against the implementation.
//!
//! Theorem 1 (GBA→BBA) is property-tested in `tests/properties.rs`; this
//! file covers Theorems 2-6.

use differential_aggregation::prelude::*;
use differential_aggregation::emf;
use differential_aggregation::estimation::em::{self, EmOptions, MStep};
use differential_aggregation::estimation::{Grid, PoisonRegion, TransformMatrix};

/// Theorem 2: the pessimistic initialization `O'` is on the honest side of
/// the true mean for *any* attack whose poison lies on the claimed side,
/// as long as `γ_sup` upper-bounds the true proportion.
#[test]
fn theorem2_pessimistic_initialization() {
    let mut rng = estimation::rng::seeded(1);
    use rand::Rng;
    for trial in 0..20 {
        let n = 2_000;
        let honest: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        let truth = estimation::stats::mean(&honest);
        let gamma = rng.gen_range(0.05..0.45);
        let m = (n as f64 * gamma / (1.0 - gamma)) as usize;
        let mut reports = honest;
        // Arbitrary right-side poison.
        for _ in 0..m {
            reports.push(rng.gen_range(truth..=3.0));
        }
        let o_prime = emf::pessimistic_init(&reports, 0.5, Side::Right);
        assert!(
            o_prime <= truth + 1e-9,
            "trial {trial}: O' = {o_prime} above O = {truth} (gamma {gamma:.2})"
        );
    }
}

/// Theorem 3: as ε → 0 the reconstructed normal histogram under the correct
/// hypothesis approaches uniform, and the poison histogram approaches the
/// true poison distribution.
#[test]
fn theorem3_small_epsilon_convergence() {
    use rand::Rng;
    // Theorem 3 is an ε → 0 limit. At fixed n = 40 000 the poison L1 has a
    // sampling floor of ~0.01 (it scales as n^-1/2), and between moderate
    // budgets the reconstruction is already *at* that floor: averaged over
    // eight seeded populations the sweep measures L1 ≈ [0.0137, 0.0144,
    // 0.0113] — the ε = 1 → 1/4 step moves *within* the floor (+5 %, a
    // finite-n effect that more seeds do not dissolve) and only the final
    // quartering to ε = 1/16 pushes below it. The per-step assertions are
    // therefore split by halves of the theorem: Var(x̂) (the
    // normal-histogram half) shrinks strictly at every step once
    // seed-averaged, while the poison L1 per-step bound only forbids
    // leaving the floor (10 % slack over the observed +5 % plateau), with
    // the decisive improvement pinned endpoint-to-endpoint.
    let seeds = [2u64, 3, 4, 5, 6, 7, 8, 9];
    let eps_sweep = [1.0, 0.25, 0.0625];
    let mut avg_l1s = Vec::new();
    let mut avg_vars = Vec::new();
    for &eps in &eps_sweep {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let c = mech.c();
        let n = 40_000;
        let m = 10_000;
        let d_out = 64;
        let matrix =
            TransformMatrix::for_numeric(&mech, 16, d_out, &PoisonRegion::RightOf(0.0));
        let grid = Grid::new(-c, c, d_out);
        // True poison histogram over the output grid (uniform on the top
        // quarter), as a fraction of all reports.
        let mut true_y = vec![0.0; d_out];
        for (j, y) in true_y.iter_mut().enumerate() {
            let (a, b) = grid.edges(j);
            let overlap = (b.min(c) - a.max(0.75 * c)).max(0.0);
            *y = (m as f64 / (n + m) as f64) * overlap / (0.25 * c);
        }

        let (mut l1_sum, mut var_sum) = (0.0, 0.0);
        for &seed in &seeds {
            let mut rng = estimation::rng::seeded(seed);
            let mut reports: Vec<f64> = (0..n)
                .map(|_| mech.perturb(rng.gen_range(-0.8..=0.2), &mut rng))
                .collect();
            reports.extend((0..m).map(|_| rng.gen_range((0.75 * c)..=c)));
            let counts = grid.counts(&reports);
            let out = em::solve(
                &matrix,
                &counts,
                MStep::Free,
                &EmOptions { tol: 1e-7, max_iters: 3000 },
            );
            var_sum += estimation::stats::variance(&out.normal);
            l1_sum +=
                out.poison.iter().zip(&true_y).map(|(a, b)| (a - b).abs()).sum::<f64>();
        }
        avg_l1s.push(l1_sum / seeds.len() as f64);
        avg_vars.push(var_sum / seeds.len() as f64);
    }
    eprintln!("theorem3: avg L1 per eps {avg_l1s:?}, avg Var {avg_vars:?}");

    // Per-step, normal half: quartering ε strictly shrinks the
    // seed-averaged Var(x̂).
    for (step, w) in avg_vars.windows(2).enumerate() {
        assert!(
            w[1] < w[0],
            "averaged Var(x̂) did not shrink at step {step} (eps {} -> {}): {avg_vars:?}",
            eps_sweep[step],
            eps_sweep[step + 1]
        );
    }
    // Per-step, poison half: the averaged L1 must never leave its
    // sampling floor (see the header comment for why strict per-step
    // monotonicity is not expected at moderate ε).
    for (step, w) in avg_l1s.windows(2).enumerate() {
        assert!(
            w[1] < w[0] * 1.10,
            "averaged poison L1 left the noise floor at step {step} (eps {} -> {}): {avg_l1s:?}",
            eps_sweep[step],
            eps_sweep[step + 1]
        );
    }
    // Endpoint: the sweep as a whole breaks below the floor (measured
    // ratio 0.82, pinned at 0.9), and at ε = 1/16 the reconstruction is
    // genuinely close to the truth (measured 0.011, pinned at 0.02).
    let (first_l1, last_l1) = (avg_l1s[0], *avg_l1s.last().unwrap());
    assert!(
        last_l1 < first_l1 * 0.9,
        "poison L1 did not shrink across the ε sweep: {avg_l1s:?}"
    );
    assert!(last_l1 < 0.02, "final averaged poison L1 {last_l1}");
}

/// Theorem 4: the constrained M-step's fixed point keeps the prescribed
/// masses exactly, for any feasible γ̂ — and the EMF* outcome is the same
/// histogram EMF produces, rescaled blockwise, when EMF already satisfies
/// the constraint.
#[test]
fn theorem4_constrained_mstep_masses() {
    let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
    let matrix = TransformMatrix::for_numeric(&mech, 8, 32, &PoisonRegion::RightOf(0.0));
    let counts: Vec<f64> = (0..32).map(|i| 10.0 + (i as f64) * 3.0).collect();
    for &gamma in &[0.0, 0.1, 0.25, 0.49] {
        let out = em::solve(
            &matrix,
            &counts,
            MStep::Constrained { gamma },
            &EmOptions { tol: 1e-9, max_iters: 2000 },
        );
        let sx: f64 = out.normal.iter().sum();
        let sy: f64 = out.poison.iter().sum();
        assert!((sx - (1.0 - gamma)).abs() < 1e-9, "Σx̂ = {sx} for γ = {gamma}");
        if gamma > 0.0 {
            assert!((sy - gamma).abs() < 1e-9, "Σŷ = {sy} for γ = {gamma}");
        }
    }
}

/// Theorem 5: suppressing more truly-empty poison buckets monotonically
/// improves the reconstruction (measured as L1 distance of ŷ to the truth).
#[test]
fn theorem5_suppression_monotonicity() {
    let mut rng = estimation::rng::seeded(3);
    use rand::Rng;
    let mech = PiecewiseMechanism::with_epsilon(0.25).unwrap();
    let c = mech.c();
    let n = 30_000;
    let m = 10_000;
    let mut reports: Vec<f64> =
        (0..n).map(|_| mech.perturb(rng.gen_range(-0.5..=0.5), &mut rng)).collect();
    // Poison concentrated on [0.9C, C] — most right-side buckets are empty.
    reports.extend((0..m).map(|_| rng.gen_range((0.9 * c)..=c)));

    let d_out = 64;
    let matrix = TransformMatrix::for_numeric(&mech, 16, d_out, &PoisonRegion::RightOf(0.0));
    let grid = Grid::new(-c, c, d_out);
    let counts = grid.counts(&reports);
    let opts = EmOptions { tol: 1e-7, max_iters: 2000 };
    let gamma = m as f64 / (n + m) as f64;

    let mut true_y = vec![0.0; d_out];
    for (j, y) in true_y.iter_mut().enumerate() {
        let (a, b) = grid.edges(j);
        let overlap = (b.min(c) - a.max(0.9 * c)).max(0.0);
        *y = gamma * overlap / (0.1 * c);
    }
    let l1 = |outcome: &differential_aggregation::estimation::em::EmOutcome| -> f64 {
        outcome.poison.iter().zip(&true_y).map(|(a, b)| (a - b).abs()).sum()
    };

    // Suppress increasingly many of the truly-empty poison buckets (those
    // below 0.9C), from none to all.
    let empty: Vec<usize> = matrix
        .poison_buckets()
        .iter()
        .copied()
        .filter(|&j| grid.center(j) < 0.88 * c)
        .collect();
    let mut errors = Vec::new();
    for keep_suppressed in [0usize, empty.len() / 2, empty.len()] {
        let share = 1.0 / (matrix.d_in() + matrix.poison_buckets().len()) as f64;
        let x0 = vec![share; matrix.d_in()];
        let mut y0 = vec![0.0; d_out];
        for &j in matrix.poison_buckets() {
            y0[j] = share;
        }
        for &j in &empty[..keep_suppressed] {
            y0[j] = 0.0;
        }
        let out = em::solve_with_init(
            &matrix,
            &counts,
            MStep::Constrained { gamma },
            &x0,
            &y0,
            &opts,
        );
        errors.push(l1(&out));
    }
    assert!(
        errors[2] <= errors[1] + 1e-6 && errors[1] <= errors[0] + 1e-6,
        "suppression did not monotonically improve: {errors:?}"
    );
    assert!(errors[2] < errors[0], "full suppression gave no gain: {errors:?}");
}

/// Theorem 6: among all convex weightings, the proof's optimum minimizes
/// the worst-case variance functional `Σ w²·B_t/n̂_t²`; random perturbations
/// around it never do better.
#[test]
fn theorem6_weight_optimality() {
    let mut rng = estimation::rng::seeded(4);
    use rand::Rng;
    let n_hats = [900.0, 400.0, 2_000.0, 150.0];
    let worst_vars = [1.0, 3.5, 9.0, 30.0];
    let b: Vec<f64> = n_hats.iter().zip(&worst_vars).map(|(&n, &v)| n * v).collect();
    let objective = |w: &[f64]| -> f64 {
        w.iter()
            .zip(&n_hats)
            .zip(&b)
            .map(|((&wi, &ni), &bi)| wi * wi * bi / (ni * ni))
            .sum()
    };

    let agg = aggregate(&[0.0; 4], &n_hats, &worst_vars, Weighting::ProofOptimal);
    let best = objective(&agg.weights);
    assert!((best - agg.min_variance).abs() < 1e-12, "functional mismatch");

    for _ in 0..500 {
        // Random convex weight vector.
        let raw: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..1.0)).collect();
        let total: f64 = raw.iter().sum();
        let w: Vec<f64> = raw.iter().map(|&x| x / total).collect();
        assert!(
            objective(&w) >= best - 1e-12,
            "random weights {w:?} beat the optimum: {} < {best}",
            objective(&w)
        );
    }

    // And the printed Algorithm 5 rule is measurably suboptimal for unequal
    // groups — the discrepancy DESIGN.md documents.
    let a5 = aggregate(&[0.0; 4], &n_hats, &worst_vars, Weighting::AlgorithmFive);
    assert!(objective(&a5.weights) > best, "Algorithm 5 unexpectedly optimal here");
}
