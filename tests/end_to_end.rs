//! End-to-end integration tests across crates: datasets → attacks →
//! protocol → defenses.

use differential_aggregation::prelude::*;

fn small_dap(
    eps: f64,
    scheme: Scheme,
) -> Dap<impl Fn(Epsilon) -> PiecewiseMechanism> {
    let mut cfg = DapConfig::paper_default(eps, scheme);
    cfg.max_d_out = 64; // debug-mode speed
    Dap::new(cfg, PiecewiseMechanism::new).expect("valid config")
}

/// DAP (any scheme) beats Ostrich on every dataset under the default
/// right-side attack — the headline Fig. 6 shape.
#[test]
fn dap_beats_ostrich_on_all_datasets() {
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let mut rng = estimation::rng::derive(100, i as u64);
        let honest = ds.generate_signed(12_000, &mut rng);
        let truth = estimation::stats::mean(&honest);
        let population = Population::with_gamma(honest, 0.25);
        let attack = UniformAttack::of_upper(0.5, 1.0);

        let eps = 1.0;
        let mech = PiecewiseMechanism::new(Epsilon::of(eps));
        let mut reports: Vec<f64> = population
            .honest
            .iter()
            .map(|&v| mech.perturb(v, &mut rng))
            .collect();
        reports.extend(attack.reports(population.byzantine, &mech, &mut rng));
        let ostrich_err = (Ostrich.estimate_mean(&reports, &mut rng) - truth).abs();

        let dap = small_dap(eps, Scheme::EmfStar);
        let out = dap.run(&population, &attack, &mut rng).expect("valid run");
        let dap_err = (out.mean - truth).abs();
        assert!(
            dap_err < ostrich_err,
            "{}: DAP err {dap_err:.4} !< Ostrich err {ostrich_err:.4}",
            ds.label()
        );
    }
}

/// Left-side attacks are handled symmetrically (the probe flips the side).
#[test]
fn left_side_attacks_are_probed_and_corrected() {
    let mut rng = estimation::rng::seeded(7);
    let honest = Dataset::Beta52.generate_signed(12_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.25);
    let attack =
        UniformAttack::new(Anchor::OfLower(1.0), Anchor::OfLower(0.5)); // [-C, -C/2]

    let dap = small_dap(0.5, Scheme::EmfStar);
    let out = dap.run(&population, &attack, &mut rng).expect("valid run");
    assert_eq!(out.side, Side::Left);
    assert!((out.mean - truth).abs() < 0.25, "estimate {} truth {}", out.mean, truth);
}

/// Without any attack DAP must not invent a coalition (Fig. 5c's small
/// false-positive rate). The constrained schemes (EMF*, CEMF*) inherit the
/// small probed γ̂ and stay near the truth; plain DAP_EMF re-fits freely per
/// group and is known to misattribute on skewed data (the paper concedes
/// this in the Fig. 6 (j)(k)(n) discussion), so it only gets a loose bound.
#[test]
fn no_attack_regression() {
    let mut rng = estimation::rng::seeded(8);
    let honest = Dataset::Beta25.generate_signed(12_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.0);
    for scheme in [Scheme::EmfStar, Scheme::CemfStar] {
        let out = small_dap(1.0, scheme).run(&population, &NoAttack, &mut rng).expect("valid run");
        assert!(
            (out.mean - truth).abs() < 0.12,
            "{}: estimate {} vs truth {}",
            scheme.label(),
            out.mean,
            truth
        );
        assert!(out.gamma < 0.2, "{}: phantom gamma {}", scheme.label(), out.gamma);
    }
    let out =
        small_dap(1.0, Scheme::Emf).run(&population, &NoAttack, &mut rng).expect("valid run");
    assert!(
        (out.mean - truth).abs() < 0.5,
        "DAP_EMF unattacked estimate diverged: {} vs {}",
        out.mean,
        truth
    );
}

/// All three schemes degrade gracefully as γ grows (Fig. 7a-b shape: DAP
/// keeps working at 40% Byzantine users).
#[test]
fn dap_survives_heavy_coalitions() {
    let mut rng = estimation::rng::seeded(9);
    let honest = Dataset::Taxi.generate_signed(12_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.4);
    let attack = UniformAttack::of_upper(0.5, 1.0);
    let out =
        small_dap(1.0, Scheme::CemfStar).run(&population, &attack, &mut rng).expect("valid run");
    assert!((out.mean - truth).abs() < 0.3, "estimate {} truth {}", out.mean, truth);
    assert!(out.gamma > 0.2, "gamma {}", out.gamma);
}

/// The whole pipeline is deterministic for a fixed master seed.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut rng = estimation::rng::seeded(1234);
        let honest = Dataset::Retirement.generate_signed(6_000, &mut rng);
        let population = Population::with_gamma(honest, 0.2);
        let attack = UniformAttack::of_upper(0.75, 1.0);
        small_dap(0.5, Scheme::EmfStar).run(&population, &attack, &mut rng).expect("valid run").mean
    };
    assert_eq!(run(), run());
}

/// The single-batch detection defenses compose with the attack framework
/// (the §III-A claim). Boxplot handles a bulk point attack at C; isolation
/// forests only isolate *sparse* anomalies, so they get the long-tail case
/// (a 2% coalition at C — which already shifts Ostrich substantially thanks
/// to the inflated domain).
#[test]
fn single_batch_defenses_run_on_poisoned_reports() {
    let mut rng = estimation::rng::seeded(10);
    let honest = Dataset::Beta25.generate_signed(8_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let attack = PointAttack { value: Anchor::OfUpper(1.0) };
    let mech = PiecewiseMechanism::new(Epsilon::of(1.0));

    // Bulk attack (20%): boxplot trims the off-band spike.
    let population = Population::with_gamma(honest.clone(), 0.2);
    let mut reports: Vec<f64> = population
        .honest
        .iter()
        .map(|&v| mech.perturb(v, &mut rng))
        .collect();
    reports.extend(attack.reports(population.byzantine, &mech, &mut rng));
    let ostrich_err = (Ostrich.estimate_mean(&reports, &mut rng) - truth).abs();
    let boxplot_err =
        (BoxplotFilter::default().estimate_mean(&reports, &mut rng) - truth).abs();
    assert!(boxplot_err < ostrich_err, "boxplot {boxplot_err} vs ostrich {ostrich_err}");

    // Long-tail attack hidden *inside* the honest q-tail (the paper's
    // challenge 2): poison spread over [0.9C, C] sits below the honest
    // out-of-band density, so point-wise detectors cannot separate it —
    // while DAP's collective correction still can.
    let sparse = Population::with_gamma(honest, 0.10);
    let tail_attack = UniformAttack::of_upper(0.9, 1.0);
    let mut reports: Vec<f64> = sparse
        .honest
        .iter()
        .map(|&v| mech.perturb(v, &mut rng))
        .collect();
    reports.extend(tail_attack.reports(sparse.byzantine, &mech, &mut rng));
    let ostrich_err = (Ostrich.estimate_mean(&reports, &mut rng) - truth).abs();
    let iforest = IsolationForest { trees: 50, subsample: 128, score_threshold: 0.6 };
    let iforest_err = (iforest.estimate_mean(&reports, &mut rng) - truth).abs();
    // The detector runs and stays sane, but brings no decisive improvement —
    // exactly the motivation for collective filtering.
    assert!(iforest_err.is_finite());
    let dap_out =
        small_dap(1.0, Scheme::EmfStar).run(&sparse, &tail_attack, &mut rng).expect("valid run");
    let dap_err = (dap_out.mean - truth).abs();
    assert!(
        dap_err < ostrich_err && dap_err < iforest_err,
        "DAP {dap_err:.4} vs ostrich {ostrich_err:.4}, iforest {iforest_err:.4}"
    );
}
