//! The protocol layer is generic over the LDP mechanism (§V-D "Extension to
//! Other Perturbation Mechanisms"). These tests run the full DAP stack on
//! Duchi's one-bit mechanism — an output domain of just two atoms, the
//! polar opposite of PM's continuum — and on mixed configurations.

use differential_aggregation::prelude::*;

fn duchi_dap(eps: f64, scheme: Scheme) -> Dap<impl Fn(Epsilon) -> Duchi> {
    let mut cfg = DapConfig::paper_default(eps, scheme);
    cfg.max_d_out = 64;
    Dap::new(cfg, Duchi::new).expect("valid config")
}

/// Duchi's bounded two-atom domain shrinks the attack surface: even Ostrich
/// cannot be dragged beyond ±t. DAP still runs end-to-end and the estimate
/// stays in the input domain.
#[test]
fn dap_runs_on_duchi_reports() {
    let mut rng = estimation::rng::seeded(61);
    let honest = Dataset::Taxi.generate_signed(8_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.25);
    // The strongest Duchi attack: all reports at the +t atom.
    let attack = PointAttack { value: Anchor::OfUpper(1.0) };
    let out =
        duchi_dap(1.0, Scheme::EmfStar).run(&population, &attack, &mut rng).expect("valid run");
    assert!((-1.0..=1.0).contains(&out.mean));
    // The probe must not be *worse* than Ostrich on the same reports.
    let mech = Duchi::new(Epsilon::of(1.0));
    let mut reports: Vec<f64> = population
        .honest
        .iter()
        .map(|&v| mech.perturb(v, &mut rng))
        .collect();
    reports.extend(attack.reports(population.byzantine, &mech, &mut rng));
    let ostrich_err = (estimation::stats::mean(&reports) - truth).abs();
    let dap_err = (out.mean - truth).abs();
    assert!(
        dap_err <= ostrich_err * 1.5 + 0.05,
        "Duchi-DAP err {dap_err:.4} far above Ostrich {ostrich_err:.4}"
    );
}

/// Duchi's long-tail exposure really is smaller than PM's: the same
/// maximal point attack biases a plain average less under Duchi than
/// under PM at equal ε (the output domain is [−t, t] with t < C).
#[test]
fn duchi_shrinks_the_attack_surface_vs_pm() {
    let eps = Epsilon::of(0.5);
    let duchi = Duchi::new(eps);
    let pm = PiecewiseMechanism::new(eps);
    let (_, t) = duchi.output_range();
    let (_, c) = pm.output_range();
    assert!(t < c, "Duchi range {t} should be tighter than PM's {c}");

    let mut rng = estimation::rng::seeded(62);
    let honest: Vec<f64> = vec![0.0; 8_000];
    let gamma = 0.2;
    let m = 2_000;
    let bias = |reports: &[f64]| estimation::stats::mean(reports).abs();

    let mut duchi_reports: Vec<f64> =
        honest.iter().map(|&v| duchi.perturb(v, &mut rng)).collect();
    duchi_reports.extend(
        PointAttack { value: Anchor::OfUpper(1.0) }.reports(m, &duchi, &mut rng),
    );
    let mut pm_reports: Vec<f64> = honest.iter().map(|&v| pm.perturb(v, &mut rng)).collect();
    pm_reports
        .extend(PointAttack { value: Anchor::OfUpper(1.0) }.reports(m, &pm, &mut rng));

    assert!(
        bias(&duchi_reports) < bias(&pm_reports),
        "duchi bias {} !< pm bias {} at gamma {gamma}",
        bias(&duchi_reports),
        bias(&pm_reports)
    );
}

/// EMF's transform matrix handles atom mechanisms: columns are stochastic
/// and concentrated on the two atom buckets.
#[test]
fn duchi_transform_matrix_is_valid() {
    use differential_aggregation::estimation::{PoisonRegion, TransformMatrix};
    let mech = Duchi::new(Epsilon::of(1.0));
    let m = TransformMatrix::for_numeric(&mech, 8, 32, &PoisonRegion::RightOf(0.0));
    for (k, s) in m.column_sums().iter().enumerate() {
        assert!((s - 1.0).abs() < 1e-9, "column {k} sums to {s}");
    }
    // Exactly two output buckets carry honest mass.
    let occupied = (0..32)
        .filter(|&i| (0..8).any(|k| m.normal_entry(i, k) > 0.0))
        .count();
    assert_eq!(occupied, 2, "Duchi mass must sit on the two atom buckets");
}

/// A single-group deployment (ε = ε₀) degenerates to the baseline intra-
/// group pipeline and still works.
#[test]
fn single_group_dap_is_valid() {
    let mut rng = estimation::rng::seeded(63);
    let honest = Dataset::Beta25.generate_signed(10_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.2);
    let cfg = DapConfig {
        eps: 0.0625,
        eps0: 0.0625,
        max_d_out: 64,
        ..DapConfig::paper_default(0.0625, Scheme::EmfStar)
    };
    let dap = Dap::new(cfg, PiecewiseMechanism::new).expect("valid config");
    let out = dap.run(&population, &UniformAttack::of_upper(0.5, 1.0), &mut rng).expect("valid run");
    assert_eq!(out.groups.len(), 1);
    assert_eq!(out.groups[0].weight, 1.0);
    assert!((out.mean - truth).abs() < 0.3, "estimate {} truth {}", out.mean, truth);
}

/// All weighting rules produce sane estimates on the same run.
#[test]
fn weighting_rules_all_work_end_to_end() {
    let mut rng = estimation::rng::seeded(64);
    let honest = Dataset::Taxi.generate_signed(9_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.25);
    for weighting in [Weighting::AlgorithmFive, Weighting::ProofOptimal, Weighting::Uniform] {
        let cfg = DapConfig {
            weighting,
            max_d_out: 64,
            ..DapConfig::paper_default(1.0, Scheme::CemfStar)
        };
        let dap = Dap::new(cfg, PiecewiseMechanism::new).expect("valid config");
        let out =
            dap.run(&population, &UniformAttack::of_upper(0.5, 1.0), &mut rng).expect("valid run");
        assert!(
            (out.mean - truth).abs() < 0.25,
            "{weighting:?}: estimate {} truth {}",
            out.mean,
            truth
        );
    }
}
