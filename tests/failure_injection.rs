//! Failure injection: degenerate configurations must fail loudly or degrade
//! gracefully — never produce silently wrong statistics.

use differential_aggregation::prelude::*;

#[test]
#[should_panic(expected = "BFT bound")]
fn majority_coalitions_are_rejected() {
    // §III-A: no convergence guarantee at γ ≥ 1/2.
    Population::with_gamma(vec![0.0; 100], 0.5);
}

#[test]
fn dap_rejects_eps_below_eps0() {
    let cfg = DapConfig { eps: 0.01, ..DapConfig::paper_default(0.01, Scheme::Emf) };
    let err = Dap::new(cfg, PiecewiseMechanism::new).err().expect("ε < ε₀ must be rejected");
    assert!(matches!(err, DapError::InvalidBudget { .. }), "unexpected error {err}");
}

/// An empty population is a typed error, not a panic.
#[test]
fn dap_rejects_empty_population() {
    let population = Population { honest: vec![], byzantine: 0 };
    let cfg = DapConfig { max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let err = Dap::new(cfg, PiecewiseMechanism::new)
        .expect("valid config")
        .run(&population, &NoAttack, &mut estimation::rng::seeded(80))
        .unwrap_err();
    assert!(matches!(err, DapError::EmptyPopulation), "unexpected error {err}");
}

#[test]
#[should_panic(expected = "invalid privacy budget")]
fn epsilon_constructor_rejects_nan() {
    Epsilon::of(f64::NAN);
}

/// A coalition that sends nothing (NoAttack with byzantine slots) just
/// shrinks the report volume; the protocol still estimates the honest mean.
#[test]
fn silent_coalition_degrades_gracefully() {
    let mut rng = estimation::rng::seeded(81);
    let honest = Dataset::Beta25.generate_signed(8_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population { honest, byzantine: 2_000 };
    let cfg = DapConfig { max_d_out: 64, ..DapConfig::paper_default(1.0, Scheme::EmfStar) };
    let out = Dap::new(cfg, PiecewiseMechanism::new)
        .expect("valid config")
        .run(&population, &NoAttack, &mut rng)
        .expect("valid run");
    assert!((out.mean - truth).abs() < 0.12, "estimate {} truth {}", out.mean, truth);
}

/// A constant honest population (zero variance) is an edge case for every
/// histogram step; the estimate must still land on the constant.
#[test]
fn constant_population_is_estimated() {
    let mut rng = estimation::rng::seeded(82);
    let population = Population::with_gamma(vec![0.5; 10_000], 0.2);
    let cfg = DapConfig { max_d_out: 64, ..DapConfig::paper_default(1.0, Scheme::CemfStar) };
    let out = Dap::new(cfg, PiecewiseMechanism::new)
        .expect("valid config")
        .run(&population, &UniformAttack::of_upper(0.75, 1.0), &mut rng)
        .expect("valid run");
    assert!((out.mean - 0.5).abs() < 0.15, "estimate {}", out.mean);
}

/// Honest values pinned at the domain edge — the worst case of Theorem 6's
/// variance bound — still produce a bounded, sane estimate.
#[test]
fn edge_pinned_population_is_estimated() {
    let mut rng = estimation::rng::seeded(83);
    let population = Population::with_gamma(vec![-1.0; 10_000], 0.25);
    let cfg = DapConfig { max_d_out: 64, ..DapConfig::paper_default(0.5, Scheme::EmfStar) };
    let out = Dap::new(cfg, PiecewiseMechanism::new)
        .expect("valid config")
        .run(&population, &UniformAttack::of_upper(0.5, 1.0), &mut rng)
        .expect("valid run");
    assert!((-1.0..=1.0).contains(&out.mean));
    assert!(out.mean < -0.5, "estimate {} should stay near -1", out.mean);
}

/// Tiny populations (fewer users than groups) must not panic.
#[test]
fn tiny_population_runs() {
    let mut rng = estimation::rng::seeded(84);
    let population = Population { honest: vec![0.3, -0.2, 0.1], byzantine: 1 };
    let cfg = DapConfig { max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let out = Dap::new(cfg, PiecewiseMechanism::new)
        .expect("valid config")
        .run(&population, &UniformAttack::of_upper(0.5, 1.0), &mut rng)
        .expect("valid run");
    assert!(out.mean.is_finite());
}

/// The accountant blocks any attempt to overspend a user's budget.
#[test]
fn accountant_is_a_hard_gate() {
    let mut acc = PrivacyAccountant::new(3, 1.0);
    acc.charge(0, 0.5).unwrap();
    acc.charge(0, 0.5).unwrap();
    let err = acc.charge(0, 0.01).unwrap_err();
    assert_eq!(err.user, 0);
    assert!(acc.remaining(0) < 1e-9);
    assert!((acc.remaining(1) - 1.0).abs() < 1e-12);
}

/// Defenses never emit NaN on adversarial (but NaN-free) inputs.
#[test]
fn defenses_stay_finite_on_adversarial_inputs() {
    let mut rng = estimation::rng::seeded(85);
    let nasty: Vec<f64> = vec![f64::MIN_POSITIVE; 10]
        .into_iter()
        .chain(vec![1e300; 3])
        .chain(vec![-1e300; 2])
        .collect();
    let defenses: Vec<Box<dyn MeanDefense>> = vec![
        Box::new(Ostrich),
        Box::new(Trimming::paper_default(Side::Right)),
        Box::new(BoxplotFilter::default()),
        Box::new(KMeansDefense::new(0.5, 10)),
        Box::new(IsolationForest { trees: 10, subsample: 8, score_threshold: 0.6 }),
    ];
    for d in &defenses {
        let est = d.estimate_mean(&nasty, &mut rng);
        assert!(est.is_finite(), "{} produced {est}", d.label());
    }
}
