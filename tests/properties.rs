//! Property-based tests on the core invariants (proptest).

use differential_aggregation::prelude::*;
use differential_aggregation::{attack, estimation, ldp};
use estimation::em::{self, EmOptions, MStep};
use estimation::{Grid, PoisonRegion, TransformMatrix};
use ldp::{CategoricalMechanism, OutputDistribution};
use proptest::prelude::*;

/// Density ratio between any two inputs at any output point, for a
/// piecewise-constant mechanism distribution.
fn max_density_ratio(mech: &dyn NumericMechanism, x1: f64, x2: f64, probes: usize) -> f64 {
    let (olo, ohi) = mech.output_range();
    let (d1, d2) = (mech.output_distribution(x1), mech.output_distribution(x2));
    let density = |d: &OutputDistribution, y: f64| -> f64 {
        match d {
            OutputDistribution::Density(p) => p.density_at(y),
            OutputDistribution::Atoms(_) => unreachable!("probed mechanisms are continuous"),
        }
    };
    let mut worst: f64 = 0.0;
    for i in 0..probes {
        // Probe strictly inside the domain to dodge boundary ties.
        let y = olo + (ohi - olo) * (i as f64 + 0.5) / probes as f64;
        let (a, b) = (density(&d1, y), density(&d2, y));
        if a > 0.0 && b > 0.0 {
            worst = worst.max(a / b).max(b / a);
        } else if (a > 0.0) != (b > 0.0) {
            return f64::INFINITY; // zero vs non-zero density breaks LDP outright
        }
    }
    worst
}

proptest! {
    /// Definition 1: PM's conditional densities never differ by more than
    /// e^ε anywhere in the output domain, for any pair of inputs.
    #[test]
    fn pm_satisfies_eps_ldp(
        eps in 0.1f64..4.0,
        x1 in -1.0f64..1.0,
        x2 in -1.0f64..1.0,
    ) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let ratio = max_density_ratio(&mech, x1, x2, 257);
        prop_assert!(ratio <= eps.exp() * (1.0 + 1e-9), "ratio {ratio} > e^{eps}");
    }

    /// Definition 1 for Square Wave.
    #[test]
    fn sw_satisfies_eps_ldp(
        eps in 0.1f64..4.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let mech = SquareWave::with_epsilon(eps).unwrap();
        let ratio = max_density_ratio(&mech, x1, x2, 257);
        prop_assert!(ratio <= eps.exp() * (1.0 + 1e-9), "ratio {ratio} > e^{eps}");
    }

    /// Definition 1 for k-RR (probability-mass form).
    #[test]
    fn krr_satisfies_eps_ldp(
        eps in 0.1f64..4.0,
        k in 2usize..20,
        out in 0usize..20,
        x1 in 0usize..20,
        x2 in 0usize..20,
    ) {
        let (out, x1, x2) = (out % k, x1 % k, x2 % k);
        let mech = KRandomizedResponse::new(Epsilon::of(eps), k).unwrap();
        let (p1, p2) = (
            mech.transition_probability(out, x1),
            mech.transition_probability(out, x2),
        );
        prop_assert!(p1 / p2 <= eps.exp() * (1.0 + 1e-12));
        prop_assert!(p2 / p1 <= eps.exp() * (1.0 + 1e-12));
    }

    /// PM reports are unbiased for every input and budget.
    #[test]
    fn pm_is_unbiased(eps in 0.1f64..4.0, x in -1.0f64..1.0) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mean = mech.output_distribution(x).mean();
        prop_assert!((mean - x).abs() < 1e-8, "E[v'|{x}] = {mean}");
    }

    /// Theorem 1: the GBA→BBA reduction preserves total deviation, lands on
    /// one side, and stays inside the domain.
    #[test]
    fn reduction_preserves_deviation(
        values in proptest::collection::vec(-3.0f64..3.0, 1..40),
        o in -1.0f64..1.0,
    ) {
        let before = attack::reduction::total_deviation(&values, o);
        let (reduced, side) = attack::reduce_to_bba(&values, o, -3.0, 3.0);
        let after = attack::reduction::total_deviation(&reduced, o);
        prop_assert!((before - after).abs() < 1e-6 * (1.0 + before.abs()));
        prop_assert!(reduced.iter().all(|&v| (-3.0..=3.0).contains(&v)));
        match side {
            Side::Left => prop_assert!(reduced.iter().all(|&v| v <= o + 1e-12)),
            Side::Right => prop_assert!(reduced.iter().all(|&v| v >= o - 1e-12)),
        }
    }

    /// EM always returns a proper distribution regardless of the counts.
    #[test]
    fn em_outputs_are_distributions(
        eps in 0.2f64..2.0,
        counts in proptest::collection::vec(0.0f64..500.0, 16),
    ) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let matrix = TransformMatrix::for_numeric(&mech, 4, 16, &PoisonRegion::RightOf(0.0));
        let out = em::solve(&matrix, &counts, MStep::Free, &EmOptions::default());
        let total: f64 = out.normal.iter().sum::<f64>() + out.poison.iter().sum::<f64>();
        prop_assert!(out.normal.iter().chain(out.poison.iter()).all(|&v| v >= 0.0));
        if counts.iter().sum::<f64>() > 0.0 {
            prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
        }
    }

    /// Aggregation weights are a convex combination under every rule.
    #[test]
    fn aggregation_weights_are_convex(
        means in proptest::collection::vec(-1.0f64..1.0, 1..8),
        seed in 0u64..1000,
    ) {
        let mut rng = estimation::rng::seeded(seed);
        use rand::Rng;
        let n = means.len();
        let n_hats: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1e4)).collect();
        let vars: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..50.0)).collect();
        for w in [Weighting::AlgorithmFive, Weighting::ProofOptimal, Weighting::Uniform] {
            let agg = aggregate(&means, &n_hats, &vars, w);
            prop_assert!((agg.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(agg.weights.iter().all(|&x| x >= 0.0));
            let (lo, hi) = means.iter().fold((f64::INFINITY, f64::NEG_INFINITY),
                |(a, b), &m| (a.min(m), b.max(m)));
            prop_assert!(agg.mean >= lo - 1e-9 && agg.mean <= hi + 1e-9);
        }
    }

    /// Grid bucketization is a partition: every value maps to exactly one
    /// bucket whose edges contain it.
    #[test]
    fn grid_partitions_the_domain(
        v in -1.0f64..1.0,
        n in 1usize..200,
    ) {
        let grid = Grid::new(-1.0, 1.0, n);
        let b = grid.bucket_of(v);
        let (lo, hi) = grid.edges(b);
        let closed_right = b + 1 == n;
        prop_assert!(v >= lo - 1e-12);
        if closed_right {
            prop_assert!(v <= hi + 1e-12);
        } else {
            prop_assert!(v < hi + 1e-12);
        }
    }

    /// Privacy accounting: k reports at ε/k always fit, k+1 never do.
    #[test]
    fn accountant_enforces_composition(eps in 0.1f64..4.0, k in 1usize..64) {
        let mut acc = PrivacyAccountant::new(1, eps);
        let share = eps / k as f64;
        for _ in 0..k {
            prop_assert!(acc.charge(0, share).is_ok());
        }
        prop_assert!(acc.charge(0, share).is_err());
    }

    /// Anchor resolution always lands inside the output domain for
    /// fractions in [0, 1].
    #[test]
    fn anchors_stay_in_domain(eps in 0.1f64..4.0, frac in 0.0f64..1.0) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let (dl, dr) = mech.output_range();
        for anchor in [
            Anchor::OfUpper(frac),
            Anchor::OfLower(frac),
            Anchor::AboveInputMax(frac),
        ] {
            let v = anchor.resolve(&mech);
            prop_assert!(v >= dl - 1e-9 && v <= dr + 1e-9, "{anchor:?} -> {v}");
        }
    }
}
