//! The paper's motivating security argument (§V): probing-aware attackers
//! defeat the §IV baseline protocol but not DAP, because DAP's random
//! single-ε grouping leaves them no way to tell probing reports from
//! estimation reports.

use differential_aggregation::prelude::*;
use differential_aggregation::protocol::baseline::{BaselineConfig, BaselineProtocol};

fn setup(seed: u64) -> (Population, f64) {
    let mut rng = estimation::rng::seeded(seed);
    let honest = Dataset::Taxi.generate_signed(15_000, &mut rng);
    let truth = estimation::stats::mean(&honest);
    (Population::with_gamma(honest, 0.25), truth)
}

#[test]
fn evading_coalition_breaks_baseline_but_not_dap() {
    let (population, truth) = setup(31);
    let attack = UniformAttack::of_upper(0.5, 1.0);
    let eps = 1.0;

    // Baseline vs the probing-aware coalition: act honest on the ε_α batch,
    // poison the ε_β batch.
    let mut cfg = BaselineConfig::with_eps(eps);
    cfg.max_d_out = 64;
    let baseline =
        BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config");
    let evaded = baseline
        .run_with_evading_attacker(&population, &attack, 0.0, &mut estimation::rng::seeded(32))
        .expect("valid run");
    let baseline_err = (evaded.mean - truth).abs();

    // DAP vs the same coalition. Under DAP the attacker cannot target a
    // probing phase — every report is both. The strongest analogous move is
    // simply attacking every group, which is the standard model.
    let mut dcfg = DapConfig::paper_default(eps, Scheme::EmfStar);
    dcfg.max_d_out = 64;
    let dap = Dap::new(dcfg, PiecewiseMechanism::new).expect("valid config");
    let out =
        dap.run(&population, &attack, &mut estimation::rng::seeded(32)).expect("valid run");
    let dap_err = (out.mean - truth).abs();

    // The evading coalition hides from the baseline probe...
    assert!(evaded.gamma < 0.1, "baseline probe should be blinded, gamma {}", evaded.gamma);
    // ...while DAP still sees it and estimates better.
    assert!(out.gamma > 0.15, "DAP probe blinded too: gamma {}", out.gamma);
    assert!(
        dap_err < baseline_err,
        "DAP err {dap_err:.4} !< evaded-baseline err {baseline_err:.4}"
    );
}

#[test]
fn baseline_still_works_against_naive_attackers() {
    let (population, truth) = setup(33);
    let attack = UniformAttack::of_upper(0.5, 1.0);
    let mut cfg = BaselineConfig::with_eps(1.0);
    cfg.max_d_out = 64;
    let baseline =
        BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config");
    let out =
        baseline.run(&population, &attack, &mut estimation::rng::seeded(34)).expect("valid run");
    assert!((out.mean - truth).abs() < 0.15, "estimate {} truth {}", out.mean, truth);
    assert!((out.gamma - 0.25).abs() < 0.1, "gamma {}", out.gamma);
}
