//! # differential-aggregation
//!
//! A reproduction of *"Differential Aggregation against General Colluding
//! Attackers"* (Du, Ye, Fu, Hu, Li, Fang, Shi — ICDE 2023): collusion-robust
//! mean and frequency estimation under local differential privacy.
//!
//! The facade re-exports the workspace crates under stable module names:
//!
//! * [`ldp`] — LDP mechanisms (Piecewise, Square Wave, k-RR, Duchi),
//! * [`estimation`] — grids, transform matrices, EM/EMS solvers, statistics,
//! * [`attack`] — Byzantine threat models (GBA/BBA, IMA, evasion),
//! * [`emf`] — the Expectation-Maximization Filter and post-processing,
//! * [`defenses`] — Ostrich, trimming, k-means, boxplot, isolation forest,
//! * [`datasets`] — the paper's evaluation datasets (and surrogates),
//! * [`protocol`] — the Differential Aggregation Protocol and extensions.
//!
//! ## Quickstart
//!
//! ```
//! use differential_aggregation::prelude::*;
//!
//! // 10 000 honest users with values in [-1, 1]; a 20% coalition pushes
//! // the estimate up by injecting into the top half of the PM output
//! // domain.
//! let mut rng = estimation::rng::seeded(7);
//! let honest: Vec<f64> = (0..10_000)
//!     .map(|i| (i as f64 / 9_999.0) * 1.2 - 0.8)
//!     .collect();
//! let truth = estimation::stats::mean(&honest);
//! let population = Population::with_gamma(honest, 0.20);
//! let attack = UniformAttack::of_upper(0.5, 1.0);
//!
//! let dap = Dap::new(
//!     DapConfig { max_d_out: 64, ..DapConfig::paper_default(1.0, Scheme::EmfStar) },
//!     PiecewiseMechanism::new,
//! )
//! .expect("valid config");
//! let output = dap.run(&population, &attack, &mut rng).expect("valid run");
//! assert!((output.mean - truth).abs() < 0.2);
//! ```
//!
//! ## Client/aggregator split
//!
//! `Dap::run` is a thin simulation driver over the streaming service API:
//! grouping yields per-user [`protocol::client::ClientAssignment`]s, clients
//! perturb locally, and a [`protocol::DapSession`] ingests the reports
//! incrementally (rejecting malformed input as [`protocol::DapError`]s),
//! merges shards from independent workers, and finalizes. See
//! `examples/streaming_aggregator.rs` for driving the split API directly.
//!
//! The session is also served over TCP: [`protocol::net`] is the std-only
//! `dap-wire/v1` frame protocol (daemon [`protocol::net::serve_session`],
//! client [`protocol::net::WireClient`], serialized session state
//! [`protocol::SessionPart`]), carrying every f64 as its exact bit
//! pattern — a coordinator streaming to several daemons and merging their
//! parts finalizes bit-identically to one in-process run. See
//! `examples/tcp_aggregator.rs`.
//!
//! Sessions survive crashes: [`protocol::storage`] wraps any session in
//! write-ahead durability ([`protocol::storage::DurableSession`] over a
//! pluggable [`protocol::storage::StorageBackend`]) — every accepted
//! ingest/merge is journaled before it is acknowledged, periodic
//! checkpoints compact the journal, and a daemon restarted on the same
//! journal directory recovers its acknowledged state bit-for-bit. See
//! `examples/durable_aggregator.rs`.

pub use dap_attack as attack;
pub use dap_core as protocol;
pub use dap_datasets as datasets;
pub use dap_defenses as defenses;
pub use dap_emf as emf;
pub use dap_estimation as estimation;
pub use dap_ldp as ldp;

/// The commonly-used types in one import.
pub mod prelude {
    pub use crate::attack::{
        Anchor, Attack, BetaShapedAttack, EvasionAttack, GaussianAttack,
        InputManipulationAttack, NoAttack, PointAttack, Side, UniformAttack,
    };
    pub use crate::datasets::Dataset;
    pub use crate::defenses::{
        BoxplotFilter, IsolationForest, KMeansDefense, MeanDefense, Ostrich, Trimming,
    };
    pub use crate::emf::{ByzantineFeatures, EmfConfig};
    pub use crate::estimation;
    pub use crate::ldp::{
        Duchi, Epsilon, KRandomizedResponse, NumericMechanism, PiecewiseMechanism, SquareWave,
    };
    pub use crate::protocol::{
        aggregate, ClientAssignment, Dap, DapConfig, DapError, DapOutput, DapSession,
        EstimationMode, GroupPlan, Population, PrivacyAccountant, Scheme, SwDap, SwDapConfig,
        Weighting,
    };
}
