//! Dataset generators for the DAP evaluation (Fig. 4 of the paper).
//!
//! Two synthetic distributions are exact re-creations of the paper's
//! (Beta(2,5), Beta(5,2)); the two real-world datasets are *behavioural
//! surrogates* generated from mixture models matching the published
//! histogram shapes — see `DESIGN.md` §3 for the substitution rationale:
//!
//! * **Taxi** — NYC January 2018 pick-up seconds-of-day (bimodal rush-hour
//!   peaks over a uniform base, integers in `[0, 86340]`),
//! * **Retirement** — SF employee compensation (left-concentrated truncated
//!   log-normal on `[10 000, 60 000]`),
//! * **COVID-19** — 15-bin categorical age-at-death frequencies for the
//!   frequency-estimation experiments (Fig. 9c, d).
//!
//! All numerical datasets can be emitted raw, normalized to `[-1, 1]` (the
//! PM domain) or to `[0, 1]` (the SW domain).

pub mod cache;
pub mod covid;
pub mod numeric;

pub use cache::{CacheStats, Domain, PopulationCache, SampledPopulation};
pub use covid::{covid_frequencies, sample_covid, COVID_GROUPS};
pub use numeric::Dataset;
