//! COVID-19-style categorical dataset for the frequency-estimation
//! experiments (Fig. 9c, d).
//!
//! The paper uses CDC's provisional COVID-19 deaths for females in
//! California by age group (15 groups, December 2022). The surrogate below
//! hard-codes a frequency profile with the canonical age-mortality shape —
//! negligible mass below 25, rapid growth through middle age, and a heavy
//! 75+ tail — which is all the relative-MSE experiment depends on.

use rand::{Rng, RngCore};

/// Number of age groups.
pub const COVID_GROUPS: usize = 15;

/// Age-group labels (CDC bucketing).
pub const COVID_LABELS: [&str; COVID_GROUPS] = [
    "<1", "1-4", "5-14", "15-24", "25-34", "35-44", "45-54", "55-64", "65-74", "75-84", "85+",
    "u-1", "u-2", "u-3", "u-4",
];

/// The surrogate frequency profile (sums to 1). The final four groups model
/// the dataset's small residual categories so the experiment keeps the
/// paper's 15-way layout.
pub fn covid_frequencies() -> [f64; COVID_GROUPS] {
    let raw = [
        0.0004, 0.0004, 0.0008, 0.0024, 0.0070, 0.0170, 0.0420, 0.1000, 0.1900, 0.2800, 0.3200,
        0.0160, 0.0120, 0.0080, 0.0040,
    ];
    debug_assert!((raw.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    raw
}

/// Samples `n` categorical records from the surrogate profile.
pub fn sample_covid(n: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    let freqs = covid_frequencies();
    let mut cdf = [0.0; COVID_GROUPS];
    let mut acc = 0.0;
    for (c, f) in cdf.iter_mut().zip(freqs.iter()) {
        acc += f;
        *c = acc;
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.iter().position(|&c| u <= c).unwrap_or(COVID_GROUPS - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn frequencies_sum_to_one() {
        assert!((covid_frequencies().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_has_the_age_mortality_shape() {
        let f = covid_frequencies();
        // Heavy old-age tail.
        assert!(f[10] > f[8]);
        assert!(f[9] > f[7]);
        // Negligible young mass.
        assert!(f[0] < 0.001 && f[3] < 0.01);
    }

    #[test]
    fn samples_match_the_profile() {
        let mut rng = seeded(1);
        let n = 200_000;
        let records = sample_covid(n, &mut rng);
        let mut counts = [0usize; COVID_GROUPS];
        for r in records {
            counts[r] += 1;
        }
        let f = covid_frequencies();
        for (i, (&c, &expect)) in counts.iter().zip(f.iter()).enumerate() {
            let obs = c as f64 / n as f64;
            assert!((obs - expect).abs() < 0.01, "group {i}: {obs} vs {expect}");
        }
    }

    #[test]
    fn labels_cover_every_group() {
        assert_eq!(COVID_LABELS.len(), COVID_GROUPS);
    }
}
