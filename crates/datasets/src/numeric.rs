//! Numerical dataset generators.

use dap_estimation::sampling;
use dap_estimation::stats::{normalize_to_signed, normalize_to_unit};
use rand::{Rng, RngCore};

/// The four numerical datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Beta(2, 5) on `[0, 1]` — left-leaning synthetic.
    Beta25,
    /// Beta(5, 2) on `[0, 1]` — right-leaning synthetic.
    Beta52,
    /// Taxi pick-up seconds-of-day surrogate, integers in `[0, 86 340]`.
    Taxi,
    /// SF retirement compensation surrogate in `[10 000, 60 000]`.
    Retirement,
}

impl Dataset {
    /// All four datasets, in the paper's order.
    pub const ALL: [Dataset; 4] = [Dataset::Beta25, Dataset::Beta52, Dataset::Taxi, Dataset::Retirement];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Beta25 => "Beta(2,5)",
            Dataset::Beta52 => "Beta(5,2)",
            Dataset::Taxi => "Taxi",
            Dataset::Retirement => "Retirement",
        }
    }

    /// Raw value range `[lo, hi]` used for normalization.
    pub fn raw_range(self) -> (f64, f64) {
        match self {
            Dataset::Beta25 | Dataset::Beta52 => (0.0, 1.0),
            Dataset::Taxi => (0.0, 86_340.0),
            Dataset::Retirement => (10_000.0, 60_000.0),
        }
    }

    /// Samples `n` raw values.
    pub fn generate_raw<R: RngCore + ?Sized>(self, n: usize, rng: &mut R) -> Vec<f64> {
        match self {
            Dataset::Beta25 => (0..n).map(|_| sampling::beta(2.0, 5.0, rng)).collect(),
            Dataset::Beta52 => (0..n).map(|_| sampling::beta(5.0, 2.0, rng)).collect(),
            Dataset::Taxi => (0..n).map(|_| taxi_pickup_second(rng)).collect(),
            Dataset::Retirement => (0..n).map(|_| retirement_compensation(rng)).collect(),
        }
    }

    /// Samples `n` values normalized into `[-1, 1]` (Piecewise-Mechanism
    /// domain, the paper's default).
    pub fn generate_signed<R: RngCore + ?Sized>(self, n: usize, rng: &mut R) -> Vec<f64> {
        let raw = self.generate_raw(n, rng);
        let (lo, hi) = self.raw_range();
        normalize_to_signed(&raw, lo, hi)
    }

    /// Samples `n` values normalized into `[0, 1]` (Square-Wave domain).
    pub fn generate_unit<R: RngCore + ?Sized>(self, n: usize, rng: &mut R) -> Vec<f64> {
        let raw = self.generate_raw(n, rng);
        let (lo, hi) = self.raw_range();
        normalize_to_unit(&raw, lo, hi)
    }
}

/// One synthetic pick-up time in seconds of day.
///
/// Mixture tuned so the normalized mean lands near the paper's Taxi mean
/// (`O ≈ 0.12` on `[-1, 1]`): a uniform all-day base plus morning and evening
/// rush-hour Gaussians.
fn taxi_pickup_second<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    const DAY: f64 = 86_340.0;
    let u: f64 = rng.gen();
    let t = if u < 0.35 {
        rng.gen_range(0.0..=DAY)
    } else if u < 0.65 {
        sampling::normal(32_000.0, 7_000.0, rng)
    } else {
        sampling::normal(68_000.0, 6_000.0, rng)
    };
    t.clamp(0.0, DAY).round()
}

/// One synthetic total-compensation value.
///
/// Truncated log-normal shifted to the `[10 000, 60 000]` window, matching
/// the left-concentrated shape of Fig. 4(d) (normalized mean `O ≈ −0.62`).
fn retirement_compensation<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let body = (sampling::normal(9.0, 0.5, rng)).exp();
    (10_000.0 + body).clamp(10_000.0, 60_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mean;

    #[test]
    fn beta_means_match_theory() {
        let mut rng = seeded(1);
        let b25 = Dataset::Beta25.generate_signed(50_000, &mut rng);
        let b52 = Dataset::Beta52.generate_signed(50_000, &mut rng);
        // Beta(2,5) mean 2/7 → signed −0.4286; Beta(5,2) mirrors at +0.4286.
        assert!((mean(&b25) + 0.4286).abs() < 0.01, "Beta(2,5) mean {}", mean(&b25));
        assert!((mean(&b52) - 0.4286).abs() < 0.01, "Beta(5,2) mean {}", mean(&b52));
    }

    #[test]
    fn taxi_mean_is_near_paper_value() {
        let mut rng = seeded(2);
        let taxi = Dataset::Taxi.generate_signed(50_000, &mut rng);
        let m = mean(&taxi);
        // Paper reports O = 0.1190 for the real dump; the surrogate mixture
        // is tuned to the same neighbourhood.
        assert!((m - 0.12).abs() < 0.05, "taxi mean {m}");
    }

    #[test]
    fn retirement_mean_is_near_paper_value() {
        let mut rng = seeded(3);
        let ret = Dataset::Retirement.generate_signed(50_000, &mut rng);
        let m = mean(&ret);
        // Paper reports O = −0.6240.
        assert!((m + 0.62).abs() < 0.06, "retirement mean {m}");
    }

    #[test]
    fn all_values_respect_domains() {
        let mut rng = seeded(4);
        for ds in Dataset::ALL {
            let signed = ds.generate_signed(5_000, &mut rng);
            assert!(signed.iter().all(|&v| (-1.0..=1.0).contains(&v)), "{}", ds.label());
            let unit = ds.generate_unit(5_000, &mut rng);
            assert!(unit.iter().all(|&v| (0.0..=1.0).contains(&v)), "{}", ds.label());
        }
    }

    #[test]
    fn taxi_values_are_integer_seconds() {
        let mut rng = seeded(5);
        let raw = Dataset::Taxi.generate_raw(1_000, &mut rng);
        assert!(raw.iter().all(|&v| v == v.round() && (0.0..=86_340.0).contains(&v)));
    }

    #[test]
    fn taxi_is_bimodal() {
        let mut rng = seeded(6);
        let raw = Dataset::Taxi.generate_raw(100_000, &mut rng);
        let grid = dap_estimation::Grid::new(0.0, 86_340.0, 24);
        let freqs = grid.frequencies(&raw);
        // Rush hours (bucket around 32 000 s ≈ index 8 and 68 000 s ≈ 18)
        // dominate the small hours (index 1).
        assert!(freqs[8] > 2.0 * freqs[1], "{freqs:?}");
        assert!(freqs[18] > 2.0 * freqs[1], "{freqs:?}");
    }

    #[test]
    fn retirement_is_left_concentrated() {
        let mut rng = seeded(7);
        let signed = Dataset::Retirement.generate_signed(50_000, &mut rng);
        let below = signed.iter().filter(|&&v| v < 0.0).count();
        assert!(below as f64 / 50_000.0 > 0.9, "left mass {below}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Dataset::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
