//! Privacy budget newtype.

use crate::error::LdpError;
use std::fmt;

/// A validated local differential privacy budget `ε > 0`.
///
/// The paper works with budgets between `1/16` and `2`; the type accepts any
/// finite positive value. `Epsilon` is `Copy` and ordered so it can be used
/// directly as a map key in experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a budget, rejecting non-finite or non-positive values.
    pub fn new(eps: f64) -> Result<Self, LdpError> {
        if eps.is_finite() && eps > 0.0 {
            Ok(Epsilon(eps))
        } else {
            Err(LdpError::InvalidEpsilon(eps))
        }
    }

    /// Creates a budget, panicking on invalid input.
    ///
    /// Convenient for literals in examples and tests:
    /// `Epsilon::of(0.5)`.
    ///
    /// # Panics
    /// If `eps` is not finite and positive.
    pub fn of(eps: f64) -> Self {
        Self::new(eps).expect("invalid privacy budget")
    }

    /// Raw budget value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `e^ε`.
    #[inline]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// `e^{ε/2}` — the quantity dominating the Piecewise Mechanism algebra.
    #[inline]
    pub fn exp_half(self) -> f64 {
        (self.0 / 2.0).exp()
    }

    /// Splits the budget into `(αε, (1-α)ε)` for the baseline two-phase
    /// protocol of §IV. `alpha` must lie strictly in `(0, 1)`.
    pub fn split(self, alpha: f64) -> Result<(Epsilon, Epsilon), LdpError> {
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(LdpError::InvalidEpsilon(alpha * self.0));
        }
        Ok((Epsilon(self.0 * alpha), Epsilon(self.0 * (1.0 - alpha))))
    }

    /// Halves the budget, as the DAP grouping stage does repeatedly.
    #[inline]
    pub fn halved(self) -> Epsilon {
        Epsilon(self.0 / 2.0)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_finite() {
        assert_eq!(Epsilon::new(0.0625).unwrap().get(), 0.0625);
        assert_eq!(Epsilon::new(5.0).unwrap().get(), 5.0);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn split_conserves_budget() {
        let (a, b) = Epsilon::of(1.0).split(0.1).unwrap();
        assert!((a.get() + b.get() - 1.0).abs() < 1e-12);
        assert!((a.get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn split_rejects_degenerate_alpha() {
        assert!(Epsilon::of(1.0).split(0.0).is_err());
        assert!(Epsilon::of(1.0).split(1.0).is_err());
        assert!(Epsilon::of(1.0).split(f64::NAN).is_err());
    }

    #[test]
    fn halved_halves() {
        assert_eq!(Epsilon::of(2.0).halved().get(), 1.0);
    }

    #[test]
    fn exp_helpers() {
        let e = Epsilon::of(2.0);
        assert!((e.exp() - 2.0f64.exp()).abs() < 1e-12);
        assert!((e.exp_half() - 1.0f64.exp()).abs() < 1e-12);
    }
}
