//! k-ary Randomized Response (Kairouz et al., NeurIPS 2014) for categorical
//! data, used by the paper's frequency-estimation extension (Fig. 9c, d).
//!
//! The true category is kept with probability `p = e^ε / (e^ε + k − 1)`;
//! otherwise one of the remaining `k − 1` categories is reported uniformly.

use crate::budget::Epsilon;
use crate::error::LdpError;
use crate::mechanism::CategoricalMechanism;
use rand::{Rng, RngCore};

/// k-RR over categories `0..k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KRandomizedResponse {
    eps: Epsilon,
    k: usize,
    /// Probability of reporting the true category.
    p_keep: f64,
    /// Probability of reporting any specific other category.
    p_flip: f64,
}

impl KRandomizedResponse {
    /// Builds a k-RR instance over `k ≥ 2` categories.
    pub fn new(eps: Epsilon, k: usize) -> Result<Self, LdpError> {
        if k < 2 {
            return Err(LdpError::TooFewCategories(k));
        }
        let e = eps.exp();
        let p_keep = e / (e + k as f64 - 1.0);
        let p_flip = 1.0 / (e + k as f64 - 1.0);
        Ok(KRandomizedResponse { eps, k, p_keep, p_flip })
    }

    /// Probability of reporting the true category.
    #[inline]
    pub fn p_keep(&self) -> f64 {
        self.p_keep
    }

    /// Probability of reporting one specific wrong category.
    #[inline]
    pub fn p_flip(&self) -> f64 {
        self.p_flip
    }

    /// Unbiases an observed report frequency vector in place:
    /// `f̂_true = (f_obs − q) / (p − q)` with `q = p_flip`.
    ///
    /// Output entries may be slightly negative due to sampling noise;
    /// callers needing a distribution should clamp and renormalize.
    pub fn debias_frequencies(&self, observed: &mut [f64]) {
        let q = self.p_flip;
        let denom = self.p_keep - q;
        for f in observed.iter_mut() {
            *f = (*f - q) / denom;
        }
    }
}

impl CategoricalMechanism for KRandomizedResponse {
    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn categories(&self) -> usize {
        self.k
    }

    fn perturb(&self, v: usize, rng: &mut dyn RngCore) -> usize {
        debug_assert!(v < self.k, "category {v} out of range (k={})", self.k);
        if rng.gen::<f64>() < self.p_keep {
            v
        } else {
            // Uniform over the other k-1 categories.
            let draw = rng.gen_range(0..self.k - 1);
            if draw >= v {
                draw + 1
            } else {
                draw
            }
        }
    }

    fn transition_probability(&self, out: usize, inp: usize) -> f64 {
        debug_assert!(out < self.k && inp < self.k);
        if out == inp {
            self.p_keep
        } else {
            self.p_flip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn krr(eps: f64, k: usize) -> KRandomizedResponse {
        KRandomizedResponse::new(Epsilon::of(eps), k).unwrap()
    }

    #[test]
    fn rejects_small_k() {
        assert!(KRandomizedResponse::new(Epsilon::of(1.0), 1).is_err());
        assert!(KRandomizedResponse::new(Epsilon::of(1.0), 0).is_err());
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let m = krr(1.0, 15);
        for inp in 0..15 {
            let row: f64 = (0..15).map(|out| m.transition_probability(out, inp)).sum();
            assert!((row - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn keep_flip_ratio_is_exp_eps() {
        let m = krr(0.5, 10);
        assert!((m.p_keep() / m.p_flip() - 0.5f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn perturb_never_leaves_domain_and_keeps_at_right_rate() {
        let m = krr(2.0, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut kept = 0usize;
        for _ in 0..n {
            let out = CategoricalMechanism::perturb(&m, 3, &mut rng);
            assert!(out < 5);
            if out == 3 {
                kept += 1;
            }
        }
        let freq = kept as f64 / n as f64;
        assert!((freq - m.p_keep()).abs() < 0.01, "keep freq {freq}");
    }

    #[test]
    fn flips_are_uniform_over_other_categories() {
        let m = krr(1.0, 4);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[CategoricalMechanism::perturb(&m, 0, &mut rng)] += 1;
        }
        // Categories 1..3 should be hit equally often.
        let others: Vec<f64> = counts[1..].iter().map(|&c| c as f64 / n as f64).collect();
        for w in others.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.01, "non-uniform flips: {others:?}");
        }
    }

    #[test]
    fn debias_recovers_true_frequencies() {
        let m = krr(1.0, 3);
        let truth = [0.5, 0.3, 0.2];
        // Expected observed frequency: p*f + q*(1-f).
        let mut observed: Vec<f64> = truth
            .iter()
            .map(|&f| m.p_keep() * f + m.p_flip() * (1.0 - f))
            .collect();
        m.debias_frequencies(&mut observed);
        for (o, t) in observed.iter().zip(truth.iter()) {
            assert!((o - t).abs() < 1e-12);
        }
    }
}
