//! Piecewise Mechanism (Algorithm 1 of the paper; Wang et al., ICDE 2019).
//!
//! Input domain `[-1, 1]`, output domain `[-C, C]` with
//! `C = (e^{ε/2}+1)/(e^{ε/2}-1)`. Given input `v`, the output is uniform on
//! the *high-probability band* `[l(v), r(v)]` (length `C-1`) with probability
//! `e^{ε/2}/(e^{ε/2}+1)`, and uniform on the complement otherwise. The output
//! is an unbiased estimator of the input, which is what makes plain averaging
//! (and the paper's Eq. 12/13 corrections) work.

use crate::budget::Epsilon;
use crate::error::LdpError;
use crate::mechanism::{NumericMechanism, OutputDistribution, PiecewiseConstant};
use rand::{Rng, RngCore};

/// The Piecewise Mechanism for numerical values in `[-1, 1]`.
///
/// ```
/// use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism};
/// use rand::SeedableRng;
///
/// let mech = PiecewiseMechanism::new(Epsilon::of(1.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report = mech.perturb(0.3, &mut rng);
/// let (lo, hi) = mech.output_range();
/// assert!(report >= lo && report <= hi);
/// // Reports are unbiased: the conditional mean equals the input.
/// assert!((mech.output_distribution(0.3).mean() - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseMechanism {
    eps: Epsilon,
    /// Output half-width `C = (e^{ε/2}+1)/(e^{ε/2}-1)`.
    c: f64,
    /// Probability of landing in the high-probability band.
    band_prob: f64,
    /// Density inside the band.
    p_in: f64,
    /// Density outside the band.
    p_out: f64,
    /// `(C−1)/band_prob` — maps a sub-band uniform onto the band length.
    band_scale: f64,
    /// `(C+1)/(1−band_prob)` — maps a tail uniform onto the complement.
    comp_scale: f64,
}

impl PiecewiseMechanism {
    /// Builds a PM instance for budget `ε`.
    pub fn new(eps: Epsilon) -> Self {
        let eh = eps.exp_half();
        let c = (eh + 1.0) / (eh - 1.0);
        let band_prob = eh / (eh + 1.0);
        // Band has length C-1, complement has length 2C-(C-1) = C+1.
        let p_in = band_prob / (c - 1.0);
        let p_out = (1.0 - band_prob) / (c + 1.0);
        let band_scale = (c - 1.0) / band_prob;
        let comp_scale = (c + 1.0) / (1.0 - band_prob);
        PiecewiseMechanism { eps, c, band_prob, p_in, p_out, band_scale, comp_scale }
    }

    /// Convenience constructor from a raw `ε`.
    pub fn with_epsilon(eps: f64) -> Result<Self, LdpError> {
        Ok(Self::new(Epsilon::new(eps)?))
    }

    /// Output half-width `C`; the perturbed domain is `[-C, C]`.
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Left end of the high-probability band for input `v`.
    #[inline]
    pub fn l(&self, v: f64) -> f64 {
        (self.c + 1.0) / 2.0 * v - (self.c - 1.0) / 2.0
    }

    /// Right end of the high-probability band for input `v`.
    #[inline]
    pub fn r(&self, v: f64) -> f64 {
        self.l(v) + self.c - 1.0
    }

    /// Closed-form per-report variance `Var[v' | v]` (Wang et al., Eq. 5):
    /// `v²/(e^{ε/2}-1) + (e^{ε/2}+3)/(3(e^{ε/2}-1)²)`.
    pub fn variance_formula(&self, v: f64) -> f64 {
        let eh = self.eps.exp_half();
        v * v / (eh - 1.0) + (eh + 3.0) / (3.0 * (eh - 1.0) * (eh - 1.0))
    }

    /// The perturbation body, generic over the RNG so monomorphic callers
    /// ([`NumericMechanism::perturb_into`]) get inlined draws.
    ///
    /// Samples by inverting the output CDF from a *single* uniform draw:
    /// `u < band_prob` lands in the band at relative position
    /// `u / band_prob` (uniform, since `u | u < p` is uniform on `[0, p)`),
    /// and the remainder maps onto the complement `[-C, l) ∪ (r, C]` —
    /// exactly the same output distribution as two-stage sampling at half
    /// the RNG cost.
    #[inline]
    fn perturb_generic<R: RngCore + ?Sized>(&self, v: f64, rng: &mut R) -> f64 {
        debug_assert!((-1.0..=1.0).contains(&v), "PM input {v} outside [-1, 1]");
        let v = v.clamp(-1.0, 1.0);
        let l = self.l(v);
        let u: f64 = rng.gen();
        if u < self.band_prob {
            // Band [l, r], length C−1; the rescaled uniform stays below the
            // band length up to one ulp, and `r ≤ C` caps the boundary case.
            l + u * self.band_scale
        } else {
            // Complement, total length C+1, left piece [−C, l) first.
            let pos = (u - self.band_prob) * self.comp_scale;
            let left_len = l + self.c;
            if pos < left_len {
                -self.c + pos
            } else {
                (l + self.c - 1.0) + (pos - left_len)
            }
        }
    }
}

impl NumericMechanism for PiecewiseMechanism {
    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn input_range(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_range(&self) -> (f64, f64) {
        (-self.c, self.c)
    }

    fn perturb(&self, v: f64, rng: &mut dyn RngCore) -> f64 {
        self.perturb_generic(v, rng)
    }

    fn perturb_into<R: RngCore>(&self, v: f64, out: &mut [f64], rng: &mut R) {
        debug_assert!((-1.0..=1.0).contains(&v), "PM input {v} outside [-1, 1]");
        // Same inverse-CDF map as `perturb_generic`, with the per-input
        // constants hoisted out of the loop and the piecewise cases written
        // as selects the compiler if-converts — the loop carries only the
        // RNG state dependency.
        let v = v.clamp(-1.0, 1.0);
        let l = self.l(v);
        let r = l + self.c - 1.0;
        let left_len = l + self.c;
        for slot in out.iter_mut() {
            let u: f64 = rng.gen();
            let band_val = l + u * self.band_scale;
            let pos = (u - self.band_prob) * self.comp_scale;
            let comp_val =
                if pos < left_len { -self.c + pos } else { r + (pos - left_len) };
            *slot = if u < self.band_prob { band_val } else { comp_val };
        }
    }

    fn output_distribution(&self, v: f64) -> OutputDistribution {
        let v = v.clamp(-1.0, 1.0);
        let (l, r) = (self.l(v), self.r(v));
        // Assemble breakpoints, dropping empty side segments (v = ±1).
        let mut bps = vec![-self.c];
        let mut dens = Vec::with_capacity(3);
        const TOL: f64 = 1e-12;
        if l > -self.c + TOL {
            bps.push(l);
            dens.push(self.p_out);
        }
        bps.push(r.min(self.c));
        dens.push(self.p_in);
        if r < self.c - TOL {
            bps.push(self.c);
            dens.push(self.p_out);
        }
        OutputDistribution::Density(PiecewiseConstant::new(bps, dens))
    }

    fn worst_case_variance(&self) -> f64 {
        self.variance_formula(1.0)
    }

    fn matrix_cache_key(&self) -> Option<(&'static str, u64)> {
        Some(("pm", self.eps.get().to_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pm(eps: f64) -> PiecewiseMechanism {
        PiecewiseMechanism::with_epsilon(eps).unwrap()
    }

    #[test]
    fn band_ends_match_paper() {
        let m = pm(2.0);
        assert!((m.l(1.0) - 1.0).abs() < 1e-12);
        assert!((m.r(1.0) - m.c()).abs() < 1e-12);
        assert!((m.l(-1.0) + m.c()).abs() < 1e-12);
        assert!((m.r(-1.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn output_density_integrates_to_one() {
        for &eps in &[0.0625, 0.5, 1.0, 2.0, 4.0] {
            let m = pm(eps);
            for &v in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
                let d = m.output_distribution(v);
                assert!(
                    (d.total_mass() - 1.0).abs() < 1e-9,
                    "mass {} for eps={eps} v={v}",
                    d.total_mass()
                );
            }
        }
    }

    #[test]
    fn output_is_unbiased() {
        for &eps in &[0.25, 1.0, 2.0] {
            let m = pm(eps);
            for &v in &[-1.0, -0.5, 0.0, 0.25, 1.0] {
                let d = m.output_distribution(v);
                assert!((d.mean() - v).abs() < 1e-9, "E[v'|{v}] = {} (eps={eps})", d.mean());
            }
        }
    }

    #[test]
    fn density_variance_matches_closed_form() {
        for &eps in &[0.25, 1.0, 2.0] {
            let m = pm(eps);
            for &v in &[-0.8, 0.0, 0.5, 1.0] {
                let analytic = m.variance_formula(v);
                let from_density = m.variance_at(v);
                assert!(
                    (analytic - from_density).abs() < 1e-8,
                    "eps={eps} v={v}: {analytic} vs {from_density}"
                );
            }
        }
    }

    #[test]
    fn density_ratio_satisfies_ldp() {
        // Density ratio between band and tail is exactly e^ε.
        for &eps in &[0.0625, 0.5, 2.0] {
            let m = pm(eps);
            let ratio = m.p_in / m.p_out;
            assert!(
                (ratio - eps.exp()).abs() / eps.exp() < 1e-9,
                "eps={eps}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn sampled_outputs_stay_in_range_and_average_to_input() {
        let m = pm(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let v = 0.4;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let out = m.perturb(v, &mut rng);
            assert!(out >= -m.c() - 1e-9 && out <= m.c() + 1e-9);
            sum += out;
        }
        let mean = sum / n as f64;
        // Standard error ≈ sqrt(Var/n); Var(ε=1) ≈ 3.6 ⇒ se ≈ 0.0042.
        assert!((mean - v).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    fn empirical_band_frequency_matches() {
        let m = pm(1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let v = -0.2;
        let (l, r) = (m.l(v), m.r(v));
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| {
                let o = m.perturb(v, &mut rng);
                o >= l && o <= r
            })
            .count();
        let freq = hits as f64 / n as f64;
        let expect = m.band_prob;
        assert!((freq - expect).abs() < 0.01, "band freq {freq}, expect {expect}");
    }

    #[test]
    fn c_shrinks_as_epsilon_grows() {
        assert!(pm(0.25).c() > pm(1.0).c());
        assert!(pm(1.0).c() > pm(4.0).c());
        // As ε → ∞, C → 1 (no inflation).
        assert!(pm(20.0).c() < 1.01);
    }

    #[test]
    fn rejects_invalid_epsilon() {
        assert!(PiecewiseMechanism::with_epsilon(0.0).is_err());
        assert!(PiecewiseMechanism::with_epsilon(f64::NAN).is_err());
    }
}
