//! Square Wave mechanism (Li et al., SIGMOD 2020), used in the paper's
//! extension experiments (Fig. 8).
//!
//! Input domain `[0, 1]`, output domain `[-b, 1+b]` with
//! `b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))`. Given input `v`, the
//! output density is `p` on the band `[v-b, v+b]` and `q` elsewhere, with
//! `p = e^ε q` and `2bp + q = 1`.
//!
//! Unlike PM, SW reports are *not* unbiased estimators of the input; SW is
//! designed for distribution reconstruction via EM (EMS), after which the
//! mean is read off the reconstructed histogram.

use crate::budget::Epsilon;
use crate::error::LdpError;
use crate::mechanism::{NumericMechanism, OutputDistribution, PiecewiseConstant};
use rand::{Rng, RngCore};

/// The Square Wave mechanism for numerical values in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    eps: Epsilon,
    /// Band half-width `b`.
    b: f64,
    /// In-band density `p`.
    p: f64,
    /// Out-of-band density `q`.
    q: f64,
}

impl SquareWave {
    /// Builds an SW instance for budget `ε`.
    pub fn new(eps: Epsilon) -> Self {
        let e = eps.exp();
        let eps_v = eps.get();
        let b = (eps_v * e - e + 1.0) / (2.0 * e * (e - 1.0 - eps_v));
        let q = 1.0 / (2.0 * b * e + 1.0);
        let p = e * q;
        SquareWave { eps, b, p, q }
    }

    /// Convenience constructor from a raw `ε`.
    pub fn with_epsilon(eps: f64) -> Result<Self, LdpError> {
        Ok(Self::new(Epsilon::new(eps)?))
    }

    /// Band half-width `b`; the output domain is `[-b, 1+b]`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// In-band density `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Out-of-band density `q`.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl NumericMechanism for SquareWave {
    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn matrix_cache_key(&self) -> Option<(&'static str, u64)> {
        Some(("sw", self.eps.get().to_bits()))
    }

    fn input_range(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn output_range(&self) -> (f64, f64) {
        (-self.b, 1.0 + self.b)
    }

    fn perturb(&self, v: f64, rng: &mut dyn RngCore) -> f64 {
        debug_assert!((0.0..=1.0).contains(&v), "SW input {v} outside [0, 1]");
        let v = v.clamp(0.0, 1.0);
        let band_prob = 2.0 * self.b * self.p;
        if rng.gen::<f64>() < band_prob {
            rng.gen_range((v - self.b)..=(v + self.b))
        } else {
            // Complement [-b, v-b) ∪ (v+b, 1+b], total length 1.
            let left_len = v; // (v-b) - (-b)
            let u = rng.gen::<f64>();
            if u < left_len {
                -self.b + u
            } else {
                v + self.b + (u - left_len)
            }
        }
    }

    fn output_distribution(&self, v: f64) -> OutputDistribution {
        let v = v.clamp(0.0, 1.0);
        let (lo, hi) = self.output_range();
        let (l, r) = (v - self.b, v + self.b);
        const TOL: f64 = 1e-12;
        let mut bps = vec![lo];
        let mut dens = Vec::with_capacity(3);
        if l > lo + TOL {
            bps.push(l);
            dens.push(self.q);
        }
        bps.push(r.min(hi));
        dens.push(self.p);
        if r < hi - TOL {
            bps.push(hi);
            dens.push(self.q);
        }
        OutputDistribution::Density(PiecewiseConstant::new(bps, dens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sw(eps: f64) -> SquareWave {
        SquareWave::with_epsilon(eps).unwrap()
    }

    #[test]
    fn density_normalizes() {
        for &eps in &[0.0625, 0.5, 1.0, 2.0] {
            let m = sw(eps);
            for &v in &[0.0, 0.3, 0.5, 1.0] {
                let d = m.output_distribution(v);
                assert!(
                    (d.total_mass() - 1.0).abs() < 1e-9,
                    "eps={eps} v={v} mass={}",
                    d.total_mass()
                );
            }
        }
    }

    #[test]
    fn p_over_q_is_exp_eps() {
        for &eps in &[0.25, 1.0, 2.0] {
            let m = sw(eps);
            assert!(((m.p() / m.q()) - eps.exp()).abs() / eps.exp() < 1e-9);
        }
    }

    #[test]
    fn band_probability_identity() {
        // 2bp + q = 1 (band mass + unit-length complement mass).
        for &eps in &[0.0625, 0.5, 2.0] {
            let m = sw(eps);
            assert!((2.0 * m.b() * m.p() + m.q() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_in_output_range() {
        let m = sw(1.0);
        let (lo, hi) = m.output_range();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..50_000 {
            let v = (i % 100) as f64 / 99.0;
            let o = m.perturb(v, &mut rng);
            assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "{o} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn empirical_band_mass_matches_analytic() {
        let m = sw(1.0);
        let v = 0.5;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| {
                let o = m.perturb(v, &mut rng);
                (o - v).abs() <= m.b()
            })
            .count();
        let freq = hits as f64 / n as f64;
        let expect = 2.0 * m.b() * m.p();
        assert!((freq - expect).abs() < 0.01, "band freq {freq} vs {expect}");
    }

    #[test]
    fn b_grows_as_epsilon_shrinks() {
        assert!(sw(0.25).b() > sw(1.0).b());
        assert!(sw(1.0).b() > sw(4.0).b());
    }

    #[test]
    fn variance_at_is_finite_everywhere() {
        let m = sw(0.5);
        for &v in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let var = m.variance_at(v);
            assert!(var.is_finite() && var > 0.0);
        }
    }
}
