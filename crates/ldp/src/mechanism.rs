//! Mechanism traits and exact output-distribution representations.
//!
//! The Expectation-Maximization Filter needs the transition probability
//! `Pr[v' ∈ B_i | v]` for every output bucket `B_i`. All mechanisms in this
//! crate have outputs that are either piecewise-constant densities (PM, SW)
//! or finite atom sets (k-RR, Duchi), so these probabilities have closed
//! forms. [`OutputDistribution`] captures both shapes and integrates them
//! exactly.

use crate::budget::Epsilon;
use rand::RngCore;

/// A piecewise-constant probability density over a closed interval.
///
/// Stored as sorted breakpoints `x_0 < x_1 < … < x_n` and densities
/// `d_0, …, d_{n-1}` where `d_j` applies on `[x_j, x_{j+1})`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseConstant {
    breakpoints: Vec<f64>,
    densities: Vec<f64>,
}

impl PiecewiseConstant {
    /// Builds a piecewise-constant density.
    ///
    /// # Panics
    /// If the breakpoints are not strictly increasing, the lengths are
    /// inconsistent, or any density is negative.
    pub fn new(breakpoints: Vec<f64>, densities: Vec<f64>) -> Self {
        assert!(
            breakpoints.len() == densities.len() + 1 && !densities.is_empty(),
            "need n+1 breakpoints for n densities"
        );
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        assert!(
            densities.iter().all(|&d| d >= 0.0 && d.is_finite()),
            "densities must be finite and non-negative"
        );
        PiecewiseConstant { breakpoints, densities }
    }

    /// Support of the density (first and last breakpoint).
    pub fn support(&self) -> (f64, f64) {
        (self.breakpoints[0], *self.breakpoints.last().expect("non-empty"))
    }

    /// Total mass `∫ f` — should be 1 for a proper density.
    pub fn total_mass(&self) -> f64 {
        self.densities
            .iter()
            .zip(self.breakpoints.windows(2))
            .map(|(&d, w)| d * (w[1] - w[0]))
            .sum()
    }

    /// Probability mass on `[lo, hi]` (intersected with the support).
    pub fn mass_between(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mut mass = 0.0;
        for (j, &d) in self.densities.iter().enumerate() {
            let (a, b) = (self.breakpoints[j], self.breakpoints[j + 1]);
            let overlap = (b.min(hi) - a.max(lo)).max(0.0);
            mass += d * overlap;
        }
        mass
    }

    /// First moment `∫ x f(x) dx`.
    pub fn mean(&self) -> f64 {
        self.densities
            .iter()
            .zip(self.breakpoints.windows(2))
            .map(|(&d, w)| d * (w[1] * w[1] - w[0] * w[0]) / 2.0)
            .sum()
    }

    /// Second moment `∫ x² f(x) dx`.
    pub fn second_moment(&self) -> f64 {
        self.densities
            .iter()
            .zip(self.breakpoints.windows(2))
            .map(|(&d, w)| d * (w[1] * w[1] * w[1] - w[0] * w[0] * w[0]) / 3.0)
            .sum()
    }

    /// Density value at `x` (0 outside the support; right-continuous).
    pub fn density_at(&self, x: f64) -> f64 {
        let (lo, hi) = self.support();
        if x < lo || x > hi {
            return 0.0;
        }
        // Last segment is closed on the right.
        match self.breakpoints.iter().rposition(|&b| b <= x) {
            Some(j) if j < self.densities.len() => self.densities[j],
            Some(_) => *self.densities.last().expect("non-empty"),
            None => 0.0,
        }
    }
}

/// The exact conditional distribution of a mechanism's output given an input.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputDistribution {
    /// Continuous output with a piecewise-constant density (PM, SW).
    Density(PiecewiseConstant),
    /// Discrete output as `(value, probability)` atoms (Duchi).
    Atoms(Vec<(f64, f64)>),
}

impl OutputDistribution {
    /// Probability that the output falls in `[lo, hi)` (atoms on `hi` are
    /// excluded except when `hi` is the global upper end — callers building
    /// bucket rows pass half-open buckets with a closed last bucket).
    pub fn mass_between(&self, lo: f64, hi: f64, closed_right: bool) -> f64 {
        match self {
            OutputDistribution::Density(p) => p.mass_between(lo, hi),
            OutputDistribution::Atoms(atoms) => atoms
                .iter()
                .filter(|(v, _)| *v >= lo && (*v < hi || (closed_right && *v == hi)))
                .map(|(_, p)| p)
                .sum(),
        }
    }

    /// Total probability mass (should be 1).
    pub fn total_mass(&self) -> f64 {
        match self {
            OutputDistribution::Density(p) => p.total_mass(),
            OutputDistribution::Atoms(atoms) => atoms.iter().map(|(_, p)| p).sum(),
        }
    }

    /// Expected output value.
    pub fn mean(&self) -> f64 {
        match self {
            OutputDistribution::Density(p) => p.mean(),
            OutputDistribution::Atoms(atoms) => atoms.iter().map(|(v, p)| v * p).sum(),
        }
    }

    /// Variance of the output value.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let m2 = match self {
            OutputDistribution::Density(p) => p.second_moment(),
            OutputDistribution::Atoms(atoms) => atoms.iter().map(|(v, p)| v * v * p).sum(),
        };
        (m2 - m * m).max(0.0)
    }
}

/// A numerical LDP mechanism over a closed input interval.
///
/// The trait is object-safe: perturbation takes `&mut dyn RngCore` so that
/// protocol layers can hold heterogeneous mechanisms behind `dyn`.
pub trait NumericMechanism {
    /// The privacy budget this instance was built with.
    fn epsilon(&self) -> Epsilon;

    /// Closed input domain `[lo, hi]`.
    fn input_range(&self) -> (f64, f64);

    /// Closed output domain `[DL, DR]` — the domain Byzantine users may
    /// inject arbitrary values into (Definition 2 of the paper).
    fn output_range(&self) -> (f64, f64);

    /// Perturbs one value. Implementations may debug-assert domain
    /// membership; callers should clamp or validate first.
    fn perturb(&self, v: f64, rng: &mut dyn RngCore) -> f64;

    /// Perturbs `v` once per slot of `out`, filling the slice.
    ///
    /// The default forwards to [`Self::perturb`] through the `dyn` RNG; hot
    /// mechanisms (PM) override it with a body that is generic over the
    /// concrete RNG, so a monomorphic caller gets fully inlined draws in
    /// the protocol's perturbation loop — the single most executed code
    /// path in the simulation. `where Self: Sized` keeps the trait
    /// object-safe; `dyn NumericMechanism` users fall back to
    /// [`Self::perturb`].
    fn perturb_into<R: RngCore>(&self, v: f64, out: &mut [f64], rng: &mut R)
    where
        Self: Sized,
    {
        let rng: &mut dyn RngCore = rng;
        for slot in out.iter_mut() {
            *slot = self.perturb(v, rng);
        }
    }

    /// Exact conditional output distribution given input `v`.
    fn output_distribution(&self, v: f64) -> OutputDistribution;

    /// Maps the raw mean of perturbed outputs to an unbiased estimate of the
    /// input mean. Identity for unbiased mechanisms (PM, Duchi).
    fn debias_mean(&self, perturbed_mean: f64) -> f64 {
        perturbed_mean
    }

    /// Per-report output variance when the input is `v` — derived exactly
    /// from [`Self::output_distribution`].
    fn variance_at(&self, v: f64) -> f64 {
        self.output_distribution(v).variance()
    }

    /// Worst-case per-report variance over the input domain. Used by the
    /// inter-group aggregation weights (Theorem 6). The default probes both
    /// domain ends, which is where unbiased mechanisms peak.
    fn worst_case_variance(&self) -> f64 {
        let (lo, hi) = self.input_range();
        self.variance_at(lo).max(self.variance_at(hi))
    }

    /// Stable identity for transform-matrix caching: a mechanism-family tag
    /// plus the bits of every parameter that shapes
    /// [`Self::output_distribution`] (for the paper's mechanisms that is ε
    /// alone). Two instances with equal keys must produce bit-identical
    /// transform matrices. `None` (the default) opts the mechanism out of
    /// caching.
    fn matrix_cache_key(&self) -> Option<(&'static str, u64)> {
        None
    }
}

/// A categorical LDP mechanism over `k` categories indexed `0..k`.
pub trait CategoricalMechanism {
    /// The privacy budget this instance was built with.
    fn epsilon(&self) -> Epsilon;

    /// Number of categories `k`.
    fn categories(&self) -> usize;

    /// Perturbs one category index.
    fn perturb(&self, v: usize, rng: &mut dyn RngCore) -> usize;

    /// `Pr[output = out | input = inp]`.
    fn transition_probability(&self, out: usize, inp: usize) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_pc() -> PiecewiseConstant {
        PiecewiseConstant::new(vec![0.0, 1.0], vec![1.0])
    }

    #[test]
    fn piecewise_total_mass() {
        let pc = PiecewiseConstant::new(vec![-1.0, 0.0, 2.0], vec![0.25, 0.375]);
        assert!((pc.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_mass_between_clips_to_support() {
        let pc = uniform_pc();
        assert!((pc.mass_between(-5.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((pc.mass_between(0.25, 0.75) - 0.5).abs() < 1e-12);
        assert_eq!(pc.mass_between(2.0, 3.0), 0.0);
        assert_eq!(pc.mass_between(0.7, 0.7), 0.0);
    }

    #[test]
    fn piecewise_moments_of_uniform() {
        let pc = uniform_pc();
        assert!((pc.mean() - 0.5).abs() < 1e-12);
        assert!((pc.second_moment() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_density_lookup() {
        let pc = PiecewiseConstant::new(vec![0.0, 1.0, 3.0], vec![0.8, 0.1]);
        assert_eq!(pc.density_at(-0.1), 0.0);
        assert_eq!(pc.density_at(0.5), 0.8);
        assert_eq!(pc.density_at(2.0), 0.1);
        assert_eq!(pc.density_at(3.0), 0.1); // closed right end
        assert_eq!(pc.density_at(3.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unsorted_breakpoints() {
        PiecewiseConstant::new(vec![0.0, 0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "n+1 breakpoints")]
    fn piecewise_rejects_mismatched_lengths() {
        PiecewiseConstant::new(vec![0.0, 1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn atoms_mass_and_moments() {
        let d = OutputDistribution::Atoms(vec![(-2.0, 0.25), (2.0, 0.75)]);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!((d.variance() - 3.0).abs() < 1e-12);
        // half-open vs closed-right bucket membership
        assert_eq!(d.mass_between(-2.0, 2.0, false), 0.25);
        assert_eq!(d.mass_between(-2.0, 2.0, true), 1.0);
    }

    #[test]
    fn variance_of_uniform_density() {
        let d = OutputDistribution::Density(uniform_pc());
        assert!((d.variance() - 1.0 / 12.0).abs() < 1e-12);
    }
}
