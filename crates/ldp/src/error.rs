//! Error type shared by the LDP mechanism constructors.

use std::fmt;

/// Errors produced when constructing or invoking an LDP mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum LdpError {
    /// The privacy budget was not a finite positive number.
    InvalidEpsilon(f64),
    /// An input value fell outside the mechanism's input domain.
    OutOfDomain {
        /// The offending value.
        value: f64,
        /// Inclusive lower bound of the domain.
        lo: f64,
        /// Inclusive upper bound of the domain.
        hi: f64,
    },
    /// A categorical mechanism was constructed with fewer than two categories.
    TooFewCategories(usize),
    /// A categorical input index was at least the category count.
    CategoryOutOfRange {
        /// The offending category index.
        index: usize,
        /// Number of categories of the mechanism.
        categories: usize,
    },
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidEpsilon(e) => {
                write!(f, "privacy budget must be finite and positive, got {e}")
            }
            LdpError::OutOfDomain { value, lo, hi } => {
                write!(f, "input {value} outside mechanism domain [{lo}, {hi}]")
            }
            LdpError::TooFewCategories(k) => {
                write!(f, "categorical mechanism needs at least 2 categories, got {k}")
            }
            LdpError::CategoryOutOfRange { index, categories } => {
                write!(f, "category index {index} out of range for {categories} categories")
            }
        }
    }
}

impl std::error::Error for LdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LdpError::InvalidEpsilon(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = LdpError::OutOfDomain { value: 2.0, lo: -1.0, hi: 1.0 };
        assert!(e.to_string().contains("[-1, 1]"));
        let e = LdpError::TooFewCategories(1);
        assert!(e.to_string().contains("at least 2"));
        let e = LdpError::CategoryOutOfRange { index: 9, categories: 5 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LdpError::InvalidEpsilon(f64::NAN));
    }
}
