//! Local differential privacy mechanisms used by the Differential
//! Aggregation Protocol (DAP) reproduction.
//!
//! This crate provides the perturbation substrate of the paper
//! *"Differential Aggregation against General Colluding Attackers"*
//! (ICDE 2023):
//!
//! * [`PiecewiseMechanism`] — the paper's default numerical mechanism
//!   (Algorithm 1, from Wang et al., ICDE 2019),
//! * [`SquareWave`] — the Square Wave mechanism (Li et al., SIGMOD 2020)
//!   used in the paper's §V-D / Fig. 8 extension,
//! * [`KRandomizedResponse`] — k-RR for categorical data (Fig. 9c, d),
//! * [`Duchi`] — Duchi et al.'s one-bit mean mechanism, included as the
//!   classical alternative numerical mechanism.
//!
//! Beyond sampling perturbed reports, every mechanism exposes its full
//! conditional *output distribution* ([`NumericMechanism::output_distribution`])
//! as either a piecewise-constant density or a finite set of atoms. The
//! estimation layer integrates these exactly to build the transform matrix
//! `M` consumed by the Expectation-Maximization Filter (EMF), so no
//! Monte-Carlo estimation of transition probabilities is ever needed.
//!
//! All mechanisms take an explicit [`rand::RngCore`] so that higher layers
//! can drive them deterministically in tests and experiments.

pub mod budget;
pub mod duchi;
pub mod error;
pub mod krr;
pub mod mechanism;
pub mod pm;
pub mod sw;

pub use budget::Epsilon;
pub use duchi::Duchi;
pub use error::LdpError;
pub use krr::KRandomizedResponse;
pub use mechanism::{
    CategoricalMechanism, NumericMechanism, OutputDistribution, PiecewiseConstant,
};
pub use pm::PiecewiseMechanism;
pub use sw::SquareWave;
