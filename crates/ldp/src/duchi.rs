//! Duchi et al.'s one-bit mechanism for mean estimation on `[-1, 1]`
//! (Duchi, Jordan, Wainwright, JASA 2018).
//!
//! The report is one of the two atoms `±t` with `t = (e^ε+1)/(e^ε−1)`;
//! `Pr[t | v] = (v(e^ε−1) + e^ε + 1) / (2(e^ε+1))`. The report is an
//! unbiased estimator of `v`. Included as the classical alternative to the
//! Piecewise Mechanism — its two-atom output domain makes the long-tail
//! attack surface very different, which the ablation benches exercise.

use crate::budget::Epsilon;
use crate::error::LdpError;
use crate::mechanism::{NumericMechanism, OutputDistribution};
use rand::{Rng, RngCore};

/// Duchi et al.'s one-bit mean mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duchi {
    eps: Epsilon,
    /// Output magnitude `t = (e^ε+1)/(e^ε−1)`.
    t: f64,
}

impl Duchi {
    /// Builds a Duchi instance for budget `ε`.
    pub fn new(eps: Epsilon) -> Self {
        let e = eps.exp();
        Duchi { eps, t: (e + 1.0) / (e - 1.0) }
    }

    /// Convenience constructor from a raw `ε`.
    pub fn with_epsilon(eps: f64) -> Result<Self, LdpError> {
        Ok(Self::new(Epsilon::new(eps)?))
    }

    /// Output magnitude `t`.
    #[inline]
    pub fn t(&self) -> f64 {
        self.t
    }

    /// `Pr[output = +t | v]`.
    #[inline]
    pub fn prob_positive(&self, v: f64) -> f64 {
        let e = self.eps.exp();
        (v * (e - 1.0) + e + 1.0) / (2.0 * (e + 1.0))
    }
}

impl NumericMechanism for Duchi {
    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn matrix_cache_key(&self) -> Option<(&'static str, u64)> {
        Some(("duchi", self.eps.get().to_bits()))
    }

    fn input_range(&self) -> (f64, f64) {
        (-1.0, 1.0)
    }

    fn output_range(&self) -> (f64, f64) {
        (-self.t, self.t)
    }

    fn perturb(&self, v: f64, rng: &mut dyn RngCore) -> f64 {
        debug_assert!((-1.0..=1.0).contains(&v), "Duchi input {v} outside [-1, 1]");
        let v = v.clamp(-1.0, 1.0);
        if rng.gen::<f64>() < self.prob_positive(v) {
            self.t
        } else {
            -self.t
        }
    }

    fn output_distribution(&self, v: f64) -> OutputDistribution {
        let v = v.clamp(-1.0, 1.0);
        let p = self.prob_positive(v);
        OutputDistribution::Atoms(vec![(-self.t, 1.0 - p), (self.t, p)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn atoms_are_unbiased() {
        let m = Duchi::with_epsilon(1.0).unwrap();
        for &v in &[-1.0, -0.5, 0.0, 0.3, 1.0] {
            let d = m.output_distribution(v);
            assert!((d.mean() - v).abs() < 1e-9, "E[out|{v}] = {}", d.mean());
        }
    }

    #[test]
    fn probabilities_are_valid_and_ldp_bounded() {
        let m = Duchi::with_epsilon(0.5).unwrap();
        let (p_hi, p_lo) = (m.prob_positive(1.0), m.prob_positive(-1.0));
        assert!(p_hi > 0.0 && p_hi < 1.0 && p_lo > 0.0 && p_lo < 1.0);
        // LDP ratio for the + outcome between extreme inputs ≤ e^ε.
        assert!(p_hi / p_lo <= 0.5f64.exp() + 1e-9);
        assert!((1.0 - p_lo) / (1.0 - p_hi) <= 0.5f64.exp() + 1e-9);
    }

    #[test]
    fn sample_mean_converges_to_input() {
        let m = Duchi::with_epsilon(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let v = -0.6;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.perturb(v, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - v).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    fn worst_case_variance_at_edges() {
        let m = Duchi::with_epsilon(1.0).unwrap();
        // Variance t² − v² is largest at v = 0, but the trait default probes
        // edges; check the analytic relation at both edges anyway.
        let var_edge = m.variance_at(1.0);
        assert!((var_edge - (m.t() * m.t() - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn output_magnitude_shrinks_with_epsilon() {
        assert!(
            Duchi::with_epsilon(0.25).unwrap().t() > Duchi::with_epsilon(2.0).unwrap().t()
        );
    }
}
