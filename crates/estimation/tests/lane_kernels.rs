//! Direct contracts on the E-step lane kernels, independent of the EM loop.
//!
//! * `axpy_lanes` must be *bit-identical* to the portable `axpy` on any
//!   lane-multiple slice — same per-element product and single add, only
//!   the loop structure differs.
//! * `dot_lanes` reorders the summation, so it is held to ≤ 1e-12 relative
//!   against a compensated (Kahan) reference instead.
//! * Zero padding must be exactly invisible: padding both operands of a dot
//!   with zeros, or an axpy's source with zeros, changes nothing.

use dap_estimation::em::kernels::{axpy, axpy_lanes, dot, dot_lanes};
use dap_estimation::LANES;
use proptest::prelude::*;
use rand::Rng;

fn kahan_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let term = x * y - c;
        let t = sum + term;
        c = (t - sum) - term;
        sum = t;
    }
    sum
}

fn random_vec(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = dap_estimation::rng::seeded(seed);
    (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect()
}

proptest! {
    /// `axpy_lanes == axpy` to the bit on lane-multiple slices.
    #[test]
    fn axpy_lanes_is_bit_identical(
        chunks in 1usize..40,
        a in -4.0f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let len = chunks * LANES;
        let v = random_vec(seed, len);
        let mut portable = random_vec(seed.wrapping_add(1), len);
        let mut lanes = portable.clone();
        axpy(&mut portable, &v, a);
        axpy_lanes(&mut lanes, &v, a);
        for (i, (p, l)) in portable.iter().zip(&lanes).enumerate() {
            prop_assert_eq!(p.to_bits(), l.to_bits(), "axpy bit mismatch at {}", i);
        }
    }

    /// Both dot kernels stay within 1e-12 (relative to the magnitude sum)
    /// of a compensated reference.
    #[test]
    fn dot_kernels_match_kahan(
        chunks in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let len = chunks * LANES;
        let a = random_vec(seed, len);
        let b = random_vec(seed.wrapping_add(2), len);
        let reference = kahan_dot(&a, &b);
        let scale = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>().max(1.0);
        prop_assert!((dot(&a, &b) - reference).abs() / scale <= 1e-12);
        prop_assert!((dot_lanes(&a, &b) - reference).abs() / scale <= 1e-12);
    }

    /// Zero padding is invisible: padding both dot operands to the next
    /// lane multiple gives the identical bit pattern, and an axpy from a
    /// zero-padded source leaves the destination tail untouched.
    #[test]
    fn zero_padding_is_invisible(
        len in 1usize..200,
        a in -4.0f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let padded_len = len.div_ceil(LANES) * LANES;
        let x = random_vec(seed, len);
        let y = random_vec(seed.wrapping_add(3), len);
        let mut xp = x.clone();
        let mut yp = y.clone();
        xp.resize(padded_len, 0.0);
        yp.resize(padded_len, 0.0);

        // Zero tail terms contribute exactly +0.0, so the padded dot stays
        // within the kernel's ordinary reordering error of the true-prefix
        // sum. (Bit-stability under *different* padded lengths is not
        // promised — extra chunks shift elements between the two
        // accumulator registers — but the analysis pads each band once, to
        // one fixed length.)
        let reference = kahan_dot(&x, &y);
        let scale = x.iter().zip(&y).map(|(p, q)| (p * q).abs()).sum::<f64>().max(1.0);
        prop_assert!((dot_lanes(&xp, &yp) - reference).abs() / scale <= 1e-12);

        // The workspace zeroes `den`/`w` tails at prepare; model that here:
        // a +0.0 tail must stay +0.0 to the bit (`+0.0 + a·0.0 = +0.0` for
        // either sign of `a`), and the live prefix must match the portable
        // kernel bit for bit.
        let mut out = random_vec(seed.wrapping_add(4), len);
        let mut out_portable = out.clone();
        out.resize(padded_len, 0.0);
        axpy_lanes(&mut out, &xp, a);
        axpy(&mut out_portable, &x, a);
        for (i, (p, l)) in out_portable.iter().zip(out.iter()).enumerate() {
            prop_assert_eq!(p.to_bits(), l.to_bits(), "prefix mismatch at {}", i);
        }
        for (i, after) in out[len..].iter().enumerate() {
            prop_assert_eq!(after.to_bits(), 0.0f64.to_bits(), "tail disturbed at {}", i);
        }
    }
}
