//! Property suite pinning the fast EM path to the dense serial reference.
//!
//! The structured E-step ([`dap_estimation::transform::StructuredColumns`])
//! reorders summations and represents ulp-level floor wobble by a single
//! constant, so its outputs are not bit-identical to the dense row-by-row
//! reference — but they must agree to ≤ 1e-12 per component at every
//! iteration count, across every mechanism, budget, and poison region the
//! protocol uses. This is the acceptance bound the perf work is held to.

use dap_estimation::em::{self, EmOptions, MStep};
use dap_estimation::{PoisonRegion, TransformMatrix};
use dap_ldp::{Duchi, NumericMechanism, PiecewiseMechanism, SquareWave};
use proptest::prelude::*;
use rand::Rng;
use rand::RngCore;

const TOL: f64 = 1e-12;

fn random_region(rng: &mut impl RngCore, mech: &dyn NumericMechanism) -> PoisonRegion {
    let (olo, ohi) = mech.output_range();
    let pivot = olo + rng.gen::<f64>() * (ohi - olo);
    match rng.gen_range(0u8..4) {
        0 => PoisonRegion::None,
        1 => PoisonRegion::RightOf(pivot),
        2 => PoisonRegion::LeftOf(pivot),
        _ => PoisonRegion::RightOf(0.0),
    }
}

fn random_counts(rng: &mut impl RngCore, d_out: usize) -> Vec<f64> {
    (0..d_out)
        .map(|_| if rng.gen::<f64>() < 0.15 { 0.0 } else { (rng.gen::<f64>() * 500.0).floor() })
        .collect()
}

/// Runs the fast and dense solvers side by side for several iteration caps
/// and asserts per-component agreement within `TOL`.
fn assert_equivalent(matrix: &TransformMatrix, counts: &[f64], mstep: MStep) {
    let share = 1.0 / (matrix.d_in() + matrix.poison_buckets().len()).max(1) as f64;
    let x0 = vec![share; matrix.d_in()];
    let mut y0 = vec![0.0; matrix.d_out()];
    for &j in matrix.poison_buckets() {
        y0[j] = share;
    }
    for iters in [1usize, 3, 12] {
        let opts = EmOptions { tol: 0.0, max_iters: iters };
        let fast = em::solve_with_init(matrix, counts, mstep, &x0, &y0, &opts);
        let dense = em::solve_dense_reference(matrix, counts, mstep, &x0, &y0, &opts);
        assert_eq!(fast.iterations, dense.iterations);
        for (i, (a, b)) in fast.normal.iter().zip(&dense.normal).enumerate() {
            assert!(
                (a - b).abs() <= TOL,
                "normal[{i}] after {iters} iters: {a} vs {b} (delta {})",
                (a - b).abs()
            );
        }
        for (i, (a, b)) in fast.poison.iter().zip(&dense.poison).enumerate() {
            assert!(
                (a - b).abs() <= TOL,
                "poison[{i}] after {iters} iters: {a} vs {b} (delta {})",
                (a - b).abs()
            );
        }
    }
}

proptest! {
    /// PM: random ε ∈ [1/16, 4], random grid sizes, random poison regions,
    /// random count histograms — structured ≡ dense to 1e-12 per iteration.
    #[test]
    fn pm_structured_matches_dense(
        eps in 0.0625f64..4.0,
        d_in in 4usize..24,
        d_out_mult in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mech = PiecewiseMechanism::with_epsilon(eps).expect("valid eps");
        let d_out = d_in * d_out_mult;
        let mut rng = dap_estimation::rng::seeded(seed);
        let region = random_region(&mut rng, &mech);
        let matrix = TransformMatrix::for_numeric(&mech, d_in, d_out, &region);
        prop_assume!(matrix.structure().is_some());
        let counts = random_counts(&mut rng, d_out);
        assert_equivalent(&matrix, &counts, MStep::Free);
        assert_equivalent(&matrix, &counts, MStep::Constrained { gamma: rng.gen::<f64>() });
    }

    /// Square-Wave, same contract.
    #[test]
    fn sw_structured_matches_dense(
        eps in 0.0625f64..4.0,
        d_in in 4usize..20,
        seed in 0u64..1_000_000,
    ) {
        let mech = SquareWave::with_epsilon(eps).expect("valid eps");
        let d_out = d_in * 4;
        let mut rng = dap_estimation::rng::seeded(seed.wrapping_add(17));
        let region = random_region(&mut rng, &mech);
        let matrix = TransformMatrix::for_numeric(&mech, d_in, d_out, &region);
        prop_assume!(matrix.structure().is_some());
        let counts = random_counts(&mut rng, d_out);
        assert_equivalent(&matrix, &counts, MStep::Free);
        assert_equivalent(&matrix, &counts, MStep::Constrained { gamma: 0.3 });
    }

    /// Odd and prime output-grid sizes: every band length is coprime to the
    /// kernel lane width, so the lane path (when the `lane-kernels` feature
    /// is on) exercises its zero-padded tails on every single column — and
    /// the portable path its scalar remainders.
    #[test]
    fn prime_d_out_structured_matches_dense(
        eps in 0.0625f64..4.0,
        d_in in 4usize..24,
        prime_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let d_out = [89usize, 97, 113, 127][prime_idx];
        let mech = PiecewiseMechanism::with_epsilon(eps).expect("valid eps");
        let mut rng = dap_estimation::rng::seeded(seed.wrapping_add(97));
        let region = random_region(&mut rng, &mech);
        let matrix = TransformMatrix::for_numeric(&mech, d_in, d_out, &region);
        prop_assume!(matrix.structure().is_some());
        let counts = random_counts(&mut rng, d_out);
        assert_equivalent(&matrix, &counts, MStep::Free);
        assert_equivalent(&matrix, &counts, MStep::Constrained { gamma: rng.gen::<f64>() });
    }

    /// Duchi's two-atom output usually falls back to the dense path; when it
    /// does analyze, it must satisfy the same bound — and either way the
    /// public solver must agree with the reference.
    #[test]
    fn duchi_solver_matches_dense(
        eps in 0.0625f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let mech = Duchi::with_epsilon(eps).expect("valid eps");
        let mut rng = dap_estimation::rng::seeded(seed.wrapping_add(41));
        let region = random_region(&mut rng, &mech);
        let matrix = TransformMatrix::for_numeric(&mech, 8, 32, &region);
        let counts = random_counts(&mut rng, 32);
        assert_equivalent(&matrix, &counts, MStep::Free);
    }
}

/// The EMS loop rides the same E-step; spot-check it against a hand-rolled
/// dense EMS at matched iteration counts.
#[test]
fn ems_structured_matches_dense_reference() {
    let mech = SquareWave::with_epsilon(0.75).expect("valid eps");
    let matrix = TransformMatrix::for_numeric(&mech, 12, 48, &PoisonRegion::None);
    assert!(matrix.structure().is_some(), "SW should analyze");
    let mut rng = dap_estimation::rng::seeded(7);
    let counts = random_counts(&mut rng, 48);

    for iters in [1usize, 5, 20] {
        let opts = EmOptions { tol: 0.0, max_iters: iters };
        let fast = dap_estimation::ems::solve(&matrix, &counts, &opts);

        // Dense EMS: one dense-reference EM sweep per iteration plus the
        // same smoothing, reproduced via the public reference solver.
        let d_in = matrix.d_in();
        let mut x = vec![1.0 / d_in as f64; d_in];
        let y0 = vec![0.0; matrix.d_out()];
        for _ in 0..iters {
            let one = EmOptions { tol: -1.0, max_iters: 1 };
            let step =
                em::solve_dense_reference(&matrix, &counts, MStep::Free, &x, &y0, &one);
            x = step.normal;
            smooth_reference(&mut x);
        }
        for (i, (a, b)) in fast.histogram.iter().zip(&x).enumerate() {
            assert!(
                (a - b).abs() <= TOL,
                "ems[{i}] after {iters} iters: {a} vs {b}"
            );
        }
    }
}

/// The EMS smoothing kernel, restated independently of the production code.
fn smooth_reference(x: &mut [f64]) {
    let n = x.len();
    let mut out = vec![0.0; n];
    out[0] = (2.0 * x[0] + x[1]) / 3.0;
    out[n - 1] = (x[n - 2] + 2.0 * x[n - 1]) / 3.0;
    for i in 1..n - 1 {
        out[i] = (x[i - 1] + 2.0 * x[i] + x[i + 1]) / 4.0;
    }
    let total: f64 = out.iter().sum();
    if total > 0.0 {
        for v in &mut out {
            *v /= total;
        }
    }
    x.copy_from_slice(&out);
}
