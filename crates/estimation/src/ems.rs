//! Expectation-Maximization with Smoothing (EMS) — Li et al., SIGMOD 2020.
//!
//! EMS reconstructs the *input distribution* from Square-Wave reports: plain
//! EM over the normal block followed, each iteration, by a binomial
//! `[1, 2, 1]/4` smoothing of the histogram. The paper uses EMS for its
//! distribution-estimation experiment (Fig. 8a) and to bootstrap `O'` for the
//! SW variant of DAP (§V-D).

use crate::em::{self, EmOptions, EmWorkspace};
use crate::transform::TransformMatrix;

/// Result of an EMS run: the reconstructed input histogram.
#[derive(Debug, Clone)]
pub struct EmsOutcome {
    /// Input-bucket frequency histogram (sums to 1).
    pub histogram: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Runs EMS on the normal block of `matrix` (its poison block, if any, is
/// ignored — pass a matrix built with [`crate::PoisonRegion::None`] for
/// clarity).
pub fn solve(matrix: &TransformMatrix, counts: &[f64], opts: &EmOptions) -> EmsOutcome {
    solve_in(matrix, counts, opts, &mut EmWorkspace::new())
}

/// [`solve`] with caller-provided scratch buffers.
///
/// Each iteration is the core solver's E-step (structured fast path when
/// the matrix analyzes) with every poison component held at zero, followed
/// by the normal-block normalization and the binomial smoothing.
pub fn solve_in(
    matrix: &TransformMatrix,
    counts: &[f64],
    opts: &EmOptions,
    ws: &mut EmWorkspace,
) -> EmsOutcome {
    let d_in = matrix.d_in();
    assert_eq!(counts.len(), matrix.d_out(), "counts length must equal d'");

    ws.prepare_for(matrix);
    ws.x.iter_mut().for_each(|v| *v = 1.0 / d_in as f64);
    let mut prev_ll = f64::NEG_INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        // With y ≡ 0 the poison responsibilities vanish, so this is exactly
        // the normal-block E-step.
        let (ll, _py_total) = em::e_step(matrix, counts, ws);

        let total: f64 = ws.px.iter().sum();
        if total > 0.0 {
            for (xk, pxk) in ws.x.iter_mut().zip(ws.px.iter()) {
                *xk = pxk / total;
            }
        }
        smooth_in_place(&mut ws.x, &mut ws.smooth);

        if (ll - prev_ll).abs() < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    EmsOutcome { histogram: ws.x.clone(), iterations, converged }
}

/// Binomial `[1, 2, 1]/4` kernel with reflecting ends; preserves total mass.
/// `scratch` is a reusable buffer so the per-iteration smoothing allocates
/// nothing.
fn smooth_in_place(x: &mut [f64], scratch: &mut Vec<f64>) {
    let n = x.len();
    if n < 3 {
        return;
    }
    scratch.clear();
    scratch.resize(n, 0.0);
    let out = &mut scratch[..];
    out[0] = (2.0 * x[0] + x[1]) / 3.0;
    out[n - 1] = (x[n - 2] + 2.0 * x[n - 1]) / 3.0;
    for i in 1..n - 1 {
        out[i] = (x[i - 1] + 2.0 * x[i] + x[i + 1]) / 4.0;
    }
    // Renormalize: reflecting ends keep the sum within O(1e-16) of the input,
    // but exactness matters for downstream γ̂ arithmetic.
    let total: f64 = out.iter().sum();
    if total > 0.0 {
        for v in out.iter_mut() {
            *v /= total;
        }
    }
    x.copy_from_slice(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::PoisonRegion;
    use dap_ldp::{NumericMechanism, SquareWave};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn smoothing_preserves_mass() {
        let mut x = vec![0.1, 0.5, 0.2, 0.15, 0.05];
        smooth_in_place(&mut x, &mut Vec::new());
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The spike at index 1 is flattened toward its neighbours.
        assert!(x[1] < 0.5);
        assert!(x[0] > 0.1);
    }

    #[test]
    fn smoothing_is_noop_for_tiny_vectors() {
        let mut x = vec![0.4, 0.6];
        smooth_in_place(&mut x, &mut Vec::new());
        assert_eq!(x, vec![0.4, 0.6]);
    }

    #[test]
    fn recovers_a_skewed_distribution_from_sw_reports() {
        let mech = SquareWave::with_epsilon(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        // True distribution: 80% of users at 0.2, 20% at 0.8.
        let n = 60_000;
        let values: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 0 { 0.8 } else { 0.2 })
            .collect();
        let reports: Vec<f64> = values.iter().map(|&v| mech.perturb(v, &mut rng)).collect();

        let d_in = 10;
        let d_out = 64;
        let matrix = TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::None);
        let (olo, ohi) = mech.output_range();
        let out_grid = crate::grid::Grid::new(olo, ohi, d_out);
        let counts = out_grid.counts(&reports);

        let outcome = solve(&matrix, &counts, &EmOptions { tol: 1e-6, max_iters: 500 });
        let h = &outcome.histogram;
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Smoothing spreads each mode over neighbouring buckets; check the
        // windows around 0.2 (buckets 1-3) and 0.8 (buckets 7-9).
        let low: f64 = h[1..=3].iter().sum();
        let high: f64 = h[7..=9].iter().sum();
        assert!(low > 0.4, "low mode mass {low} ({h:?})");
        assert!(high > 0.08, "high mode mass {high}");
        // The reconstructed mean is close to the true mean 0.32.
        let mean: f64 = h
            .iter()
            .zip(matrix.input_centers())
            .map(|(p, c)| p * c)
            .sum();
        assert!((mean - 0.32).abs() < 0.05, "reconstructed mean {mean}");
    }
}
