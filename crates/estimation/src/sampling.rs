//! Distribution samplers built on plain `rand`, generic over the RNG so
//! monomorphic callers (the simulation hot paths) get inlined draws.
//!
//! The approved offline dependency set lacks `rand_distr`, so the small set
//! of distributions the paper needs — normal (Box–Muller), gamma
//! (Marsaglia–Tsang), and beta (ratio of gammas) — is implemented here and
//! shared by the dataset generators and the poison-value distributions.

use rand::{Rng, RngCore};

/// Standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
///
/// # Panics
/// If `sigma` is negative or not finite.
pub fn normal<R: RngCore + ?Sized>(mu: f64, sigma: f64, rng: &mut R) -> f64 {
    assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
    mu + sigma * standard_normal(rng)
}

/// Gamma draw with the given shape and scale (Marsaglia–Tsang for
/// `shape ≥ 1`, boosted by the `U^{1/shape}` trick below 1).
///
/// # Panics
/// If `shape` or `scale` is not finite and positive.
pub fn gamma<R: RngCore + ?Sized>(shape: f64, scale: f64, rng: &mut R) -> f64 {
    assert!(shape.is_finite() && shape > 0.0, "invalid gamma shape {shape}");
    assert!(scale.is_finite() && scale > 0.0, "invalid gamma scale {scale}");
    if shape < 1.0 {
        // Johnk boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return gamma(shape + 1.0, scale, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        // Squeeze then full acceptance check.
        if u < 1.0 - 0.0331 * x * x * x * x
            || (u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()))
        {
            return d * v3 * scale;
        }
    }
}

/// Beta(α, β) draw on `[0, 1]` as `G_α / (G_α + G_β)`.
///
/// # Panics
/// If either parameter is not finite and positive.
pub fn beta<R: RngCore + ?Sized>(alpha: f64, beta_p: f64, rng: &mut R) -> f64 {
    let ga = gamma(alpha, 1.0, rng);
    let gb = gamma(beta_p, 1.0, rng);
    if ga + gb == 0.0 {
        return 0.5;
    }
    ga / (ga + gb)
}

/// Truncated-normal draw on `[lo, hi]` by rejection with a clamp fallback
/// after 64 tries (only reachable when the window is many σ from μ).
///
/// # Panics
/// If `lo >= hi` or `sigma` is invalid.
pub fn truncated_normal<R: RngCore + ?Sized>(
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> f64 {
    assert!(lo < hi, "empty truncation window [{lo}, {hi}]");
    for _ in 0..64 {
        let x = normal(mu, sigma, rng);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(mu, sigma, rng).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::stats::{mean, variance};

    #[test]
    fn normal_moments() {
        let mut rng = seeded(1);
        let xs: Vec<f64> = (0..100_000).map(|_| normal(2.0, 3.0, &mut rng)).collect();
        assert!((mean(&xs) - 2.0).abs() < 0.05, "mean {}", mean(&xs));
        assert!((variance(&xs) - 9.0).abs() < 0.3, "var {}", variance(&xs));
    }

    #[test]
    fn gamma_moments() {
        let mut rng = seeded(2);
        // Gamma(k=4, θ=0.5): mean 2, var 1.
        let xs: Vec<f64> = (0..100_000).map(|_| gamma(4.0, 0.5, &mut rng)).collect();
        assert!((mean(&xs) - 2.0).abs() < 0.05);
        assert!((variance(&xs) - 1.0).abs() < 0.1);
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_small_shape() {
        let mut rng = seeded(3);
        // Gamma(0.5, 1): mean 0.5.
        let xs: Vec<f64> = (0..100_000).map(|_| gamma(0.5, 1.0, &mut rng)).collect();
        assert!((mean(&xs) - 0.5).abs() < 0.02);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn beta_moments_match() {
        let mut rng = seeded(4);
        // Beta(2,5): mean 2/7 ≈ 0.2857, var = 10/(49·8) ≈ 0.0255.
        let xs: Vec<f64> = (0..100_000).map(|_| beta(2.0, 5.0, &mut rng)).collect();
        assert!((mean(&xs) - 2.0 / 7.0).abs() < 0.01);
        assert!((variance(&xs) - 0.0255).abs() < 0.005);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_skews_the_right_way() {
        let mut rng = seeded(5);
        let left: Vec<f64> = (0..20_000).map(|_| beta(1.0, 6.0, &mut rng)).collect();
        let right: Vec<f64> = (0..20_000).map(|_| beta(6.0, 1.0, &mut rng)).collect();
        assert!(mean(&left) < 0.2);
        assert!(mean(&right) > 0.8);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = seeded(6);
        for _ in 0..10_000 {
            let x = truncated_normal(0.0, 1.0, 0.5, 1.5, &mut rng);
            assert!((0.5..=1.5).contains(&x));
        }
    }
}
