//! Estimation substrate for the DAP reproduction.
//!
//! This crate hosts everything the Expectation-Maximization Filter and the
//! protocol layer need that is *not* mechanism- or protocol-specific:
//!
//! * [`grid`] — uniform bucketization of value domains and histogram counts,
//! * [`transform`] — exact transform matrices `M` mapping input buckets to
//!   output buckets through an LDP mechanism (Fig. 2 of the paper),
//! * [`em`] — the generic EM solver that EMF / EMF\* / CEMF\* instantiate
//!   with different M-step normalizations,
//! * [`ems`] — EM with smoothing (Li et al., SIGMOD 2020) for Square-Wave
//!   distribution estimation,
//! * [`stats`] — means, variances, MSE, Wasserstein-1 distance,
//! * [`rng`] — deterministic RNG plumbing for reproducible experiments.

pub mod cache;
pub mod em;
pub mod ems;
pub mod grid;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod transform;

pub use cache::{cached_for_numeric, MatrixCache};
pub use em::{EmOptions, EmOutcome, EmWorkspace, MStep};
pub use grid::Grid;
pub use transform::{PoisonRegion, StructuredColumns, TransformMatrix, LANES};
