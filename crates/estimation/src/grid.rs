//! Uniform bucketization of closed value domains.
//!
//! The paper discretizes the original domain `[-1, 1]` into `d` buckets and
//! the perturbed domain `[-C, C]` into `d'` buckets, with
//! `d' = ⌊√N⌋` and `d = ⌊d'(e^{ε/2}−1)/(e^{ε/2}+1)⌋` (§VI-A). [`Grid`] is the
//! shared representation for both.

/// A uniform grid of `n` buckets over the closed interval `[lo, hi]`.
///
/// Buckets are half-open `[edge_i, edge_{i+1})` except the last, which is
/// closed so the full domain is covered.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    lo: f64,
    hi: f64,
    n: usize,
    width: f64,
    /// `1/width`, so the hot `bucket_of` multiplies instead of divides.
    inv_width: f64,
}

impl Grid {
    /// Builds a grid of `n ≥ 1` buckets over `[lo, hi]`, `lo < hi`.
    ///
    /// # Panics
    /// If the interval is empty/invalid or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid interval [{lo}, {hi}]");
        assert!(n >= 1, "grid needs at least one bucket");
        let width = (hi - lo) / n as f64;
        Grid { lo, hi, n, width, inv_width: 1.0 / width }
    }

    /// Number of buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — a grid has at least one bucket.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Domain lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Domain upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bucket width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Bucket index containing `v`; values outside the domain clamp to the
    /// nearest end bucket (perturbed values can stray by floating error).
    #[inline]
    pub fn bucket_of(&self, v: f64) -> usize {
        if v <= self.lo {
            return 0;
        }
        if v >= self.hi {
            return self.n - 1;
        }
        let idx = ((v - self.lo) * self.inv_width) as usize;
        idx.min(self.n - 1)
    }

    /// `[lower, upper)` edges of bucket `i` (upper edge of the last bucket
    /// equals the domain upper bound and is treated as closed).
    #[inline]
    pub fn edges(&self, i: usize) -> (f64, f64) {
        debug_assert!(i < self.n);
        let a = self.lo + self.width * i as f64;
        let b = if i + 1 == self.n { self.hi } else { self.lo + self.width * (i + 1) as f64 };
        (a, b)
    }

    /// Center (the paper's "median value ν_j") of bucket `i`.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        let (a, b) = self.edges(i);
        (a + b) / 2.0
    }

    /// Per-bucket counts of a value slice.
    pub fn counts(&self, values: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; self.n];
        for &v in values {
            c[self.bucket_of(v)] += 1.0;
        }
        c
    }

    /// Per-bucket relative frequencies of a value slice (sums to 1 for
    /// non-empty input).
    pub fn frequencies(&self, values: &[f64]) -> Vec<f64> {
        let mut f = self.counts(values);
        let total: f64 = f.iter().sum();
        if total > 0.0 {
            for x in &mut f {
                *x /= total;
            }
        }
        f
    }

    /// The paper's bucket-count rule: `d' = ⌊√N⌋` output buckets (clamped to
    /// ≥ 2 and made even so the domain splits cleanly at the midpoint).
    pub fn output_bucket_count(n_values: usize) -> usize {
        let d = (n_values as f64).sqrt().floor() as usize;
        let d = d.max(2);
        if d.is_multiple_of(2) {
            d
        } else {
            d - 1
        }
    }

    /// The paper's input bucket-count rule
    /// `d = ⌊d'(e^{ε/2}−1)/(e^{ε/2}+1)⌋`, clamped to ≥ 2.
    pub fn input_bucket_count(d_out: usize, eps: f64) -> usize {
        let eh = (eps / 2.0).exp();
        let d = (d_out as f64 * (eh - 1.0) / (eh + 1.0)).floor() as usize;
        d.max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_lookup_covers_domain() {
        let g = Grid::new(-1.0, 1.0, 4);
        assert_eq!(g.bucket_of(-1.0), 0);
        assert_eq!(g.bucket_of(-0.6), 0);
        assert_eq!(g.bucket_of(-0.5), 1);
        assert_eq!(g.bucket_of(0.0), 2);
        assert_eq!(g.bucket_of(0.999), 3);
        assert_eq!(g.bucket_of(1.0), 3);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let g = Grid::new(0.0, 1.0, 10);
        assert_eq!(g.bucket_of(-5.0), 0);
        assert_eq!(g.bucket_of(5.0), 9);
    }

    #[test]
    fn edges_and_centers_are_consistent() {
        let g = Grid::new(-2.0, 2.0, 8);
        for i in 0..8 {
            let (a, b) = g.edges(i);
            assert!(a < b);
            let c = g.center(i);
            assert!(a < c && c < b);
            assert_eq!(g.bucket_of(c), i);
        }
        assert_eq!(g.edges(0).0, -2.0);
        assert_eq!(g.edges(7).1, 2.0);
    }

    #[test]
    fn counts_partition_all_values() {
        let g = Grid::new(0.0, 1.0, 5);
        let values: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let counts = g.counts(&values);
        assert_eq!(counts.iter().sum::<f64>() as usize, 1000);
        // Uniform data spreads evenly.
        for &c in &counts {
            assert!((c - 200.0).abs() <= 1.0, "{counts:?}");
        }
    }

    #[test]
    fn frequencies_sum_to_one() {
        let g = Grid::new(-1.0, 1.0, 7);
        let values = [-0.9, -0.1, 0.0, 0.5, 0.5, 1.0];
        let f = g.frequencies(&values);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_of_empty_input_are_zero() {
        let g = Grid::new(-1.0, 1.0, 3);
        assert_eq!(g.frequencies(&[]), vec![0.0; 3]);
    }

    #[test]
    fn paper_bucket_count_rules() {
        assert_eq!(Grid::output_bucket_count(1_000_000), 1000);
        assert_eq!(Grid::output_bucket_count(10_000), 100);
        // √50000 ≈ 223.6 → 223 → even → 222.
        assert_eq!(Grid::output_bucket_count(50_000), 222);
        assert_eq!(Grid::output_bucket_count(1), 2);
        // ε = 2: (e−1)/(e+1) ≈ 0.462.
        assert_eq!(Grid::input_bucket_count(1000, 2.0), 462);
        // ε = 1/16: (e^{1/32}−1)/(e^{1/32}+1) ≈ 0.0156 → 15 buckets.
        assert_eq!(Grid::input_bucket_count(1000, 1.0 / 16.0), 15);
        // Tiny products clamp to 2.
        assert_eq!(Grid::input_bucket_count(10, 1.0 / 16.0), 2);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_empty_interval() {
        Grid::new(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn rejects_zero_buckets() {
        Grid::new(0.0, 1.0, 0);
    }
}
