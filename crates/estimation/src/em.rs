//! Generic EM solver over a block transform matrix.
//!
//! This is the computational core shared by EMF (Algorithm 2), EMF\*
//! (Algorithm 4) and CEMF\* (Theorem 5): they differ only in the M-step
//! normalization and in the initialization of the poison components, both of
//! which are parameters here.
//!
//! Latent state is `(x̂, ŷ)` — the frequency histogram of normal users over
//! `d` input buckets and of poison values over the poison-side output
//! buckets.
//!
//! # Fast path
//!
//! When the matrix carries an analyzed column structure
//! ([`TransformMatrix::structure`]), one E/M iteration costs `O(d' + nnz)`
//! instead of `O(d'·d)`: the per-column constant floors are hoisted into a
//! single base term and only the bands are touched, via contiguous
//! AXPY/dot kernels the compiler vectorizes. The historical row-by-row
//! implementation is kept alive as [`solve_dense_reference`]; the structured
//! path agrees with it to ≤ 1e-12 per iteration (see the
//! `structured_equivalence` integration suite).
//!
//! Scratch buffers live in an [`EmWorkspace`] so repeated solves (one per
//! group per trial in the protocol) allocate nothing but their outcome.
//!
//! With the `lane-kernels` feature the band sweeps run over the analysis's
//! [`StructuredColumns::band_padded`] storage through the [`kernels`] lane
//! loops instead — same terms, different (but fixed) summation order, so
//! the feature changes low bits and is off by default to keep default
//! builds bit-identical.

use crate::transform::{StructuredColumns, TransformMatrix};
#[cfg(feature = "lane-kernels")]
use crate::transform::LANES;
use kernels::dot;
#[cfg(not(feature = "lane-kernels"))]
use kernels::axpy;

/// Stopping rule for the EM loop.
///
/// The paper stops when `|l(F)_t − l(F)_{t+1}| < τ` with `τ = 0.01·e^ε`
/// (§VI-A); the log-likelihood here is the data-dependent part
/// `Σ_i c_i ln(den_i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Absolute tolerance on the log-likelihood improvement.
    pub tol: f64,
    /// Hard iteration cap (EM on concave likelihoods converges, but we never
    /// spin unbounded on degenerate inputs).
    pub max_iters: usize,
}

impl EmOptions {
    /// The paper's stopping rule `τ = 0.01·e^ε` with a 500-iteration cap.
    pub fn paper_default(eps: f64) -> Self {
        EmOptions { tol: 0.01 * eps.exp(), max_iters: 500 }
    }
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions { tol: 1e-4, max_iters: 500 }
    }
}

/// M-step normalization variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MStep {
    /// Plain EMF (Algorithm 2): normalize `(x̂, ŷ)` jointly to sum 1.
    Free,
    /// EMF\* / CEMF\* (Algorithm 4, Theorem 4): `Σx̂ = 1−γ̂`, `Σŷ = γ̂`.
    Constrained {
        /// Byzantine proportion estimate from a prior EMF pass.
        gamma: f64,
    },
}

/// Result of an EM run.
#[derive(Debug, Clone)]
pub struct EmOutcome {
    /// Normal-user frequency histogram `x̂` over the `d` input buckets.
    pub normal: Vec<f64>,
    /// Poison frequency histogram `ŷ`, full output length `d'` with zeros at
    /// non-poison buckets.
    pub poison: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final (data-dependent part of the) log-likelihood.
    pub log_likelihood: f64,
}

impl EmOutcome {
    /// Total poison mass `Σ ŷ_j` — the Byzantine proportion estimate `γ̂`
    /// (Eq. 9).
    pub fn poison_mass(&self) -> f64 {
        self.poison.iter().sum()
    }
}

/// Reusable scratch buffers for [`solve_in`] / [`solve_with_init_in`].
///
/// One workspace serves any problem size — buffers grow on demand and are
/// reused across solves, so a trial loop running hundreds of EM fits
/// allocates only its outcomes.
#[derive(Debug, Default)]
pub struct EmWorkspace {
    pub(crate) x: Vec<f64>,
    pub(crate) y: Vec<f64>,
    pub(crate) px: Vec<f64>,
    pub(crate) py: Vec<f64>,
    den: Vec<f64>,
    w: Vec<f64>,
    /// Per-column lane partials for the blocked `px` gather
    /// (`d_in × LANES`, reduced pairwise after the sweep).
    #[cfg(feature = "lane-kernels")]
    px_lanes: Vec<f64>,
    /// Smoothing scratch for EMS (see [`crate::ems`]).
    pub(crate) smooth: Vec<f64>,
}

impl EmWorkspace {
    /// An empty workspace; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffers with `den`/`w` over-allocated to `d_pad`
    /// rows (≥ `d_out`) so padded lane sweeps stay in bounds; the extra
    /// tail is zeroed here and never written, so gathered tail products
    /// are exactly `0.0`.
    pub(crate) fn prepare_padded(&mut self, d_in: usize, d_out: usize, d_pad: usize) {
        debug_assert!(d_pad >= d_out);
        resize_fill(&mut self.x, d_in);
        resize_fill(&mut self.y, d_out);
        resize_fill(&mut self.px, d_in);
        resize_fill(&mut self.py, d_out);
        resize_fill(&mut self.den, d_pad);
        resize_fill(&mut self.w, d_pad);
        #[cfg(feature = "lane-kernels")]
        resize_fill(&mut self.px_lanes, d_in * LANES);
    }

    /// Prepares for a solve that E-steps through `matrix`'s own analyzed
    /// structure (the EMS loop) — padding follows the matrix.
    pub(crate) fn prepare_for(&mut self, matrix: &TransformMatrix) {
        let d_out = matrix.d_out();
        #[cfg(feature = "lane-kernels")]
        let d_pad = matrix.structure().map_or(d_out, |s| s.blocked_rows());
        #[cfg(not(feature = "lane-kernels"))]
        let d_pad = d_out;
        self.prepare_padded(matrix.d_in(), d_out, d_pad);
    }
}

fn resize_fill(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// Floor applied to mixture densities before taking logarithms, so empty
/// buckets cannot produce `-inf`/NaN likelihoods.
pub(crate) const DENSITY_FLOOR: f64 = 1e-300;

/// Runs EM with uniform initialization over all latent components.
pub fn solve(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    opts: &EmOptions,
) -> EmOutcome {
    solve_in(matrix, counts, mstep, opts, &mut EmWorkspace::new())
}

/// [`solve`] with caller-provided scratch buffers.
pub fn solve_in(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    opts: &EmOptions,
    ws: &mut EmWorkspace,
) -> EmOutcome {
    let share = 1.0 / (matrix.d_in() + matrix.poison_buckets().len()).max(1) as f64;
    let x0 = vec![share; matrix.d_in()];
    let mut y0 = vec![0.0; matrix.d_out()];
    for &j in matrix.poison_buckets() {
        y0[j] = share;
    }
    solve_with_init_in(matrix, counts, mstep, &x0, &y0, opts, ws)
}

/// Runs EM from an explicit initialization.
///
/// CEMF\* uses this to suppress buckets: a poison component initialized to
/// exactly `0` stays `0` for the whole run (its E-step responsibility is
/// always zero), which is precisely the paper's "suppression".
///
/// # Panics
/// If `counts.len() != d'`, or the initial vectors have wrong lengths or
/// negative entries.
pub fn solve_with_init(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    x_init: &[f64],
    y_init: &[f64],
    opts: &EmOptions,
) -> EmOutcome {
    solve_with_init_in(matrix, counts, mstep, x_init, y_init, opts, &mut EmWorkspace::new())
}

/// [`solve_with_init`] with caller-provided scratch buffers.
pub fn solve_with_init_in(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    x_init: &[f64],
    y_init: &[f64],
    opts: &EmOptions,
    ws: &mut EmWorkspace,
) -> EmOutcome {
    run_em(matrix, counts, mstep, x_init, y_init, opts, ws, matrix.structure())
}

/// The historical dense row-by-row solver, kept as the reference the
/// structured fast path is validated against (it never consults the
/// matrix's analyzed structure).
pub fn solve_dense_reference(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    x_init: &[f64],
    y_init: &[f64],
    opts: &EmOptions,
) -> EmOutcome {
    run_em(matrix, counts, mstep, x_init, y_init, opts, &mut EmWorkspace::new(), None)
}

#[allow(clippy::too_many_arguments)]
fn run_em(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    x_init: &[f64],
    y_init: &[f64],
    opts: &EmOptions,
    ws: &mut EmWorkspace,
    structure: Option<&StructuredColumns>,
) -> EmOutcome {
    let d_in = matrix.d_in();
    let d_out = matrix.d_out();
    assert_eq!(counts.len(), d_out, "counts length must equal d'");
    assert_eq!(x_init.len(), d_in, "x init length must equal d");
    assert_eq!(y_init.len(), d_out, "y init length must equal d'");
    assert!(
        x_init.iter().chain(y_init.iter()).all(|&v| v >= 0.0 && v.is_finite()),
        "initial histograms must be non-negative"
    );

    #[cfg(feature = "lane-kernels")]
    let d_pad = structure.map_or(d_out, |s| s.blocked_rows());
    #[cfg(not(feature = "lane-kernels"))]
    let d_pad = d_out;
    ws.prepare_padded(d_in, d_out, d_pad);
    ws.x.copy_from_slice(x_init);
    ws.y.copy_from_slice(y_init);
    let mut prev_ll = f64::NEG_INFINITY;
    let mut ll = prev_ll;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;

        let py_total;
        (ll, py_total) = match structure {
            Some(s) => e_step_structured(s, counts, ws),
            None => e_step_dense(matrix, counts, ws),
        };

        // M-step. Normalizations multiply by a precomputed reciprocal
        // scale — one division per iteration instead of one per component.
        match mstep {
            MStep::Free => {
                let total: f64 = ws.px.iter().sum::<f64>() + py_total;
                if total > 0.0 {
                    let inv = 1.0 / total;
                    for (xk, pxk) in ws.x.iter_mut().zip(ws.px.iter()) {
                        *xk = pxk * inv;
                    }
                    for (yj, pyj) in ws.y.iter_mut().zip(ws.py.iter()) {
                        *yj = pyj * inv;
                    }
                }
            }
            MStep::Constrained { gamma } => {
                let gamma = gamma.clamp(0.0, 1.0);
                let sx: f64 = ws.px.iter().sum();
                let sy: f64 = py_total;
                if sx > 0.0 {
                    let scale = (1.0 - gamma) / sx;
                    for (xk, pxk) in ws.x.iter_mut().zip(ws.px.iter()) {
                        *xk = pxk * scale;
                    }
                }
                if sy > 0.0 {
                    let scale = gamma / sy;
                    for (yj, pyj) in ws.y.iter_mut().zip(ws.py.iter()) {
                        *yj = pyj * scale;
                    }
                } else {
                    // No feasible poison mass (all suppressed or γ=0): put
                    // everything on the normal block so the output remains a
                    // distribution.
                    if sx > 0.0 {
                        let scale = 1.0 / sx;
                        for (xk, pxk) in ws.x.iter_mut().zip(ws.px.iter()) {
                            *xk = pxk * scale;
                        }
                    }
                    ws.y.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }

        if (ll - prev_ll).abs() < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    EmOutcome {
        normal: ws.x.clone(),
        poison: ws.y.clone(),
        iterations,
        converged,
        log_likelihood: ll,
    }
}

/// One E-step (structured when the matrix analyzes, dense otherwise) over
/// the workspace's current `(x, y)`, filling `px`/`py`. Returns
/// `(log-likelihood, Σ py)`. Shared with the EMS loop.
pub(crate) fn e_step(
    matrix: &TransformMatrix,
    counts: &[f64],
    ws: &mut EmWorkspace,
) -> (f64, f64) {
    match matrix.structure() {
        Some(s) => e_step_structured(s, counts, ws),
        None => e_step_dense(matrix, counts, ws),
    }
}

/// Dense E-step: `den_i = Σ_k M[i][k]·x_k + y_i`, responsibilities
/// accumulated row by row. Returns `(log-likelihood, Σ py)`.
fn e_step_dense(matrix: &TransformMatrix, counts: &[f64], ws: &mut EmWorkspace) -> (f64, f64) {
    ws.px.iter_mut().for_each(|v| *v = 0.0);
    ws.py.iter_mut().for_each(|v| *v = 0.0);
    let mut ll = 0.0;
    let mut py_total = 0.0;
    #[allow(clippy::needless_range_loop)] // indexes five arrays in lockstep
    for i in 0..matrix.d_out() {
        let row = matrix.normal_row(i);
        let mut den: f64 = row.iter().zip(ws.x.iter()).map(|(m, xv)| m * xv).sum();
        den += ws.y[i];
        let den = den.max(DENSITY_FLOOR);
        let c = counts[i];
        if c > 0.0 {
            ll += c * fast_ln(den);
            let w = c / den;
            for (pxk, (m, xv)) in ws.px.iter_mut().zip(row.iter().zip(ws.x.iter())) {
                *pxk += m * xv * w;
            }
            let pyi = ws.y[i] * w;
            ws.py[i] = pyi;
            py_total += pyi;
        }
    }
    (ll, py_total)
}

/// Structured E-step: the constant floors contribute
/// `base = Σ_k floor_k·x_k` to *every* row, so
///
/// ```text
/// den_i = base + Σ_{k: band_k ∋ i} Δ_k[i]·x_k + y_i
/// px_k  = x_k·(floor_k·Σ_i w_i + Σ_{i ∈ band_k} Δ_k[i]·w_i),  w_i = c_i/den_i
/// ```
///
/// Both band sweeps are contiguous slice kernels (`axpy` scatter, `dot`
/// gather), which is what makes this path vectorize.
fn e_step_structured(
    s: &StructuredColumns,
    counts: &[f64],
    ws: &mut EmWorkspace,
) -> (f64, f64) {
    let base = dot(s.floors(), &ws.x);
    #[cfg(feature = "lane-kernels")]
    den_pass_blocked(s, &ws.x, base, &mut ws.den);
    #[cfg(not(feature = "lane-kernels"))]
    {
        ws.den.iter_mut().for_each(|v| *v = base);
        for (k, &xv) in ws.x.iter().enumerate() {
            let (start, deltas) = s.band(k);
            axpy(&mut ws.den[start..start + deltas.len()], deltas, xv);
        }
    }

    let (ll, w_total, py_total) = likelihood_pass(counts, &ws.den, &ws.y, &mut ws.w, &mut ws.py);

    #[cfg(feature = "lane-kernels")]
    {
        px_pass_blocked(s, &ws.w, &mut ws.px_lanes);
        for (k, pxk) in ws.px.iter_mut().enumerate() {
            let a = &ws.px_lanes[k * LANES..(k + 1) * LANES];
            let band = ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]));
            *pxk = ws.x[k] * (s.floors()[k] * w_total + band);
        }
    }
    #[cfg(not(feature = "lane-kernels"))]
    for (k, pxk) in ws.px.iter_mut().enumerate() {
        let (start, deltas) = s.band(k);
        let band = dot(deltas, &ws.w[start..start + deltas.len()]);
        *pxk = ws.x[k] * (s.floors()[k] * w_total + band);
    }
    (ll, py_total)
}

/// Blocked `den` sweep: `den_i = base + Σ_k Δ_k[i]·x_k`, walked one
/// [`LANES`]-tall row block at a time. Each block keeps **two** lane-wide
/// accumulators fed by alternating entries, so consecutive fused
/// multiply-adds land on independent registers instead of serializing on
/// one accumulator's latency; every `den` lane is written exactly once
/// (sequential stores, no read-modify-write of overlapping bands).
#[cfg(feature = "lane-kernels")]
fn den_pass_blocked(s: &StructuredColumns, x: &[f64], base: f64, den: &mut [f64]) {
    let lane = |vals: &[f64], e: usize| -> [f64; LANES] {
        vals[e * LANES..(e + 1) * LANES].try_into().expect("lane slice")
    };
    for b in 0..s.n_blocks() {
        let (cols, vals) = s.block(b);
        let mut acc0 = [0.0f64; LANES];
        let mut acc1 = [0.0f64; LANES];
        let mut e = 0;
        while e + 2 <= cols.len() {
            let xv0 = x[cols[e] as usize];
            let v0 = lane(vals, e);
            let xv1 = x[cols[e + 1] as usize];
            let v1 = lane(vals, e + 1);
            for j in 0..LANES {
                acc0[j] += xv0 * v0[j];
                acc1[j] += xv1 * v1[j];
            }
            e += 2;
        }
        if e < cols.len() {
            let xv = x[cols[e] as usize];
            let v = lane(vals, e);
            for j in 0..LANES {
                acc0[j] += xv * v[j];
            }
        }
        let out: &mut [f64; LANES] =
            (&mut den[b * LANES..(b + 1) * LANES]).try_into().expect("lane block");
        for j in 0..LANES {
            out[j] = base + (acc0[j] + acc1[j]);
        }
    }
}

/// Blocked `px` gather: accumulates `Σ_i Δ_k[i]·w_i` as one lane-wide
/// partial per column (`px_lanes[k·LANES..]`), adding a full lane of
/// products per entry. Block order is ascending, so each column's partial
/// sums its blocks in a fixed order; the caller reduces the eight lanes
/// pairwise. Rows past `d_out` carry `w = 0`, contributing exact `+0.0`s.
#[cfg(feature = "lane-kernels")]
fn px_pass_blocked(s: &StructuredColumns, w: &[f64], px_lanes: &mut [f64]) {
    px_lanes.iter_mut().for_each(|v| *v = 0.0);
    for b in 0..s.n_blocks() {
        let (cols, vals) = s.block(b);
        let wv: &[f64; LANES] = w[b * LANES..(b + 1) * LANES].try_into().expect("lane block");
        for (e, &k) in cols.iter().enumerate() {
            let v: &[f64; LANES] =
                vals[e * LANES..(e + 1) * LANES].try_into().expect("lane slice");
            let acc: &mut [f64; LANES] = (&mut px_lanes
                [k as usize * LANES..(k as usize + 1) * LANES])
                .try_into()
                .expect("lane partial");
            for j in 0..LANES {
                acc[j] += v[j] * wv[j];
            }
        }
    }
}

/// The per-row likelihood/responsibility pass of the structured E-step:
/// `den_i ← max(den_i + y_i, floor)`, `w_i = c_i/den_i`, `py_i = y_i·w_i`,
/// returning `(Σ c_i·ln den_i, Σ w_i, Σ py_i)`.
#[cfg(not(feature = "lane-kernels"))]
fn likelihood_pass(
    counts: &[f64],
    den: &[f64],
    y: &[f64],
    w: &mut [f64],
    py: &mut [f64],
) -> (f64, f64, f64) {
    let mut ll = 0.0;
    let mut w_total = 0.0;
    let mut py_total = 0.0;
    let rows = counts
        .iter()
        .zip(den.iter())
        .zip(y.iter())
        .zip(w.iter_mut().zip(py.iter_mut()));
    for (((&c, &den_i), &yi), (wi_slot, pyi_slot)) in rows {
        let den = (den_i + yi).max(DENSITY_FLOOR);
        if c > 0.0 {
            ll += c * fast_ln(den);
            let wi = c / den;
            *wi_slot = wi;
            w_total += wi;
            let pyi = yi * wi;
            *pyi_slot = pyi;
            py_total += pyi;
        } else {
            *wi_slot = 0.0;
            *pyi_slot = 0.0;
        }
    }
    (ll, w_total, py_total)
}

/// Lane variant of the likelihood pass: **branch-free** and unrolled four
/// rows wide with one partial accumulator each, so the whole body — the
/// two divisions per row included — is if-converted and vectorized instead
/// of serializing on the `c > 0` branch. A zero count contributes exactly
/// `+0.0` to every accumulator and slot (`0/den = 0`, `0·ln den = 0`,
/// `y·0 = 0` for the non-negative `y`), so dropping the branch changes no
/// bits; only the four-lane summation order differs from the scalar pass,
/// hence the gate.
#[cfg(feature = "lane-kernels")]
fn likelihood_pass(
    counts: &[f64],
    den: &[f64],
    y: &[f64],
    w: &mut [f64],
    py: &mut [f64],
) -> (f64, f64, f64) {
    const U: usize = 4;
    let d = counts.len();
    let mut ll = [0.0f64; U];
    let mut wt = [0.0f64; U];
    let mut pt = [0.0f64; U];
    let mut i = 0;
    while i + U <= d {
        // Array-at-a-time: each step is its own four-lane loop over local
        // arrays, so the vectorizer sees straight packed operations rather
        // than having to re-discover them across four scalar chains.
        let mut dv = [0.0f64; U];
        for j in 0..U {
            dv[j] = (den[i + j] + y[i + j]).max(DENSITY_FLOOR);
        }
        let ln = fast_ln_lanes(dv);
        for j in 0..U {
            let c = counts[i + j];
            ll[j] += c * ln[j];
            let wi = c / dv[j];
            w[i + j] = wi;
            wt[j] += wi;
            let pyi = y[i + j] * wi;
            py[i + j] = pyi;
            pt[j] += pyi;
        }
        i += U;
    }
    while i < d {
        let c = counts[i];
        let d_i = (den[i] + y[i]).max(DENSITY_FLOOR);
        ll[0] += c * fast_ln(d_i);
        let wi = c / d_i;
        w[i] = wi;
        wt[0] += wi;
        let pyi = y[i] * wi;
        py[i] = pyi;
        pt[0] += pyi;
        i += 1;
    }
    (
        (ll[0] + ll[2]) + (ll[1] + ll[3]),
        (wt[0] + wt[2]) + (wt[1] + wt[3]),
        (pt[0] + pt[2]) + (pt[1] + pt[3]),
    )
}

/// Four [`fast_ln`]s at once, written as per-step lane loops over local
/// arrays. Every step — the exponent/mantissa bit split included — has a
/// packed encoding, so the whole evaluation vectorizes; each lane computes
/// exactly the scalar [`fast_ln`] value (same operations, same order).
#[cfg(feature = "lane-kernels")]
#[inline]
fn fast_ln_lanes(x: [f64; 4]) -> [f64; 4] {
    let mut t = [0.0f64; 4];
    let mut e = [0.0f64; 4];
    for j in 0..4 {
        debug_assert!(x[j] > 0.0 && x[j].is_finite() && x[j] >= f64::MIN_POSITIVE);
        let bits = x[j].to_bits();
        let e0 = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let m0 = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        let big = m0 > std::f64::consts::SQRT_2;
        let m = if big { m0 * 0.5 } else { m0 };
        e[j] = (e0 + big as i32) as f64;
        t[j] = (m - 1.0) / (m + 1.0);
    }
    let mut out = [0.0f64; 4];
    for j in 0..4 {
        let t2 = t[j] * t[j];
        let p = 1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0
                        + t2 * (1.0 / 9.0
                            + t2 * (1.0 / 11.0
                                + t2 * (1.0 / 13.0
                                    + t2 * (1.0 / 15.0 + t2 * (1.0 / 17.0))))))));
        out[j] = 2.0 * t[j] * p + e[j] * std::f64::consts::LN_2;
    }
    out
}

/// Natural log for positive normal doubles, accurate to a few ulp and
/// inlined so the likelihood pass pipelines across buckets (`f64::ln` is an
/// opaque library call the loop cannot overlap). Both E-step paths use it,
/// so the structured/dense equivalence guarantee is unaffected.
///
/// `x = m·2^e` with `m ∈ [√½, √2)`; `ln m = 2·artanh(t)` for
/// `t = (m−1)/(m+1)`, `|t| ≤ 0.1716`, via the odd series through `t¹⁷`
/// (next term < 3e-16 relative).
#[inline]
fn fast_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite() && x >= f64::MIN_POSITIVE);
    let bits = x.to_bits();
    // The exponent stays in `i32`: the `i32 → f64` conversion below has a
    // packed SSE2 encoding, whereas `i64 → f64` is scalar-only below
    // AVX-512DQ and would keep the whole surrounding loop out of vector
    // code. (A finite double's unbiased exponent always fits i32.)
    let e0 = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let m0 = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // Select, not branch, so the likelihood pass if-converts and the whole
    // loop stays vector code (the produced values are identical either way).
    let big = m0 > std::f64::consts::SQRT_2;
    let m = if big { m0 * 0.5 } else { m0 };
    let e = e0 + big as i32;
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let p = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0
                + t2 * (1.0 / 7.0
                    + t2 * (1.0 / 9.0
                        + t2 * (1.0 / 11.0
                            + t2 * (1.0 / 13.0
                                + t2 * (1.0 / 15.0 + t2 * (1.0 / 17.0))))))));
    2.0 * t * p + e as f64 * std::f64::consts::LN_2
}

/// The E-step's inner vector kernels.
///
/// Two tiers live here:
///
/// * `axpy`/`dot` — the portable kernels every build uses. `dot` fixes a
///   four-accumulator summation order the compiler can keep in SIMD lanes;
///   `axpy` is element-independent, so the autovectorizer handles it.
/// * `axpy_lanes`/`dot_lanes` — lane kernels for slices padded to a
///   [`crate::transform::LANES`] multiple (see
///   [`StructuredColumns::band_padded`]). With the
///   length a compile-time-visible lane multiple there is no scalar tail
///   and no trip-count check inside the hot loop, so each iteration is a
///   straight load/fma-free mul-add over full registers. `dot_lanes` uses
///   a *different* (wider) summation order than `dot`, which is why the
///   lane path sits behind the `lane-kernels` feature.
pub mod kernels {
    pub use crate::transform::LANES;

    /// `out[i] += a·v[i]` over equal-length slices.
    #[inline]
    pub fn axpy(out: &mut [f64], v: &[f64], a: f64) {
        for (o, &x) in out.iter_mut().zip(v) {
            *o += a * x;
        }
    }

    /// Four-accumulator dot product — a fixed summation order the compiler
    /// can keep in SIMD lanes.
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f64; 4];
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            for j in 0..4 {
                acc[j] += ca[j] * cb[j];
            }
        }
        let mut tail = 0.0;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            tail += x * y;
        }
        (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
    }

    /// `out[i] += a·v[i]` for slices whose length is a [`LANES`] multiple.
    ///
    /// Per-element result is identical to [`axpy`] (same `a·v[i]` product,
    /// same single add into `out[i]`); only the loop structure changes, so
    /// this kernel is bit-compatible with the portable one.
    #[inline]
    pub fn axpy_lanes(out: &mut [f64], v: &[f64], a: f64) {
        debug_assert_eq!(out.len(), v.len());
        debug_assert_eq!(v.len() % LANES, 0);
        // The element-independent update auto-vectorizes; the lane win is
        // entirely in the *data* — a padded length means the vector loop
        // runs with no scalar epilogue. Hand-rolled chunk loops measured
        // slower than this shape on every tested width, so the kernel
        // shares the portable loop (which also makes bit-identity with
        // [`axpy`] true by construction).
        axpy(out, v, a);
    }

    /// Dot product over [`LANES`]-padded slices: two `LANES`-wide
    /// accumulator registers fed alternately, reduced pairwise at the end.
    ///
    /// The summation order is fixed but differs from [`dot`]'s, so callers
    /// must treat the two as *numerically distinct* kernels (both are within
    /// ordinary rounding of the true sum; the EM equivalence suite pins the
    /// end-to-end difference at ≤ 1e-12 against the dense reference).
    #[inline]
    pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len() % LANES, 0);
        let mut acc0 = [0.0f64; LANES];
        let mut acc1 = [0.0f64; LANES];
        let mut chunks_a = a.chunks_exact(2 * LANES);
        let mut chunks_b = b.chunks_exact(2 * LANES);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            let ca: &[f64; 2 * LANES] = ca.try_into().expect("exact chunk");
            let cb: &[f64; 2 * LANES] = cb.try_into().expect("exact chunk");
            for j in 0..LANES {
                acc0[j] += ca[j] * cb[j];
                acc1[j] += ca[LANES + j] * cb[LANES + j];
            }
        }
        // Remainder is zero or one LANES-chunk; fold it into acc1.
        let (ra, rb) = (chunks_a.remainder(), chunks_b.remainder());
        if !ra.is_empty() {
            let ra: &[f64; LANES] = ra.try_into().expect("lane-multiple remainder");
            let rb: &[f64; LANES] = rb.try_into().expect("lane-multiple remainder");
            for j in 0..LANES {
                acc1[j] += ra[j] * rb[j];
            }
        }
        for j in 0..LANES {
            acc0[j] += acc1[j];
        }
        // Pairwise reduction tree over the LANES partials.
        let mut width = LANES / 2;
        while width > 0 {
            for j in 0..width {
                acc0[j] += acc0[j + width];
            }
            width /= 2;
        }
        acc0[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::PoisonRegion;
    use dap_ldp::PiecewiseMechanism;

    fn pm_matrix(eps: f64, d_in: usize, d_out: usize) -> TransformMatrix {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0))
    }

    #[test]
    fn output_is_a_distribution() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![10.0; 32];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::default());
        let total: f64 = out.normal.iter().sum::<f64>() + out.poison_mass();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(out.normal.iter().all(|&v| v >= 0.0));
        assert!(out.poison.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn constrained_mstep_respects_gamma() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![5.0; 32];
        let gamma = 0.3;
        let out = solve(&m, &counts, MStep::Constrained { gamma }, &EmOptions::default());
        assert!((out.poison_mass() - gamma).abs() < 1e-9);
        assert!((out.normal.iter().sum::<f64>() - (1.0 - gamma)).abs() < 1e-9);
    }

    #[test]
    fn zero_initialized_poison_stays_zero() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![5.0; 32];
        let share = 1.0 / 8.0;
        let x0 = vec![share; 8];
        let mut y0 = vec![0.0; 32];
        // Leave exactly one poison bucket alive.
        let alive = m.poison_buckets()[0];
        y0[alive] = share;
        let out = solve_with_init(
            &m,
            &counts,
            MStep::Constrained { gamma: 0.2 },
            &x0,
            &y0,
            &EmOptions::default(),
        );
        for &j in m.poison_buckets() {
            if j != alive {
                assert_eq!(out.poison[j], 0.0, "suppressed bucket {j} resurrected");
            }
        }
        assert!((out.poison[alive] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn likelihood_is_monotone_under_free_mstep() {
        let m = pm_matrix(1.0, 8, 32);
        // A lopsided count vector.
        let counts: Vec<f64> = (0..32).map(|i| 1.0 + (i as f64) * (i as f64)).collect();
        let opts = EmOptions { tol: 0.0, max_iters: 40 };
        // Track the likelihood trajectory by running with increasing caps.
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 2, 5, 10, 20, 40] {
            let out = solve(&m, &counts, MStep::Free, &EmOptions { max_iters: iters, ..opts });
            assert!(
                out.log_likelihood >= prev - 1e-6,
                "likelihood decreased: {} -> {}",
                prev,
                out.log_likelihood
            );
            prev = out.log_likelihood;
        }
    }

    #[test]
    fn converges_under_paper_stopping_rule() {
        let m = pm_matrix(0.25, 4, 16);
        let counts = vec![100.0; 16];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::paper_default(0.25));
        assert!(out.converged, "no convergence in {} iters", out.iterations);
    }

    #[test]
    fn recovers_pure_poison_spike() {
        // All mass in a single right-side bucket with a near-zero budget:
        // EM should attribute most of it to the poison component of that
        // bucket (Theorem 3 intuition).
        let m = pm_matrix(0.0625, 4, 16);
        let spike = 12; // right-side bucket
        assert!(m.is_poison(spike));
        let mut counts = vec![0.0; 16];
        counts[spike] = 1000.0;
        let out = solve(&m, &counts, MStep::Free, &EmOptions { tol: 1e-9, max_iters: 2000 });
        assert!(
            out.poison[spike] > 0.8,
            "poison mass at spike only {}",
            out.poison[spike]
        );
    }

    #[test]
    fn handles_empty_counts_without_nan() {
        let m = pm_matrix(0.5, 4, 16);
        let counts = vec![0.0; 16];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::default());
        assert!(out.normal.iter().all(|v| v.is_finite()));
        assert!(out.poison.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "counts length")]
    fn rejects_wrong_count_length() {
        let m = pm_matrix(0.5, 4, 16);
        solve(&m, &[1.0; 8], MStep::Free, &EmOptions::default());
    }

    #[test]
    fn fast_ln_matches_libm() {
        let mut x = 1e-300f64;
        while x < 1e3 {
            for scale in [1.0, 1.37, 2.9, 6.02] {
                let v = x * scale;
                let (a, b) = (fast_ln(v), v.ln());
                assert!(
                    (a - b).abs() <= 1e-13 * b.abs().max(1e-3),
                    "fast_ln({v}) = {a} vs {b}"
                );
            }
            x *= 17.0;
        }
    }

    #[test]
    fn workspace_reuse_is_equivalent_across_sizes() {
        let mut ws = EmWorkspace::new();
        for (d_in, d_out) in [(8usize, 32usize), (4, 16), (16, 64)] {
            let m = pm_matrix(0.5, d_in, d_out);
            let counts: Vec<f64> = (0..d_out).map(|i| 1.0 + i as f64).collect();
            let fresh = solve(&m, &counts, MStep::Free, &EmOptions::default());
            let reused = solve_in(&m, &counts, MStep::Free, &EmOptions::default(), &mut ws);
            assert_eq!(fresh.normal, reused.normal);
            assert_eq!(fresh.poison, reused.poison);
            assert_eq!(fresh.iterations, reused.iterations);
        }
    }

    #[test]
    fn structured_path_matches_dense_reference() {
        for eps in [0.0625, 0.5, 2.0] {
            let m = pm_matrix(eps, 8, 32);
            assert!(m.structure().is_some(), "PM should analyze at eps={eps}");
            let counts: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64).collect();
            let share = 1.0 / 24.0;
            let x0 = vec![share; 8];
            let mut y0 = vec![0.0; 32];
            for &j in m.poison_buckets() {
                y0[j] = share;
            }
            let opts = EmOptions { tol: 0.0, max_iters: 25 };
            let fast = solve_with_init(&m, &counts, MStep::Free, &x0, &y0, &opts);
            let dense = solve_dense_reference(&m, &counts, MStep::Free, &x0, &y0, &opts);
            for (a, b) in fast.normal.iter().zip(&dense.normal) {
                assert!((a - b).abs() <= 1e-12, "normal {a} vs {b} (eps={eps})");
            }
            for (a, b) in fast.poison.iter().zip(&dense.poison) {
                assert!((a - b).abs() <= 1e-12, "poison {a} vs {b} (eps={eps})");
            }
        }
    }
}
