//! Generic EM solver over a block transform matrix.
//!
//! This is the computational core shared by EMF (Algorithm 2), EMF\*
//! (Algorithm 4) and CEMF\* (Theorem 5): they differ only in the M-step
//! normalization and in the initialization of the poison components, both of
//! which are parameters here.
//!
//! Latent state is `(x̂, ŷ)` — the frequency histogram of normal users over
//! `d` input buckets and of poison values over the poison-side output
//! buckets. One E/M iteration costs `O(d' · d)`.

use crate::transform::TransformMatrix;

/// Stopping rule for the EM loop.
///
/// The paper stops when `|l(F)_t − l(F)_{t+1}| < τ` with `τ = 0.01·e^ε`
/// (§VI-A); the log-likelihood here is the data-dependent part
/// `Σ_i c_i ln(den_i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Absolute tolerance on the log-likelihood improvement.
    pub tol: f64,
    /// Hard iteration cap (EM on concave likelihoods converges, but we never
    /// spin unbounded on degenerate inputs).
    pub max_iters: usize,
}

impl EmOptions {
    /// The paper's stopping rule `τ = 0.01·e^ε` with a 500-iteration cap.
    pub fn paper_default(eps: f64) -> Self {
        EmOptions { tol: 0.01 * eps.exp(), max_iters: 500 }
    }
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions { tol: 1e-4, max_iters: 500 }
    }
}

/// M-step normalization variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MStep {
    /// Plain EMF (Algorithm 2): normalize `(x̂, ŷ)` jointly to sum 1.
    Free,
    /// EMF\* / CEMF\* (Algorithm 4, Theorem 4): `Σx̂ = 1−γ̂`, `Σŷ = γ̂`.
    Constrained {
        /// Byzantine proportion estimate from a prior EMF pass.
        gamma: f64,
    },
}

/// Result of an EM run.
#[derive(Debug, Clone)]
pub struct EmOutcome {
    /// Normal-user frequency histogram `x̂` over the `d` input buckets.
    pub normal: Vec<f64>,
    /// Poison frequency histogram `ŷ`, full output length `d'` with zeros at
    /// non-poison buckets.
    pub poison: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final (data-dependent part of the) log-likelihood.
    pub log_likelihood: f64,
}

impl EmOutcome {
    /// Total poison mass `Σ ŷ_j` — the Byzantine proportion estimate `γ̂`
    /// (Eq. 9).
    pub fn poison_mass(&self) -> f64 {
        self.poison.iter().sum()
    }
}

/// Floor applied to mixture densities before taking logarithms, so empty
/// buckets cannot produce `-inf`/NaN likelihoods.
pub(crate) const DENSITY_FLOOR: f64 = 1e-300;

/// Runs EM with uniform initialization over all latent components.
pub fn solve(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    opts: &EmOptions,
) -> EmOutcome {
    let share = 1.0 / (matrix.d_in() + matrix.poison_buckets().len()).max(1) as f64;
    let x0 = vec![share; matrix.d_in()];
    let mut y0 = vec![0.0; matrix.d_out()];
    for &j in matrix.poison_buckets() {
        y0[j] = share;
    }
    solve_with_init(matrix, counts, mstep, &x0, &y0, opts)
}

/// Runs EM from an explicit initialization.
///
/// CEMF\* uses this to suppress buckets: a poison component initialized to
/// exactly `0` stays `0` for the whole run (its E-step responsibility is
/// always zero), which is precisely the paper's "suppression".
///
/// # Panics
/// If `counts.len() != d'`, or the initial vectors have wrong lengths or
/// negative entries.
pub fn solve_with_init(
    matrix: &TransformMatrix,
    counts: &[f64],
    mstep: MStep,
    x_init: &[f64],
    y_init: &[f64],
    opts: &EmOptions,
) -> EmOutcome {
    let d_in = matrix.d_in();
    let d_out = matrix.d_out();
    assert_eq!(counts.len(), d_out, "counts length must equal d'");
    assert_eq!(x_init.len(), d_in, "x init length must equal d");
    assert_eq!(y_init.len(), d_out, "y init length must equal d'");
    assert!(
        x_init.iter().chain(y_init.iter()).all(|&v| v >= 0.0 && v.is_finite()),
        "initial histograms must be non-negative"
    );

    let mut x = x_init.to_vec();
    let mut y = y_init.to_vec();
    let mut px = vec![0.0; d_in];
    let mut py = vec![0.0; d_out];
    let mut prev_ll = f64::NEG_INFINITY;
    let mut ll = prev_ll;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        px.iter_mut().for_each(|v| *v = 0.0);
        py.iter_mut().for_each(|v| *v = 0.0);
        ll = 0.0;

        // E-step. den_i = Σ_k M[i][k]·x_k + y_i; responsibilities are
        // accumulated column-wise through the weight c_i/den_i.
        for i in 0..d_out {
            let row = matrix.normal_row(i);
            let mut den: f64 = row.iter().zip(x.iter()).map(|(m, xv)| m * xv).sum();
            den += y[i];
            let den = den.max(DENSITY_FLOOR);
            let c = counts[i];
            if c > 0.0 {
                ll += c * den.ln();
                let w = c / den;
                for (pxk, (m, xv)) in px.iter_mut().zip(row.iter().zip(x.iter())) {
                    *pxk += m * xv * w;
                }
                py[i] = y[i] * w;
            }
        }

        // M-step.
        match mstep {
            MStep::Free => {
                let total: f64 = px.iter().sum::<f64>() + py.iter().sum::<f64>();
                if total > 0.0 {
                    for (xk, pxk) in x.iter_mut().zip(px.iter()) {
                        *xk = pxk / total;
                    }
                    for (yj, pyj) in y.iter_mut().zip(py.iter()) {
                        *yj = pyj / total;
                    }
                }
            }
            MStep::Constrained { gamma } => {
                let gamma = gamma.clamp(0.0, 1.0);
                let sx: f64 = px.iter().sum();
                let sy: f64 = py.iter().sum();
                if sx > 0.0 {
                    for (xk, pxk) in x.iter_mut().zip(px.iter()) {
                        *xk = (1.0 - gamma) * pxk / sx;
                    }
                }
                if sy > 0.0 {
                    for (yj, pyj) in y.iter_mut().zip(py.iter()) {
                        *yj = gamma * pyj / sy;
                    }
                } else {
                    // No feasible poison mass (all suppressed or γ=0): put
                    // everything on the normal block so the output remains a
                    // distribution.
                    if sx > 0.0 {
                        for (xk, pxk) in x.iter_mut().zip(px.iter()) {
                            *xk = pxk / sx;
                        }
                    }
                    y.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }

        if (ll - prev_ll).abs() < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    EmOutcome { normal: x, poison: y, iterations, converged, log_likelihood: ll }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::PoisonRegion;
    use dap_ldp::PiecewiseMechanism;

    fn pm_matrix(eps: f64, d_in: usize, d_out: usize) -> TransformMatrix {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0))
    }

    #[test]
    fn output_is_a_distribution() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![10.0; 32];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::default());
        let total: f64 = out.normal.iter().sum::<f64>() + out.poison_mass();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(out.normal.iter().all(|&v| v >= 0.0));
        assert!(out.poison.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn constrained_mstep_respects_gamma() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![5.0; 32];
        let gamma = 0.3;
        let out = solve(&m, &counts, MStep::Constrained { gamma }, &EmOptions::default());
        assert!((out.poison_mass() - gamma).abs() < 1e-9);
        assert!((out.normal.iter().sum::<f64>() - (1.0 - gamma)).abs() < 1e-9);
    }

    #[test]
    fn zero_initialized_poison_stays_zero() {
        let m = pm_matrix(0.5, 8, 32);
        let counts = vec![5.0; 32];
        let share = 1.0 / 8.0;
        let x0 = vec![share; 8];
        let mut y0 = vec![0.0; 32];
        // Leave exactly one poison bucket alive.
        let alive = m.poison_buckets()[0];
        y0[alive] = share;
        let out = solve_with_init(
            &m,
            &counts,
            MStep::Constrained { gamma: 0.2 },
            &x0,
            &y0,
            &EmOptions::default(),
        );
        for &j in m.poison_buckets() {
            if j != alive {
                assert_eq!(out.poison[j], 0.0, "suppressed bucket {j} resurrected");
            }
        }
        assert!((out.poison[alive] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn likelihood_is_monotone_under_free_mstep() {
        let m = pm_matrix(1.0, 8, 32);
        // A lopsided count vector.
        let counts: Vec<f64> = (0..32).map(|i| 1.0 + (i as f64) * (i as f64)).collect();
        let opts = EmOptions { tol: 0.0, max_iters: 40 };
        // Track the likelihood trajectory by running with increasing caps.
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 2, 5, 10, 20, 40] {
            let out = solve(&m, &counts, MStep::Free, &EmOptions { max_iters: iters, ..opts });
            assert!(
                out.log_likelihood >= prev - 1e-6,
                "likelihood decreased: {} -> {}",
                prev,
                out.log_likelihood
            );
            prev = out.log_likelihood;
        }
    }

    #[test]
    fn converges_under_paper_stopping_rule() {
        let m = pm_matrix(0.25, 4, 16);
        let counts = vec![100.0; 16];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::paper_default(0.25));
        assert!(out.converged, "no convergence in {} iters", out.iterations);
    }

    #[test]
    fn recovers_pure_poison_spike() {
        // All mass in a single right-side bucket with a near-zero budget:
        // EM should attribute most of it to the poison component of that
        // bucket (Theorem 3 intuition).
        let m = pm_matrix(0.0625, 4, 16);
        let spike = 12; // right-side bucket
        assert!(m.is_poison(spike));
        let mut counts = vec![0.0; 16];
        counts[spike] = 1000.0;
        let out = solve(&m, &counts, MStep::Free, &EmOptions { tol: 1e-9, max_iters: 2000 });
        assert!(
            out.poison[spike] > 0.8,
            "poison mass at spike only {}",
            out.poison[spike]
        );
    }

    #[test]
    fn handles_empty_counts_without_nan() {
        let m = pm_matrix(0.5, 4, 16);
        let counts = vec![0.0; 16];
        let out = solve(&m, &counts, MStep::Free, &EmOptions::default());
        assert!(out.normal.iter().all(|v| v.is_finite()));
        assert!(out.poison.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "counts length")]
    fn rejects_wrong_count_length() {
        let m = pm_matrix(0.5, 4, 16);
        solve(&m, &[1.0; 8], MStep::Free, &EmOptions::default());
    }
}
