//! Statistics helpers: moments, error metrics, histogram distances.

/// Arithmetic mean of a slice; `0.0` for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice; `0.0` for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Mean squared error of repeated estimates against a scalar truth.
pub fn mse(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    estimates.iter().map(|&e| (e - truth) * (e - truth)).sum::<f64>() / estimates.len() as f64
}

/// Mean of a frequency histogram given per-bucket representative values.
///
/// # Panics
/// If lengths mismatch.
pub fn histogram_mean(freqs: &[f64], centers: &[f64]) -> f64 {
    assert_eq!(freqs.len(), centers.len(), "histogram/centers length mismatch");
    let total: f64 = freqs.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    freqs.iter().zip(centers).map(|(f, c)| f * c).sum::<f64>() / total
}

/// Wasserstein-1 distance between two frequency histograms on the same
/// uniform grid of bucket width `width`. Both inputs are normalized to mass 1
/// first (empty histograms count as uniform-zero and yield 0).
///
/// # Panics
/// If lengths mismatch.
pub fn wasserstein_1(p: &[f64], q: &[f64], width: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "histogram length mismatch");
    let (sp, sq) = (p.iter().sum::<f64>(), q.iter().sum::<f64>());
    if sp <= 0.0 || sq <= 0.0 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut dist = 0.0;
    for (a, b) in p.iter().zip(q) {
        cum += a / sp - b / sq;
        dist += cum.abs() * width;
    }
    dist
}

/// Normalizes values from `[lo, hi]` into `[-1, 1]` (the paper's numerical
/// input domain).
pub fn normalize_to_signed(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    assert!(hi > lo, "degenerate normalization range");
    let scale = 2.0 / (hi - lo);
    values.iter().map(|&v| ((v - lo) * scale - 1.0).clamp(-1.0, 1.0)).collect()
}

/// Normalizes values from `[lo, hi]` into `[0, 1]` (the Square-Wave domain).
pub fn normalize_to_unit(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    assert!(hi > lo, "degenerate normalization range");
    let scale = 1.0 / (hi - lo);
    values.iter().map(|&v| ((v - lo) * scale).clamp(0.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mse_of_perfect_estimates_is_zero() {
        assert_eq!(mse(&[0.5, 0.5], 0.5), 0.0);
        assert!((mse(&[0.0, 1.0], 0.5) - 0.25).abs() < 1e-12);
        assert_eq!(mse(&[], 1.0), 0.0);
    }

    #[test]
    fn histogram_mean_weights_by_frequency() {
        let m = histogram_mean(&[0.25, 0.75], &[-1.0, 1.0]);
        assert!((m - 0.5).abs() < 1e-12);
        // Unnormalized input is normalized internally.
        let m = histogram_mean(&[1.0, 3.0], &[-1.0, 1.0]);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_identical_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert_eq!(wasserstein_1(&p, &p, 0.1), 0.0);
    }

    #[test]
    fn wasserstein_shift_by_one_bucket() {
        // Point mass moved one bucket over: distance = bucket width.
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 1.0, 0.0];
        assert!((wasserstein_1(&p, &q, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        assert!((wasserstein_1(&p, &q, 0.5) - wasserstein_1(&q, &p, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn normalize_signed_maps_endpoints() {
        let out = normalize_to_signed(&[0.0, 50.0, 100.0], 0.0, 100.0);
        assert_eq!(out, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn normalize_unit_clamps_outliers() {
        let out = normalize_to_unit(&[-10.0, 5.0, 20.0], 0.0, 10.0);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
    }
}
