//! Deterministic RNG plumbing.
//!
//! Every randomized component in the workspace takes an explicit RNG; the
//! experiment harness derives independent, reproducible streams from a single
//! master seed with [`fn@derive`], so adding a trial never perturbs existing
//! ones.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Words per [`BufferedRng`] refill (one virtual dispatch per block).
const BUFFER_WORDS: usize = 512;

/// A block-buffering adapter over a `dyn` RNG.
///
/// Rejection samplers (truncated normal, gamma) draw a *variable* number of
/// words per sample, so they cannot pre-batch their input the way a
/// fixed-rate consumer can. `BufferedRng` closes the `dyn` boundary from
/// the other side: it pulls a 512-word block from the underlying
/// generator with a single virtual `fill_bytes` call and serves `next_u64`
/// monomorphically from the buffer, so a sampler that is generic over its
/// RNG inlines every draw.
///
/// The served word *sequence* is exactly the underlying generator's
/// sequence; the only stream difference is that unused words of the final
/// block are discarded when the adapter is dropped.
pub struct BufferedRng<'a> {
    inner: &'a mut dyn RngCore,
    buf: [u8; 8 * BUFFER_WORDS],
    /// Next unread byte offset; starts exhausted so the first draw refills.
    pos: usize,
}

impl<'a> BufferedRng<'a> {
    /// Wraps a `dyn` RNG in a block buffer.
    pub fn new(inner: &'a mut dyn RngCore) -> Self {
        BufferedRng { inner, buf: [0u8; 8 * BUFFER_WORDS], pos: 8 * BUFFER_WORDS }
    }
}

impl RngCore for BufferedRng<'_> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == self.buf.len() {
            self.inner.fill_bytes(&mut self.buf);
            self.pos = 0;
        }
        let word = u64::from_le_bytes(
            self.buf[self.pos..self.pos + 8].try_into().expect("8-byte slice"),
        );
        self.pos += 8;
        word
    }
}

/// Derives an independent RNG for a named sub-stream of `seed`.
///
/// Uses SplitMix64 finalization over `(seed, stream)` so that nearby stream
/// ids produce uncorrelated states.
pub fn derive(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(split_mix(seed ^ split_mix(stream)))
}

fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: u64 = seeded(1).gen();
        let b: u64 = seeded(1).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ() {
        let a: u64 = derive(1, 0).gen();
        let b: u64 = derive(1, 1).gen();
        let c: u64 = derive(2, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_is_deterministic() {
        let a: u64 = derive(99, 7).gen();
        let b: u64 = derive(99, 7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn buffered_rng_preserves_the_word_sequence() {
        let mut direct = seeded(42);
        let expect: Vec<u64> = (0..2 * super::BUFFER_WORDS + 3).map(|_| direct.gen()).collect();
        let mut inner = seeded(42);
        let mut buffered = BufferedRng::new(&mut inner);
        let got: Vec<u64> = expect.iter().map(|_| buffered.next_u64()).collect();
        assert_eq!(got, expect);
    }
}
