//! Deterministic RNG plumbing.
//!
//! Every randomized component in the workspace takes an explicit RNG; the
//! experiment harness derives independent, reproducible streams from a single
//! master seed with [`fn@derive`], so adding a trial never perturbs existing
//! ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent RNG for a named sub-stream of `seed`.
///
/// Uses SplitMix64 finalization over `(seed, stream)` so that nearby stream
/// ids produce uncorrelated states.
pub fn derive(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(split_mix(seed ^ split_mix(stream)))
}

fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: u64 = seeded(1).gen();
        let b: u64 = seeded(1).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ() {
        let a: u64 = derive(1, 0).gen();
        let b: u64 = derive(1, 1).gen();
        let c: u64 = derive(2, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_is_deterministic() {
        let a: u64 = derive(99, 7).gen();
        let b: u64 = derive(99, 7).gen();
        assert_eq!(a, b);
    }
}
