//! Transform matrices (Fig. 2 of the paper).
//!
//! The matrix `M` has one row per *output* bucket and one column per latent
//! component. Latent components come in two blocks:
//!
//! * **normal block** — `d` input buckets of honest users; entry
//!   `M[b_i][x_k] = Pr[v' ∈ B'_i | v = center(B_{x_k})]`, integrated exactly
//!   from the mechanism's conditional output density;
//! * **poison block** — one latent component per output bucket on the
//!   *poisoned side*; Byzantine users inject values directly, so the block is
//!   the identity (`M[b_i][y_j] = 1 ⟺ i = j`).
//!
//! The identity structure of the poison block means we never materialize it;
//! [`TransformMatrix`] stores the normal block plus a poison-bucket mask.

use crate::grid::Grid;
use dap_ldp::{CategoricalMechanism, NumericMechanism};

/// Lane width the padded band storage rounds up to: f64×8 fills one
/// AVX-512 register (two AVX2 registers, four SSE2), so a kernel that
/// walks whole lanes needs no scalar remainder loop on any x86-64 tier.
pub const LANES: usize = 8;

/// Which output buckets may contain poison values.
#[derive(Debug, Clone, PartialEq)]
pub enum PoisonRegion {
    /// No poison block (plain distribution estimation, e.g. EMS).
    None,
    /// All output buckets whose center is `≥ pivot` (attack on the right of
    /// the initial mean `O'`).
    RightOf(f64),
    /// All output buckets whose center is `≤ pivot` (attack on the left).
    LeftOf(f64),
    /// Explicit output-bucket indices (categorical side probing).
    Buckets(Vec<usize>),
}

/// Analyzed column structure of the normal block (the fast E-step's view).
///
/// Every mechanism in the paper has heavily structured conditional-output
/// densities: SW and PM are a constant floor plus one uniform band, k-RR is
/// `q` everywhere plus a single diagonal spike, Duchi is mostly zeros. Column
/// `k` therefore decomposes as
///
/// ```text
/// M[i][k] = floor_k + delta_k[i − start_k]      (delta zero outside the band)
/// ```
///
/// which turns the E-step's `d'·d` row-by-row multiply into `O(d' + nnz)`
/// work: the constant part `Σ_k floor_k·x_k` is hoisted out of the row loop
/// and only the bands are touched per row.
///
/// Out-of-band entries within one relative ulp-cluster of the floor are
/// *represented by* the floor, so the structured product can differ from the
/// dense one by at most ~1e-13 relative — the equivalence suite pins this at
/// ≤ 1e-12 per EM iteration against the dense reference.
#[derive(Debug, Clone)]
pub struct StructuredColumns {
    /// Per-column constant floor.
    floors: Vec<f64>,
    /// First row of each column's band.
    band_start: Vec<usize>,
    /// Prefix offsets into `values` (`len d_in + 1`); column `k`'s band
    /// values live at `values[band_offset[k]..band_offset[k + 1]]`.
    band_offset: Vec<usize>,
    /// Concatenated band deltas (`M[i][k] − floor_k`).
    values: Vec<f64>,
    /// Prefix offsets into `padded` (`len d_in + 1`).
    padded_offset: Vec<usize>,
    /// The same bands zero-padded to a [`LANES`] multiple each, so the
    /// lane kernels can walk whole lanes with no remainder loop. A zero
    /// delta contributes exactly nothing to an axpy/dot, so padded and
    /// true-length sweeps accumulate the same terms (in a different
    /// order — which is why the lane path sits behind a feature gate).
    padded: Vec<f64>,
    /// Minimum scratch-vector length a padded sweep may touch:
    /// `max_k(start_k + padded_len_k)` (≥ the matrix's `d_out`).
    padded_rows: usize,
    /// Row-lane-blocked view: entry offsets per [`LANES`]-tall row block
    /// (CSR-style, `len n_blocks + 1`). The blocked E-step walks whole
    /// blocks instead of whole bands, so the `den` sweep writes each lane
    /// exactly once (no overlapping scatter stores) and the `px` gather
    /// keeps one lane-wide partial per column.
    block_ptr: Vec<usize>,
    /// Column index of each blocked entry.
    block_col: Vec<u32>,
    /// [`LANES`] delta values per blocked entry: entry `e` stores column
    /// `block_col[e]`'s deltas for its block's rows, `0.0` where the true
    /// band does not reach. A zero lane contributes exactly `+0.0` to an
    /// accumulator, so the blocked sweeps sum the same terms as the band
    /// sweeps (in a different order — the feature-gate caveat again).
    block_vals: Vec<f64>,
}

impl StructuredColumns {
    /// Relative tolerance for clustering out-of-band entries onto the floor.
    const FLOOR_TOL: f64 = 1e-13;

    /// Bands covering more than this fraction of the matrix mean the
    /// analysis buys nothing; the solver falls back to dense rows. The
    /// paper's banded mechanisms (PM, SW, k-RR) sit near or below 1/2.
    const MAX_FILL: f64 = 0.80;

    /// Analyzes a row-major `d_out × d_in` matrix; `None` when the columns
    /// carry no exploitable structure.
    fn analyze(normal: &[f64], d_out: usize, d_in: usize) -> Option<Self> {
        if d_out < 4 {
            return None;
        }
        let mut floors = Vec::with_capacity(d_in);
        let mut band_start = Vec::with_capacity(d_in);
        let mut band_offset = Vec::with_capacity(d_in + 1);
        let mut values = Vec::new();
        band_offset.push(0);
        for k in 0..d_in {
            let col = |i: usize| normal[i * d_in + k];
            // The floor is the column's most frequent exact value — for a
            // piecewise-constant density that's the out-of-band level (up to
            // last-ulp wobble from bucket-width rounding, absorbed below).
            let floor = column_mode((0..d_out).map(col));
            let near = |v: f64| v == floor || (v - floor).abs() <= Self::FLOOR_TOL * floor.abs();
            let first = (0..d_out).find(|&i| !near(col(i)));
            let (start, end) = match first {
                None => (0, 0), // perfectly constant column
                Some(first) => {
                    let last = (0..d_out).rfind(|&i| !near(col(i))).expect("first exists");
                    (first, last + 1)
                }
            };
            floors.push(floor);
            band_start.push(start);
            values.extend((start..end).map(|i| col(i) - floor));
            band_offset.push(values.len());
        }
        if (values.len() as f64) > Self::MAX_FILL * (d_out * d_in) as f64 {
            return None;
        }
        let mut padded_offset = Vec::with_capacity(d_in + 1);
        let mut padded = Vec::new();
        let mut padded_rows = d_out;
        padded_offset.push(0);
        for k in 0..d_in {
            let band = &values[band_offset[k]..band_offset[k + 1]];
            let rounded = band.len().div_ceil(LANES) * LANES;
            padded.extend_from_slice(band);
            padded.resize(padded_offset[k] + rounded, 0.0);
            padded_offset.push(padded.len());
            padded_rows = padded_rows.max(band_start[k] + rounded);
        }
        // Cut the (padded) row space into LANES-tall blocks and slice every
        // intersecting band into per-block lane vectors. Entries are emitted
        // in (block, column) order, which fixes the blocked sweeps'
        // accumulation order once and for all.
        let blocked_rows = padded_rows.div_ceil(LANES) * LANES;
        let n_blocks = blocked_rows / LANES;
        let mut block_ptr = Vec::with_capacity(n_blocks + 1);
        let mut block_col = Vec::new();
        let mut block_vals = Vec::new();
        block_ptr.push(0);
        for b in 0..n_blocks {
            let lo = b * LANES;
            let hi = lo + LANES;
            for k in 0..d_in {
                let start = band_start[k];
                let end = start + (band_offset[k + 1] - band_offset[k]);
                if start < hi && end > lo {
                    block_col.push(k as u32);
                    block_vals.extend((lo..hi).map(|row| {
                        if row >= start && row < end {
                            values[band_offset[k] + (row - start)]
                        } else {
                            0.0
                        }
                    }));
                }
            }
            block_ptr.push(block_col.len());
        }
        Some(StructuredColumns {
            floors,
            band_start,
            band_offset,
            values,
            padded_offset,
            padded,
            padded_rows,
            block_ptr,
            block_col,
            block_vals,
        })
    }

    /// Per-column floors (length `d_in`).
    #[inline]
    pub fn floors(&self) -> &[f64] {
        &self.floors
    }

    /// Column `k`'s band as `(first_row, deltas)`.
    #[inline]
    pub fn band(&self, k: usize) -> (usize, &[f64]) {
        (self.band_start[k], &self.values[self.band_offset[k]..self.band_offset[k + 1]])
    }

    /// Column `k`'s band as `(first_row, deltas)` with the delta slice
    /// zero-padded to a [`LANES`] multiple. The padded tail is exactly
    /// `0.0`, so it adds nothing to an axpy and multiplies any gathered
    /// value to nothing in a dot; callers only need scratch vectors of
    /// [`StructuredColumns::padded_rows`] length.
    #[inline]
    pub fn band_padded(&self, k: usize) -> (usize, &[f64]) {
        (self.band_start[k], &self.padded[self.padded_offset[k]..self.padded_offset[k + 1]])
    }

    /// Minimum scratch-vector length the padded bands may touch
    /// (`≥ d_out`); the EM workspace over-allocates to this.
    #[inline]
    pub fn padded_rows(&self) -> usize {
        self.padded_rows
    }

    /// Total stored band entries (the `nnz` of the analysis).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of [`LANES`]-tall row blocks in the blocked view.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Rows the blocked sweeps cover: [`StructuredColumns::padded_rows`]
    /// rounded up to a [`LANES`] multiple. Scratch vectors the blocked
    /// E-step reads or writes must be at least this long.
    #[inline]
    pub fn blocked_rows(&self) -> usize {
        self.n_blocks() * LANES
    }

    /// Block `b`'s intersecting columns and their lane slices: entry `e`
    /// covers column `cols[e]` with deltas `vals[e·LANES .. (e+1)·LANES]`
    /// for rows `b·LANES .. (b+1)·LANES`.
    #[inline]
    pub fn block(&self, b: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.block_ptr[b], self.block_ptr[b + 1]);
        (&self.block_col[lo..hi], &self.block_vals[lo * LANES..hi * LANES])
    }
}

/// Most frequent exact value of an iterator (ties break toward the smaller
/// bit pattern, so the choice is deterministic).
fn column_mode(col: impl Iterator<Item = f64>) -> f64 {
    let mut counts: Vec<(u64, u32)> = Vec::new();
    for v in col {
        let bits = v.to_bits();
        match counts.iter_mut().find(|(b, _)| *b == bits) {
            Some((_, c)) => *c += 1,
            None => counts.push((bits, 1)),
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(bits, _)| f64::from_bits(bits))
        .unwrap_or(0.0)
}

/// A block transform matrix ready for the EM solver.
#[derive(Debug, Clone)]
pub struct TransformMatrix {
    d_out: usize,
    d_in: usize,
    /// Row-major `d_out × d_in` normal block (the dense reference view).
    normal: Vec<f64>,
    /// Analyzed per-column structure; `None` when the columns are dense.
    structure: Option<StructuredColumns>,
    /// `poison_mask[i]` — output bucket `i` doubles as a poison component.
    poison_mask: Vec<bool>,
    /// Sorted indices of poison buckets (derived from the mask).
    poison_buckets: Vec<usize>,
    /// Center value of each output bucket (the paper's `ν_j`).
    output_centers: Vec<f64>,
    /// Center value of each input bucket.
    input_centers: Vec<f64>,
}

impl TransformMatrix {
    /// Builds the matrix for a numerical mechanism with `d_in` input buckets
    /// over the mechanism's input range and `d_out` output buckets over its
    /// output range.
    pub fn for_numeric<M: NumericMechanism + ?Sized>(
        mech: &M,
        d_in: usize,
        d_out: usize,
        poison: &PoisonRegion,
    ) -> Self {
        let (ilo, ihi) = mech.input_range();
        let (olo, ohi) = mech.output_range();
        let input_grid = Grid::new(ilo, ihi, d_in);
        let output_grid = Grid::new(olo, ohi, d_out);

        let mut normal = vec![0.0; d_out * d_in];
        for k in 0..d_in {
            let dist = mech.output_distribution(input_grid.center(k));
            for i in 0..d_out {
                let (a, b) = output_grid.edges(i);
                let closed_right = i + 1 == d_out;
                normal[i * d_in + k] = dist.mass_between(a, b, closed_right);
            }
        }

        let output_centers: Vec<f64> = (0..d_out).map(|i| output_grid.center(i)).collect();
        let input_centers: Vec<f64> = (0..d_in).map(|k| input_grid.center(k)).collect();
        let poison_mask = Self::mask_from_region(poison, &output_centers);
        let poison_buckets = mask_indices(&poison_mask);
        let structure = StructuredColumns::analyze(&normal, d_out, d_in);
        TransformMatrix {
            d_out,
            d_in,
            normal,
            structure,
            poison_mask,
            poison_buckets,
            output_centers,
            input_centers,
        }
    }

    /// Builds the matrix for a categorical mechanism: the normal block is the
    /// `k × k` transition matrix; poison components sit on the listed
    /// categories.
    pub fn for_categorical<M: CategoricalMechanism + ?Sized>(
        mech: &M,
        poison_categories: &[usize],
    ) -> Self {
        let k = mech.categories();
        let mut normal = vec![0.0; k * k];
        for inp in 0..k {
            for out in 0..k {
                normal[out * k + inp] = mech.transition_probability(out, inp);
            }
        }
        let mut poison_mask = vec![false; k];
        for &c in poison_categories {
            assert!(c < k, "poison category {c} out of range (k={k})");
            poison_mask[c] = true;
        }
        let poison_buckets = mask_indices(&poison_mask);
        let centers: Vec<f64> = (0..k).map(|i| i as f64).collect();
        let structure = StructuredColumns::analyze(&normal, k, k);
        TransformMatrix {
            d_out: k,
            d_in: k,
            normal,
            structure,
            poison_mask,
            poison_buckets,
            output_centers: centers.clone(),
            input_centers: centers,
        }
    }

    fn mask_from_region(poison: &PoisonRegion, output_centers: &[f64]) -> Vec<bool> {
        match poison {
            PoisonRegion::None => vec![false; output_centers.len()],
            PoisonRegion::RightOf(pivot) => {
                output_centers.iter().map(|&c| c >= *pivot).collect()
            }
            PoisonRegion::LeftOf(pivot) => output_centers.iter().map(|&c| c <= *pivot).collect(),
            PoisonRegion::Buckets(idx) => {
                let mut m = vec![false; output_centers.len()];
                for &i in idx {
                    assert!(i < m.len(), "poison bucket {i} out of range");
                    m[i] = true;
                }
                m
            }
        }
    }

    /// Number of output buckets `d'`.
    #[inline]
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Number of normal input buckets `d`.
    #[inline]
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Normal-block entry `Pr[out bucket i | input bucket k]`.
    #[inline]
    pub fn normal_entry(&self, out: usize, inp: usize) -> f64 {
        self.normal[out * self.d_in + inp]
    }

    /// Row `i` of the normal block.
    #[inline]
    pub fn normal_row(&self, out: usize) -> &[f64] {
        &self.normal[out * self.d_in..(out + 1) * self.d_in]
    }

    /// The analyzed column structure, if the normal block has one. The EM
    /// solver uses it for the `O(d' + nnz)` E-step; `None` routes to the
    /// dense row path.
    #[inline]
    pub fn structure(&self) -> Option<&StructuredColumns> {
        self.structure.as_ref()
    }

    /// Whether output bucket `i` doubles as a poison component.
    #[inline]
    pub fn is_poison(&self, i: usize) -> bool {
        self.poison_mask[i]
    }

    /// Sorted indices of poison buckets.
    #[inline]
    pub fn poison_buckets(&self) -> &[usize] {
        &self.poison_buckets
    }

    /// Center values `ν_j` of the output buckets.
    #[inline]
    pub fn output_centers(&self) -> &[f64] {
        &self.output_centers
    }

    /// Center values of the normal input buckets.
    #[inline]
    pub fn input_centers(&self) -> &[f64] {
        &self.input_centers
    }

    /// Column sums of the normal block — 1.0 for a proper mechanism, useful
    /// as a sanity check in tests and debug assertions.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.d_in];
        for i in 0..self.d_out {
            for (k, s) in sums.iter_mut().enumerate() {
                *s += self.normal_entry(i, k);
            }
        }
        sums
    }
}

fn mask_indices(mask: &[bool]) -> Vec<usize> {
    mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_ldp::{Epsilon, KRandomizedResponse, PiecewiseMechanism, SquareWave};

    #[test]
    fn pm_columns_are_stochastic() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let m = TransformMatrix::for_numeric(&mech, 16, 64, &PoisonRegion::RightOf(0.0));
        for (k, s) in m.column_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-9, "column {k} sums to {s}");
        }
    }

    #[test]
    fn sw_columns_are_stochastic() {
        let mech = SquareWave::with_epsilon(0.5).unwrap();
        let m = TransformMatrix::for_numeric(&mech, 8, 32, &PoisonRegion::None);
        for s in m.column_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(m.poison_buckets().is_empty());
    }

    #[test]
    fn right_of_zero_marks_upper_half() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let m = TransformMatrix::for_numeric(&mech, 4, 10, &PoisonRegion::RightOf(0.0));
        // Output domain symmetric about 0 with 10 buckets → upper 5 poison.
        assert_eq!(m.poison_buckets(), &[5, 6, 7, 8, 9]);
        assert!(!m.is_poison(4));
        assert!(m.is_poison(5));
    }

    #[test]
    fn left_of_zero_marks_lower_half() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let m = TransformMatrix::for_numeric(&mech, 4, 10, &PoisonRegion::LeftOf(0.0));
        assert_eq!(m.poison_buckets(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn nonzero_pivot_shifts_the_split() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let c = mech.c();
        let m = TransformMatrix::for_numeric(&mech, 4, 10, &PoisonRegion::RightOf(c / 2.0));
        // Only buckets with center ≥ C/2 (top quarter) are poison.
        for &b in m.poison_buckets() {
            assert!(m.output_centers()[b] >= c / 2.0);
        }
        assert!(m.poison_buckets().len() < 5);
        assert!(!m.poison_buckets().is_empty());
    }

    #[test]
    fn band_mass_concentrates_near_input() {
        let mech = PiecewiseMechanism::with_epsilon(2.0).unwrap();
        let m = TransformMatrix::for_numeric(&mech, 8, 64, &PoisonRegion::None);
        // For the middle input bucket, output buckets near the input carry
        // more mass than remote ones.
        let k = 4; // input center ≈ 0.125
        let center_bucket = 32;
        let far_bucket = 0;
        assert!(m.normal_entry(center_bucket, k) > m.normal_entry(far_bucket, k));
    }

    #[test]
    fn categorical_matrix_mirrors_transitions() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 5).unwrap();
        let m = TransformMatrix::for_categorical(&mech, &[2, 3]);
        assert_eq!(m.d_in(), 5);
        assert_eq!(m.d_out(), 5);
        assert_eq!(m.poison_buckets(), &[2, 3]);
        for out in 0..5 {
            for inp in 0..5 {
                assert_eq!(m.normal_entry(out, inp), mech.transition_probability(out, inp));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_poison_category() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 3).unwrap();
        TransformMatrix::for_categorical(&mech, &[7]);
    }

    /// Reconstructs `M[i][k]` from an analysis and compares to the dense
    /// entry; the floor clustering admits ~1e-13 relative slack.
    fn assert_structure_matches(m: &TransformMatrix) {
        let s = m.structure().expect("structure detected");
        for k in 0..m.d_in() {
            let (start, deltas) = s.band(k);
            for i in 0..m.d_out() {
                let rebuilt = s.floors()[k]
                    + if i >= start && i < start + deltas.len() { deltas[i - start] } else { 0.0 };
                let dense = m.normal_entry(i, k);
                assert!(
                    (rebuilt - dense).abs() <= 1e-12 * dense.abs().max(1.0),
                    "column {k} row {i}: {rebuilt} vs {dense}"
                );
            }
        }
    }

    #[test]
    fn pm_and_sw_columns_are_floor_plus_band() {
        for eps in [0.0625, 0.5, 2.0] {
            let pm = PiecewiseMechanism::with_epsilon(eps).unwrap();
            let m = TransformMatrix::for_numeric(&pm, 16, 64, &PoisonRegion::RightOf(0.0));
            assert_structure_matches(&m);
            // The PM band covers (C−1)/2C of the output domain — well under
            // the dense fallback threshold.
            assert!(m.structure().unwrap().nnz() < 16 * 64 * 3 / 4);

            let sw = SquareWave::with_epsilon(eps).unwrap();
            let m = TransformMatrix::for_numeric(&sw, 16, 64, &PoisonRegion::None);
            assert_structure_matches(&m);
        }
    }

    #[test]
    fn duchi_and_krr_analyze_exactly() {
        let duchi = dap_ldp::Duchi::with_epsilon(1.0).unwrap();
        let m = TransformMatrix::for_numeric(&duchi, 8, 32, &PoisonRegion::RightOf(0.0));
        if m.structure().is_some() {
            assert_structure_matches(&m);
        }
        let krr = KRandomizedResponse::new(Epsilon::of(1.0), 12).unwrap();
        let m = TransformMatrix::for_categorical(&krr, &[3]);
        // k-RR is q everywhere plus a diagonal spike: one band entry per
        // column.
        let s = m.structure().expect("k-RR is perfectly banded");
        assert_eq!(s.nnz(), 12);
        assert_structure_matches(&m);
    }

    #[test]
    fn padded_bands_are_lane_multiples_of_the_true_bands() {
        for (d_in, d_out) in [(16usize, 64usize), (16, 89), (8, 97), (16, 127)] {
            let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
            let m = TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
            let s = m.structure().expect("PM analyzes");
            let mut max_end = m.d_out();
            for k in 0..d_in {
                let (start, band) = s.band(k);
                let (pstart, padded) = s.band_padded(k);
                assert_eq!(start, pstart);
                assert_eq!(padded.len() % LANES, 0, "column {k} not lane-aligned");
                assert!(padded.len() - band.len() < LANES, "column {k} over-padded");
                assert_eq!(&padded[..band.len()], band, "column {k} deltas differ");
                assert!(padded[band.len()..].iter().all(|&v| v == 0.0));
                max_end = max_end.max(start + padded.len());
            }
            assert_eq!(s.padded_rows(), max_end);
        }
    }

    #[test]
    fn blocked_view_reconstructs_the_bands_exactly() {
        for (d_in, d_out) in [(16usize, 64usize), (16, 89), (8, 97), (16, 127), (16, 128)] {
            let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
            let m = TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
            let s = m.structure().expect("PM analyzes");
            assert_eq!(s.blocked_rows() % LANES, 0);
            assert!(s.blocked_rows() >= s.padded_rows());
            assert!(s.blocked_rows() - s.padded_rows() < LANES);
            // Scatter the blocked entries back into a dense delta matrix and
            // compare against the band view — same values, zero elsewhere.
            let mut dense = vec![0.0f64; s.blocked_rows() * d_in];
            for b in 0..s.n_blocks() {
                let (cols, vals) = s.block(b);
                for (e, &k) in cols.iter().enumerate() {
                    for (j, &v) in vals[e * LANES..(e + 1) * LANES].iter().enumerate() {
                        let row = b * LANES + j;
                        assert_eq!(dense[row * d_in + k as usize], 0.0, "duplicate entry");
                        dense[row * d_in + k as usize] = v;
                    }
                }
            }
            for k in 0..d_in {
                let (start, band) = s.band(k);
                for row in 0..s.blocked_rows() {
                    let expect = if row >= start && row < start + band.len() {
                        band[row - start]
                    } else {
                        0.0
                    };
                    assert_eq!(
                        dense[row * d_in + k].to_bits(),
                        expect.to_bits(),
                        "column {k} row {row}"
                    );
                }
            }
        }
    }

    #[test]
    fn unstructured_matrix_falls_back_to_dense() {
        // A hand-built matrix whose every column is a distinct ramp — no
        // floor, no band. Use the categorical constructor with a fake
        // mechanism shape by checking analyze directly through a tiny grid.
        struct Ramp;
        impl CategoricalMechanism for Ramp {
            fn epsilon(&self) -> Epsilon {
                Epsilon::of(1.0)
            }
            fn categories(&self) -> usize {
                8
            }
            fn perturb(&self, v: usize, _rng: &mut dyn rand::RngCore) -> usize {
                v
            }
            fn transition_probability(&self, out: usize, inp: usize) -> f64 {
                // Strictly increasing in `out`, different slope per `inp`.
                (out + 1) as f64 * (inp + 2) as f64 * 1e-3
            }
        }
        let m = TransformMatrix::for_categorical(&Ramp, &[]);
        assert!(m.structure().is_none(), "ramp columns must not analyze");
    }
}
