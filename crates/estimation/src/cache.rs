//! Process-wide transform-matrix cache.
//!
//! Building a [`TransformMatrix`] integrates the mechanism's conditional
//! output density over every `(input bucket, output bucket)` pair. The
//! protocol rebuilds the *same* matrices over and over — one per group per
//! trial per experiment cell, keyed only by `(mechanism, ε, d, d', poison
//! region)` — so the probe, the per-group estimation, and all bench figure
//! drivers share this cache instead.
//!
//! Matrices are immutable once built and handed out as [`Arc`]s, so cache
//! hits are a lock-protected map lookup plus a refcount bump; the lock is
//! never held while a matrix is being built by the *calling* thread for an
//! uncached mechanism. Mechanisms opt in via
//! [`NumericMechanism::matrix_cache_key`]; mechanisms without a stable key
//! (the default) get a fresh, uncached build.

use crate::transform::{PoisonRegion, TransformMatrix};
use dap_ldp::NumericMechanism;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Hashable canonical form of a [`PoisonRegion`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PoisonKey {
    None,
    RightOf(u64),
    LeftOf(u64),
    Buckets(Vec<usize>),
}

impl From<&PoisonRegion> for PoisonKey {
    fn from(region: &PoisonRegion) -> Self {
        match region {
            PoisonRegion::None => PoisonKey::None,
            PoisonRegion::RightOf(p) => PoisonKey::RightOf(p.to_bits()),
            PoisonRegion::LeftOf(p) => PoisonKey::LeftOf(p.to_bits()),
            PoisonRegion::Buckets(b) => PoisonKey::Buckets(b.clone()),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    family: &'static str,
    params: u64,
    d_in: usize,
    d_out: usize,
    poison: PoisonKey,
}

/// Entry cap: past this the cache is cleared wholesale before inserting, so
/// a long-running service sweeping many budgets cannot grow it unbounded.
/// Real workloads hold a few dozen distinct keys.
const MAX_ENTRIES: usize = 1024;

/// A keyed store of built transform matrices (see the module docs).
#[derive(Debug, Default)]
pub struct MatrixCache {
    map: Mutex<HashMap<Key, Arc<TransformMatrix>>>,
}

impl MatrixCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache used by the protocol and bench layers.
    pub fn global() -> &'static MatrixCache {
        static GLOBAL: OnceLock<MatrixCache> = OnceLock::new();
        GLOBAL.get_or_init(MatrixCache::new)
    }

    /// Cached equivalent of [`TransformMatrix::for_numeric`]. Builds (and
    /// stores, when the mechanism has a stable key) on miss.
    pub fn for_numeric(
        &self,
        mech: &dyn NumericMechanism,
        d_in: usize,
        d_out: usize,
        poison: &PoisonRegion,
    ) -> Arc<TransformMatrix> {
        let Some((family, params)) = mech.matrix_cache_key() else {
            return Arc::new(TransformMatrix::for_numeric(mech, d_in, d_out, poison));
        };
        let key = Key { family, params, d_in, d_out, poison: poison.into() };
        if let Some(hit) = self.map.lock().expect("matrix cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Build outside the lock: misses are rare and construction is the
        // expensive part. Concurrent misses on the same key build twice and
        // the second insert wins — both values are bit-identical.
        let built = Arc::new(TransformMatrix::for_numeric(mech, d_in, d_out, poison));
        let mut map = self.map.lock().expect("matrix cache poisoned");
        if map.len() >= MAX_ENTRIES {
            map.clear();
        }
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Number of cached matrices.
    pub fn len(&self) -> usize {
        self.map.lock().expect("matrix cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached matrix.
    pub fn clear(&self) {
        self.map.lock().expect("matrix cache poisoned").clear();
    }
}

/// Shorthand for [`MatrixCache::for_numeric`] on the global cache.
pub fn cached_for_numeric(
    mech: &dyn NumericMechanism,
    d_in: usize,
    d_out: usize,
    poison: &PoisonRegion,
) -> Arc<TransformMatrix> {
    MatrixCache::global().for_numeric(mech, d_in, d_out, poison)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_ldp::PiecewiseMechanism;

    #[test]
    fn hits_share_the_same_allocation() {
        let cache = MatrixCache::new();
        let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
        let a = cache.for_numeric(&mech, 8, 32, &PoisonRegion::RightOf(0.0));
        let b = cache.for_numeric(&mech, 8, 32, &PoisonRegion::RightOf(0.0));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_matrices() {
        let cache = MatrixCache::new();
        let m1 = PiecewiseMechanism::with_epsilon(0.5).unwrap();
        let m2 = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let a = cache.for_numeric(&m1, 8, 32, &PoisonRegion::RightOf(0.0));
        let b = cache.for_numeric(&m2, 8, 32, &PoisonRegion::RightOf(0.0));
        let c = cache.for_numeric(&m1, 8, 32, &PoisonRegion::LeftOf(0.0));
        let d = cache.for_numeric(&m1, 8, 64, &PoisonRegion::RightOf(0.0));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cached_matrix_equals_uncached_build() {
        let cache = MatrixCache::new();
        let mech = PiecewiseMechanism::with_epsilon(0.25).unwrap();
        let region = PoisonRegion::Buckets(vec![3, 5]);
        let cached = cache.for_numeric(&mech, 6, 24, &region);
        let fresh = TransformMatrix::for_numeric(&mech, 6, 24, &region);
        for i in 0..24 {
            assert_eq!(cached.normal_row(i), fresh.normal_row(i));
        }
        assert_eq!(cached.poison_buckets(), fresh.poison_buckets());
    }

    #[test]
    fn keyless_mechanisms_bypass_the_cache() {
        struct NoKey(PiecewiseMechanism);
        impl NumericMechanism for NoKey {
            fn epsilon(&self) -> dap_ldp::Epsilon {
                self.0.epsilon()
            }
            fn input_range(&self) -> (f64, f64) {
                self.0.input_range()
            }
            fn output_range(&self) -> (f64, f64) {
                self.0.output_range()
            }
            fn perturb(&self, v: f64, rng: &mut dyn rand::RngCore) -> f64 {
                self.0.perturb(v, rng)
            }
            fn output_distribution(&self, v: f64) -> dap_ldp::OutputDistribution {
                self.0.output_distribution(v)
            }
        }
        let cache = MatrixCache::new();
        let mech = NoKey(PiecewiseMechanism::with_epsilon(0.5).unwrap());
        let a = cache.for_numeric(&mech, 4, 16, &PoisonRegion::None);
        let b = cache.for_numeric(&mech, 4, 16, &PoisonRegion::None);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(cache.is_empty());
    }
}
