//! Micro-benchmarks for the E-step band kernels and the end-to-end solver
//! at the fig7 working shape.
//!
//! Compares the portable `axpy`/`dot` kernels against the `axpy_lanes`/
//! `dot_lanes` lane loops on lane-padded buffers, and times a fixed-
//! iteration EM solve (d_in=16, d_out=128 — the shape the fig7 protocol
//! cells hit hardest). Set `CRITERION_JSON=BENCH_kernels.json` to emit one
//! JSON line per benchmark; that is how the checked-in `BENCH_kernels.json`
//! is produced:
//!
//! ```text
//! CRITERION_JSON=BENCH_kernels.json cargo bench -p dap-estimation --bench band_kernels
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dap_estimation::em::kernels::{axpy, axpy_lanes, dot, dot_lanes};
use dap_estimation::em::{self, EmOptions, MStep};
use dap_estimation::rng::seeded;
use dap_estimation::{Grid, PoisonRegion, TransformMatrix, LANES};
use dap_ldp::{NumericMechanism, PiecewiseMechanism};
use rand::Rng;

/// Deterministic pseudo-band of `len` values in (0, 1] — shaped like the
/// hump-with-tails deltas a PM column carries, without mechanism plumbing.
fn synth(len: usize, salt: u64) -> Vec<f64> {
    let mut rng = seeded(0xba5e ^ salt);
    (0..len).map(|_| rng.gen_range(1e-4..1.0)).collect()
}

fn padded_len(len: usize) -> usize {
    len.div_ceil(LANES) * LANES
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    group.sample_size(40);
    // 97 ≈ the fig7 band length (odd, forces a tail in the portable kernel);
    // 1600 ≈ the full nnz of one d_in=16 matrix swept per iteration.
    for len in [97usize, 256, 1600] {
        let a = synth(len, 1);
        let b = synth(len, 2);
        let mut ap = a.clone();
        let mut bp = b.clone();
        ap.resize(padded_len(len), 0.0);
        bp.resize(padded_len(len), 0.0);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("portable", len), &len, |bench, _| {
            bench.iter(|| std::hint::black_box(dot(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("lanes", len), &len, |bench, _| {
            bench.iter(|| std::hint::black_box(dot_lanes(&ap, &bp)))
        });
    }
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("axpy");
    group.sample_size(40);
    for len in [97usize, 256, 1600] {
        let v = synth(len, 3);
        let mut vp = v.clone();
        vp.resize(padded_len(len), 0.0);
        let mut out = vec![0.0f64; padded_len(len)];
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("portable", len), &len, |bench, _| {
            bench.iter(|| {
                axpy(&mut out[..len], &v, 0.7);
                std::hint::black_box(out[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("lanes", len), &len, |bench, _| {
            bench.iter(|| {
                axpy_lanes(&mut out, &vp, 0.7);
                std::hint::black_box(out[0])
            })
        });
    }
    group.finish();
}

/// Fixed-iteration EM solve at the fig7 working shape. `tol = 0` pins the
/// iteration count at `max_iters`, so this measures per-iteration E-step
/// cost (structured path; lane kernels when the feature is on) rather than
/// convergence luck.
fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_solve");
    group.sample_size(10);
    let eps = 1.0;
    let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
    let mut rng = seeded(7);
    let reports: Vec<f64> = (0..20_000)
        .map(|_| mech.perturb(rng.gen_range(-0.9..0.9), &mut rng))
        .collect();
    let (olo, ohi) = mech.output_range();
    let d_in = 16;
    let d_out = 128;
    let counts = Grid::new(olo, ohi, d_out).counts(&reports);
    let matrix = TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
    assert!(matrix.structure().is_some(), "fig7 shape must take the structured path");
    let opts = EmOptions { tol: 0.0, max_iters: 50 };
    group.throughput(Throughput::Elements(50));
    group.bench_function("fig7_shape_50_iters", |bench| {
        bench.iter(|| std::hint::black_box(em::solve(&matrix, &counts, MStep::Free, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench_dot, bench_axpy, bench_solve);
criterion_main!(benches);
