//! Expectation-Maximization Filter (EMF) and its post-processing schemes.
//!
//! EMF is the paper's probing engine: from one batch of LDP reports it
//! reconstructs, jointly, the frequency histogram `x̂` of honest users over
//! the *input* domain and the histogram `ŷ` of poison values over the
//! poisoned half of the *output* domain. Three Byzantine features fall out:
//!
//! 1. the coalition proportion `γ̂ = Σ ŷ_j` (Eq. 9),
//! 2. the poisoned side, by comparing `Var(x̂)` under left/right hypotheses
//!    (Algorithm 3 — Theorem 3 shows `x̂` of the correct side converges to a
//!    near-uniform histogram as ε → 0),
//! 3. the poison-value histogram and its mean `M_α` (Eq. 11).
//!
//! Post-processing:
//! * **EMF\*** (Algorithm 4) re-runs the M-step under the constraints
//!   `Σ x̂ = 1 − γ̂`, `Σ ŷ = γ̂` (Theorem 4),
//! * **CEMF\*** additionally *suppresses* poison buckets whose EMF mass is
//!   below a threshold, which Theorem 5 shows monotonically improves the
//!   reconstruction when attackers concentrate on few buckets.

pub mod config;
pub mod features;
pub mod filter;
pub mod probe;

pub use config::EmfConfig;
pub use features::{pessimistic_init, ByzantineFeatures};
pub use filter::{cemf_star, cemf_star_threshold, emf, emf_star, poison_mean};
pub use probe::{probe_side, SideProbe};
