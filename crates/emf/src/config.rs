//! EMF sizing and stopping configuration.

use dap_estimation::{EmOptions, Grid};

/// Bucketization and stopping parameters for one EMF run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmfConfig {
    /// Input buckets `d` (honest-user histogram resolution).
    pub d_in: usize,
    /// Output buckets `d'` (report histogram resolution).
    pub d_out: usize,
    /// EM stopping rule.
    pub em: EmOptions,
}

impl EmfConfig {
    /// Floor on the input-bucket count. The paper's rule
    /// `d = ⌊d'(e^{ε/2}−1)/(e^{ε/2}+1)⌋` is calibrated for `d' = 1000`
    /// (N = 10⁶), where it yields `d = 15` even at ε = 1/16; at smaller `d'`
    /// it can collapse to 2-3 buckets, which destroys the `Var(x̂)` side
    /// probe (Algorithm 3 compares variances of that vector). The floor
    /// restores the paper's effective probe resolution.
    pub const MIN_D_IN: usize = 16;

    fn floored_d_in(d_out: usize, eps: f64) -> usize {
        let rule = Grid::input_bucket_count(d_out, eps);
        let floor = Self::MIN_D_IN.min((d_out / 4).max(2));
        rule.max(floor)
    }

    /// The paper's sizing rule (§VI-A): `d' = ⌊√N⌋` (evened),
    /// `d = ⌊d'(e^{ε/2}−1)/(e^{ε/2}+1)⌋` (floored, see [`Self::MIN_D_IN`]),
    /// stopping at `τ = 0.01·e^ε`.
    pub fn paper_default(n_reports: usize, eps: f64) -> Self {
        let d_out = Grid::output_bucket_count(n_reports);
        let d_in = Self::floored_d_in(d_out, eps);
        EmfConfig { d_in, d_out, em: EmOptions::paper_default(eps) }
    }

    /// Same sizing but with a hard cap on `d'`, keeping EM cost bounded for
    /// very large populations (cost is `O(d'·d)` per iteration).
    pub fn capped(n_reports: usize, eps: f64, max_d_out: usize) -> Self {
        let mut cfg = Self::paper_default(n_reports, eps);
        if cfg.d_out > max_d_out {
            let d_out = if max_d_out.is_multiple_of(2) { max_d_out } else { max_d_out - 1 };
            cfg.d_out = d_out.max(2);
            cfg.d_in = Self::floored_d_in(cfg.d_out, eps);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_follows_rules() {
        let cfg = EmfConfig::paper_default(1_000_000, 2.0);
        assert_eq!(cfg.d_out, 1000);
        assert_eq!(cfg.d_in, 462);
        assert!((cfg.em.tol - 0.01 * 2.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn capped_reduces_d_out() {
        let cfg = EmfConfig::capped(1_000_000, 1.0, 301);
        assert_eq!(cfg.d_out, 300);
        assert!(cfg.d_in >= 2);
        // No-op when under the cap.
        let cfg = EmfConfig::capped(10_000, 1.0, 1000);
        assert_eq!(cfg.d_out, 100);
    }

    #[test]
    fn d_in_floor_preserves_probe_resolution() {
        // At ε = 1/16 the raw rule gives d' = 64 → d = 2·0 → clamped 2; the
        // floor lifts it so the Var(x̂) probe has something to compare.
        let cfg = EmfConfig::capped(30_000, 1.0 / 16.0, 64);
        assert_eq!(cfg.d_out, 64);
        assert!(cfg.d_in >= 16, "d_in {}", cfg.d_in);
        // The floor never exceeds d'/4 for small grids.
        let tiny = EmfConfig::capped(30_000, 1.0 / 16.0, 16);
        assert!(tiny.d_in >= 4 && tiny.d_in <= 16, "d_in {}", tiny.d_in);
    }

    #[test]
    fn tiny_populations_stay_valid() {
        let cfg = EmfConfig::paper_default(3, 0.0625);
        assert!(cfg.d_out >= 2);
        assert!(cfg.d_in >= 2);
    }
}
