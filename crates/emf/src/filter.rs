//! EMF (Algorithm 2), EMF\* (Algorithm 4) and CEMF\* (Theorem 5).
//!
//! These are thin, well-named instantiations of the generic EM solver in
//! `dap-estimation`: the paper's three variants differ only in M-step
//! normalization and poison-bucket initialization.

use dap_estimation::em::{self, EmOptions, EmOutcome, MStep};
use dap_estimation::TransformMatrix;

/// Plain EMF (Algorithm 2): free M-step, uniform initialization.
///
/// ```
/// use dap_emf::emf;
/// use dap_estimation::{EmOptions, PoisonRegion, TransformMatrix};
/// use dap_ldp::PiecewiseMechanism;
///
/// let mech = PiecewiseMechanism::with_epsilon(0.25).unwrap();
/// let matrix = TransformMatrix::for_numeric(&mech, 8, 32, &PoisonRegion::RightOf(0.0));
/// // A synthetic report histogram: uniform honest mass plus a spike in the
/// // topmost (poisoned-side) bucket.
/// let mut counts = vec![100.0; 32];
/// counts[31] += 3_000.0;
/// let outcome = emf(&matrix, &counts, &EmOptions::default());
/// // The spike is attributed to the poison block, not to honest users.
/// assert!(outcome.poison[31] > 0.3, "poison mass {}", outcome.poison[31]);
/// ```
pub fn emf(matrix: &TransformMatrix, counts: &[f64], opts: &EmOptions) -> EmOutcome {
    em::solve(matrix, counts, MStep::Free, opts)
}

/// EMF\* (Algorithm 4): M-step constrained to `Σ x̂ = 1 − γ̂`, `Σ ŷ = γ̂`,
/// where `γ̂` comes from a prior EMF pass (typically on the most-private
/// group, per Theorem 3).
pub fn emf_star(
    matrix: &TransformMatrix,
    counts: &[f64],
    gamma: f64,
    opts: &EmOptions,
) -> EmOutcome {
    em::solve(matrix, counts, MStep::Constrained { gamma }, opts)
}

/// The experiment section's suppression threshold for CEMF\*:
/// `0.5·γ̂ / |poison buckets|` (§VI-C uses `0.5 γ̂/(d'/2)`).
pub fn cemf_star_threshold(gamma: f64, poison_buckets: usize) -> f64 {
    if poison_buckets == 0 {
        return f64::INFINITY;
    }
    0.5 * gamma / poison_buckets as f64
}

/// CEMF\*: suppresses the poison buckets whose mass in `base` (an EMF/EMF\*
/// outcome on the same matrix) falls below `threshold`, then re-runs the
/// constrained EM. Suppressed buckets are initialized to exactly zero, which
/// keeps them at zero for the whole run (their E-step responsibility
/// vanishes) — precisely the paper's "treat these buckets as if no poison
/// values are there".
pub fn cemf_star(
    matrix: &TransformMatrix,
    counts: &[f64],
    gamma: f64,
    threshold: f64,
    base: &EmOutcome,
    opts: &EmOptions,
) -> EmOutcome {
    assert_eq!(base.poison.len(), matrix.d_out(), "base outcome shape mismatch");
    let n_components = matrix.d_in() + matrix.poison_buckets().len();
    let share = 1.0 / n_components.max(1) as f64;
    let x0 = vec![share; matrix.d_in()];
    let mut y0 = vec![0.0; matrix.d_out()];
    let mut survivors = 0usize;
    for &j in matrix.poison_buckets() {
        if base.poison[j] >= threshold {
            y0[j] = share;
            survivors += 1;
        }
    }
    if survivors == 0 {
        // Everything suppressed — the attack mass is below noise. Fall back
        // to a pure normal-block fit with γ = 0 so the caller still gets a
        // usable histogram.
        return em::solve_with_init(
            matrix,
            counts,
            MStep::Constrained { gamma: 0.0 },
            &x0,
            &y0,
            opts,
        );
    }
    em::solve_with_init(matrix, counts, MStep::Constrained { gamma }, &x0, &y0, opts)
}

/// Poison-value mean `M_α` from a reconstructed poison histogram (Eq. 11):
/// `Σ ŷ_j ν_j / Σ ŷ_j`, with `ν_j` the output-bucket centers.
///
/// Returns `None` when the histogram carries no mass (no detectable attack).
pub fn poison_mean(outcome: &EmOutcome, output_centers: &[f64]) -> Option<f64> {
    assert_eq!(outcome.poison.len(), output_centers.len(), "centers shape mismatch");
    let mass: f64 = outcome.poison.iter().sum();
    if mass <= 0.0 {
        return None;
    }
    let weighted: f64 = outcome
        .poison
        .iter()
        .zip(output_centers)
        .map(|(y, nu)| y * nu)
        .sum();
    Some(weighted / mass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::grid::Grid;
    use dap_estimation::PoisonRegion;
    use dap_ldp::{NumericMechanism, PiecewiseMechanism};
    use rand::Rng;

    /// Simulate N honest users (values ~ spike at -0.5) + poison uniform on
    /// the top quarter of the output domain.
    fn scenario(
        eps: f64,
        n: usize,
        gamma: f64,
        seed: u64,
    ) -> (TransformMatrix, Vec<f64>, PiecewiseMechanism) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mut rng = dap_estimation::rng::seeded(seed);
        let m = (n as f64 * gamma).round() as usize;
        let honest = n - m;
        let c = mech.c();
        let mut reports: Vec<f64> =
            (0..honest).map(|_| mech.perturb(-0.5, &mut rng)).collect();
        reports.extend((0..m).map(|_| rng.gen_range((0.75 * c)..=c)));

        let d_out = 64;
        let d_in = 8;
        let matrix =
            TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
        let grid = Grid::new(-c, c, d_out);
        let counts = grid.counts(&reports);
        (matrix, counts, mech)
    }

    #[test]
    fn emf_estimates_gamma_at_small_epsilon() {
        let (matrix, counts, _) = scenario(0.125, 40_000, 0.25, 1);
        let out = emf(&matrix, &counts, &EmOptions { tol: 1e-6, max_iters: 1000 });
        let gamma_hat = out.poison_mass();
        assert!(
            (gamma_hat - 0.25).abs() < 0.05,
            "gamma_hat = {gamma_hat}, expected ≈ 0.25"
        );
    }

    #[test]
    fn emf_star_pins_total_poison_mass() {
        let (matrix, counts, _) = scenario(0.5, 20_000, 0.2, 2);
        let out = emf_star(&matrix, &counts, 0.2, &EmOptions::default());
        assert!((out.poison_mass() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn poison_mean_locates_the_attack() {
        let (matrix, counts, mech) = scenario(0.25, 40_000, 0.25, 3);
        let out = emf(&matrix, &counts, &EmOptions { tol: 1e-6, max_iters: 1000 });
        let m_alpha = poison_mean(&out, matrix.output_centers()).expect("attack present");
        // True poison mean is 0.875·C (uniform on [0.75C, C]).
        let c = mech.c();
        assert!(
            (m_alpha - 0.875 * c).abs() < 0.1 * c,
            "M_alpha = {m_alpha}, C = {c}"
        );
    }

    #[test]
    fn poison_mean_is_none_without_mass() {
        let (matrix, counts, _) = scenario(0.5, 5_000, 0.2, 4);
        let mut out = emf(&matrix, &counts, &EmOptions::default());
        out.poison.iter_mut().for_each(|v| *v = 0.0);
        assert!(poison_mean(&out, matrix.output_centers()).is_none());
    }

    #[test]
    fn cemf_star_suppresses_empty_buckets() {
        // Attack concentrated on the top quarter: buckets below 0.75C on the
        // poisoned side should end up with zero mass after suppression.
        let (matrix, counts, mech) = scenario(0.25, 40_000, 0.25, 5);
        let opts = EmOptions { tol: 1e-6, max_iters: 1000 };
        let base = emf(&matrix, &counts, &opts);
        let gamma = base.poison_mass();
        let thr = cemf_star_threshold(gamma, matrix.poison_buckets().len());
        let refined = cemf_star(&matrix, &counts, gamma, thr, &base, &opts);

        let c = mech.c();
        let suppressed_mass: f64 = matrix
            .poison_buckets()
            .iter()
            .filter(|&&j| matrix.output_centers()[j] < 0.7 * c)
            .map(|&j| refined.poison[j])
            .sum();
        let kept_mass: f64 = refined.poison.iter().sum();
        assert!(
            suppressed_mass < 0.1 * kept_mass,
            "low buckets kept {suppressed_mass} of {kept_mass}"
        );
        assert!((kept_mass - gamma).abs() < 1e-9);
    }

    #[test]
    fn cemf_star_with_everything_suppressed_degrades_gracefully() {
        let (matrix, counts, _) = scenario(0.5, 5_000, 0.0, 6);
        let opts = EmOptions::default();
        let base = emf(&matrix, &counts, &opts);
        let refined = cemf_star(&matrix, &counts, 0.0, f64::INFINITY, &base, &opts);
        assert!(refined.poison.iter().all(|&v| v == 0.0));
        assert!((refined.normal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_formula() {
        assert!((cemf_star_threshold(0.25, 32) - 0.5 * 0.25 / 32.0).abs() < 1e-15);
        assert!(cemf_star_threshold(0.25, 0).is_infinite());
    }
}
