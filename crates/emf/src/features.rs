//! Byzantine feature extraction: the full probing pipeline of §IV-C.

use crate::config::EmfConfig;
use crate::filter::poison_mean;
use crate::probe::{probe_side, SideProbe};
use dap_attack::Side;
use dap_estimation::grid::Grid;
use dap_ldp::NumericMechanism;

/// The three Byzantine features EMF probes (§IV-C), plus the raw probe.
#[derive(Debug, Clone)]
pub struct ByzantineFeatures {
    /// The poisoned side (Algorithm 3).
    pub side: Side,
    /// Estimated coalition proportion `γ̂` (Eq. 9).
    pub gamma: f64,
    /// Poison-value histogram over the `d'` output buckets (zero off the
    /// poisoned side).
    pub poison_hist: Vec<f64>,
    /// Poison-value mean `M_α` (Eq. 11); `None` when no poison mass was
    /// reconstructed.
    pub poison_mean: Option<f64>,
    /// Output-bucket centers `ν_j` matching `poison_hist`.
    pub output_centers: Vec<f64>,
    /// Both-hypothesis probe detail (Table I reports its two variances).
    pub probe: SideProbe,
}

impl ByzantineFeatures {
    /// Probes all features from raw reports.
    ///
    /// * `mech` — the mechanism the honest users ran,
    /// * `reports` — the collected perturbed/poison values,
    /// * `o_prime` — pessimistic initial mean (0 by the paper's default),
    /// * `config` — bucketization and stopping parameters.
    pub fn probe(
        mech: &dyn NumericMechanism,
        reports: &[f64],
        o_prime: f64,
        config: &EmfConfig,
    ) -> Self {
        let (olo, ohi) = mech.output_range();
        let grid = Grid::new(olo, ohi, config.d_out);
        let counts = grid.counts(reports);
        let probe = probe_side(mech, &counts, config.d_in, o_prime, &config.em);
        let chosen = probe.chosen();
        let gamma = chosen.poison_mass();
        let poison_hist = chosen.poison.clone();
        let output_centers: Vec<f64> = (0..config.d_out).map(|i| grid.center(i)).collect();
        let poison_mean = poison_mean(chosen, &output_centers);
        ByzantineFeatures { side: probe.side, gamma, poison_hist, poison_mean, output_centers, probe }
    }

    /// Estimated number of Byzantine users among `n_reports` reports
    /// (`m̂ = γ̂·N`).
    pub fn byzantine_count(&self, n_reports: usize) -> f64 {
        self.gamma * n_reports as f64
    }
}

/// Pessimistic initialization `O'` of the true mean (Theorem 2): remove the
/// `⌈γ_sup·N⌉` most extreme values on the hypothesized poisoned side and
/// average the rest. Guarantees `O' ≤ O` when the poison is on the right
/// (and symmetrically for the left), so the BBA poison range in the analysis
/// covers the true attack's range.
///
/// # Panics
/// If `gamma_sup` is not in `[0, 1)` or `values` is empty.
pub fn pessimistic_init(values: &[f64], gamma_sup: f64, side: Side) -> f64 {
    assert!((0.0..1.0).contains(&gamma_sup), "gamma_sup {gamma_sup} outside [0, 1)");
    assert!(!values.is_empty(), "cannot initialize O' from no data");
    let n = values.len();
    let k = (gamma_sup * n as f64).ceil() as usize;
    let k = k.min(n - 1);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reports"));
    let kept: &[f64] = match side {
        Side::Right => &sorted[..n - k],
        Side::Left => &sorted[k..],
    };
    kept.iter().sum::<f64>() / kept.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;
    use dap_ldp::PiecewiseMechanism;
    use rand::Rng;

    fn simulate(eps: f64, n: usize, gamma: f64, seed: u64) -> (Vec<f64>, PiecewiseMechanism) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mut rng = seeded(seed);
        let c = mech.c();
        let m = (n as f64 * gamma).round() as usize;
        let mut reports: Vec<f64> = (0..n - m)
            .map(|_| mech.perturb(rng.gen_range(-0.5..=0.1), &mut rng))
            .collect();
        reports.extend((0..m).map(|_| rng.gen_range((0.5 * c)..=c)));
        (reports, mech)
    }

    #[test]
    fn full_probe_recovers_all_three_features() {
        let (reports, mech) = simulate(0.125, 40_000, 0.25, 1);
        let config = EmfConfig::capped(reports.len(), 0.125, 64);
        let f = ByzantineFeatures::probe(&mech, &reports, 0.0, &config);
        assert_eq!(f.side, Side::Right);
        assert!((f.gamma - 0.25).abs() < 0.06, "gamma {}", f.gamma);
        let c = mech.c();
        let m_alpha = f.poison_mean.expect("attack detected");
        assert!(
            (m_alpha - 0.75 * c).abs() < 0.15 * c,
            "poison mean {m_alpha} (C={c})"
        );
        assert!((f.byzantine_count(reports.len()) - 10_000.0).abs() < 2_500.0);
    }

    #[test]
    fn probe_without_attack_reports_small_gamma() {
        let (reports, mech) = simulate(0.125, 40_000, 0.0, 2);
        let config = EmfConfig::capped(reports.len(), 0.125, 64);
        let f = ByzantineFeatures::probe(&mech, &reports, 0.0, &config);
        // Fig. 5c: false positives stay below ≈0.05 at small ε.
        assert!(f.gamma < 0.08, "false positive gamma {}", f.gamma);
    }

    #[test]
    fn pessimistic_init_is_below_true_mean_for_right_attacks() {
        let mut rng = seeded(3);
        let honest: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        let true_mean = dap_estimation::stats::mean(&honest);
        let mut all = honest;
        all.extend(std::iter::repeat_n(3.0, 2_000)); // poison at DR
        let o_prime = pessimistic_init(&all, 0.5, Side::Right);
        assert!(o_prime <= true_mean + 1e-9, "O' = {o_prime} > O = {true_mean}");
    }

    #[test]
    fn pessimistic_init_mirrors_for_left_attacks() {
        let mut rng = seeded(4);
        let honest: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        let true_mean = dap_estimation::stats::mean(&honest);
        let mut all = honest;
        all.extend(std::iter::repeat_n(-3.0, 2_000));
        let o_prime = pessimistic_init(&all, 0.5, Side::Left);
        assert!(o_prime >= true_mean - 1e-9, "O' = {o_prime} < O = {true_mean}");
    }

    #[test]
    fn pessimistic_init_with_zero_gamma_sup_is_plain_mean() {
        let values = [1.0, 2.0, 3.0];
        let o = pessimistic_init(&values, 0.0, Side::Right);
        assert!((o - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn pessimistic_init_rejects_bad_gamma_sup() {
        pessimistic_init(&[1.0], 1.0, Side::Right);
    }
}
