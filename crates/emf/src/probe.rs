//! Poisoned-side probing (Algorithm 3).
//!
//! Runs EMF twice — once hypothesizing poison on the left of `O'`, once on
//! the right. The paper's Algorithm 3 picks the side whose reconstructed
//! *normal* histogram has the smaller variance (Theorem 3: under the correct
//! hypothesis and small ε the normal histogram converges to near-uniform).
//!
//! This implementation *decides* by converged **log-likelihood** instead,
//! while still reporting both variances (Table I). The two hypotheses have
//! identical parameter counts, so the likelihood comparison is a fair model
//! selection; the variance criterion is provably equivalent in Theorem 3's
//! ε → 0, N → ∞ regime but is brittle at finite scale: under a *concentrated*
//! attack (e.g. all poison at `C`) the wrong-side EM stalls at a flat,
//! low-variance `x̂` long before the paper's `τ = 0.01·e^ε` stopping rule
//! fires, and the variance rule then picks the hypothesis that fits the data
//! worse by thousands of log-likelihood points. When the two rules disagree,
//! [`SideProbe::rules_agree`] is `false` so callers can log or re-probe.

use crate::filter::emf;
use dap_attack::Side;
use dap_estimation::em::{EmOptions, EmOutcome};
use dap_estimation::stats::variance;
use dap_estimation::{cached_for_numeric, PoisonRegion};
use dap_ldp::NumericMechanism;

/// Outcome of the side probe: the chosen side plus both hypothesis runs
/// (Table I reports exactly these two variances).
#[derive(Debug, Clone)]
pub struct SideProbe {
    /// The side the probe selects (by likelihood; see module docs).
    pub side: Side,
    /// `Var(x̂)` under the left-poison hypothesis.
    pub var_left: f64,
    /// `Var(x̂)` under the right-poison hypothesis.
    pub var_right: f64,
    /// EMF outcome under the left hypothesis.
    pub left: EmOutcome,
    /// EMF outcome under the right hypothesis.
    pub right: EmOutcome,
}

impl SideProbe {
    /// The EMF outcome for the chosen side.
    pub fn chosen(&self) -> &EmOutcome {
        match self.side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The side Algorithm 3's literal variance rule would select.
    pub fn side_by_variance(&self) -> Side {
        if self.var_left < self.var_right {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// Whether the likelihood and variance criteria agree (they do in
    /// Theorem 3's regime; disagreement signals a concentrated attack or an
    /// under-resolved probe).
    pub fn rules_agree(&self) -> bool {
        self.side == self.side_by_variance()
    }
}

/// Algorithm 3: probes the poisoned side of `counts` (a `d'`-bucket report
/// histogram for `mech`) around the pivot `o_prime`.
pub fn probe_side(
    mech: &dyn NumericMechanism,
    counts: &[f64],
    d_in: usize,
    o_prime: f64,
    opts: &EmOptions,
) -> SideProbe {
    let d_out = counts.len();
    let ml = cached_for_numeric(mech, d_in, d_out, &PoisonRegion::LeftOf(o_prime));
    let mr = cached_for_numeric(mech, d_in, d_out, &PoisonRegion::RightOf(o_prime));
    let left = emf(&ml, counts, opts);
    let right = emf(&mr, counts, opts);
    let var_left = variance(&left.normal);
    let var_right = variance(&right.normal);
    let side =
        if left.log_likelihood > right.log_likelihood { Side::Left } else { Side::Right };
    SideProbe { side, var_left, var_right, left, right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::grid::Grid;
    use dap_ldp::PiecewiseMechanism;
    use rand::Rng;

    fn report_counts(
        eps: f64,
        n: usize,
        gamma: f64,
        attack_side: Side,
        seed: u64,
    ) -> (Vec<f64>, PiecewiseMechanism) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mut rng = dap_estimation::rng::seeded(seed);
        let c = mech.c();
        let m = (n as f64 * gamma).round() as usize;
        let mut reports: Vec<f64> = (0..n - m)
            .map(|_| mech.perturb(rng.gen_range(-0.6..=0.4), &mut rng))
            .collect();
        let (lo, hi) = match attack_side {
            Side::Right => (c / 2.0, c),
            Side::Left => (-c, -c / 2.0),
        };
        reports.extend((0..m).map(|_| rng.gen_range(lo..=hi)));
        let grid = Grid::new(-c, c, 64);
        (grid.counts(&reports), mech)
    }

    #[test]
    fn detects_right_side_attack() {
        let (counts, mech) = report_counts(0.25, 30_000, 0.25, Side::Right, 1);
        let probe = probe_side(&mech, &counts, 8, 0.0, &EmOptions { tol: 1e-5, max_iters: 500 });
        assert_eq!(probe.side, Side::Right);
        assert!(probe.var_right < probe.var_left);
    }

    #[test]
    fn detects_left_side_attack() {
        let (counts, mech) = report_counts(0.25, 30_000, 0.25, Side::Left, 2);
        let probe = probe_side(&mech, &counts, 8, 0.0, &EmOptions { tol: 1e-5, max_iters: 500 });
        assert_eq!(probe.side, Side::Left);
        assert!(probe.var_left < probe.var_right);
    }

    #[test]
    fn chosen_returns_matching_outcome() {
        let (counts, mech) = report_counts(0.25, 10_000, 0.3, Side::Right, 3);
        let probe = probe_side(&mech, &counts, 8, 0.0, &EmOptions::default());
        let gamma_chosen = probe.chosen().poison_mass();
        assert!((gamma_chosen - probe.right.poison_mass()).abs() < 1e-12);
    }

    #[test]
    fn side_detection_works_across_budgets() {
        for (i, &eps) in [0.0625, 0.125, 0.5].iter().enumerate() {
            let (counts, mech) = report_counts(eps, 30_000, 0.25, Side::Right, 10 + i as u64);
            let probe =
                probe_side(&mech, &counts, 8, 0.0, &EmOptions { tol: 1e-5, max_iters: 500 });
            assert_eq!(probe.side, Side::Right, "failed at eps={eps}");
        }
    }

    #[test]
    fn concentrated_point_attack_is_probed_correctly() {
        // Regression: all poison at exactly +C lands in one output bucket;
        // the wrong-side EM stalls at a flat low-variance x̂ under the
        // paper's stopping rule, so Algorithm 3's literal variance rule
        // flips — the likelihood decision must not.
        let mech = PiecewiseMechanism::with_epsilon(0.0625).unwrap();
        let mut rng = dap_estimation::rng::seeded(77);
        let c = mech.c();
        let mut reports: Vec<f64> = (0..30_000)
            .map(|_| mech.perturb(rng.gen_range(-0.6..=0.4), &mut rng))
            .collect();
        reports.extend(std::iter::repeat_n(c, 10_000));
        let grid = Grid::new(-c, c, 128);
        let counts = grid.counts(&reports);
        let probe = probe_side(&mech, &counts, 16, 0.0, &EmOptions::paper_default(0.0625));
        assert_eq!(probe.side, Side::Right);
        assert!(
            probe.chosen().poison_mass() > 0.15,
            "gamma {}",
            probe.chosen().poison_mass()
        );
        // Documents the brittleness: the two rules genuinely disagree here.
        assert!(!probe.rules_agree(), "expected the variance rule to flip on this input");
    }
}
