//! Durable sessions: a write-ahead journal behind pluggable storage.
//!
//! A `dap-wire/v1` daemon that dies loses every ingested report — the
//! paper's aggregator (§V, Fig. 3) is a long-lived service, so the session
//! needs to survive a crash. This module adds durability in three layers:
//!
//! * [`StorageBackend`] — the pluggable byte store: an append-only journal
//!   plus one atomically-replaceable checkpoint slot. [`MemoryBackend`]
//!   (tests, ephemeral daemons), [`FileBackend`] (a directory with
//!   `journal.log` and `checkpoint.part`) and [`FaultBackend`] (a test
//!   wrapper that severs writes at a configured byte offset) ship with the
//!   crate; both real backends are std-only.
//! * [`Journal`] — record framing over a backend: each record is
//!   `[u32 len][u64 FNV digest][payload]` (big-endian prefixes) behind a
//!   `dap-journal/v1 <epoch>` header line, and the checkpoint slot holds a
//!   `dap-checkpoint/v1 <epoch> <covered> <digest>` envelope. The epoch
//!   makes compaction crash-safe: a checkpoint records how many journal
//!   records of which epoch it absorbed, truncation bumps the epoch, and
//!   recovery replays the tail (same epoch) or everything (next epoch) —
//!   every crash window between the two writes resolves to the same state.
//! * [`DurableSession`] — a [`DapSession`] with write-ahead semantics:
//!   every accepted `ingest` / `ingest_batch` / `merge_part` is validated,
//!   appended to the journal, and only then applied, so an acknowledged
//!   operation is always recoverable. Record payloads reuse the
//!   `dap-wire/v1` frame encodings ([`crate::net::encode_frame`], exact
//!   f64 bit patterns via [`crate::codec`]), and a checkpoint payload is a
//!   `part` frame — one codec for the wire, the results schema and the log.
//!
//! # Damage taxonomy
//!
//! Recovery distinguishes two kinds of damage and never panics on either:
//!
//! * a **torn tail** — the journal ends mid-record because the process
//!   died mid-write. The write was never acknowledged, so the partial
//!   record is dropped and recovery proceeds from the valid prefix.
//! * **corruption** — a record's digest does not match its payload, a
//!   length field is absurd, or a payload fails to decode. Something
//!   rewrote acknowledged bytes; recovery surfaces a typed
//!   [`DapError::Journal`] (by default) or keeps the valid prefix when
//!   explicitly asked to salvage ([`DurableOptions::salvage`]).
//!
//! One ambiguity is inherent to the framing: a flipped byte in the final
//! record's *length prefix* can make the record look longer than the file,
//! which classifies as a torn tail. Every other single-byte flip — in a
//! digest, a payload, or a non-final length — is caught by the per-record
//! digest check.

use crate::codec::{self, Fnv};
use crate::error::DapError;
use crate::net::{decode_frame, encode_frame, Frame, StatusCounters, WireSession};
use crate::protocol::DapOutput;
use crate::scheme::Scheme;
use crate::secagg::{MaskedPart, SecaggRole};
use crate::session::{DapSession, SessionPart};
use dap_ldp::NumericMechanism;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// First line of a journal: this magic, a space, the `0x`-hex epoch, `\n`.
const JOURNAL_MAGIC: &str = "dap-journal/v1";

/// First line of a checkpoint envelope: magic, epoch, records covered,
/// payload digest (all `0x`-hex), `\n`, then the payload bytes.
const CHECKPOINT_MAGIC: &str = "dap-checkpoint/v1";

/// Guard against garbage record lengths (same cap as the wire layer's
/// frame guard — the largest legitimate record is a full-quota batch).
const MAX_RECORD: usize = 64 << 20;

/// Journal file name under a [`FileBackend`] directory.
const JOURNAL_FILE: &str = "journal.log";

/// Checkpoint file name under a [`FileBackend`] directory.
const CHECKPOINT_FILE: &str = "checkpoint.part";

fn journal_err(at: u64, reason: impl Into<String>) -> DapError {
    DapError::Journal { at, reason: reason.into() }
}

fn io_err(what: &str, e: &std::io::Error) -> DapError {
    journal_err(0, format!("{what}: {e}"))
}

/// FNV-1a digest of one record payload (or checkpoint payload) — the
/// per-record integrity check of the journal format.
fn payload_digest(payload: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(payload);
    h.finish()
}

// ---------------------------------------------------------------------------
// Storage backends
// ---------------------------------------------------------------------------

/// A pluggable byte store for one session's durability state: an
/// append-only journal plus one checkpoint slot.
///
/// The contract is byte-oriented on purpose — record framing lives in
/// [`Journal`], above the backend — so a backend can be as simple as two
/// `Vec<u8>`s and fault injection ([`FaultBackend`]) can sever a write at
/// any byte offset.
pub trait StorageBackend {
    /// Appends bytes to the journal. Once this returns `Ok`, the bytes
    /// must be visible to a reopened backend even if the *process* dies
    /// immediately after (for [`FileBackend`]: the `write` reached the
    /// kernel, which survives a killed process). Surviving an OS crash
    /// or power loss is a per-backend upgrade, not part of this
    /// contract — see [`FileBackend::open_sync`].
    fn append(&mut self, bytes: &[u8]) -> Result<(), DapError>;

    /// The full journal contents, from the first byte.
    fn read_journal(&self) -> Result<Vec<u8>, DapError>;

    /// Discards the journal (the checkpoint slot is untouched).
    fn truncate(&mut self) -> Result<(), DapError>;

    /// Atomically replaces the checkpoint slot: a reader observes either
    /// the previous checkpoint or the new one, never a mix.
    fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<(), DapError>;

    /// The checkpoint slot, if one was ever written.
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, DapError>;

    /// Enters group-commit mode: until [`StorageBackend::commit_appends`],
    /// the backend may *buffer* appends in process memory, suspending the
    /// [`StorageBackend::append`] visibility contract for the bracket.
    /// The caller must not acknowledge any operation appended inside the
    /// bracket before `commit_appends` returns `Ok` — this is how the
    /// ingestion reactor pays one flush/fsync for a whole coalesced batch
    /// instead of one per record. Default: no-op (appends stay immediate).
    fn defer_appends(&mut self) {}

    /// Leaves group-commit mode, making every append since
    /// [`StorageBackend::defer_appends`] as durable as an ordinary append
    /// would have been. Default: no-op.
    fn commit_appends(&mut self) -> Result<(), DapError> {
        Ok(())
    }
}

/// An in-memory [`StorageBackend`]: durability bounded by the process.
///
/// Useful for tests, for the fault-injection harness, and for daemons
/// that want the journal's damage detection without touching disk.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    journal: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

impl MemoryBackend {
    /// An empty store.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    /// A store seeded with raw journal bytes — how tests replay the bytes
    /// a [`FaultBackend`] left behind, or craft damaged journals.
    pub fn with_journal(journal: Vec<u8>) -> MemoryBackend {
        MemoryBackend { journal, checkpoint: None }
    }

    /// The raw journal bytes (for inspection and tampering in tests).
    pub fn journal_bytes(&self) -> &[u8] {
        &self.journal
    }

    /// Mutable raw journal bytes (for tampering in tests).
    pub fn journal_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.journal
    }
}

impl StorageBackend for MemoryBackend {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        self.journal.extend_from_slice(bytes);
        Ok(())
    }

    fn read_journal(&self) -> Result<Vec<u8>, DapError> {
        Ok(self.journal.clone())
    }

    fn truncate(&mut self) -> Result<(), DapError> {
        self.journal.clear();
        Ok(())
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        self.checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, DapError> {
        Ok(self.checkpoint.clone())
    }
}

/// An append-only-file [`StorageBackend`]: a directory holding
/// `journal.log` (append + flush per record) and `checkpoint.part`
/// (replaced atomically via a temp file and `rename`).
///
/// By default append durability is **process-crash** durability: a
/// flushed `write(2)` lives in the kernel whether or not the process
/// survives, which is exactly the SIGKILL model the crash-recovery
/// harness exercises — but an OS crash or power failure can still lose
/// acknowledged records. [`FileBackend::open_sync`] upgrades that to
/// power-failure durability with an `fsync` per append; checkpoints,
/// being rare, always sync before the rename.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    journal: File,
    sync_appends: bool,
    /// Group-commit mode ([`StorageBackend::defer_appends`]): appends
    /// land in `pending` and reach the file (+ flush + optional fsync) in
    /// one write at [`StorageBackend::commit_appends`].
    deferred: bool,
    pending: Vec<u8>,
}

impl FileBackend {
    /// Opens (creating if needed) the backend directory with the default
    /// process-crash durability model (no `fsync` per append).
    pub fn open(dir: impl AsRef<Path>) -> Result<FileBackend, DapError> {
        FileBackend::open_with(dir, false)
    }

    /// Like [`FileBackend::open`], but `fsync`s the journal after every
    /// append: acknowledged records then survive an OS crash or power
    /// loss, not just process death, at a per-record `fsync` cost.
    pub fn open_sync(dir: impl AsRef<Path>) -> Result<FileBackend, DapError> {
        FileBackend::open_with(dir, true)
    }

    fn open_with(dir: impl AsRef<Path>, sync_appends: bool) -> Result<FileBackend, DapError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create backend dir", &e))?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .map_err(|e| io_err("open journal file", &e))?;
        Ok(FileBackend { dir, journal, sync_appends, deferred: false, pending: Vec::new() })
    }

    /// The backend directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for FileBackend {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        if self.deferred {
            self.pending.extend_from_slice(bytes);
            return Ok(());
        }
        self.journal.write_all(bytes).map_err(|e| io_err("journal append", &e))?;
        self.journal.flush().map_err(|e| io_err("journal flush", &e))?;
        if self.sync_appends {
            self.journal.sync_data().map_err(|e| io_err("journal fsync", &e))?;
        }
        Ok(())
    }

    fn read_journal(&self) -> Result<Vec<u8>, DapError> {
        let path = self.dir.join(JOURNAL_FILE);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes).map_err(|e| io_err("read journal", &e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("open journal for read", &e)),
        }
        // Records buffered inside a group-commit bracket are part of the
        // journal's logical contents even before they reach the file.
        bytes.extend_from_slice(&self.pending);
        Ok(bytes)
    }

    fn truncate(&mut self) -> Result<(), DapError> {
        // A truncation (compaction) supersedes anything still buffered:
        // the checkpoint just written covers those records' effects, and
        // flushing them afterwards would replay them twice.
        self.pending.clear();
        self.journal.set_len(0).map_err(|e| io_err("truncate journal", &e))
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        let tmp = self.dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let target = self.dir.join(CHECKPOINT_FILE);
        let mut f = File::create(&tmp).map_err(|e| io_err("create checkpoint tmp", &e))?;
        f.write_all(bytes).map_err(|e| io_err("write checkpoint", &e))?;
        f.sync_all().map_err(|e| io_err("sync checkpoint", &e))?;
        drop(f);
        std::fs::rename(&tmp, &target).map_err(|e| io_err("publish checkpoint", &e))
    }

    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, DapError> {
        let path = self.dir.join(CHECKPOINT_FILE);
        match File::open(&path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes).map_err(|e| io_err("read checkpoint", &e))?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("open checkpoint", &e)),
        }
    }

    fn defer_appends(&mut self) {
        self.deferred = true;
    }

    fn commit_appends(&mut self) -> Result<(), DapError> {
        self.deferred = false;
        if self.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending);
        self.journal.write_all(&pending).map_err(|e| io_err("journal group append", &e))?;
        self.journal.flush().map_err(|e| io_err("journal group flush", &e))?;
        if self.sync_appends {
            self.journal.sync_data().map_err(|e| io_err("journal group fsync", &e))?;
        }
        Ok(())
    }
}

/// A fault-injection [`StorageBackend`] wrapper: journal writes succeed
/// until a configured byte offset, the append that crosses it lands only
/// its prefix (a torn write), and everything after fails — a simulated
/// crash at any chosen point of the byte stream.
///
/// The crash-recovery sweep wraps a [`MemoryBackend`], drives an ingest
/// until the cut trips, then recovers a fresh session from the bytes the
/// "crashed" backend left behind.
#[derive(Debug)]
pub struct FaultBackend<B> {
    inner: B,
    cut_at: u64,
    written: u64,
    tripped: bool,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wraps `inner`, severing the journal byte stream at absolute offset
    /// `cut_at` (counted from the start of the journal, including
    /// whatever `inner` already holds).
    pub fn cut_at(inner: B, cut_at: u64) -> FaultBackend<B> {
        let written = inner.read_journal().map(|b| b.len() as u64).unwrap_or(0);
        FaultBackend { inner, cut_at, written, tripped: false }
    }

    /// Whether the cut has been hit.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The wrapped backend — the bytes that "survived the crash".
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        if self.tripped {
            return Err(journal_err(self.cut_at, "injected fault: backend is down"));
        }
        let room = self.cut_at.saturating_sub(self.written);
        if bytes.len() as u64 <= room {
            self.written += bytes.len() as u64;
            return self.inner.append(bytes);
        }
        // The write crosses the cut: persist only the prefix, then die.
        self.tripped = true;
        if room > 0 {
            self.inner.append(&bytes[..room as usize])?;
        }
        self.written = self.cut_at;
        Err(journal_err(self.cut_at, "injected fault: write torn at configured offset"))
    }

    fn read_journal(&self) -> Result<Vec<u8>, DapError> {
        self.inner.read_journal()
    }

    fn truncate(&mut self) -> Result<(), DapError> {
        if self.tripped {
            return Err(journal_err(self.cut_at, "injected fault: backend is down"));
        }
        self.written = 0;
        self.inner.truncate()
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<(), DapError> {
        if self.tripped {
            return Err(journal_err(self.cut_at, "injected fault: backend is down"));
        }
        self.inner.write_checkpoint(bytes)
    }

    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, DapError> {
        self.inner.load_checkpoint()
    }

    fn defer_appends(&mut self) {
        // The cut counts bytes at this wrapper's `append`, so deferral
        // below does not move the tear point.
        self.inner.defer_appends();
    }

    fn commit_appends(&mut self) -> Result<(), DapError> {
        self.inner.commit_appends()
    }
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// What [`Journal::open`] found in a backend: the checkpoint payload to
/// restore first (if any), the record payloads to replay on top, and any
/// damage encountered along the way.
#[derive(Debug)]
pub struct JournalState {
    /// The checkpoint payload, verified against its envelope digest.
    pub checkpoint: Option<Vec<u8>>,
    /// Record payloads to replay after the checkpoint, in append order,
    /// each with the journal byte offset its record started at.
    pub replay: Vec<(u64, Vec<u8>)>,
    /// Byte offset of a torn (incomplete) final record that was dropped.
    /// A torn tail is a crash artifact, not corruption: the write was
    /// never acknowledged.
    pub torn: Option<u64>,
    /// Corruption detected partway through: acknowledged bytes that no
    /// longer verify. `replay` holds the records before the damage; the
    /// caller decides whether to surface the error or salvage the prefix.
    pub corruption: Option<DapError>,
}

impl JournalState {
    /// Whether the journal bytes held any damage (torn tail or
    /// corruption) that compaction must clear before appends can resume.
    pub fn damaged(&self) -> bool {
        self.torn.is_some() || self.corruption.is_some()
    }
}

/// Scan outcome for the raw journal bytes, before checkpoint reconciliation.
struct RawScan {
    /// `None` for an empty (or torn-header) journal that needs initializing.
    epoch: Option<u64>,
    records: Vec<(u64, Vec<u8>)>,
    /// Offset just past the last intact record — where appends may resume
    /// once any trailing damage is cleared.
    valid_len: u64,
    torn: Option<u64>,
    corruption: Option<DapError>,
}

fn header_bytes(epoch: u64) -> Vec<u8> {
    format!("{JOURNAL_MAGIC} {}\n", codec::hex_u64(epoch)).into_bytes()
}

fn scan_journal(bytes: &[u8]) -> RawScan {
    let mut scan = RawScan {
        epoch: None,
        records: Vec::new(),
        valid_len: 0,
        torn: None,
        corruption: None,
    };
    if bytes.is_empty() {
        return scan;
    }
    // Header line. A file shorter than a full header that is a byte-wise
    // prefix of a valid one is a torn header (crash during creation) and
    // reads as an empty journal; anything else up front is corruption.
    // The fixed part of a header (magic + " 0x") is derived as the common
    // prefix of the two extreme epochs' headers, and the length bound
    // from the headers themselves (`hex_u64` is fixed-width, so every
    // epoch's header is the same length) — no literal offsets to drift.
    let zero = header_bytes(0);
    let max = header_bytes(u64::MAX);
    let fixed = zero.iter().zip(max.iter()).take_while(|(a, b)| a == b).count();
    let max_header = zero.len().max(max.len());
    let nl = bytes.iter().position(|&b| b == b'\n');
    let header_end = match nl {
        Some(p) => p,
        None => {
            let is_prefix = bytes.len() < max_header
                && bytes.iter().zip(zero.iter()).take(fixed).all(|(a, b)| a == b)
                && bytes.iter().skip(fixed).all(|b| b.is_ascii_hexdigit());
            if is_prefix {
                scan.torn = Some(0);
            } else {
                scan.corruption = Some(journal_err(0, "journal header is unreadable"));
            }
            return scan;
        }
    };
    let header = std::str::from_utf8(&bytes[..header_end]).unwrap_or("");
    let mut words = header.split_whitespace();
    let epoch = match (words.next(), words.next().map(codec::parse_hex_u64), words.next()) {
        (Some(JOURNAL_MAGIC), Some(Ok(e)), None) => e,
        _ => {
            scan.corruption =
                Some(journal_err(0, format!("bad journal header '{header}'")));
            return scan;
        }
    };
    scan.epoch = Some(epoch);
    scan.valid_len = (header_end + 1) as u64;

    // Records: [u32 len][u64 digest][payload], big-endian prefixes.
    let mut off = header_end + 1;
    while off < bytes.len() {
        let rest = bytes.len() - off;
        if rest < 12 {
            scan.torn = Some(off as u64);
            return scan;
        }
        let len =
            u32::from_be_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            scan.corruption = Some(journal_err(
                off as u64,
                format!("record length {len} exceeds the {MAX_RECORD}-byte cap"),
            ));
            return scan;
        }
        if rest < 12 + len {
            // Could also be a flipped length byte on the final record —
            // indistinguishable from a mid-write crash (module docs).
            scan.torn = Some(off as u64);
            return scan;
        }
        let digest =
            u64::from_be_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
        let payload = &bytes[off + 12..off + 12 + len];
        if payload_digest(payload) != digest {
            scan.corruption = Some(journal_err(off as u64, "record digest mismatch"));
            return scan;
        }
        scan.records.push((off as u64, payload.to_vec()));
        off += 12 + len;
        scan.valid_len = off as u64;
    }
    scan
}

/// Parsed checkpoint envelope.
struct CheckpointEnvelope {
    epoch: u64,
    covered: u64,
    payload: Vec<u8>,
}

fn encode_checkpoint(epoch: u64, covered: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{CHECKPOINT_MAGIC} {} {} {}\n",
        codec::hex_u64(epoch),
        codec::hex_u64(covered),
        codec::hex_u64(payload_digest(payload)),
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointEnvelope, DapError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| journal_err(0, "checkpoint envelope is unreadable"))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| journal_err(0, "checkpoint header is not UTF-8"))?;
    let mut words = header.split_whitespace();
    let bad = || journal_err(0, format!("bad checkpoint header '{header}'"));
    match (
        words.next(),
        words.next().map(codec::parse_hex_u64),
        words.next().map(codec::parse_hex_u64),
        words.next().map(codec::parse_hex_u64),
        words.next(),
    ) {
        (Some(CHECKPOINT_MAGIC), Some(Ok(epoch)), Some(Ok(covered)), Some(Ok(digest)), None) => {
            let payload = bytes[nl + 1..].to_vec();
            if payload_digest(&payload) != digest {
                return Err(journal_err(0, "checkpoint payload digest mismatch"));
            }
            Ok(CheckpointEnvelope { epoch, covered, payload })
        }
        _ => Err(bad()),
    }
}

/// Record framing and crash-safe compaction over a [`StorageBackend`].
///
/// The journal hands back *payload bytes*; what they mean is the caller's
/// contract ([`DurableSession`] stores `dap-wire/v1` frames; the bench
/// crate's shard journal stores cell results). See the module docs for
/// the byte format and the epoch scheme.
#[derive(Debug)]
pub struct Journal<B> {
    backend: B,
    epoch: u64,
    records: usize,
    len: u64,
    damaged: bool,
}

impl<B: StorageBackend> Journal<B> {
    /// Opens a journal over `backend`, initializing the header if the
    /// journal is empty, and reconciling it with the checkpoint slot.
    ///
    /// Damage never fails the open: a torn tail or corruption comes back
    /// in the [`JournalState`] with the valid prefix, and the journal
    /// refuses appends until [`Journal::compact`] clears the damaged
    /// bytes. Only backend I/O failures and an epoch disagreement that
    /// admits no consistent interpretation are hard errors.
    pub fn open(mut backend: B) -> Result<(Journal<B>, JournalState), DapError> {
        let checkpoint = match backend.load_checkpoint()? {
            Some(bytes) => Some(decode_checkpoint(&bytes)?),
            None => None,
        };
        let bytes = backend.read_journal()?;
        let scan = scan_journal(&bytes);
        let mut state = JournalState {
            checkpoint: None,
            replay: Vec::new(),
            torn: scan.torn,
            corruption: scan.corruption,
        };

        let epoch = match scan.epoch {
            Some(e) => e,
            None if state.corruption.is_some() => {
                // Unreadable header on a non-empty journal: acknowledged
                // records may sit past the damage, unscanned. Truncating
                // here would destroy them before the caller ever sees the
                // typed corruption — leave every byte as found and refuse
                // appends until a compaction (an explicit salvage
                // decision) clears the damage.
                checkpoint.as_ref().map(|c| c.epoch + 1).unwrap_or(0)
            }
            None => {
                // Fresh (or torn-header) journal: start one epoch past the
                // checkpoint so its records are never mistaken for ones
                // the checkpoint already covers.
                let e = checkpoint.as_ref().map(|c| c.epoch + 1).unwrap_or(0);
                if !bytes.is_empty() {
                    backend.truncate()?;
                }
                backend.append(&header_bytes(e))?;
                state.torn = None; // cleared by the re-init
                e
            }
        };

        // Intact records physically present this epoch — what a
        // compaction performed now would declare as covered.
        let on_disk_records = scan.records.len();
        let len = match scan.epoch {
            Some(_) => scan.valid_len,
            None if state.corruption.is_some() => bytes.len() as u64,
            None => header_bytes(epoch).len() as u64,
        };

        let mut records = scan.records;
        match &checkpoint {
            None => state.replay = records,
            Some(c) if epoch == c.epoch => {
                // Crash window between checkpoint write and truncation:
                // the journal still holds the records the checkpoint
                // absorbed. Replay only the tail past its coverage. (A
                // journal shorter than the coverage means the covered
                // range itself is damaged — the checkpoint alone is then
                // the best reconstruction, and the scan already carries
                // the corruption.)
                let covered = (c.covered as usize).min(records.len());
                state.replay = records.split_off(covered);
            }
            Some(c) if epoch == c.epoch + 1 => state.replay = records,
            Some(c) => {
                return Err(journal_err(
                    0,
                    format!(
                        "journal epoch {} does not follow checkpoint epoch {}",
                        epoch, c.epoch
                    ),
                ));
            }
        }
        state.checkpoint = checkpoint.map(|c| c.payload);

        let journal = Journal {
            backend,
            epoch,
            records: on_disk_records,
            len,
            damaged: state.damaged(),
        };
        Ok((journal, state))
    }

    /// Appends one record (framing + digest around `payload`).
    ///
    /// Refused while the journal carries damaged bytes — compact first.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DapError> {
        if self.damaged {
            return Err(journal_err(
                self.len,
                "journal has a damaged tail; compact before appending",
            ));
        }
        if payload.len() > MAX_RECORD {
            return Err(journal_err(
                self.len,
                format!("record of {} bytes exceeds the {MAX_RECORD}-byte cap", payload.len()),
            ));
        }
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(&payload_digest(payload).to_be_bytes());
        record.extend_from_slice(payload);
        self.backend.append(&record)?;
        self.records += 1;
        self.len += record.len() as u64;
        Ok(())
    }

    /// Compacts the journal: writes `checkpoint_payload` into the
    /// checkpoint slot (covering every record currently journaled), then
    /// truncates and starts the next epoch. Crash-safe: interrupted
    /// anywhere, the next [`Journal::open`] reconstructs the same state.
    pub fn compact(&mut self, checkpoint_payload: &[u8]) -> Result<(), DapError> {
        self.backend
            .write_checkpoint(&encode_checkpoint(self.epoch, self.records as u64, checkpoint_payload))?;
        self.backend.truncate()?;
        self.epoch += 1;
        let header = header_bytes(self.epoch);
        self.backend.append(&header)?;
        self.records = 0;
        self.len = header.len() as u64;
        self.damaged = false;
        Ok(())
    }

    /// Records appended this epoch (what a compaction would cover).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The journal's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Journal size in bytes, header included — where the next record
    /// starts, and the offsets the fault-injection sweep enumerates.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// [`StorageBackend::defer_appends`] on the wrapped backend.
    pub fn defer_appends(&mut self) {
        self.backend.defer_appends();
    }

    /// [`StorageBackend::commit_appends`] on the wrapped backend.
    pub fn commit_appends(&mut self) -> Result<(), DapError> {
        self.backend.commit_appends()
    }

    /// The wrapped backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

// ---------------------------------------------------------------------------
// Durable sessions
// ---------------------------------------------------------------------------

/// Durability knobs for [`DurableSession::open`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableOptions {
    /// Compact (checkpoint + truncate) once the journal holds this many
    /// records. `0` disables automatic checkpoints; call
    /// [`DurableSession::checkpoint`] explicitly.
    pub checkpoint_every: usize,
    /// Recover past corruption by keeping the valid prefix instead of
    /// failing with the typed [`DapError::Journal`]. Off by default:
    /// corruption means acknowledged data was damaged, and silently
    /// dropping it should be a deliberate operator decision.
    pub salvage: bool,
}

/// What [`DurableSession::open`] recovered from the backend.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Whether a checkpoint was restored.
    pub from_checkpoint: bool,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Byte offset of a dropped torn final record, if any.
    pub torn: Option<u64>,
    /// The corruption that was salvaged past, if
    /// [`DurableOptions::salvage`] was set and damage was found.
    pub salvaged: Option<String>,
}

/// A [`DapSession`] with write-ahead durability (see the module docs).
///
/// Every mutation follows validate → append → apply: an operation is
/// acknowledged only after its record is in the journal, and a record is
/// only ever written for an operation the session will accept — so a
/// session recovered from the backend is bit-identical
/// ([`DapSession::content_digest`]) to the crashed one, at every record
/// boundary.
#[derive(Debug)]
pub struct DurableSession<M, B: StorageBackend> {
    session: DapSession<M>,
    journal: Journal<B>,
    checkpoint_every: usize,
    /// Records appended since open (monotonic — compaction does not reset
    /// it), surfaced in the `status` observability counters.
    records_appended: u64,
    /// Checkpoints taken since open, surfaced alongside.
    checkpoints_taken: u64,
}

impl<M: NumericMechanism, B: StorageBackend> DurableSession<M, B> {
    /// Wraps a freshly-built session of the deployment, recovering any
    /// state the backend holds (checkpoint + journal tail) into it.
    ///
    /// `session` must not have ingested anything — recovery replays into
    /// it, and pre-existing state would double-count. A checkpoint or
    /// record from a *different* deployment (digest mismatch) is a typed
    /// [`DapError::Journal`].
    pub fn open(
        session: DapSession<M>,
        backend: B,
        opts: DurableOptions,
    ) -> Result<(Self, Recovery), DapError> {
        if (0..session.group_count()).any(|g| session.ingested(g) != 0)
            || session.shares_applied() != 0
        {
            return Err(journal_err(0, "recovery requires a fresh session"));
        }
        let mut session = session;
        let (journal, state) = Journal::open(backend)?;
        let mut recovery = Recovery { torn: state.torn, ..Recovery::default() };
        if let Some(corruption) = &state.corruption {
            if !opts.salvage {
                return Err(corruption.clone());
            }
            recovery.salvaged = Some(corruption.to_string());
        }
        if let Some(payload) = &state.checkpoint {
            apply_checkpoint(&mut session, payload)
                .map_err(|e| journal_err(0, format!("checkpoint does not apply: {e}")))?;
            recovery.from_checkpoint = true;
        }
        for (off, payload) in &state.replay {
            apply_record(&mut session, payload)
                .map_err(|e| journal_err(*off, format!("replay failed: {e}")))?;
            recovery.replayed += 1;
        }
        let mut durable = DurableSession {
            session,
            journal,
            checkpoint_every: opts.checkpoint_every,
            records_appended: 0,
            checkpoints_taken: 0,
        };
        // Damaged tails (and salvaged corruption) must be cleared before
        // appends can resume; fold the recovered state into a checkpoint.
        if state.damaged() {
            durable.checkpoint()?;
        }
        Ok((durable, recovery))
    }

    fn append_record(&mut self, frame: &Frame) -> Result<(), DapError> {
        self.journal.append(encode_frame(frame).as_bytes())?;
        self.records_appended += 1;
        Ok(())
    }

    /// Write-ahead [`DapSession::ingest`].
    pub fn ingest(&mut self, group: usize, report: f64) -> Result<(), DapError> {
        self.session.check_ingest_batch(group, &[report])?;
        self.append_record(&Frame::Ingest { group, report })?;
        self.session.ingest(group, report)?;
        self.maybe_checkpoint()
    }

    /// Write-ahead [`DapSession::ingest_batch`].
    pub fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), DapError> {
        self.session.check_ingest_batch(group, reports)?;
        self.append_record(&Frame::IngestBatch { group, reports: reports.to_vec() })?;
        self.session.ingest_batch(group, reports)?;
        self.maybe_checkpoint()
    }

    /// Write-ahead [`DapSession::ingest_batch_seq`].
    ///
    /// The replay guard runs in the *validate* step, so a duplicate or
    /// out-of-order batch is rejected typed without ever touching the
    /// journal — retried traffic costs no storage, and replaying the
    /// journal can never trip over its own dedup state.
    pub fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError> {
        self.session.check_ingest_batch_seq(channel, seq, group, reports)?;
        self.append_record(&Frame::IngestBatchSeq {
            channel,
            seq,
            group,
            reports: reports.to_vec(),
        })?;
        self.session.ingest_batch_seq(channel, seq, group, reports)?;
        self.maybe_checkpoint()
    }

    /// Write-ahead [`DapSession::ingest_shares`]: the journal record is
    /// the `share-batch` frame itself, so a share server's log stores only
    /// masked words — a stolen journal reveals no plaintext report, which
    /// the secret-sharing tier's tests assert on the bytes.
    pub fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError> {
        self.session.check_ingest_shares(channel, seq, group, counts)?;
        self.append_record(&Frame::ShareBatch {
            channel,
            seq,
            group,
            counts: counts.to_vec(),
        })?;
        self.session.ingest_shares(channel, seq, group, counts)?;
        self.maybe_checkpoint()
    }

    /// [`DapSession::adopt_commitment`], not journaled: the commitment is
    /// re-announced by every masked `hello` and echoed by checkpoints
    /// ([`MaskedPart::commitment`]), so it needs no record of its own.
    pub fn adopt_commitment(&mut self, commitment: u64) -> Result<(), DapError> {
        self.session.adopt_commitment(commitment)
    }

    /// Write-ahead [`DapSession::merge_part`].
    pub fn merge_part(&mut self, part: &SessionPart) -> Result<(), DapError> {
        self.session.check_part(part)?;
        self.append_record(&Frame::Merge { part: part.clone() })?;
        self.session.merge_part(part)?;
        self.maybe_checkpoint()
    }

    /// Compacts the journal into a checkpoint now: a `part` frame for a
    /// plain session, a `masked-part` frame for a masked one (shares and
    /// replay guard, never plaintext).
    pub fn checkpoint(&mut self) -> Result<(), DapError> {
        let payload = if self.session.secagg_role().is_some() {
            encode_frame(&Frame::MaskedPart { part: self.session.export_masked_part()? })
        } else {
            encode_frame(&Frame::Part { part: self.session.export_part() })
        };
        self.journal.compact(payload.as_bytes())?;
        self.checkpoints_taken += 1;
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<(), DapError> {
        if self.checkpoint_every > 0 && self.journal.records() >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The wrapped session (read-only; mutations must go through the
    /// journal).
    pub fn session(&self) -> &DapSession<M> {
        &self.session
    }

    /// The journal (epoch, record count, byte length — for inspection).
    pub fn journal(&self) -> &Journal<B> {
        &self.journal
    }

    /// Records appended since open (compaction does not reset this).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Checkpoints taken since open.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Enters group-commit mode (see [`StorageBackend::defer_appends`]):
    /// journal records buffer until [`DurableSession::commit_acks`], which
    /// makes them durable in one flush/fsync. The ingestion reactor
    /// brackets each coalesced batch with this pair and withholds every
    /// ack until the commit succeeds, so "acked implies recoverable"
    /// holds batch-wide.
    pub fn defer_acks(&mut self) {
        self.journal.defer_appends();
    }

    /// Leaves group-commit mode, forcing buffered records durable.
    pub fn commit_acks(&mut self) -> Result<(), DapError> {
        self.journal.commit_appends()
    }

    /// Tears the wrapper down into its parts (the backend keeps the
    /// journaled state; reopening it recovers the session).
    pub fn into_parts(self) -> (DapSession<M>, B) {
        (self.session, self.journal.into_backend())
    }
}

/// Restores a checkpoint payload into a fresh session: a `part` frame
/// merges as plaintext state, a `masked-part` frame as share state (the
/// session's mode guards reject a payload of the wrong kind typed).
fn apply_checkpoint<M: NumericMechanism>(
    session: &mut DapSession<M>,
    payload: &[u8],
) -> Result<(), DapError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| journal_err(0, "checkpoint payload is not UTF-8"))?;
    match decode_frame(text) {
        Ok(Frame::Part { part }) => session.merge_part(&part),
        Ok(Frame::MaskedPart { part }) => session.merge_masked_part(&part),
        Ok(other) => Err(journal_err(
            0,
            format!(
                "checkpoint payload holds a '{}' frame, expected 'part' or 'masked-part'",
                other.tag()
            ),
        )),
        Err(e) => Err(journal_err(0, format!("checkpoint payload is undecodable: {e}"))),
    }
}

/// Replays one journaled record into a session — the read half of the
/// write-ahead contract. Only the mutating frames are legal.
fn apply_record<M: NumericMechanism>(
    session: &mut DapSession<M>,
    payload: &[u8],
) -> Result<(), DapError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| journal_err(0, "record payload is not UTF-8"))?;
    let frame =
        decode_frame(text).map_err(|e| journal_err(0, format!("record is undecodable: {e}")))?;
    match frame {
        Frame::Ingest { group, report } => session.ingest(group, report),
        Frame::IngestBatch { group, reports } => session.ingest_batch(group, &reports),
        Frame::IngestBatchSeq { channel, seq, group, reports } => {
            session.ingest_batch_seq(channel, seq, group, &reports)
        }
        Frame::ShareBatch { channel, seq, group, counts } => {
            session.ingest_shares(channel, seq, group, &counts)
        }
        Frame::Merge { part } => session.merge_part(&part),
        other => Err(journal_err(
            0,
            format!("record holds a '{}' frame, which is not a mutation", other.tag()),
        )),
    }
}

impl<M, B> WireSession for DurableSession<M, B>
where
    M: NumericMechanism + Sync,
    B: StorageBackend,
{
    fn state_digest(&self) -> u64 {
        self.session.state_digest()
    }

    fn group_count(&self) -> usize {
        self.session.group_count()
    }

    fn ingest(&mut self, group: usize, report: f64) -> Result<(), DapError> {
        DurableSession::ingest(self, group, report)
    }

    fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), DapError> {
        DurableSession::ingest_batch(self, group, reports)
    }

    fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError> {
        DurableSession::ingest_batch_seq(self, channel, seq, group, reports)
    }

    fn last_seq(&self, channel: u64) -> Option<u64> {
        self.session.last_seq(channel)
    }

    fn ingested_total(&self) -> usize {
        (0..self.session.group_count()).map(|g| self.session.ingested(g)).sum()
    }

    fn export_part(&self) -> SessionPart {
        self.session.export_part()
    }

    fn merge_part(&mut self, part: &SessionPart) -> Result<(), DapError> {
        DurableSession::merge_part(self, part)
    }

    fn finalize(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, DapError> {
        self.session.finalize(schemes)
    }

    fn secagg_role(&self) -> Option<SecaggRole> {
        self.session.secagg_role()
    }

    fn adopt_commitment(&mut self, commitment: u64) -> Result<(), DapError> {
        DurableSession::adopt_commitment(self, commitment)
    }

    fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError> {
        DurableSession::ingest_shares(self, channel, seq, group, counts)
    }

    fn export_masked_part(&self) -> Result<MaskedPart, DapError> {
        self.session.export_masked_part()
    }

    fn status_counters(&self) -> StatusCounters {
        StatusCounters {
            masked: self.session.secagg_role().is_some(),
            channels: self.session.channel_count() as u64,
            shares: self.session.shares_applied(),
            journal_records: self.records_appended,
            checkpoints: self.checkpoints_taken,
            reactor: None,
        }
    }

    fn defer_acks(&mut self) {
        DurableSession::defer_acks(self);
    }

    fn commit_acks(&mut self) -> Result<(), DapError> {
        DurableSession::commit_acks(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupPlan;
    use crate::protocol::DapConfig;
    use dap_estimation::rng::seeded;
    use dap_ldp::PiecewiseMechanism;

    fn session(seed: u64) -> DapSession<PiecewiseMechanism> {
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
        let plan = GroupPlan::build(400, cfg.eps, cfg.eps0, &mut seeded(seed));
        DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("dap-storage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_backend_round_trips() {
        let mut b = MemoryBackend::new();
        b.append(b"abc").unwrap();
        b.append(b"def").unwrap();
        assert_eq!(b.read_journal().unwrap(), b"abcdef");
        assert_eq!(b.load_checkpoint().unwrap(), None);
        b.write_checkpoint(b"ckpt").unwrap();
        assert_eq!(b.load_checkpoint().unwrap().unwrap(), b"ckpt");
        b.truncate().unwrap();
        assert!(b.read_journal().unwrap().is_empty());
        assert_eq!(b.load_checkpoint().unwrap().unwrap(), b"ckpt", "truncate spares the slot");
    }

    #[test]
    fn file_backend_round_trips_across_reopens() {
        let dir = tmpdir("file-roundtrip");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append(b"abc").unwrap();
            b.write_checkpoint(b"old").unwrap();
            b.write_checkpoint(b"new").unwrap();
        }
        let mut b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read_journal().unwrap(), b"abc");
        assert_eq!(b.load_checkpoint().unwrap().unwrap(), b"new");
        b.append(b"def").unwrap();
        assert_eq!(b.read_journal().unwrap(), b"abcdef");
        b.truncate().unwrap();
        assert!(b.read_journal().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_appends_and_reopens() {
        let (mut j, state) = Journal::open(MemoryBackend::new()).unwrap();
        assert!(state.replay.is_empty() && state.checkpoint.is_none());
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        assert_eq!(j.records(), 2);
        let (j2, state) = Journal::open(j.into_backend()).unwrap();
        assert_eq!(
            state.replay.iter().map(|(_, p)| p.as_slice()).collect::<Vec<_>>(),
            vec![b"one".as_slice(), b"two".as_slice()]
        );
        assert_eq!(j2.records(), 2);
        assert!(!state.damaged());
    }

    #[test]
    fn compaction_is_crash_safe_in_every_window() {
        // Build a journal with 2 records, then a checkpoint, then 1 more.
        let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
        j.append(b"a").unwrap();
        j.append(b"b").unwrap();
        j.compact(b"STATE-ab").unwrap();
        j.append(b"c").unwrap();
        let epoch = j.epoch();
        let backend = j.into_backend();

        // Normal reopen: checkpoint + tail.
        let (j2, state) = Journal::open(backend.clone()).unwrap();
        assert_eq!(state.checkpoint.as_deref(), Some(b"STATE-ab".as_slice()));
        assert_eq!(state.replay.len(), 1);
        assert_eq!(j2.epoch(), epoch);

        // Window 1 — crash after checkpoint write, before truncate: the
        // journal still holds the covered records.
        let mut w1 = backend.clone();
        let full = {
            // Rebuild the pre-truncate journal: header(epoch-1) + a + b.
            let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
            j.append(b"a").unwrap();
            j.append(b"b").unwrap();
            j.into_backend()
        };
        w1.journal_bytes_mut().clear();
        w1.journal_bytes_mut().extend_from_slice(full.journal_bytes());
        let (_, state) = Journal::open(w1).unwrap();
        assert_eq!(state.checkpoint.as_deref(), Some(b"STATE-ab".as_slice()));
        assert!(state.replay.is_empty(), "covered records are not replayed");

        // Window 2 — crash after truncate, before the new header: empty
        // journal, checkpoint present.
        let mut w2 = backend.clone();
        w2.journal_bytes_mut().clear();
        let (j, state) = Journal::open(w2).unwrap();
        assert_eq!(state.checkpoint.as_deref(), Some(b"STATE-ab".as_slice()));
        assert!(state.replay.is_empty());
        assert_eq!(j.epoch(), epoch, "re-initialized one past the checkpoint epoch");
    }

    #[test]
    fn torn_tail_is_tolerated_and_cleared_by_compaction() {
        let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
        j.append(b"good").unwrap();
        j.append(b"lost").unwrap();
        let mut backend = j.into_backend();
        let cut = backend.journal_bytes().len() - 3;
        backend.journal_bytes_mut().truncate(cut);
        let (mut j, state) = Journal::open(backend).unwrap();
        assert_eq!(state.replay.len(), 1, "torn record dropped");
        assert!(state.torn.is_some());
        assert!(state.corruption.is_none(), "a torn tail is not corruption");
        // Appends refuse until the damage is compacted away.
        assert!(matches!(j.append(b"x"), Err(DapError::Journal { .. })));
        j.compact(b"STATE-good").unwrap();
        j.append(b"x").unwrap();
        let (_, state) = Journal::open(j.into_backend()).unwrap();
        assert!(!state.damaged());
        assert_eq!(state.replay.len(), 1);
    }

    #[test]
    fn flipped_bytes_are_typed_corruption() {
        let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
        j.append(b"first-record").unwrap();
        j.append(b"second-record").unwrap();
        let header_len = header_bytes(0).len();
        for &victim in &[header_len + 14, header_len + 5] {
            let mut backend = j.into_backend();
            let saved = backend.journal_bytes()[victim];
            backend.journal_bytes_mut()[victim] ^= 0xff;
            let (_, state) = Journal::open(backend.clone()).unwrap();
            let err = state.corruption.clone().expect("flip detected");
            assert!(matches!(err, DapError::Journal { .. }), "{err}");
            // The valid prefix survives.
            assert!(state.replay.len() < 2);
            let mut restored = backend;
            restored.journal_bytes_mut()[victim] = saved;
            let (jj, state) = Journal::open(restored).unwrap();
            assert!(!state.damaged());
            assert_eq!(state.replay.len(), 2);
            j = jj;
        }
    }

    #[test]
    fn corrupt_header_never_truncates_acknowledged_records() {
        let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
        j.append(b"precious").unwrap();
        let mut backend = j.into_backend();
        backend.journal_bytes_mut()[0] ^= 0xff; // damage the magic
        let before = backend.journal_bytes().to_vec();
        let (mut j, state) = Journal::open(backend).unwrap();
        let err = state.corruption.clone().expect("corrupt header detected");
        assert!(matches!(err, DapError::Journal { at: 0, .. }), "{err}");
        assert!(matches!(j.append(b"x"), Err(DapError::Journal { .. })), "appends refused");
        let backend = j.into_backend();
        assert_eq!(backend.journal_bytes(), before.as_slice(), "bytes left exactly as found");
        // Reopening reports the same corruption — nothing was silently
        // cleared between the first refusal and the second look.
        let (_, state) = Journal::open(backend).unwrap();
        assert!(state.corruption.is_some());
    }

    #[test]
    fn corrupt_header_on_disk_refuses_on_every_reopen() {
        let dir = tmpdir("corrupt-header");
        {
            let backend = FileBackend::open(&dir).unwrap();
            let (mut durable, _) =
                DurableSession::open(session(17), backend, DurableOptions::default()).unwrap();
            durable.ingest(0, 0.5).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // Every restart refuses with the typed error; none of them eats
        // the journal (the old failure mode: truncate on first open, then
        // serve clean-and-empty on the second).
        for _ in 0..2 {
            let backend = FileBackend::open(&dir).unwrap();
            let err = DurableSession::open(session(17), backend, DurableOptions::default())
                .unwrap_err();
            assert!(matches!(err, DapError::Journal { .. }), "{err}");
        }
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "acknowledged bytes untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvaging_a_corrupt_header_compacts_to_a_clean_journal() {
        let (mut j, _) = Journal::open(MemoryBackend::new()).unwrap();
        j.append(b"unreachable").unwrap();
        let mut backend = j.into_backend();
        backend.journal_bytes_mut()[0] ^= 0xff;
        let (mut j, state) = Journal::open(backend).unwrap();
        assert!(state.corruption.is_some());
        assert!(state.replay.is_empty(), "records past a corrupt header are not scanned");
        // Compaction is the explicit salvage step: it clears the damaged
        // bytes and appends resume on the next epoch.
        j.compact(b"STATE").unwrap();
        j.append(b"fresh").unwrap();
        let (_, state) = Journal::open(j.into_backend()).unwrap();
        assert!(!state.damaged());
        assert_eq!(state.checkpoint.as_deref(), Some(b"STATE".as_slice()));
        assert_eq!(state.replay.len(), 1);
    }

    #[test]
    fn torn_header_is_torn_at_any_epoch() {
        // A mid-write crash on *any* epoch's header — epoch digits
        // included, which differ from epoch 0's zero padding — must read
        // as torn, not corruption.
        for epoch in [0u64, 0x10, u64::MAX] {
            let full = header_bytes(epoch);
            for cut in 1..full.len() {
                let backend = MemoryBackend::with_journal(full[..cut].to_vec());
                let (_, state) = Journal::open(backend).unwrap();
                assert!(
                    state.corruption.is_none(),
                    "epoch {epoch:#x} header cut at {cut} misread as corruption"
                );
                assert!(!state.damaged(), "torn header re-initializes clean");
            }
        }
    }

    #[test]
    fn sync_file_backend_round_trips() {
        let dir = tmpdir("file-sync");
        {
            let mut b = FileBackend::open_sync(&dir).unwrap();
            b.append(b"abc").unwrap();
        }
        let b = FileBackend::open_sync(&dir).unwrap();
        assert_eq!(b.read_journal().unwrap(), b"abc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_backend_tears_writes_at_the_cut() {
        let mut b = FaultBackend::cut_at(MemoryBackend::new(), 5);
        b.append(b"abc").unwrap();
        let err = b.append(b"defg").unwrap_err();
        assert!(matches!(err, DapError::Journal { at: 5, .. }), "{err}");
        assert!(b.tripped());
        assert!(matches!(b.append(b"x"), Err(DapError::Journal { .. })));
        assert_eq!(b.into_inner().journal_bytes(), b"abcde", "prefix up to the cut persisted");
    }

    #[test]
    fn durable_session_survives_reopen_bit_for_bit() {
        let mut reference = session(9);
        let (mut durable, recovery) =
            DurableSession::open(session(9), MemoryBackend::new(), DurableOptions::default())
                .unwrap();
        assert_eq!(recovery.replayed, 0);
        for (i, op) in [(0usize, 0.5f64), (1, -0.25), (0, 0.125)].iter().enumerate() {
            durable.ingest(op.0, op.1).unwrap();
            reference.ingest(op.0, op.1).unwrap();
            assert_eq!(durable.journal().records(), i + 1);
        }
        durable.ingest_batch(2, &[0.75, -0.125]).unwrap();
        reference.ingest_batch(2, &[0.75, -0.125]).unwrap();
        let donor = {
            let mut d = session(9);
            d.ingest(2, 0.0625).unwrap();
            d
        };
        durable.merge_part(&donor.export_part()).unwrap();
        reference.merge_part(&donor.export_part()).unwrap();

        let (_, backend) = durable.into_parts();
        let (recovered, recovery) =
            DurableSession::open(session(9), backend, DurableOptions::default()).unwrap();
        assert_eq!(recovery.replayed, 5);
        assert!(!recovery.from_checkpoint);
        assert_eq!(recovered.session().content_digest(), reference.content_digest());
        assert_eq!(recovered.session().state_digest(), reference.state_digest());
        assert_eq!(recovered.session().export_part(), reference.export_part());
    }

    #[test]
    fn checkpoints_compact_and_recovery_still_matches() {
        let mut reference = session(10);
        let opts = DurableOptions { checkpoint_every: 3, salvage: false };
        let (mut durable, _) =
            DurableSession::open(session(10), MemoryBackend::new(), opts).unwrap();
        for i in 0..10 {
            let v = (i as f64) / 20.0 - 0.2;
            durable.ingest(i % 3, v).unwrap();
            reference.ingest(i % 3, v).unwrap();
        }
        // 10 ingests at cadence 3 → compactions happened; the journal is
        // shorter than the full history.
        assert!(durable.journal().records() < 10);
        let (_, backend) = durable.into_parts();
        let (recovered, recovery) = DurableSession::open(session(10), backend, opts).unwrap();
        assert!(recovery.from_checkpoint);
        assert!(recovery.replayed < 10);
        assert_eq!(recovered.session().content_digest(), reference.content_digest());
    }

    #[test]
    fn sequenced_ingest_recovers_the_replay_guard() {
        let (mut durable, _) =
            DurableSession::open(session(21), MemoryBackend::new(), DurableOptions::default())
                .unwrap();
        durable.ingest_batch_seq(0xfeed, 1, 0, &[0.5, -0.25]).unwrap();
        durable.ingest_batch_seq(0xfeed, 2, 1, &[0.125]).unwrap();
        durable.ingest_batch_seq(0xbeef, 1, 0, &[0.0625]).unwrap();
        // A retry is refused typed and never journaled.
        let err = durable.ingest_batch_seq(0xfeed, 2, 1, &[0.125]).unwrap_err();
        assert!(matches!(err, DapError::DuplicateSequence { seq: 2, last: 2, .. }), "{err}");
        assert_eq!(durable.journal().records(), 3, "the duplicate cost no storage");
        let reference = durable.session().content_digest();

        // Crash (drop) and recover: the guard comes back with the data.
        let (_, backend) = durable.into_parts();
        let (mut recovered, recovery) =
            DurableSession::open(session(21), backend, DurableOptions::default()).unwrap();
        assert_eq!(recovery.replayed, 3);
        assert_eq!(recovered.session().content_digest(), reference);
        assert_eq!(recovered.session().last_seq(0xfeed), Some(2));
        assert_eq!(recovered.session().last_seq(0xbeef), Some(1));
        // The recovered session still refuses the retry...
        let err = recovered.ingest_batch_seq(0xfeed, 2, 1, &[0.125]).unwrap_err();
        assert!(matches!(err, DapError::DuplicateSequence { .. }), "{err}");
        // ...and still accepts the next sequence.
        recovered.ingest_batch_seq(0xfeed, 3, 1, &[0.25]).unwrap();
    }

    #[test]
    fn checkpoints_carry_the_replay_guard() {
        // checkpoint_every = 1: every batch compacts, so recovery comes
        // entirely from the checkpoint part — which must carry channels.
        const CH: u64 = 0x5e9;
        let opts = DurableOptions { checkpoint_every: 1, salvage: false };
        let (mut durable, _) =
            DurableSession::open(session(22), MemoryBackend::new(), opts).unwrap();
        durable.ingest_batch_seq(CH, 1, 0, &[0.5]).unwrap();
        durable.ingest_batch_seq(CH, 2, 0, &[-0.5]).unwrap();
        assert_eq!(durable.journal().records(), 0, "everything compacted");
        let (_, backend) = durable.into_parts();
        let (mut recovered, recovery) =
            DurableSession::open(session(22), backend, opts).unwrap();
        assert!(recovery.from_checkpoint);
        assert_eq!(recovery.replayed, 0);
        assert_eq!(recovered.session().last_seq(CH), Some(2));
        let err = recovered.ingest_batch_seq(CH, 1, 0, &[0.5]).unwrap_err();
        assert!(matches!(err, DapError::DuplicateSequence { .. }), "{err}");
    }

    #[test]
    fn rejected_operations_never_reach_the_journal() {
        let (mut durable, _) =
            DurableSession::open(session(11), MemoryBackend::new(), DurableOptions::default())
                .unwrap();
        assert!(durable.ingest(0, 1e9).is_err(), "out of range");
        assert!(durable.ingest(99, 0.0).is_err(), "unknown group");
        let quota = durable.session().quota(0);
        assert!(durable.ingest_batch(0, &vec![0.0; quota + 1]).is_err(), "over quota");
        assert_eq!(durable.journal().records(), 0, "no record for rejected traffic");
    }

    #[test]
    fn append_failure_leaves_session_state_untouched() {
        // Cut inside the first record: the append fails, the ingest is
        // not applied, and the session still matches a fresh one.
        let backend = FaultBackend::cut_at(MemoryBackend::new(), header_bytes(0).len() as u64 + 4);
        let (mut durable, _) =
            DurableSession::open(session(12), backend, DurableOptions::default()).unwrap();
        let err = durable.ingest(0, 0.5).unwrap_err();
        assert!(matches!(err, DapError::Journal { .. }), "{err}");
        assert_eq!(durable.session().content_digest(), session(12).content_digest());
    }

    #[test]
    fn recovery_rejects_foreign_deployments() {
        let (mut durable, _) =
            DurableSession::open(session(13), MemoryBackend::new(), DurableOptions::default())
                .unwrap();
        durable.ingest(0, 0.5).unwrap();
        durable.checkpoint().unwrap();
        let (_, backend) = durable.into_parts();
        // A different plan seed is a different deployment.
        let err =
            DurableSession::open(session(14), backend, DurableOptions::default()).unwrap_err();
        assert!(matches!(err, DapError::Journal { .. }), "{err}");
        assert!(err.to_string().contains("checkpoint does not apply"), "{err}");
    }

    #[test]
    fn salvage_keeps_the_valid_prefix() {
        let (mut durable, _) =
            DurableSession::open(session(15), MemoryBackend::new(), DurableOptions::default())
                .unwrap();
        durable.ingest(0, 0.5).unwrap();
        let prefix_digest = durable.session().content_digest();
        durable.ingest(1, -0.5).unwrap();
        let (_, mut backend) = durable.into_parts();
        let last = backend.journal_bytes().len() - 1;
        backend.journal_bytes_mut()[last] ^= 0xff;

        // Default: typed corruption error.
        let err = DurableSession::open(session(15), backend.clone(), DurableOptions::default())
            .unwrap_err();
        assert!(matches!(err, DapError::Journal { .. }), "{err}");

        // Salvage: the valid prefix, bit-for-bit.
        let opts = DurableOptions { salvage: true, ..DurableOptions::default() };
        let (recovered, recovery) = DurableSession::open(session(15), backend, opts).unwrap();
        assert!(recovery.salvaged.is_some());
        assert_eq!(recovered.session().content_digest(), prefix_digest);
    }

    #[test]
    fn durable_session_over_files_survives_reopen() {
        let dir = tmpdir("durable-file");
        let mut reference = session(16);
        {
            let backend = FileBackend::open(&dir).unwrap();
            let (mut durable, _) =
                DurableSession::open(session(16), backend, DurableOptions::default()).unwrap();
            for i in 0..8 {
                let v = (i as f64) / 10.0 - 0.35;
                durable.ingest(i % 2, v).unwrap();
                reference.ingest(i % 2, v).unwrap();
            }
            // Dropped without shutdown: the journal is the only survivor.
        }
        let backend = FileBackend::open(&dir).unwrap();
        let (recovered, recovery) =
            DurableSession::open(session(16), backend, DurableOptions::default()).unwrap();
        assert_eq!(recovery.replayed, 8);
        assert_eq!(recovered.session().content_digest(), reference.content_digest());
        std::fs::remove_dir_all(&dir).ok();
    }
}
