//! The aggregator half of the protocol: a streaming ingestion session.
//!
//! [`DapSession`] is the server-side state machine of §V, Fig. 3: it owns a
//! [`GroupPlan`] and one streamed [`GroupHistogram`] per group, accepts
//! reports incrementally ([`DapSession::ingest`] /
//! [`DapSession::ingest_batch`]) from clients it never trusts — out-of-range
//! and over-quota reports are rejected as [`DapError`]s — and runs the
//! collector's pipeline (probe → per-group estimation → Algorithm-5
//! aggregation) on demand in [`DapSession::finalize`]. Sessions fed by
//! independent threads or processes combine with [`DapSession::merge`].
//!
//! The [`crate::Dap`] and [`crate::sw::SwDap`] simulations are thin drivers
//! over this type plus the [`crate::client`] module; real deployments feed
//! the same API from a network or a stream instead.

use crate::aggregation::aggregate;
use crate::client::ClientAssignment;
use crate::codec::Fnv;
use crate::error::DapError;
use crate::grouping::GroupPlan;
use crate::parallel::parallel_map;
use crate::protocol::{DapConfig, DapOutput, GroupReport};
use crate::scheme::{estimate_group_means_hist, GroupHistogram, Scheme};
use crate::secagg::{MaskedGroup, MaskedPart, MaskedState, SecaggRole};
use crate::sw::{probe_side_bands, sw_group_means_hist};
use dap_attack::Side;
use dap_emf::{probe_side, EmfConfig};
use dap_estimation::{EmWorkspace, Grid};
use dap_ldp::{Epsilon, NumericMechanism};
use std::collections::BTreeMap;

/// Slack applied to the output-domain membership check: perturbed values may
/// stray from the closed domain by floating error (the same tolerance the
/// attack layer grants itself when resolving poison ranges).
const DOMAIN_TOL: f64 = 1e-9;

/// How [`DapSession::finalize`] probes the poisoned side and reads each
/// group's mean off the reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMode {
    /// For unbiased mechanisms (PM, Duchi): Algorithm-3 side probe around
    /// the pivot `O'`, group means by the Eq. 13 report-sum correction.
    ReportSum,
    /// For biased mechanisms whose poison spec lives in the inflation bands
    /// beyond the input domain (SW): likelihood probe over the two bands,
    /// group means read off the reconstructed input histogram.
    HistogramBands,
}

/// Per-group aggregator state: the mechanism in force, the report grid, the
/// EMF sizing, and the streamed histogram.
#[derive(Debug, Clone)]
struct GroupState {
    grid: Grid,
    emf_cfg: EmfConfig,
    hist: GroupHistogram,
    /// Solicited report volume `|G_t|·k_t`; submissions beyond it are
    /// rejected.
    quota: usize,
}

/// A streaming DAP aggregation session (see the module docs).
///
/// Generic over the LDP mechanism so per-group estimation stays monomorphic;
/// `M` must be `Sync` because [`DapSession::finalize`] fans the independent
/// group estimations out over [`crate::parallel_map`].
#[derive(Debug, Clone)]
pub struct DapSession<M> {
    config: DapConfig,
    plan: GroupPlan,
    mechs: Vec<M>,
    groups: Vec<GroupState>,
    /// Replay guard: per coordinator channel, the highest batch sequence
    /// applied. Sequenced ingestion ([`DapSession::ingest_batch_seq`])
    /// accepts only the next sequence, so a retried batch whose ack was
    /// lost is rejected typed instead of double-counted.
    channels: BTreeMap<u64, u64>,
    /// `Some` when the session is a secret-sharing share server
    /// ([`DapSession::new_masked`]): per-group state is then a masked
    /// `u64` accumulator and every plaintext operation is refused typed
    /// ([`DapError::ModeMismatch`]) — this session must never see, hold
    /// or journal an unmasked report or histogram.
    masked: Option<MaskedState>,
}

impl<M: NumericMechanism> DapSession<M> {
    /// Opens a session for a validated `config` and a grouping `plan`,
    /// building one mechanism per group budget with `mech_factory`.
    ///
    /// The EMF sizing per group depends only on the solicited report volume
    /// `|G_t|·k_t` — known from the plan up front — so the session never
    /// needs the raw report vectors.
    pub fn new<F>(config: DapConfig, plan: GroupPlan, mech_factory: F) -> Result<Self, DapError>
    where
        F: Fn(Epsilon) -> M,
    {
        config.validate()?;
        if plan.len() != GroupPlan::group_count(config.eps, config.eps0)
            || plan.budgets[0].get().to_bits() != config.eps.to_bits()
        {
            return Err(DapError::SessionMismatch { what: "config budgets and group plan" });
        }
        let mut mechs = Vec::with_capacity(plan.len());
        let mut groups = Vec::with_capacity(plan.len());
        for g in 0..plan.len() {
            let eps_t = plan.budgets[g];
            let mech = mech_factory(eps_t);
            let quota = plan.reports_in_group(g);
            let emf_cfg = EmfConfig::capped(quota, eps_t.get(), config.max_d_out);
            let (olo, ohi) = mech.output_range();
            let grid = Grid::new(olo, ohi, emf_cfg.d_out);
            let hist = GroupHistogram {
                counts: vec![0.0; emf_cfg.d_out],
                sum_reports: 0.0,
                n_reports: 0,
            };
            mechs.push(mech);
            groups.push(GroupState { grid, emf_cfg, hist, quota });
        }
        Ok(DapSession { config, plan, mechs, groups, channels: BTreeMap::new(), masked: None })
    }

    /// Opens a session in **masked mode**: a share server of the
    /// secret-sharing tier ([`crate::secagg`]). The deployment shape
    /// (config, plan, grids — hence [`DapSession::state_digest`]) is
    /// identical to a plain twin's, so the hello handshake interoperates,
    /// but per-group state is a masked `u64` accumulator fed by
    /// [`DapSession::ingest_shares`]; plaintext ingestion, part export/
    /// merge and finalize are refused with [`DapError::ModeMismatch`].
    pub fn new_masked<F>(
        config: DapConfig,
        plan: GroupPlan,
        mech_factory: F,
        role: SecaggRole,
    ) -> Result<Self, DapError>
    where
        F: Fn(Epsilon) -> M,
    {
        SecaggRole::new(role.k, role.index)?;
        let mut session = DapSession::new(config, plan, mech_factory)?;
        let resolutions: Vec<usize> =
            session.groups.iter().map(|g| g.hist.counts.len()).collect();
        session.masked = Some(MaskedState::new(role, &resolutions));
        Ok(session)
    }

    /// The session's configuration.
    pub fn config(&self) -> &DapConfig {
        &self.config
    }

    /// The grouping plan the session was opened with.
    pub fn plan(&self) -> &GroupPlan {
        &self.plan
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The grouping instruction for clients of group `g` — what a real
    /// deployment would send to each assigned user.
    pub fn client_assignment(&self, g: usize) -> Result<ClientAssignment, DapError> {
        if g >= self.plan.len() {
            return Err(DapError::UnknownGroup { group: g, groups: self.plan.len() });
        }
        Ok(self.plan.client_assignment(g))
    }

    /// The streamed histogram of group `g` (all zeros before any ingest).
    pub fn histogram(&self, g: usize) -> &GroupHistogram {
        &self.groups[g].hist
    }

    /// Solicited report volume of group `g` (`|G_t|·k_t`).
    pub fn quota(&self, g: usize) -> usize {
        self.groups[g].quota
    }

    /// The output-grid bucket a report of `group` falls into — how the
    /// secret-sharing dealer converts a report chunk into the bucket-count
    /// contribution it splits into shares. Same grid, same bucketing as
    /// plaintext ingestion, so the reconstructed counts are bit-identical
    /// to a plain session's.
    pub fn bucket_of(&self, group: usize, report: f64) -> Result<usize, DapError> {
        self.check_group(group)?;
        self.check_range(group, report)?;
        Ok(self.groups[group].grid.bucket_of(report))
    }

    /// Reports accepted into group `g` so far.
    pub fn ingested(&self, g: usize) -> usize {
        self.groups[g].hist.n_reports
    }

    /// Refuses plaintext operations on a masked session — a share server
    /// must never accumulate (or be asked to reveal) unmasked state.
    fn check_plain(&self) -> Result<(), DapError> {
        if self.masked.is_some() {
            return Err(DapError::ModeMismatch { masked: true });
        }
        Ok(())
    }

    fn check_group(&self, group: usize) -> Result<(), DapError> {
        if group >= self.groups.len() {
            return Err(DapError::UnknownGroup { group, groups: self.groups.len() });
        }
        Ok(())
    }

    fn check_range(&self, group: usize, report: f64) -> Result<(), DapError> {
        let grid = &self.groups[group].grid;
        let (lo, hi) = (grid.lo(), grid.hi());
        // NaN fails both comparisons and is rejected here too.
        if report >= lo - DOMAIN_TOL && report <= hi + DOMAIN_TOL {
            Ok(())
        } else {
            Err(DapError::ReportOutOfRange { group, report, lo, hi })
        }
    }

    /// Accepts one report into `group`.
    ///
    /// Rejects unknown groups, reports outside the group mechanism's output
    /// domain (Definition 2 confines even Byzantine reports to `[DL, DR]`)
    /// and submissions beyond the group's solicited volume. On error the
    /// session state is unchanged.
    pub fn ingest(&mut self, group: usize, report: f64) -> Result<(), DapError> {
        self.ingest_batch(group, &[report])
    }

    /// Accepts a batch of reports into `group`, atomically: the whole batch
    /// is validated against the output domain and the remaining quota before
    /// any report is accumulated, so a rejected batch leaves no trace.
    ///
    /// This is the ingestion hot path: the network reactor
    /// ([`crate::net::ServeOptions::reactor`]) applies many connections'
    /// batches back-to-back under one lock acquisition, so the loop body
    /// is kept to two histogram writes per report. `sum_reports`
    /// accumulates in batch order — report order within a group is part of
    /// the exactness contract.
    pub fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), DapError> {
        self.check_ingest_batch(group, reports)?;
        let state = &mut self.groups[group];
        // Split the borrows once: the grid is read-only while the
        // histogram accumulates, and the report counter needs no per-item
        // increment.
        let grid = &state.grid;
        let hist = &mut state.hist;
        for &r in reports {
            hist.counts[grid.bucket_of(r)] += 1.0;
            hist.sum_reports += r;
        }
        hist.n_reports += reports.len();
        Ok(())
    }

    /// The validation half of [`DapSession::ingest_batch`], without the
    /// accumulation: group index, output-domain membership of every report,
    /// and the remaining quota. The write-ahead journal
    /// ([`crate::storage::DurableSession`]) checks before appending so
    /// rejected traffic never reaches the log.
    pub fn check_ingest_batch(&self, group: usize, reports: &[f64]) -> Result<(), DapError> {
        self.check_plain()?;
        self.check_group(group)?;
        for &r in reports {
            self.check_range(group, r)?;
        }
        let state = &self.groups[group];
        if state.hist.n_reports + reports.len() > state.quota {
            return Err(DapError::QuotaExceeded {
                group,
                quota: state.quota,
                ingested: state.hist.n_reports,
                attempted: reports.len(),
            });
        }
        Ok(())
    }

    /// The highest batch sequence applied on coordinator `channel`, or
    /// `None` if the channel has never delivered a sequenced batch. This
    /// is what the `dap-wire/v1` hello handshake returns so a reconnecting
    /// coordinator can resume without re-applying acknowledged batches.
    pub fn last_seq(&self, channel: u64) -> Option<u64> {
        self.channels.get(&channel).copied()
    }

    /// Every channel's replay-guard state, in channel order.
    pub fn channel_seqs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.channels.iter().map(|(&c, &s)| (c, s))
    }

    /// [`DapSession::ingest_batch`] with an idempotency guard: the batch is
    /// applied only when `seq` is exactly the next sequence on `channel`
    /// (starting at 1). A sequence at or below the high-water mark is a
    /// retry of an already-applied batch and is rejected with
    /// [`DapError::DuplicateSequence`] — the sender treats that as an ack —
    /// while a sequence that skips ahead is rejected with
    /// [`DapError::SequenceGap`]. On any error the session is unchanged.
    pub fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError> {
        self.check_ingest_batch_seq(channel, seq, group, reports)?;
        self.ingest_batch(group, reports)?;
        self.channels.insert(channel, seq);
        Ok(())
    }

    /// The validation half of [`DapSession::ingest_batch_seq`]: the replay
    /// guard first (duplicates must be rejected before any content check so
    /// a retried batch races nothing), then the plain
    /// [`DapSession::check_ingest_batch`] checks.
    pub fn check_ingest_batch_seq(
        &self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError> {
        let last = self.channels.get(&channel).copied().unwrap_or(0);
        if seq <= last {
            return Err(DapError::DuplicateSequence { channel, seq, last });
        }
        if seq != last + 1 {
            return Err(DapError::SequenceGap { channel, seq, expected: last + 1 });
        }
        self.check_ingest_batch(group, reports)
    }

    /// Combines sessions that accumulated shards of the same deployment —
    /// many threads or processes ingesting independently, merged before one
    /// [`DapSession::finalize`].
    ///
    /// All parts must have been opened with the same config and group plan;
    /// a rejection names the first field that differs
    /// ([`DapConfig::diff_field`], [`GroupPlan::diff_field`]). Per-bucket
    /// counts are integer-valued, so merging is exact for any sharding; the
    /// running report *sums* combine shard-wise, which is bit-identical to
    /// single-session ingestion exactly when each group's reports stayed on
    /// one shard (the natural group-sharded split — see
    /// `examples/streaming_aggregator.rs`) and correct to float rounding
    /// otherwise.
    pub fn merge(parts: impl IntoIterator<Item = DapSession<M>>) -> Result<Self, DapError> {
        let mut parts = parts.into_iter();
        let mut base = parts
            .next()
            .ok_or(DapError::SessionMismatch { what: "zero sessions (nothing to merge)" })?;
        base.check_plain()?;
        for part in parts {
            part.check_plain()?;
            if let Some(field) = base.config.diff_field(&part.config) {
                return Err(DapError::SessionMismatch { what: field });
            }
            if let Some(field) = base.plan.diff_field(&part.plan) {
                return Err(DapError::SessionMismatch { what: field });
            }
            // Equal configs and plans imply equal EMF sizing, but the report
            // grids also depend on each shard's mechanism factory — merging
            // histograms bucketed over different output domains would be
            // silently wrong.
            if part.groups.iter().zip(&base.groups).any(|(p, b)| p.grid != b.grid) {
                return Err(DapError::SessionMismatch { what: "mechanism output grids" });
            }
            for (g, (bs, ps)) in base.groups.iter_mut().zip(&part.groups).enumerate() {
                if bs.hist.n_reports + ps.hist.n_reports > bs.quota {
                    return Err(DapError::QuotaExceeded {
                        group: g,
                        quota: bs.quota,
                        ingested: bs.hist.n_reports,
                        attempted: ps.hist.n_reports,
                    });
                }
                for (b, p) in bs.hist.counts.iter_mut().zip(&ps.hist.counts) {
                    *b += p;
                }
                bs.hist.sum_reports += ps.hist.sum_reports;
                bs.hist.n_reports += ps.hist.n_reports;
            }
            // Replay-guard high-water marks are monotone per channel, so the
            // combined session's guard is the per-channel maximum.
            for (channel, seq) in part.channels {
                let entry = base.channels.entry(channel).or_insert(0);
                *entry = (*entry).max(seq);
            }
        }
        Ok(base)
    }

    /// Digest of everything two sessions must agree on before their
    /// streamed state may combine: the config, the full group plan, and
    /// each group's report grid, histogram resolution and quota.
    ///
    /// FNV-1a over the exact field encodings (f64s by bit pattern), so the
    /// digest is stable across processes and Rust versions — it is the
    /// compatibility token of [`SessionPart`] and the `dap-wire/v1` hello
    /// handshake ([`crate::net`]).
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(b"dap-session/v1");
        let c = &self.config;
        h.word(c.eps.to_bits());
        h.word(c.eps0.to_bits());
        h.word(c.scheme as u64);
        h.word(c.weighting as u64);
        h.word(c.o_prime.to_bits());
        h.word(c.max_d_out as u64);
        h.word(c.clamp_to_input as u64);
        h.word(c.mode as u64);
        h.word(self.plan.len() as u64);
        for g in 0..self.plan.len() {
            h.word(self.plan.budgets[g].get().to_bits());
            h.word(self.plan.reports_per_user[g] as u64);
            h.word(self.plan.assignment[g].len() as u64);
            for &user in &self.plan.assignment[g] {
                h.word(user as u64);
            }
            let state = &self.groups[g];
            h.word(state.grid.lo().to_bits());
            h.word(state.grid.hi().to_bits());
            h.word(state.hist.counts.len() as u64);
            h.word(state.quota as u64);
        }
        h.finish()
    }

    /// Detaches the streamed per-group state for transport: the serialize
    /// half of shipping a session between processes. The counterpart
    /// session (same config, plan and mechanisms — verified via the
    /// embedded [`DapSession::state_digest`]) absorbs it with
    /// [`DapSession::merge_part`]. `dap-wire/v1` ([`crate::net`]) carries
    /// this type in its `part`/`merge` frames with exact f64 bit patterns.
    pub fn export_part(&self) -> SessionPart {
        SessionPart {
            digest: self.state_digest(),
            groups: self
                .groups
                .iter()
                .map(|g| PartGroup {
                    counts: g.hist.counts.clone(),
                    sum_reports: g.hist.sum_reports,
                    n_reports: g.hist.n_reports,
                })
                .collect(),
            channels: self.channels.iter().map(|(&c, &s)| (c, s)).collect(),
        }
    }

    /// Absorbs a detached part into this session — the deserialize half of
    /// [`DapSession::export_part`], with the same exactness contract as
    /// [`DapSession::merge`]: counts combine exactly for any sharding, and
    /// a group whose reports all lived in one part merges bit-identically
    /// to having ingested them here.
    ///
    /// The part is validated atomically before any accumulation: a digest
    /// mismatch, group-shape mismatch or quota violation leaves the
    /// session untouched.
    pub fn merge_part(&mut self, part: &SessionPart) -> Result<(), DapError> {
        self.check_part(part)?;
        for (state, pg) in self.groups.iter_mut().zip(&part.groups) {
            for (b, p) in state.hist.counts.iter_mut().zip(&pg.counts) {
                *b += p;
            }
            state.hist.sum_reports += pg.sum_reports;
            state.hist.n_reports += pg.n_reports;
        }
        for &(channel, seq) in &part.channels {
            let entry = self.channels.entry(channel).or_insert(0);
            *entry = (*entry).max(seq);
        }
        Ok(())
    }

    /// The validation half of [`DapSession::merge_part`], without the
    /// accumulation: digest, group shape and quota checks. Like
    /// [`DapSession::check_ingest_batch`], this is what the write-ahead
    /// journal runs before a `merge` record is appended.
    pub fn check_part(&self, part: &SessionPart) -> Result<(), DapError> {
        self.check_plain()?;
        if part.digest != self.state_digest() {
            return Err(DapError::SessionMismatch { what: "state digest" });
        }
        if part.groups.len() != self.groups.len() {
            return Err(DapError::SessionMismatch { what: "part group count" });
        }
        for (g, (state, pg)) in self.groups.iter().zip(&part.groups).enumerate() {
            if pg.counts.len() != state.hist.counts.len() {
                return Err(DapError::SessionMismatch { what: "part histogram resolution" });
            }
            if state.hist.n_reports + pg.n_reports > state.quota {
                return Err(DapError::QuotaExceeded {
                    group: g,
                    quota: state.quota,
                    ingested: state.hist.n_reports,
                    attempted: pg.n_reports,
                });
            }
        }
        Ok(())
    }

    /// Digest of the full session state: the [`DapSession::state_digest`]
    /// compatibility fields **plus** every streamed histogram value
    /// (bucket counts, running report sums and tallies, f64s by bit
    /// pattern). Two sessions with equal content digests hold
    /// bit-identical ingested state — the invariant the durability
    /// layer's recovery proves ([`crate::storage::DurableSession`]):
    /// a session restored from its journal reports the same content
    /// digest as the pre-crash session.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(b"dap-session-content/v1");
        h.word(self.state_digest());
        for state in &self.groups {
            h.word(state.hist.counts.len() as u64);
            for &c in &state.hist.counts {
                h.word(c.to_bits());
            }
            h.word(state.hist.sum_reports.to_bits());
            h.word(state.hist.n_reports as u64);
        }
        // Masked state participates too (plain sessions hash nothing
        // extra, keeping their digests unchanged): recovery of a masked
        // share server proves the same restored-state invariant as a
        // plain one.
        if let Some(masked) = &self.masked {
            h.bytes(b"masked");
            h.word(masked.role.k as u64);
            h.word(masked.role.index as u64);
            for group in &masked.groups {
                h.word(group.len() as u64);
                for &w in group {
                    h.word(w);
                }
            }
        }
        h.finish()
    }

    // -----------------------------------------------------------------
    // Masked mode (the secret-sharing tier — see `crate::secagg`)
    // -----------------------------------------------------------------

    /// The session's share-server role, or `None` for a plain session.
    pub fn secagg_role(&self) -> Option<SecaggRole> {
        self.masked.as_ref().map(|m| m.role)
    }

    /// Share batches accepted so far (0 for a plain session).
    pub fn shares_applied(&self) -> u64 {
        self.masked.as_ref().map_or(0, |m| m.shares_applied)
    }

    /// Number of replay-guard channels the session has seen.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    fn masked_state(&self) -> Result<&MaskedState, DapError> {
        self.masked.as_ref().ok_or(DapError::ModeMismatch { masked: false })
    }

    /// Records the dealer's seed commitment (announced in the masked
    /// hello). Idempotent for the same commitment; a *different* one is
    /// refused — two dealers masking under different seeds must not feed
    /// one accumulator, their shares would never cancel.
    pub fn adopt_commitment(&mut self, commitment: u64) -> Result<(), DapError> {
        self.masked_state()?;
        let masked = self.masked.as_mut().expect("checked above");
        match masked.commitment {
            None => {
                masked.commitment = Some(commitment);
                Ok(())
            }
            Some(existing) if existing == commitment => Ok(()),
            Some(_) => Err(DapError::SessionMismatch { what: "seed commitment" }),
        }
    }

    /// The validation half of [`DapSession::ingest_shares`]: masked mode,
    /// then the replay guard (duplicates before content, like the
    /// plaintext sequenced path), then group index and share shape. No
    /// quota check — the words are blinded, so quota is enforced by the
    /// coordinator at reconstruction (where the true counts first exist).
    pub fn check_ingest_shares(
        &self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError> {
        self.masked_state()?;
        let last = self.channels.get(&channel).copied().unwrap_or(0);
        if seq <= last {
            return Err(DapError::DuplicateSequence { channel, seq, last });
        }
        if seq != last + 1 {
            return Err(DapError::SequenceGap { channel, seq, expected: last + 1 });
        }
        self.check_group(group)?;
        if counts.len() != self.groups[group].hist.counts.len() {
            return Err(DapError::SessionMismatch { what: "share resolution" });
        }
        Ok(())
    }

    /// Accepts one share batch — the masked counterpart of
    /// [`DapSession::ingest_batch_seq`]: wrapping-adds the share words
    /// into the group's masked accumulator under the same per-channel
    /// replay guard (so retries dedup and chaos-path resume works
    /// verbatim). On any error the session is unchanged.
    pub fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError> {
        self.check_ingest_shares(channel, seq, group, counts)?;
        let masked = self.masked.as_mut().expect("checked by check_ingest_shares");
        for (acc, &share) in masked.groups[group].iter_mut().zip(counts) {
            *acc = acc.wrapping_add(share);
        }
        masked.shares_applied += 1;
        self.channels.insert(channel, seq);
        Ok(())
    }

    /// Serializes the masked state for transport — the share server's
    /// answer to `masked-pull`, and the checkpoint payload of a masked
    /// journaled daemon. Plain sessions refuse (there are no shares to
    /// export, and exporting zeros would merge as silent garbage).
    pub fn export_masked_part(&self) -> Result<MaskedPart, DapError> {
        let masked = self.masked_state()?;
        Ok(MaskedPart {
            digest: self.state_digest(),
            k: masked.role.k,
            index: masked.role.index,
            commitment: masked.commitment.unwrap_or(0),
            groups: masked
                .groups
                .iter()
                .map(|g| MaskedGroup { counts: g.clone() })
                .collect(),
            channels: self.channels.iter().map(|(&c, &s)| (c, s)).collect(),
        })
    }

    /// Absorbs a masked part produced by the **same share server** (same
    /// deployment, same role) — the checkpoint-restore half of masked
    /// durability. This is *accumulation*, not reconstruction: masks do
    /// not cancel here (that needs all `k` servers' parts —
    /// [`crate::secagg::reconstruct`], a coordinator operation).
    pub fn merge_masked_part(&mut self, part: &MaskedPart) -> Result<(), DapError> {
        let masked = self.masked_state()?;
        if part.digest != self.state_digest() {
            return Err(DapError::SessionMismatch { what: "state digest" });
        }
        if part.k != masked.role.k || part.index != masked.role.index {
            return Err(DapError::SessionMismatch { what: "secagg topology" });
        }
        if part.groups.len() != masked.groups.len() {
            return Err(DapError::SessionMismatch { what: "part group count" });
        }
        for (pg, mg) in part.groups.iter().zip(&masked.groups) {
            if pg.counts.len() != mg.len() {
                return Err(DapError::SessionMismatch { what: "part histogram resolution" });
            }
        }
        if part.commitment != 0 {
            self.adopt_commitment(part.commitment)?;
        }
        let masked = self.masked.as_mut().expect("checked above");
        for (acc, pg) in masked.groups.iter_mut().zip(&part.groups) {
            for (a, &c) in acc.iter_mut().zip(&pg.counts) {
                *a = a.wrapping_add(c);
            }
        }
        for &(channel, seq) in &part.channels {
            let entry = self.channels.entry(channel).or_insert(0);
            *entry = (*entry).max(seq);
        }
        Ok(())
    }
}

/// One group's streamed state inside a [`SessionPart`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartGroup {
    /// Per-output-bucket report counts (length `d'`).
    pub counts: Vec<f64>,
    /// Running report sum `Σ v'`.
    pub sum_reports: f64,
    /// Reports accepted.
    pub n_reports: usize,
}

/// A session's per-group ingestion state, detached from the session for
/// transport between processes (see [`DapSession::export_part`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPart {
    /// [`DapSession::state_digest`] of the originating session; merging
    /// verifies it against the receiver.
    pub digest: u64,
    /// Per-group state, in group order.
    pub groups: Vec<PartGroup>,
    /// The originating session's replay-guard high-water marks, `(channel,
    /// last applied seq)` in channel order — carried so that a checkpoint
    /// (which is a part frame) restores dedup state across a restart, and
    /// merged by per-channel maximum. Empty for sessions that never saw
    /// sequenced ingestion; an empty table is omitted from the wire
    /// encoding, keeping pre-sequencing part frames byte-identical.
    pub channels: Vec<(u64, u64)>,
}

impl<M: NumericMechanism + Sync> DapSession<M> {
    /// Runs the collector pipeline on the ingested state: side/γ̂ probe on
    /// the most private group, per-group estimation under each scheme
    /// (fanned out over [`crate::parallel_map`]; bit-identical for any
    /// thread count), and Algorithm-5 aggregation. Outputs come back in
    /// `schemes` order; the session is left untouched, so more reports can
    /// be ingested and `finalize` called again.
    pub fn finalize(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, DapError> {
        self.check_plain()?;
        if schemes.is_empty() {
            return Ok(Vec::new());
        }
        Ok(match self.config.mode {
            EstimationMode::ReportSum => self.finalize_report_sum(schemes),
            EstimationMode::HistogramBands => self.finalize_bands(schemes),
        })
    }

    /// Probe + Eq. 13 estimation + aggregation for unbiased mechanisms —
    /// stages 3–5 of the PM protocol, verbatim.
    fn finalize_report_sum(&self, schemes: &[Scheme]) -> Vec<DapOutput> {
        let cfg = &self.config;
        let plan = &self.plan;

        // Stage 3: probing on the most private group (Theorem 3: smallest ε
        // probes Byzantine features best), reading the streamed histogram.
        let probe_g = plan.probe_group();
        let probe_cfg = &self.groups[probe_g].emf_cfg;
        let probe = probe_side(
            &self.mechs[probe_g],
            &self.groups[probe_g].hist.counts,
            probe_cfg.d_in,
            cfg.o_prime,
            &probe_cfg.em,
        );
        let side = probe.side;
        let gamma = probe.chosen().poison_mass();

        // Stage 4: intra-group estimation (Eq. 13), fanned out over the
        // independent groups. The probe group's base EMF fit is exactly the
        // probe's chosen-side run (same cached matrix, counts and stopping
        // rule), so it is handed down instead of being recomputed.
        let group_inputs: Vec<usize> = (0..plan.len()).collect();
        let estimates = parallel_map(group_inputs, |g| {
            let probed_base = (g == probe_g).then(|| probe.chosen());
            estimate_group_means_hist(
                &self.mechs[g],
                &self.groups[g].hist,
                side,
                cfg.o_prime,
                gamma,
                schemes,
                &self.groups[g].emf_cfg,
                probed_base,
                &mut EmWorkspace::new(),
            )
        });

        // Stage 5: inter-group aggregation (Algorithm 5), per scheme.
        let per_group: Vec<Vec<(f64, f64, usize)>> = estimates
            .iter()
            .map(|per_scheme| {
                per_scheme.iter().map(|e| (e.mean, e.m_hat, e.n_reports)).collect()
            })
            .collect();
        self.aggregate_outputs(schemes.len(), side, gamma, &per_group)
    }

    /// Band probe + histogram-mean estimation + aggregation for biased
    /// mechanisms (SW) — the §V-D pipeline.
    fn finalize_bands(&self, schemes: &[Scheme]) -> Vec<DapOutput> {
        let plan = &self.plan;

        // Probe the two inflation bands on the most private group; the
        // estimation pivot is the input-domain end on the poisoned side.
        let probe_g = plan.probe_group();
        let (side, gamma) = probe_side_bands(
            &self.mechs[probe_g],
            &self.groups[probe_g].hist.counts,
            &self.groups[probe_g].emf_cfg,
        );
        let (ilo, ihi) = self.mechs[0].input_range();
        let o_prime_out = match side {
            Side::Right => ihi,
            Side::Left => ilo,
        };

        // Per-group estimation from the reconstructed input histograms; the
        // poison share converts to a report count for the shared stage 5.
        let estimates = parallel_map((0..plan.len()).collect(), |g| {
            sw_group_means_hist(
                &self.mechs[g],
                &self.groups[g].hist,
                side,
                o_prime_out,
                gamma,
                schemes,
                &self.groups[g].emf_cfg,
            )
        });
        let per_group: Vec<Vec<(f64, f64, usize)>> = estimates
            .iter()
            .enumerate()
            .map(|(g, per_scheme)| {
                let n_reports = self.groups[g].hist.n_reports;
                per_scheme
                    .iter()
                    .map(|&(mean_t, gamma_t)| (mean_t, n_reports as f64 * gamma_t, n_reports))
                    .collect()
            })
            .collect();
        self.aggregate_outputs(schemes.len(), side, gamma, &per_group)
    }

    /// Stage 5, shared by both modes: combines the per-group, per-scheme
    /// `(M_t, m̂_t, N_t)` triples with Algorithm 5's variance-optimal
    /// weights into one [`DapOutput`] per scheme.
    fn aggregate_outputs(
        &self,
        n_schemes: usize,
        side: Side,
        gamma: f64,
        per_group: &[Vec<(f64, f64, usize)>],
    ) -> Vec<DapOutput> {
        let cfg = &self.config;
        let plan = &self.plan;
        let (ilo, ihi) = self.mechs[0].input_range();
        let worst_vars: Vec<f64> =
            self.mechs.iter().map(|m| m.worst_case_variance()).collect();
        (0..n_schemes)
            .map(|s| {
                let mut means = Vec::with_capacity(plan.len());
                let mut n_hats = Vec::with_capacity(plan.len());
                let mut groups = Vec::with_capacity(plan.len());
                for (g, per_scheme) in per_group.iter().enumerate() {
                    let (mean_t, m_hat, n_reports) = per_scheme[s];
                    let eps_t = plan.budgets[g];
                    let n_hat = (n_reports as f64 - m_hat) * eps_t.get() / cfg.eps;
                    means.push(mean_t);
                    n_hats.push(n_hat);
                    groups.push(GroupReport {
                        eps_t: eps_t.get(),
                        n_reports,
                        mean_t,
                        m_hat,
                        n_hat,
                        weight: 0.0, // filled below
                    });
                }
                let agg = aggregate(&means, &n_hats, &worst_vars, cfg.weighting);
                for (g, w) in groups.iter_mut().zip(&agg.weights) {
                    g.weight = *w;
                }
                let mean =
                    if cfg.clamp_to_input { agg.mean.clamp(ilo, ihi) } else { agg.mean };
                DapOutput { mean, side, gamma, min_variance: agg.min_variance, groups }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use dap_attack::{Attack, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_ldp::PiecewiseMechanism;

    fn session(eps: f64, n_users: usize, seed: u64) -> DapSession<PiecewiseMechanism> {
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(eps, Scheme::Emf) };
        let plan = GroupPlan::build(n_users, cfg.eps, cfg.eps0, &mut seeded(seed));
        DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
    }

    #[test]
    fn ingest_accumulates_into_the_histogram() {
        let mut s = session(0.25, 400, 1);
        s.ingest(0, 0.5).unwrap();
        s.ingest(0, -0.5).unwrap();
        assert_eq!(s.ingested(0), 2);
        assert_eq!(s.histogram(0).sum_reports, 0.0);
        assert_eq!(s.histogram(0).counts.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn out_of_range_reports_are_rejected_without_trace() {
        let mut s = session(0.25, 400, 2);
        let err = s.ingest(0, 1e6).unwrap_err();
        assert!(matches!(err, DapError::ReportOutOfRange { group: 0, .. }));
        let err = s.ingest_batch(1, &[0.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, DapError::ReportOutOfRange { group: 1, .. }));
        assert_eq!(s.ingested(0) + s.ingested(1), 0);
    }

    #[test]
    fn unknown_group_and_quota_violations_are_rejected() {
        let mut s = session(0.25, 40, 3);
        let groups = s.group_count();
        assert!(matches!(
            s.ingest(groups, 0.0),
            Err(DapError::UnknownGroup { .. })
        ));
        let quota = s.quota(0);
        let fill = vec![0.0; quota];
        s.ingest_batch(0, &fill).unwrap();
        let err = s.ingest(0, 0.0).unwrap_err();
        assert!(matches!(err, DapError::QuotaExceeded { group: 0, .. }));
        // The rejected batch left nothing behind.
        assert_eq!(s.ingested(0), quota);
    }

    #[test]
    fn client_assignments_mirror_the_plan() {
        let s = session(0.25, 400, 4);
        for g in 0..s.group_count() {
            let a = s.client_assignment(g).unwrap();
            assert_eq!(a.group, g);
            assert!((a.total_spend() - 0.25).abs() < 1e-12);
        }
        assert!(matches!(
            s.client_assignment(99),
            Err(DapError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn mismatched_plans_refuse_to_merge() {
        let a = session(0.25, 400, 5);
        let b = session(0.25, 400, 6); // different shuffle → different plan
        let err = DapSession::merge([a, b]).unwrap_err();
        assert!(matches!(
            err,
            DapError::SessionMismatch { what: "plan user assignment" }
        ));
        assert!(matches!(
            DapSession::<PiecewiseMechanism>::merge([]).unwrap_err(),
            DapError::SessionMismatch { .. }
        ));
    }

    #[test]
    fn merge_rejections_name_the_mismatched_field() {
        // Same plan, configs differing in exactly one field: the error must
        // say which one, not a blanket "configs differ".
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
        let plan = GroupPlan::build(400, cfg.eps, cfg.eps0, &mut seeded(11));
        let a = DapSession::new(cfg, plan.clone(), PiecewiseMechanism::new).unwrap();
        let scheme_differs = DapConfig { scheme: Scheme::EmfStar, ..cfg };
        let b = DapSession::new(scheme_differs, plan.clone(), PiecewiseMechanism::new).unwrap();
        assert!(matches!(
            DapSession::merge([a.clone(), b]).unwrap_err(),
            DapError::SessionMismatch { what: "config scheme" }
        ));
        let clamp_differs = DapConfig { clamp_to_input: false, ..cfg };
        let c = DapSession::new(clamp_differs, plan, PiecewiseMechanism::new).unwrap();
        let err = DapSession::merge([a, c]).unwrap_err();
        assert!(matches!(
            err,
            DapError::SessionMismatch { what: "config clamp_to_input" }
        ));
        assert!(err.to_string().contains("clamp_to_input"), "{err}");
    }

    #[test]
    fn exported_parts_merge_back_exactly() {
        let mut a = session(0.25, 400, 21);
        let mut b = session(0.25, 400, 21); // same seed → same plan
        a.ingest_batch(0, &[0.25, -0.5, 0.125]).unwrap();
        a.ingest(1, 0.75).unwrap();
        b.merge_part(&a.export_part()).expect("compatible part");
        for g in 0..a.group_count() {
            assert_eq!(a.histogram(g).counts, b.histogram(g).counts, "group {g}");
            assert_eq!(
                a.histogram(g).sum_reports.to_bits(),
                b.histogram(g).sum_reports.to_bits(),
                "group {g}"
            );
            assert_eq!(a.ingested(g), b.ingested(g));
        }
    }

    #[test]
    fn merge_part_validates_before_mutating() {
        let mut base = session(0.25, 400, 22);
        // Incompatible origin (different plan) → digest mismatch.
        let stranger = session(0.25, 400, 23);
        assert!(matches!(
            base.merge_part(&stranger.export_part()).unwrap_err(),
            DapError::SessionMismatch { what: "state digest" }
        ));
        // Over-quota part → typed quota rejection, state untouched.
        let mut donor = session(0.25, 400, 22);
        let quota = donor.quota(0);
        donor.ingest_batch(0, &vec![0.0; quota]).unwrap();
        let part = donor.export_part();
        base.merge_part(&part).expect("first fill fits");
        let err = base.merge_part(&part).unwrap_err();
        assert!(matches!(err, DapError::QuotaExceeded { group: 0, .. }));
        assert_eq!(base.ingested(0), quota, "rejected part left a trace");
    }

    #[test]
    fn session_mismatch_literals_are_wire_encodable() {
        // Every `what` this module constructs directly (i.e. not via the
        // diff_field helpers, which have their own lockstep tests) must be
        // in the wire table, or the typed rejection degrades to `Failed`.
        for what in [
            "zero sessions (nothing to merge)",
            "config budgets and group plan",
            "mechanism output grids",
            "state digest",
            "part group count",
            "part histogram resolution",
            "share resolution",
            "secagg topology",
            "seed commitment",
        ] {
            assert!(
                DapError::MISMATCH_FIELDS.contains(&what),
                "'{what}' missing from DapError::MISMATCH_FIELDS"
            );
        }
    }

    #[test]
    fn state_digest_covers_config_plan_and_grids() {
        let a = session(0.25, 400, 30);
        assert_eq!(a.state_digest(), session(0.25, 400, 30).state_digest());
        // A different plan shuffle, budget or resolution moves the digest.
        assert_ne!(a.state_digest(), session(0.25, 400, 31).state_digest());
        assert_ne!(a.state_digest(), session(0.5, 400, 30).state_digest());
        let coarser = DapSession::new(
            DapConfig { max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) },
            GroupPlan::build(400, 0.25, 1.0 / 16.0, &mut seeded(30)),
            PiecewiseMechanism::new,
        )
        .unwrap();
        assert_ne!(a.state_digest(), coarser.state_digest());
        // Ingestion does not move it — the digest is about compatibility,
        // not content.
        let mut b = session(0.25, 400, 30);
        b.ingest(0, 0.5).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn content_digest_tracks_ingested_state() {
        let a = session(0.25, 400, 30);
        let mut b = session(0.25, 400, 30);
        assert_eq!(a.content_digest(), b.content_digest(), "fresh twins agree");
        // Unlike the compatibility digest, ingestion moves it …
        b.ingest(0, 0.5).unwrap();
        assert_ne!(a.content_digest(), b.content_digest());
        assert_eq!(a.state_digest(), b.state_digest());
        // … and replaying the same reports restores it exactly.
        let mut c = session(0.25, 400, 30);
        c.ingest(0, 0.5).unwrap();
        assert_eq!(b.content_digest(), c.content_digest());
    }

    #[test]
    fn mismatched_mechanism_grids_refuse_to_merge() {
        // Same config and plan, but one shard's factory ignores its assigned
        // budget — its output domains (hence report grids) differ, and
        // merging the bucket counts would be silently wrong.
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
        let plan = GroupPlan::build(400, cfg.eps, cfg.eps0, &mut seeded(7));
        let a = DapSession::new(cfg, plan.clone(), PiecewiseMechanism::new).unwrap();
        let b = DapSession::new(cfg, plan, |_| {
            PiecewiseMechanism::new(dap_ldp::Epsilon::of(2.0))
        })
        .unwrap();
        let err = DapSession::merge([a, b]).unwrap_err();
        assert!(matches!(
            err,
            DapError::SessionMismatch { what: "mechanism output grids" }
        ));
    }

    #[test]
    fn sequenced_ingest_dedups_retries_and_rejects_gaps() {
        let mut s = session(0.25, 400, 40);
        let ch = 0xc0ffee;
        assert_eq!(s.last_seq(ch), None);
        s.ingest_batch_seq(ch, 1, 0, &[0.5, -0.25]).unwrap();
        s.ingest_batch_seq(ch, 2, 1, &[0.125]).unwrap();
        assert_eq!(s.last_seq(ch), Some(2));
        let digest = s.content_digest();

        // A retry of an applied batch is rejected typed and leaves no trace.
        let err = s.ingest_batch_seq(ch, 2, 1, &[0.125]).unwrap_err();
        assert!(
            matches!(err, DapError::DuplicateSequence { channel, seq: 2, last: 2 } if channel == ch),
            "{err}"
        );
        assert_eq!(s.content_digest(), digest, "duplicate left a trace");

        // Skipping ahead is a gap, not silently accepted.
        let err = s.ingest_batch_seq(ch, 4, 0, &[0.0]).unwrap_err();
        assert!(
            matches!(err, DapError::SequenceGap { seq: 4, expected: 3, .. }),
            "{err}"
        );
        assert_eq!(s.last_seq(ch), Some(2));

        // A *rejected* batch (bad content) does not advance the guard, so
        // the corrected retry of the same sequence succeeds.
        let err = s.ingest_batch_seq(ch, 3, 0, &[f64::NAN]).unwrap_err();
        assert!(matches!(err, DapError::ReportOutOfRange { .. }));
        assert_eq!(s.last_seq(ch), Some(2));
        s.ingest_batch_seq(ch, 3, 0, &[0.25]).unwrap();

        // Channels are independent.
        s.ingest_batch_seq(0xbeef, 1, 0, &[0.0]).unwrap();
        assert_eq!(s.last_seq(ch), Some(3));
        assert_eq!(s.last_seq(0xbeef), Some(1));
    }

    #[test]
    fn parts_carry_the_replay_guard_across_export_and_merge() {
        let mut a = session(0.25, 400, 41);
        a.ingest_batch_seq(7, 1, 0, &[0.5]).unwrap();
        a.ingest_batch_seq(7, 2, 0, &[0.25]).unwrap();
        a.ingest_batch_seq(9, 1, 1, &[0.0]).unwrap();
        let part = a.export_part();
        assert_eq!(part.channels, vec![(7, 2), (9, 1)]);

        // A fresh twin restored from the part refuses the same retries.
        let mut b = session(0.25, 400, 41);
        b.merge_part(&part).unwrap();
        assert_eq!(b.last_seq(7), Some(2));
        let err = b.ingest_batch_seq(7, 2, 0, &[0.25]).unwrap_err();
        assert!(matches!(err, DapError::DuplicateSequence { seq: 2, last: 2, .. }));
        b.ingest_batch_seq(7, 3, 0, &[0.125]).unwrap();

        // Merging parts combines guards by per-channel maximum.
        let mut c = session(0.25, 400, 41);
        c.merge_part(&b.export_part()).unwrap(); // channel 7 through seq 3
        c.merge_part(&part).unwrap(); // channel 7 through seq 2 — stale, kept at 3
        assert_eq!(c.last_seq(7), Some(3));
        assert_eq!(c.last_seq(9), Some(1)); // max(1, 1), not a sum
    }

    #[test]
    fn content_digest_ignores_the_replay_guard() {
        // The guard is transport bookkeeping, not ingested content: a
        // session fed the same reports without sequencing holds identical
        // content (the chaos exactness property compares a faulted,
        // retried run against a clean unsequenced reference).
        let mut a = session(0.25, 400, 42);
        let mut b = session(0.25, 400, 42);
        a.ingest_batch_seq(3, 1, 0, &[0.5, -0.5]).unwrap();
        a.ingest_batch_seq(3, 2, 1, &[0.25]).unwrap();
        b.ingest_batch(0, &[0.5, -0.5]).unwrap();
        b.ingest_batch(1, &[0.25]).unwrap();
        assert_eq!(a.content_digest(), b.content_digest());
        assert_ne!(a.export_part().channels, b.export_part().channels);
    }

    fn masked_session(eps: f64, n_users: usize, seed: u64, k: usize, index: usize) -> DapSession<PiecewiseMechanism> {
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(eps, Scheme::Emf) };
        let plan = GroupPlan::build(n_users, cfg.eps, cfg.eps0, &mut seeded(seed));
        DapSession::new_masked(cfg, plan, PiecewiseMechanism::new, SecaggRole { k, index })
            .expect("valid masked session")
    }

    #[test]
    fn masked_sessions_refuse_every_plaintext_operation() {
        let mut s = masked_session(0.25, 400, 50, 3, 1);
        assert_eq!(s.secagg_role(), Some(SecaggRole { k: 3, index: 1 }));
        let masked = |r: Result<(), DapError>| {
            assert!(matches!(r.unwrap_err(), DapError::ModeMismatch { masked: true }));
        };
        masked(s.ingest(0, 0.5));
        masked(s.ingest_batch(0, &[0.5]));
        masked(s.ingest_batch_seq(1, 1, 0, &[0.5]));
        let part = session(0.25, 400, 50).export_part();
        masked(s.merge_part(&part));
        assert!(matches!(
            s.finalize(&[Scheme::Emf]).unwrap_err(),
            DapError::ModeMismatch { masked: true }
        ));
        let twin = masked_session(0.25, 400, 50, 3, 1);
        assert!(matches!(
            DapSession::merge([s, twin]).unwrap_err(),
            DapError::ModeMismatch { masked: true }
        ));
        // And the inverse: masked operations on a plain session.
        let mut plain = session(0.25, 400, 50);
        assert!(matches!(
            plain.ingest_shares(1, 1, 0, &[0u64; 4]).unwrap_err(),
            DapError::ModeMismatch { masked: false }
        ));
        assert!(matches!(
            plain.export_masked_part().unwrap_err(),
            DapError::ModeMismatch { masked: false }
        ));
        assert!(matches!(
            plain.adopt_commitment(7).unwrap_err(),
            DapError::ModeMismatch { masked: false }
        ));
    }

    #[test]
    fn masked_and_plain_twins_share_the_deployment_digest() {
        // The hello handshake must interoperate: a coordinator's plain
        // session and a share server opened from the same deployment agree
        // on the compatibility digest (content digests differ by mode).
        let plain = session(0.25, 400, 51);
        let masked = masked_session(0.25, 400, 51, 2, 0);
        assert_eq!(plain.state_digest(), masked.state_digest());
        assert_ne!(plain.content_digest(), masked.content_digest());
    }

    #[test]
    fn ingest_shares_accumulates_under_the_replay_guard() {
        let mut s = masked_session(0.25, 400, 52, 2, 0);
        let d0 = s.histogram(0).counts.len();
        let shares: Vec<u64> = (0..d0 as u64).collect();
        s.ingest_shares(9, 1, 0, &shares).unwrap();
        let digest = s.content_digest();
        // A duplicate is rejected and leaves no trace (the failover dedup
        // contract, identical to the plaintext sequenced path).
        let err = s.ingest_shares(9, 1, 0, &shares).unwrap_err();
        assert!(matches!(err, DapError::DuplicateSequence { seq: 1, last: 1, .. }));
        assert_eq!(s.content_digest(), digest);
        let err = s.ingest_shares(9, 3, 0, &shares).unwrap_err();
        assert!(matches!(err, DapError::SequenceGap { seq: 3, expected: 2, .. }));
        // Wrong share shape is a typed mismatch; wrapping accumulation is
        // exact for the right one.
        let err = s.ingest_shares(9, 2, 0, &[1u64]).unwrap_err();
        assert!(matches!(err, DapError::SessionMismatch { what: "share resolution" }));
        s.ingest_shares(9, 2, 0, &vec![u64::MAX; d0]).unwrap();
        let part = s.export_masked_part().unwrap();
        for (b, &w) in part.groups[0].counts.iter().enumerate() {
            assert_eq!(w, (b as u64).wrapping_add(u64::MAX), "bucket {b}");
        }
        assert_eq!(s.shares_applied(), 2);
        assert_eq!(s.last_seq(9), Some(2));
    }

    #[test]
    fn masked_parts_restore_a_share_server_exactly() {
        // Checkpoint-restore: a fresh twin that merges the exported part
        // reports the same content digest — the durability invariant.
        let mut a = masked_session(0.25, 400, 53, 3, 2);
        let d0 = a.histogram(0).counts.len();
        a.adopt_commitment(0xc0ffee).unwrap();
        a.ingest_shares(5, 1, 0, &vec![17u64; d0]).unwrap();
        let part = a.export_masked_part().unwrap();
        assert_eq!(part.commitment, 0xc0ffee);

        let mut b = masked_session(0.25, 400, 53, 3, 2);
        b.merge_masked_part(&part).unwrap();
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(b.last_seq(5), Some(1), "replay guard restored");

        // Wrong role or foreign deployment refuse typed, state untouched.
        let mut other_role = masked_session(0.25, 400, 53, 3, 0);
        assert!(matches!(
            other_role.merge_masked_part(&part).unwrap_err(),
            DapError::SessionMismatch { what: "secagg topology" }
        ));
        let mut stranger = masked_session(0.25, 400, 54, 3, 2);
        assert!(matches!(
            stranger.merge_masked_part(&part).unwrap_err(),
            DapError::SessionMismatch { what: "state digest" }
        ));
        // A conflicting dealer commitment is refused too.
        let mut c = masked_session(0.25, 400, 53, 3, 2);
        c.adopt_commitment(0xdead).unwrap();
        assert!(matches!(
            c.merge_masked_part(&part).unwrap_err(),
            DapError::SessionMismatch { what: "seed commitment" }
        ));
    }

    #[test]
    fn masked_state_holds_no_plaintext_histogram() {
        // Feed a share server one share of a known contribution: its
        // in-memory state must differ from the true counts (it is mask
        // material), and the plaintext histograms must stay untouched
        // zeros — the "single compromised daemon reveals nothing" claim,
        // asserted on state rather than by inspection.
        use crate::secagg::ShareSplitter;
        let mut server = masked_session(0.25, 400, 55, 2, 1);
        let d0 = server.histogram(0).counts.len();
        let truth: Vec<u64> = (0..d0 as u64).map(|b| b % 5).collect();
        let splitter = ShareSplitter::new(2, 0xfeed).unwrap();
        server.ingest_shares(1, 1, 0, &splitter.share_for(1, 0, 0, &truth)).unwrap();
        let part = server.export_masked_part().unwrap();
        assert_ne!(part.groups[0].counts, truth, "a single share leaked the histogram");
        assert!(server.histogram(0).counts.iter().all(|&c| c == 0.0));
        assert_eq!(server.ingested(0), 0);
    }

    #[test]
    fn finalize_runs_on_streamed_state() {
        // A small end-to-end smoke: honest reports + poison through the
        // session API recover a sane mean (the bit-exact equivalence with
        // the one-shot driver lives in tests/session_equivalence.rs).
        let n = 1_200;
        let pop = Population::with_gamma(vec![0.2; n], 0.2);
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
        let mut rng = seeded(7);
        let plan = GroupPlan::build(pop.total(), cfg.eps, cfg.eps0, &mut rng);
        let mut s = DapSession::new(cfg, plan, PiecewiseMechanism::new).unwrap();
        let attack = UniformAttack::of_upper(0.5, 1.0);
        for g in 0..s.group_count() {
            let assign = s.client_assignment(g).unwrap();
            let mech = PiecewiseMechanism::new(assign.eps_t);
            let mut byz = 0usize;
            for i in 0..s.plan().assignment[g].len() {
                let user = s.plan().assignment[g][i];
                if user < pop.honest.len() {
                    let reports = assign.perturb(&mech, pop.honest[user], &mut rng);
                    s.ingest_batch(g, &reports).unwrap();
                } else {
                    byz += 1;
                }
            }
            let poison = attack.reports(byz * assign.k_t, &mech, &mut rng);
            s.ingest_batch(g, &poison).unwrap();
        }
        let outs = s.finalize(&[Scheme::Emf, Scheme::EmfStar]).unwrap();
        assert_eq!(outs.len(), 2);
        for out in &outs {
            assert!((out.mean - 0.2).abs() < 0.4, "mean {}", out.mean);
            assert_eq!(out.groups.len(), s.group_count());
        }
        assert!(s.finalize(&[]).unwrap().is_empty());
    }
}
