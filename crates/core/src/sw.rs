//! Square-Wave extension of DAP (§V-D, Fig. 8).
//!
//! SW reports are not unbiased estimators of the input, so the Eq. 13
//! report-sum correction does not apply. Instead each group's mean is read
//! off the *reconstructed input histogram* `x̂` produced by EMF/EMF\*/CEMF\*
//! on the SW transform matrix; the poison components absorb the injected
//! mass exactly as in the PM pipeline. `O'` is bootstrapped the way the
//! paper prescribes: EMS on the reports after removing the most extreme 50%
//! on the hypothesized poisoned side.

use crate::aggregation::{aggregate, Weighting};
use crate::grouping::GroupPlan;
use crate::parallel::parallel_map;
use crate::population::Population;
use crate::scheme::Scheme;
use dap_attack::{Attack, Side};
use dap_emf::{cemf_star, cemf_star_threshold, emf, EmfConfig};
use dap_estimation::em::{self, EmOutcome, EmWorkspace, MStep};
use dap_estimation::stats::histogram_mean;
use dap_estimation::{cached_for_numeric, ems, EmOptions, Grid, PoisonRegion};
use dap_ldp::{NumericMechanism, SquareWave};
use rand::RngCore;

/// Bootstraps `O'` for SW: trim the most extreme half of the reports on
/// `side`, reconstruct the remaining distribution with EMS, return its mean
/// (in input units, `[0, 1]`).
pub fn sw_o_prime(
    mech: &SquareWave,
    reports: &[f64],
    side: Side,
    config: &EmfConfig,
) -> f64 {
    if reports.is_empty() {
        return 0.5;
    }
    let mut sorted = reports.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reports"));
    let half = sorted.len() / 2;
    let kept = match side {
        Side::Right => &sorted[..sorted.len() - half],
        Side::Left => &sorted[half..],
    };
    let matrix = cached_for_numeric(mech, config.d_in, config.d_out, &PoisonRegion::None);
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, config.d_out).counts(kept);
    let outcome = ems::solve(&matrix, &counts, &config.em);
    histogram_mean(&outcome.histogram, matrix.input_centers())
}

/// Estimates one SW group's honest mean from the reconstructed histogram.
pub fn sw_group_mean(
    mech: &SquareWave,
    reports: &[f64],
    side: Side,
    o_prime_out: f64,
    gamma_global: f64,
    scheme: Scheme,
    config: &EmfConfig,
) -> (f64, f64) {
    sw_group_means(mech, reports, side, o_prime_out, gamma_global, &[scheme], config)
        .pop()
        .expect("one scheme in, one estimate out")
}

/// [`sw_group_mean`] for several schemes over the same reports, sharing the
/// report histogram, the cached transform matrix, and the base EMF fit
/// (mirrors [`crate::scheme::estimate_group_means`]). Returns
/// `(mean, γ_group)` pairs in `schemes` order.
pub fn sw_group_means(
    mech: &SquareWave,
    reports: &[f64],
    side: Side,
    o_prime_out: f64,
    gamma_global: f64,
    schemes: &[Scheme],
    config: &EmfConfig,
) -> Vec<(f64, f64)> {
    if reports.is_empty() {
        return vec![(0.5, 0.0); schemes.len()];
    }
    let region = match side {
        Side::Right => PoisonRegion::RightOf(o_prime_out),
        Side::Left => PoisonRegion::LeftOf(o_prime_out),
    };
    let matrix = cached_for_numeric(mech, config.d_in, config.d_out, &region);
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, config.d_out).counts(reports);
    let mut ws = EmWorkspace::new();

    let needs_base = schemes.iter().any(|s| matches!(s, Scheme::Emf | Scheme::CemfStar));
    let base: Option<EmOutcome> = needs_base
        .then(|| em::solve_in(&matrix, &counts, MStep::Free, &config.em, &mut ws));
    let star: Option<EmOutcome> = schemes.contains(&Scheme::EmfStar).then(|| {
        em::solve_in(
            &matrix,
            &counts,
            MStep::Constrained { gamma: gamma_global },
            &config.em,
            &mut ws,
        )
    });
    let cemf: Option<EmOutcome> = schemes.contains(&Scheme::CemfStar).then(|| {
        let b = base.as_ref().expect("base computed for CEMF*");
        let thr = cemf_star_threshold(gamma_global, matrix.poison_buckets().len());
        cemf_star(&matrix, &counts, gamma_global, thr, b, &config.em)
    });

    schemes
        .iter()
        .map(|scheme| {
            let outcome = match scheme {
                Scheme::Emf => base.as_ref().expect("base computed for EMF"),
                Scheme::EmfStar => star.as_ref().expect("star computed"),
                Scheme::CemfStar => cemf.as_ref().expect("cemf computed"),
            };
            let gamma_group: f64 = outcome.poison.iter().sum();
            (histogram_mean(&outcome.normal, matrix.input_centers()), gamma_group)
        })
        .collect()
}

/// Configuration of the SW-based DAP deployment.
#[derive(Debug, Clone, Copy)]
pub struct SwDapConfig {
    /// Global per-user budget ε.
    pub eps: f64,
    /// Minimum group budget ε₀.
    pub eps0: f64,
    /// Reconstruction scheme.
    pub scheme: Scheme,
    /// Weighting rule for aggregation.
    pub weighting: Weighting,
    /// Cap on `d'`.
    pub max_d_out: usize,
}

impl SwDapConfig {
    /// Paper-style defaults (ε₀ = 1/16).
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        SwDapConfig {
            eps,
            eps0: 1.0 / 16.0,
            scheme,
            weighting: Weighting::AlgorithmFive,
            max_d_out: 128,
        }
    }
}

/// Result of an SW-DAP run.
#[derive(Debug, Clone)]
pub struct SwDapOutput {
    /// Aggregated honest-mean estimate on `[0, 1]`.
    pub mean: f64,
    /// Probed poisoned side.
    pub side: Side,
    /// Probed coalition proportion.
    pub gamma: f64,
}

/// The Square-Wave instantiation of DAP.
#[derive(Debug, Clone)]
pub struct SwDap {
    config: SwDapConfig,
}

impl SwDap {
    /// Builds the protocol.
    pub fn new(config: SwDapConfig) -> Self {
        assert!(config.eps >= config.eps0 && config.eps0 > 0.0, "need ε ≥ ε₀ > 0");
        SwDap { config }
    }

    /// Runs grouping → perturbation → probing → histogram estimation →
    /// aggregation on a `[0, 1]`-valued population.
    pub fn run(
        &self,
        population: &Population,
        attack: &dyn Attack,
        rng: &mut dyn RngCore,
    ) -> SwDapOutput {
        self.run_schemes(population, attack, &[self.config.scheme], rng)
            .pop()
            .expect("one scheme in, one output out")
    }

    /// Runs the protocol once and reads the result off under several
    /// schemes — the SW analogue of [`crate::Dap::run_schemes`]:
    /// grouping, perturbation, probing and the base EMF fits are shared;
    /// `config.scheme` is ignored. Outputs come back in `schemes` order.
    pub fn run_schemes(
        &self,
        population: &Population,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut dyn RngCore,
    ) -> Vec<SwDapOutput> {
        let cfg = &self.config;
        let n_total = population.total();
        assert!(n_total > 0, "empty population");
        let plan = GroupPlan::build(n_total, cfg.eps, cfg.eps0, rng);
        let n_honest = population.honest.len();

        let mut group_reports: Vec<Vec<f64>> = Vec::with_capacity(plan.len());
        for g in 0..plan.len() {
            let mech = SquareWave::new(plan.budgets[g]);
            let k_t = plan.reports_per_user[g];
            let mut reports = Vec::with_capacity(plan.reports_in_group(g));
            let mut byz = 0usize;
            for &user in &plan.assignment[g] {
                if user < n_honest {
                    let v = population.honest[user];
                    for _ in 0..k_t {
                        reports.push(mech.perturb(v, rng));
                    }
                } else {
                    byz += 1;
                }
            }
            reports.extend(attack.reports(byz * k_t, &mech, rng));
            group_reports.push(reports);
        }

        // Probe side + γ̂ on the most private group. Unlike PM, SW's output
        // domain is asymmetric around any in-domain pivot, which biases the
        // Var(x̂) comparison of Algorithm 3 (the larger hypothesis region
        // absorbs more mass regardless of the attack). The SW poison spec of
        // the paper lives in the *inflation bands* beyond the input domain
        // (`[1+b/2, 1+b]`), so the probe hypotheses here are the two
        // symmetric bands `[-b, 0)` and `(1, 1+b]`.
        let probe_g = plan.probe_group();
        let probe_eps = plan.budgets[probe_g];
        let probe_mech = SquareWave::new(probe_eps);
        let probe_cfg =
            EmfConfig::capped(group_reports[probe_g].len(), probe_eps.get(), cfg.max_d_out);
        let (olo, ohi) = probe_mech.output_range();
        let counts = Grid::new(olo, ohi, probe_cfg.d_out).counts(&group_reports[probe_g]);
        let probe = probe_side_bands(&probe_mech, &counts, &probe_cfg);
        let side = probe.0;
        let gamma = probe.1;
        // Estimation pivots: poison block on the chosen inflation band.
        let o_prime = match side {
            Side::Right => 1.0,
            Side::Left => 0.0,
        };

        // Per-group estimation fans out over the independent groups; each
        // estimate is a deterministic function of its reports, so results
        // are thread-count independent.
        let estimates: Vec<Vec<(f64, f64)>> = parallel_map((0..plan.len()).collect(), |g| {
            let reports = &group_reports[g];
            let eps_t = plan.budgets[g];
            let mech = SquareWave::new(eps_t);
            let emf_cfg = EmfConfig::capped(reports.len(), eps_t.get(), cfg.max_d_out);
            sw_group_means(&mech, reports, side, o_prime, gamma, schemes, &emf_cfg)
        });

        let worst_vars: Vec<f64> = plan
            .budgets
            .iter()
            .map(|&eps_t| SquareWave::new(eps_t).worst_case_variance())
            .collect();
        (0..schemes.len())
            .map(|s| {
                let mut means = Vec::with_capacity(plan.len());
                let mut n_hats = Vec::with_capacity(plan.len());
                for (g, per_scheme) in estimates.iter().enumerate() {
                    let (mean_t, gamma_t) = per_scheme[s];
                    let eps_t = plan.budgets[g];
                    let nt = group_reports[g].len() as f64;
                    means.push(mean_t);
                    n_hats.push((nt - nt * gamma_t) * eps_t.get() / cfg.eps);
                }
                let agg = aggregate(&means, &n_hats, &worst_vars, cfg.weighting);
                SwDapOutput { mean: agg.mean.clamp(0.0, 1.0), side, gamma }
            })
            .collect()
    }
}

/// Algorithm-3 analogue for SW: compares the left inflation band `[-b, 0)`
/// against the right one `(1, 1+b]` as poison hypotheses.
///
/// The comparison uses the converged *log-likelihood* rather than `Var(x̂)`:
/// PM's variance criterion relies on Theorem 3's uniform-convergence, which
/// does not carry over to SW (for skewed honest data the wrong-side
/// hypothesis absorbs the honest spill and artificially flattens `x̂`). The
/// two band hypotheses have identical parameter counts, so the likelihood
/// comparison is fair; a concentrated injection can only be matched by the
/// poison block on its own side.
fn probe_side_bands(mech: &SquareWave, counts: &[f64], config: &EmfConfig) -> (Side, f64) {
    let em = EmOptions { tol: config.em.tol.min(1e-3), max_iters: config.em.max_iters.max(500) };
    let left_m =
        cached_for_numeric(mech, config.d_in, counts.len(), &PoisonRegion::LeftOf(0.0));
    let right_m =
        cached_for_numeric(mech, config.d_in, counts.len(), &PoisonRegion::RightOf(1.0));
    let left = emf(&left_m, counts, &em);
    let right = emf(&right_m, counts, &em);
    if left.log_likelihood > right.log_likelihood {
        let gamma = left.poison_mass();
        (Side::Left, gamma)
    } else {
        let gamma = right.poison_mass();
        (Side::Right, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{Anchor, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_estimation::sampling;
    use dap_estimation::stats::mean as smean;

    fn beta_population(n: usize, gamma: f64, a: f64, b: f64, seed: u64) -> Population {
        let mut rng = seeded(seed);
        let honest: Vec<f64> = (0..n).map(|_| sampling::beta(a, b, &mut rng)).collect();
        Population::with_gamma(honest, gamma)
    }

    /// The paper's SW attack spec: poison uniform on `[1 + b/2, 1 + b]`.
    fn sw_attack() -> UniformAttack {
        UniformAttack::new(Anchor::AboveInputMax(0.5), Anchor::AboveInputMax(1.0))
    }

    #[test]
    fn sw_dap_recovers_beta_mean_under_attack() {
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 1);
        let truth = smean(&pop.honest);
        let dap = SwDap::new(SwDapConfig { max_d_out: 64, ..SwDapConfig::paper_default(1.0, Scheme::EmfStar) });
        let mut rng = seeded(2);
        let out = dap.run(&pop, &sw_attack(), &mut rng);
        assert_eq!(out.side, Side::Right);
        assert!((out.mean - truth).abs() < 0.1, "estimate {} vs truth {}", out.mean, truth);
        assert!(out.gamma > 0.1, "gamma {}", out.gamma);
    }

    #[test]
    fn sw_dap_beats_raw_average_under_attack() {
        // Beta(2,5): the honest mean is low, so upward poison hurts Ostrich
        // badly (on Beta(5,2) the SW center-bias and the attack can cancel —
        // the paper's own Fig. 8d observation).
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 3);
        let truth = smean(&pop.honest);
        let mut rng = seeded(4);

        // Ostrich on single-batch SW reports at full ε.
        let mech = SquareWave::with_epsilon(1.0).unwrap();
        let mut reports: Vec<f64> =
            pop.honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        reports.extend(sw_attack().reports(pop.byzantine, &mech, &mut rng));
        let ostrich_err = (smean(&reports) - truth).abs();

        let dap = SwDap::new(SwDapConfig { max_d_out: 64, ..SwDapConfig::paper_default(1.0, Scheme::CemfStar) });
        let out = dap.run(&pop, &sw_attack(), &mut rng);
        assert!(
            (out.mean - truth).abs() < ostrich_err,
            "SW-DAP {} vs Ostrich err {} (truth {})",
            out.mean,
            ostrich_err,
            truth
        );
    }

    #[test]
    fn sw_dap_detects_left_band_attacks() {
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 7);
        let truth = smean(&pop.honest);
        // Poison in the left inflation band [-b, -b/2].
        let attack = UniformAttack::new(Anchor::OfLower(1.0), Anchor::OfLower(0.5));
        let dap = SwDap::new(SwDapConfig {
            max_d_out: 64,
            ..SwDapConfig::paper_default(1.0, Scheme::EmfStar)
        });
        let mut rng = seeded(8);
        let out = dap.run(&pop, &attack, &mut rng);
        assert_eq!(out.side, Side::Left);
        assert!((out.mean - truth).abs() < 0.15, "estimate {} truth {}", out.mean, truth);
    }

    #[test]
    fn o_prime_bootstrap_is_pessimistic_under_right_attack() {
        let mech = SquareWave::with_epsilon(0.5).unwrap();
        let mut rng = seeded(5);
        let honest: Vec<f64> = (0..20_000).map(|_| sampling::beta(2.0, 5.0, &mut rng)).collect();
        let truth = smean(&honest);
        let mut reports: Vec<f64> =
            honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        reports.extend(sw_attack().reports(5_000, &mech, &mut rng));
        let cfg = EmfConfig::capped(reports.len(), 0.5, 64);
        let o_prime = sw_o_prime(&mech, &reports, Side::Right, &cfg);
        assert!(o_prime <= truth + 0.05, "O' {} vs truth {}", o_prime, truth);
        assert!((0.0..=1.0).contains(&o_prime));
    }
}
