//! Square-Wave extension of DAP (§V-D, Fig. 8).
//!
//! SW reports are not unbiased estimators of the input, so the Eq. 13
//! report-sum correction does not apply. Instead each group's mean is read
//! off the *reconstructed input histogram* `x̂` produced by EMF/EMF\*/CEMF\*
//! on the SW transform matrix; the poison components absorb the injected
//! mass exactly as in the PM pipeline. `O'` is bootstrapped the way the
//! paper prescribes: EMS on the reports after removing the most extreme 50%
//! on the hypothesized poisoned side.
//!
//! [`SwDap`] is a thin driver over the same client/aggregator split as
//! [`crate::Dap`]: both wire their populations through the
//! [`crate::client`] module into one [`crate::DapSession`] ingestion path;
//! only the session's [`crate::EstimationMode`] differs
//! ([`crate::EstimationMode::HistogramBands`] here).

use crate::aggregation::Weighting;
use crate::error::DapError;
use crate::population::Population;
use crate::protocol::{Dap, DapConfig};
use crate::scheme::{GroupHistogram, Scheme};
use crate::session::EstimationMode;
use dap_attack::{Attack, Side};
use dap_emf::{cemf_star, cemf_star_threshold, emf, EmfConfig};
use dap_estimation::em::{self, EmOutcome, EmWorkspace, MStep};
use dap_estimation::stats::histogram_mean;
use dap_estimation::{cached_for_numeric, ems, EmOptions, Grid, PoisonRegion};
use dap_ldp::{NumericMechanism, SquareWave};
use rand::RngCore;

/// Bootstraps `O'` for SW: trim the most extreme half of the reports on
/// `side`, reconstruct the remaining distribution with EMS, return its mean
/// (in input units, `[0, 1]`).
pub fn sw_o_prime(
    mech: &SquareWave,
    reports: &[f64],
    side: Side,
    config: &EmfConfig,
) -> f64 {
    if reports.is_empty() {
        return 0.5;
    }
    let mut sorted = reports.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reports"));
    let half = sorted.len() / 2;
    let kept = match side {
        Side::Right => &sorted[..sorted.len() - half],
        Side::Left => &sorted[half..],
    };
    let matrix = cached_for_numeric(mech, config.d_in, config.d_out, &PoisonRegion::None);
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, config.d_out).counts(kept);
    let outcome = ems::solve(&matrix, &counts, &config.em);
    histogram_mean(&outcome.histogram, matrix.input_centers())
}

/// Estimates one SW group's honest mean from the reconstructed histogram.
pub fn sw_group_mean(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    side: Side,
    o_prime_out: f64,
    gamma_global: f64,
    scheme: Scheme,
    config: &EmfConfig,
) -> (f64, f64) {
    sw_group_means(mech, reports, side, o_prime_out, gamma_global, &[scheme], config)
        .pop()
        .expect("one scheme in, one estimate out")
}

/// [`sw_group_mean`] for several schemes over the same reports — buckets
/// them and delegates to [`sw_group_means_hist`].
pub fn sw_group_means(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    side: Side,
    o_prime_out: f64,
    gamma_global: f64,
    schemes: &[Scheme],
    config: &EmfConfig,
) -> Vec<(f64, f64)> {
    let hist = GroupHistogram::from_reports(mech, reports, config.d_out);
    sw_group_means_hist(mech, &hist, side, o_prime_out, gamma_global, schemes, config)
}

/// Histogram-mean estimation for several schemes over a pre-bucketed
/// [`GroupHistogram`], sharing the cached transform matrix and the base EMF
/// fit across schemes (mirrors [`crate::scheme::estimate_group_means_hist`];
/// this is [`crate::DapSession`]'s band-mode estimation path). Returns
/// `(mean, γ_group)` pairs in `schemes` order.
pub fn sw_group_means_hist(
    mech: &dyn NumericMechanism,
    hist: &GroupHistogram,
    side: Side,
    o_prime_out: f64,
    gamma_global: f64,
    schemes: &[Scheme],
    config: &EmfConfig,
) -> Vec<(f64, f64)> {
    if hist.n_reports == 0 {
        // Degenerate empty group: the input-domain midpoint, no poison.
        let (ilo, ihi) = mech.input_range();
        return vec![((ilo + ihi) / 2.0, 0.0); schemes.len()];
    }
    assert_eq!(hist.counts.len(), config.d_out, "histogram resolution mismatch");
    let counts = &hist.counts;
    let region = match side {
        Side::Right => PoisonRegion::RightOf(o_prime_out),
        Side::Left => PoisonRegion::LeftOf(o_prime_out),
    };
    let matrix = cached_for_numeric(mech, config.d_in, config.d_out, &region);
    let mut ws = EmWorkspace::new();

    let needs_base = schemes.iter().any(|s| matches!(s, Scheme::Emf | Scheme::CemfStar));
    let base: Option<EmOutcome> = needs_base
        .then(|| em::solve_in(&matrix, counts, MStep::Free, &config.em, &mut ws));
    let star: Option<EmOutcome> = schemes.contains(&Scheme::EmfStar).then(|| {
        em::solve_in(
            &matrix,
            counts,
            MStep::Constrained { gamma: gamma_global },
            &config.em,
            &mut ws,
        )
    });
    let cemf: Option<EmOutcome> = schemes.contains(&Scheme::CemfStar).then(|| {
        let b = base.as_ref().expect("base computed for CEMF*");
        let thr = cemf_star_threshold(gamma_global, matrix.poison_buckets().len());
        cemf_star(&matrix, counts, gamma_global, thr, b, &config.em)
    });

    schemes
        .iter()
        .map(|scheme| {
            let outcome = match scheme {
                Scheme::Emf => base.as_ref().expect("base computed for EMF"),
                Scheme::EmfStar => star.as_ref().expect("star computed"),
                Scheme::CemfStar => cemf.as_ref().expect("cemf computed"),
            };
            let gamma_group: f64 = outcome.poison.iter().sum();
            (histogram_mean(&outcome.normal, matrix.input_centers()), gamma_group)
        })
        .collect()
}

/// Algorithm-3 analogue for biased mechanisms: compares the left inflation
/// band (left of the input minimum) against the right one (right of the
/// input maximum) as poison hypotheses — for SW, `[-b, 0)` vs `(1, 1+b]`.
///
/// The comparison uses the converged *log-likelihood* rather than `Var(x̂)`:
/// PM's variance criterion relies on Theorem 3's uniform-convergence, which
/// does not carry over to SW (for skewed honest data the wrong-side
/// hypothesis absorbs the honest spill and artificially flattens `x̂`). The
/// two band hypotheses have identical parameter counts, so the likelihood
/// comparison is fair; a concentrated injection can only be matched by the
/// poison block on its own side.
pub(crate) fn probe_side_bands(
    mech: &dyn NumericMechanism,
    counts: &[f64],
    config: &EmfConfig,
) -> (Side, f64) {
    let em = EmOptions { tol: config.em.tol.min(1e-3), max_iters: config.em.max_iters.max(500) };
    let (ilo, ihi) = mech.input_range();
    let left_m =
        cached_for_numeric(mech, config.d_in, counts.len(), &PoisonRegion::LeftOf(ilo));
    let right_m =
        cached_for_numeric(mech, config.d_in, counts.len(), &PoisonRegion::RightOf(ihi));
    let left = emf(&left_m, counts, &em);
    let right = emf(&right_m, counts, &em);
    if left.log_likelihood > right.log_likelihood {
        let gamma = left.poison_mass();
        (Side::Left, gamma)
    } else {
        let gamma = right.poison_mass();
        (Side::Right, gamma)
    }
}

/// Configuration of the SW-based DAP deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwDapConfig {
    /// Global per-user budget ε.
    pub eps: f64,
    /// Minimum group budget ε₀.
    pub eps0: f64,
    /// Reconstruction scheme.
    pub scheme: Scheme,
    /// Weighting rule for aggregation.
    pub weighting: Weighting,
    /// Cap on `d'`.
    pub max_d_out: usize,
}

impl SwDapConfig {
    /// Paper-style defaults (ε₀ = 1/16).
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        SwDapConfig {
            eps,
            eps0: 1.0 / 16.0,
            scheme,
            weighting: Weighting::AlgorithmFive,
            max_d_out: 128,
        }
    }

    /// The equivalent session configuration: band-mode estimation, estimate
    /// clamped to the `[0, 1]` input domain.
    pub fn session_config(&self) -> DapConfig {
        DapConfig {
            eps: self.eps,
            eps0: self.eps0,
            scheme: self.scheme,
            weighting: self.weighting,
            o_prime: 0.0, // band mode pivots at the input-domain ends
            max_d_out: self.max_d_out,
            clamp_to_input: true,
            mode: EstimationMode::HistogramBands,
        }
    }
}

/// Result of an SW-DAP run.
#[derive(Debug, Clone)]
pub struct SwDapOutput {
    /// Aggregated honest-mean estimate on `[0, 1]`.
    pub mean: f64,
    /// Probed poisoned side.
    pub side: Side,
    /// Probed coalition proportion.
    pub gamma: f64,
}

/// The Square-Wave instantiation of DAP.
#[derive(Debug, Clone)]
pub struct SwDap {
    config: SwDapConfig,
}

impl SwDap {
    /// Builds the protocol, rejecting invalid budgets as [`DapError`]s.
    pub fn new(config: SwDapConfig) -> Result<Self, DapError> {
        config.session_config().validate()?;
        Ok(SwDap { config })
    }

    /// Runs grouping → perturbation → probing → histogram estimation →
    /// aggregation on a `[0, 1]`-valued population.
    pub fn run<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        rng: &mut R,
    ) -> Result<SwDapOutput, DapError> {
        Ok(self
            .run_schemes(population, attack, &[self.config.scheme], rng)?
            .pop()
            .expect("one scheme in, one output out"))
    }

    /// Runs the protocol once and reads the result off under several
    /// schemes — the SW analogue of [`crate::Dap::run_schemes`]:
    /// grouping, perturbation, probing and the base EMF fits are shared;
    /// `config.scheme` is ignored. Outputs come back in `schemes` order.
    ///
    /// Simulation and ingestion are literally [`crate::Dap`] over
    /// [`SquareWave`]; only the session's estimation mode differs.
    pub fn run_schemes<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<SwDapOutput>, DapError> {
        self.run_schemes_on(&population.honest, population.byzantine, attack, schemes, rng)
    }

    /// [`SwDap::run_schemes`] over a borrowed honest-value slice — the SW
    /// analogue of [`crate::Dap::run_schemes_on`], for cached populations.
    pub fn run_schemes_on<R: RngCore>(
        &self,
        honest: &[f64],
        byzantine: usize,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<SwDapOutput>, DapError> {
        let driver = Dap::new(self.config.session_config(), SquareWave::new)?;
        let outs = driver.run_schemes_on(honest, byzantine, attack, schemes, rng)?;
        Ok(outs
            .into_iter()
            .map(|o| SwDapOutput { mean: o.mean, side: o.side, gamma: o.gamma })
            .collect())
    }

    /// The SW analogue of [`crate::Dap::prepare_reports`]: grouping plus
    /// honest perturbation, frozen for replay.
    pub fn prepare_reports<R: RngCore>(
        &self,
        honest: &[f64],
        byzantine: usize,
        rng: &mut R,
    ) -> Result<crate::protocol::PreparedReports, DapError> {
        Dap::new(self.config.session_config(), SquareWave::new)?
            .prepare_reports(honest, byzantine, rng)
    }

    /// The SW analogue of [`crate::Dap::run_schemes_prepared`]: replays
    /// cached honest reports, draws only the coalition's fresh.
    pub fn run_schemes_prepared<R: RngCore>(
        &self,
        prepared: &crate::protocol::PreparedReports,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<SwDapOutput>, DapError> {
        let driver = Dap::new(self.config.session_config(), SquareWave::new)?;
        let outs = driver.run_schemes_prepared(prepared, attack, schemes, rng)?;
        Ok(outs
            .into_iter()
            .map(|o| SwDapOutput { mean: o.mean, side: o.side, gamma: o.gamma })
            .collect())
    }

    /// The SW analogue of [`crate::Dap::poison_batches`].
    pub fn poison_batches<R: RngCore>(
        &self,
        prepared: &crate::protocol::PreparedReports,
        attack: &dyn Attack,
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, DapError> {
        Dap::new(self.config.session_config(), SquareWave::new)?
            .poison_batches(prepared, attack, rng)
    }

    /// The SW analogue of [`crate::Dap::run_schemes_prepared_with`].
    pub fn run_schemes_prepared_with(
        &self,
        prepared: &crate::protocol::PreparedReports,
        poison: &[Vec<f64>],
        schemes: &[Scheme],
    ) -> Result<Vec<SwDapOutput>, DapError> {
        let driver = Dap::new(self.config.session_config(), SquareWave::new)?;
        let outs = driver.run_schemes_prepared_with(prepared, poison, schemes)?;
        Ok(outs
            .into_iter()
            .map(|o| SwDapOutput { mean: o.mean, side: o.side, gamma: o.gamma })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{Anchor, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_estimation::sampling;
    use dap_estimation::stats::mean as smean;

    fn beta_population(n: usize, gamma: f64, a: f64, b: f64, seed: u64) -> Population {
        let mut rng = seeded(seed);
        let honest: Vec<f64> = (0..n).map(|_| sampling::beta(a, b, &mut rng)).collect();
        Population::with_gamma(honest, gamma)
    }

    /// The paper's SW attack spec: poison uniform on `[1 + b/2, 1 + b]`.
    fn sw_attack() -> UniformAttack {
        UniformAttack::new(Anchor::AboveInputMax(0.5), Anchor::AboveInputMax(1.0))
    }

    #[test]
    fn sw_dap_recovers_beta_mean_under_attack() {
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 1);
        let truth = smean(&pop.honest);
        let dap = SwDap::new(SwDapConfig { max_d_out: 64, ..SwDapConfig::paper_default(1.0, Scheme::EmfStar) }).unwrap();
        let mut rng = seeded(2);
        let out = dap.run(&pop, &sw_attack(), &mut rng).unwrap();
        assert_eq!(out.side, Side::Right);
        assert!((out.mean - truth).abs() < 0.1, "estimate {} vs truth {}", out.mean, truth);
        assert!(out.gamma > 0.1, "gamma {}", out.gamma);
    }

    #[test]
    fn sw_dap_beats_raw_average_under_attack() {
        // Beta(2,5): the honest mean is low, so upward poison hurts Ostrich
        // badly (on Beta(5,2) the SW center-bias and the attack can cancel —
        // the paper's own Fig. 8d observation).
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 3);
        let truth = smean(&pop.honest);
        let mut rng = seeded(4);

        // Ostrich on single-batch SW reports at full ε.
        let mech = SquareWave::with_epsilon(1.0).unwrap();
        let mut reports: Vec<f64> =
            pop.honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        reports.extend(sw_attack().reports(pop.byzantine, &mech, &mut rng));
        let ostrich_err = (smean(&reports) - truth).abs();

        let dap = SwDap::new(SwDapConfig { max_d_out: 64, ..SwDapConfig::paper_default(1.0, Scheme::CemfStar) }).unwrap();
        let out = dap.run(&pop, &sw_attack(), &mut rng).unwrap();
        assert!(
            (out.mean - truth).abs() < ostrich_err,
            "SW-DAP {} vs Ostrich err {} (truth {})",
            out.mean,
            ostrich_err,
            truth
        );
    }

    #[test]
    fn sw_dap_detects_left_band_attacks() {
        let pop = beta_population(12_000, 0.25, 2.0, 5.0, 7);
        let truth = smean(&pop.honest);
        // Poison in the left inflation band [-b, -b/2].
        let attack = UniformAttack::new(Anchor::OfLower(1.0), Anchor::OfLower(0.5));
        let dap = SwDap::new(SwDapConfig {
            max_d_out: 64,
            ..SwDapConfig::paper_default(1.0, Scheme::EmfStar)
        })
        .unwrap();
        let mut rng = seeded(8);
        let out = dap.run(&pop, &attack, &mut rng).unwrap();
        assert_eq!(out.side, Side::Left);
        assert!((out.mean - truth).abs() < 0.15, "estimate {} truth {}", out.mean, truth);
    }

    #[test]
    fn o_prime_bootstrap_is_pessimistic_under_right_attack() {
        let mech = SquareWave::with_epsilon(0.5).unwrap();
        let mut rng = seeded(5);
        let honest: Vec<f64> = (0..20_000).map(|_| sampling::beta(2.0, 5.0, &mut rng)).collect();
        let truth = smean(&honest);
        let mut reports: Vec<f64> =
            honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        reports.extend(sw_attack().reports(5_000, &mech, &mut rng));
        let cfg = EmfConfig::capped(reports.len(), 0.5, 64);
        let o_prime = sw_o_prime(&mech, &reports, Side::Right, &cfg);
        assert!(o_prime <= truth + 0.05, "O' {} vs truth {}", o_prime, truth);
        assert!((0.0..=1.0).contains(&o_prime));
    }

    #[test]
    fn sw_dap_rejects_bad_budgets() {
        let cfg = SwDapConfig { eps: 0.01, ..SwDapConfig::paper_default(0.01, Scheme::Emf) };
        assert!(matches!(SwDap::new(cfg), Err(DapError::InvalidBudget { .. })));
    }
}
