//! `dap-wire/v1`: a std-only wire protocol serving [`DapSession`] over TCP.
//!
//! The session API is transport-agnostic; this module is the transport. A
//! daemon wraps one session in [`serve_session`] — by default a
//! bounded-worker *ingestion reactor*: each connection gets a handler
//! thread that decodes frames, mutation frames cross a bounded apply
//! queue to a small worker pool applying coalesced batches under one
//! session-lock acquisition (one journal group commit for a durable
//! session), and a full queue or connection table answers with a typed,
//! retryable [`WireError::Throttled`] instead of blocking
//! (backpressure). The accept loop runs over `std::net::TcpListener` —
//! the workspace has no async runtime, by design. Clients drive the
//! daemon through [`WireClient`]. The frame set mirrors the session API
//! one-to-one:
//!
//! | frame | direction | reply | meaning |
//! |---|---|---|---|
//! | `hello` | → | `hello-ok` | version + [`DapSession::state_digest`] handshake (optionally announcing a channel; the reply then carries the channel's last acked sequence) |
//! | `ingest` | → | `ok` | one report into one group |
//! | `ingest-batch` | → | `ok` | an atomic report batch into one group |
//! | `seq-batch` | → | `ok` | a sequence-numbered batch — retries dedup'd by the session's replay guard |
//! | `share-batch` | → | `ok` | a sequence-numbered batch of masked `u64` histogram shares ([`DapSession::ingest_shares`]) |
//! | `status` | → | `status-ok` | lightweight liveness probe (digest, groups, reports ingested, observability counters) |
//! | `pull` | → | `part` | the serialized per-group state ([`SessionPart`]) |
//! | `masked-pull` | → | `masked-part` | a masked session's share state ([`crate::secagg::MaskedPart`]) |
//! | `merge` | → | `ok` | absorb a serialized part ([`DapSession::merge_part`]) |
//! | `finalize` | → | `outputs` | run the collector pipeline for a scheme list |
//! | `run-shard` | → | `shard-result` | execute an experiment shard (bench daemons) |
//! | `shutdown` | → | `ok` | stop the daemon after this reply |
//! | `error` | ← | — | typed [`WireError`] reply to any frame |
//!
//! Every frame is length-prefixed (4-byte big-endian length, then a UTF-8
//! body whose first token is the frame tag). All f64 values — reports,
//! histogram state, outputs — travel as IEEE-754 bit patterns through the
//! shared [`crate::codec`], the same encoding the `dap-results/v1` JSON
//! schema uses, so a value crosses the wire **exactly**: the golden
//! loopback suites pin a coordinator-over-TCP run bit-identical to a
//! single-process one.
//!
//! Rejections stay typed across the hop: a [`DapError`] raised by the
//! session (out-of-range report, over-quota traffic, unknown group,
//! incompatible merge) comes back as [`WireError::Rejected`] carrying the
//! same variant with the same fields.
//!
//! A daemon started with auth tokens ([`ServeOptions::auth_tokens`])
//! answers every frame on a connection with [`WireError::Unauthorized`]
//! until a `hello` carrying a recognized token succeeds — authentication
//! is connection-scoped and precedes all session dispatch, so an
//! unauthenticated peer cannot even probe `status`.

use crate::codec::{self, f64_to_hex, hex_u64};
use crate::error::DapError;
use crate::protocol::{DapOutput, GroupReport};
use crate::scheme::Scheme;
use crate::secagg::{MaskedGroup, MaskedPart, SecaggRole};
use crate::session::{DapSession, PartGroup, SessionPart};
use dap_attack::Side;
use dap_ldp::NumericMechanism;
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// The protocol version exchanged in the `hello` handshake.
pub const WIRE_VERSION: &str = "dap-wire/v1";

/// Upper bound on one frame body — a guard against garbage lengths, not a
/// protocol limit (the largest legitimate frame, a 1M-report batch, is
/// ~20 MB of hex tokens).
const MAX_FRAME: usize = 64 << 20;

/// A typed error crossing the wire (or raised by the transport itself).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The peer's session rejected the operation; the original
    /// [`DapError`] round-trips with its fields intact.
    Rejected(DapError),
    /// The peer speaks a different `dap-wire` version.
    VersionMismatch {
        /// Version offered by the client.
        client: String,
        /// Version the server speaks.
        server: String,
    },
    /// Client and server sessions were built from different deployments
    /// (config, plan or mechanism grids differ).
    DigestMismatch {
        /// The client session's [`DapSession::state_digest`].
        client: u64,
        /// The server session's digest.
        server: u64,
    },
    /// The peer does not handle this frame (e.g. `run-shard` sent to a
    /// plain session daemon).
    Unsupported {
        /// The offending frame tag.
        what: String,
    },
    /// The server requires an auth token and this connection has not
    /// presented a recognized one in a `hello` yet. Deterministic (a
    /// retry with the same credentials fails the same way), so not
    /// retryable under a [`RetryPolicy`].
    Unauthorized {
        /// Why the frame was refused.
        what: String,
    },
    /// A frame failed to parse (or exceeded the size guard).
    BadFrame {
        /// What went wrong.
        reason: String,
    },
    /// The peer failed in a way that has no structured encoding.
    Failed {
        /// The peer's error message.
        message: String,
    },
    /// A deadline expired: a connect, read or write did not complete
    /// within its configured [`Deadlines`] bound, or the server closed an
    /// idle connection ([`ServeOptions::idle_timeout`]). Distinguished
    /// from [`WireError::Io`] so callers can tell a stalled peer from a
    /// dead one; both are retryable under a [`RetryPolicy`].
    Timeout {
        /// What timed out.
        what: String,
    },
    /// Backpressure: the daemon's apply queue (or connection table) is
    /// full and the frame was shed *before* touching the session — nothing
    /// was applied, so resending the identical frame is always safe.
    /// Retryable under a [`RetryPolicy`]; a well-behaved client waits at
    /// least `retry_after_ms` (the server's hint) before the resend.
    Throttled {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// A transport-level I/O failure (connect, read, write).
    Io {
        /// The underlying error, stringified.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Rejected(e) => write!(f, "rejected by peer: {e}"),
            WireError::VersionMismatch { client, server } => {
                write!(f, "wire version mismatch: client {client}, server {server}")
            }
            WireError::DigestMismatch { client, server } => write!(
                f,
                "session digest mismatch: client {}, server {} (different config, plan or mechanisms)",
                hex_u64(*client),
                hex_u64(*server)
            ),
            WireError::Unsupported { what } => write!(f, "peer does not support frame '{what}'"),
            WireError::Unauthorized { what } => write!(f, "unauthorized: {what}"),
            WireError::BadFrame { reason } => write!(f, "malformed frame: {reason}"),
            WireError::Failed { message } => write!(f, "peer failed: {message}"),
            WireError::Timeout { what } => write!(f, "wire timeout: {what}"),
            WireError::Throttled { retry_after_ms } => {
                write!(f, "throttled by peer: retry after {retry_after_ms} ms")
            }
            WireError::Io { message } => write!(f, "wire i/o error: {message}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        // A socket with a read/write deadline reports expiry as `TimedOut`
        // (most platforms) or `WouldBlock` (BSD-style timeouts); both mean
        // "the peer stalled", not "the peer is gone".
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                WireError::Timeout { what: e.to_string() }
            }
            _ => WireError::Io { message: e.to_string() },
        }
    }
}

impl From<DapError> for WireError {
    fn from(e: DapError) -> Self {
        WireError::Rejected(e)
    }
}

/// One `dap-wire/v1` frame (see the module docs for the table).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client greeting: protocol version + session digest.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: String,
        /// The client session's [`DapSession::state_digest`].
        digest: u64,
        /// Coordinator channel announced for sequenced ingestion; the
        /// reply then reports the channel's last acknowledged sequence so
        /// a reconnecting coordinator can resume without double-applying.
        /// Absent for plain (unsequenced) clients — the encoding omits it,
        /// keeping pre-sequencing frames byte-identical.
        channel: Option<u64>,
        /// Auth token presented to a server requiring one
        /// ([`ServeOptions::auth_tokens`]); omitted from the encoding when
        /// absent, keeping pre-auth hellos byte-identical.
        auth: Option<u64>,
        /// The dealer's [`crate::secagg::SeedCommitment`] digest, announced
        /// when opening a masked submit so every share server binds to one
        /// mask seed; omitted for plaintext clients.
        commit: Option<u64>,
    },
    /// Handshake accepted.
    HelloOk {
        /// The server session's digest (equal to the client's).
        digest: u64,
        /// Number of groups in the served plan.
        groups: usize,
        /// Last acknowledged sequence on the hello's announced channel
        /// (0 when the channel has never delivered a batch); absent when
        /// the hello announced no channel.
        last_seq: Option<u64>,
        /// The share-group topology `(k, index)` a masked daemon serves
        /// ([`crate::secagg::SecaggRole`]); absent for plaintext daemons,
        /// keeping their hello-ok byte-identical.
        secagg: Option<(usize, usize)>,
    },
    /// One report into one group.
    Ingest {
        /// Target group.
        group: usize,
        /// The perturbed report.
        report: f64,
    },
    /// An atomic batch of reports into one group.
    IngestBatch {
        /// Target group.
        group: usize,
        /// The reports, in ingestion order (order is part of the exactness
        /// contract — running sums accumulate in it).
        reports: Vec<f64>,
    },
    /// A sequence-numbered atomic batch: applied only when `seq` is the
    /// next sequence on `channel`, so a retry of a batch whose ack was
    /// lost is rejected typed ([`DapError::DuplicateSequence`]) instead of
    /// double-counted.
    IngestBatchSeq {
        /// Coordinator channel the sequence belongs to.
        channel: u64,
        /// Batch sequence, starting at 1 per channel.
        seq: u64,
        /// Target group.
        group: usize,
        /// The reports, in ingestion order.
        reports: Vec<f64>,
    },
    /// Liveness probe: answered from connection-local state (no session
    /// mutation), cheap enough to poll a daemon that is busy recovering.
    Status,
    /// A sequence-numbered batch of masked histogram shares into one
    /// group (the secret-shared counterpart of `seq-batch`): `counts` is
    /// one `u64` word per bucket, accumulated with wrapping addition.
    /// Rides the same per-channel replay guard as `seq-batch`, so retries
    /// dedup and journal recovery resumes identically.
    ShareBatch {
        /// Coordinator channel the sequence belongs to.
        channel: u64,
        /// Batch sequence, starting at 1 per channel.
        seq: u64,
        /// Target group.
        group: usize,
        /// One masked share word per histogram bucket.
        counts: Vec<u64>,
    },
    /// Ask a masked daemon for its accumulated share state.
    MaskedPull,
    /// Reply to `masked-pull`: the daemon's [`MaskedPart`].
    MaskedPart {
        /// The exported share state.
        part: MaskedPart,
    },
    /// Reply to `status`.
    StatusOk {
        /// The server session's digest.
        digest: u64,
        /// Number of groups in the served plan.
        groups: usize,
        /// Total reports accepted across all groups.
        ingested: usize,
        /// Session/journal observability counters; absent when talking to
        /// a pre-counters daemon (the encoding omits the section, keeping
        /// old status-ok frames byte-identical).
        counters: Option<StatusCounters>,
    },
    /// Generic success reply.
    Ok,
    /// Ask the server for its serialized session state.
    Pull,
    /// The server's serialized state.
    Part {
        /// The exported state.
        part: SessionPart,
    },
    /// Push a serialized part into the server's session.
    Merge {
        /// The part to absorb.
        part: SessionPart,
    },
    /// Run the collector pipeline server-side.
    Finalize {
        /// Schemes to read the result off under, in reply order.
        schemes: Vec<Scheme>,
    },
    /// Finalized outputs, in request scheme order.
    Outputs {
        /// One output per requested scheme.
        outputs: Vec<DapOutput>,
    },
    /// Execute one experiment shard (handled by bench daemons; a plain
    /// session server answers `error unsupported`).
    RunShard {
        /// The shard coordinate.
        request: ShardRequest,
    },
    /// A shard's `dap-results/v1` JSON document.
    ShardResult {
        /// The JSON text, verbatim.
        json: String,
    },
    /// Stop the server after replying `ok`.
    Shutdown,
    /// Typed failure reply.
    Error(WireError),
}

/// Coordinates of one remote experiment shard (`experiments <id> --shard
/// i/n` driven over the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// Experiment id (`"fig7"`, `"all"`, …).
    pub experiment: String,
    /// Population size per trial.
    pub n: usize,
    /// Trials per cell.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// EMF bucket cap.
    pub max_d_out: usize,
    /// Shard index (`0 ≤ index < count`).
    pub index: usize,
    /// Shard count.
    pub count: usize,
}

/// Observability counters carried in a `status-ok` reply: enough to see,
/// from one cheap probe, whether a daemon is masked or plain, how much
/// replay-guard state it holds, and what its durability layer has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusCounters {
    /// Whether the served session is in masked (secret-shared) mode.
    pub masked: bool,
    /// Replay-guard channels the session has seen.
    pub channels: u64,
    /// Share batches accepted (0 for a plain session).
    pub shares: u64,
    /// Journal records appended since open (0 for an in-memory session).
    pub journal_records: u64,
    /// Checkpoints taken since open (0 for an in-memory session).
    pub checkpoints: u64,
    /// Ingestion-reactor counters; `None` when the daemon serves the
    /// legacy thread-per-connection path (or predates the reactor — the
    /// encoding omits the section, keeping old status-ok frames
    /// byte-identical).
    pub reactor: Option<ReactorCounters>,
}

/// Observability counters for the ingestion reactor, carried as an
/// optional trailing section of the `status-ok` counters: enough to see,
/// from one probe, whether a daemon is saturating (queue filling, clients
/// being throttled) or idling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorCounters {
    /// Frames currently parked in the apply queue.
    pub queue_depth: u64,
    /// Bytes of frame payload currently parked in the apply queue.
    pub queued_bytes: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// High-water mark of concurrently open connections.
    pub peak_connections: u64,
    /// Frames (or connection attempts) shed with
    /// [`WireError::Throttled`] since the daemon started.
    pub throttled: u64,
}

impl Frame {
    /// The frame's wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloOk { .. } => "hello-ok",
            Frame::Ingest { .. } => "ingest",
            Frame::IngestBatch { .. } => "ingest-batch",
            Frame::IngestBatchSeq { .. } => "seq-batch",
            Frame::ShareBatch { .. } => "share-batch",
            Frame::MaskedPull => "masked-pull",
            Frame::MaskedPart { .. } => "masked-part",
            Frame::Status => "status",
            Frame::StatusOk { .. } => "status-ok",
            Frame::Ok => "ok",
            Frame::Pull => "pull",
            Frame::Part { .. } => "part",
            Frame::Merge { .. } => "merge",
            Frame::Finalize { .. } => "finalize",
            Frame::Outputs { .. } => "outputs",
            Frame::RunShard { .. } => "run-shard",
            Frame::ShardResult { .. } => "shard-result",
            Frame::Shutdown => "shutdown",
            Frame::Error(_) => "error",
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn push_part(s: &mut String, part: &SessionPart) {
    use std::fmt::Write as _;
    s.push(' ');
    codec::push_hex_u64(s, part.digest);
    let _ = write!(s, " {}", part.groups.len());
    for g in &part.groups {
        let _ = write!(s, "\ngroup {} ", g.n_reports);
        codec::push_hex_f64(s, g.sum_reports);
        let _ = write!(s, " {}", g.counts.len());
        for &c in &g.counts {
            s.push(' ');
            codec::push_hex_f64(s, c);
        }
    }
    // The replay-guard table rides along only when non-empty, so part
    // frames from sessions that never saw sequenced ingestion stay
    // byte-identical to the pre-sequencing encoding (and old peers still
    // parse them).
    if !part.channels.is_empty() {
        let _ = write!(s, "\nseqs {}", part.channels.len());
        for &(channel, seq) in &part.channels {
            s.push(' ');
            codec::push_hex_u64(s, channel);
            let _ = write!(s, " {seq}");
        }
    }
}

fn push_masked_part(s: &mut String, part: &MaskedPart) {
    use std::fmt::Write as _;
    s.push(' ');
    codec::push_hex_u64(s, part.digest);
    let _ = write!(s, " {} {} ", part.k, part.index);
    codec::push_hex_u64(s, part.commitment);
    let _ = write!(s, " {}", part.groups.len());
    for g in &part.groups {
        let _ = write!(s, "\nmgroup {}", g.counts.len());
        for &w in &g.counts {
            s.push(' ');
            codec::push_hex_u64(s, w);
        }
    }
    if !part.channels.is_empty() {
        let _ = write!(s, "\nseqs {}", part.channels.len());
        for &(channel, seq) in &part.channels {
            s.push(' ');
            codec::push_hex_u64(s, channel);
            let _ = write!(s, " {seq}");
        }
    }
}

fn push_outputs(s: &mut String, outputs: &[DapOutput]) {
    use std::fmt::Write as _;
    let _ = write!(s, " {}", outputs.len());
    for out in outputs {
        let side = match out.side {
            Side::Left => "L",
            Side::Right => "R",
        };
        s.push_str("\noutput ");
        codec::push_hex_f64(s, out.mean);
        let _ = write!(s, " {side} ");
        codec::push_hex_f64(s, out.gamma);
        s.push(' ');
        codec::push_hex_f64(s, out.min_variance);
        let _ = write!(s, " {}", out.groups.len());
        for g in &out.groups {
            s.push_str("\ng ");
            codec::push_hex_f64(s, g.eps_t);
            let _ = write!(s, " {} ", g.n_reports);
            for (i, v) in [g.mean_t, g.m_hat, g.n_hat, g.weight].into_iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                codec::push_hex_f64(s, v);
            }
        }
    }
}

/// Serializes a frame body (without the length prefix). Exposed for tests;
/// use [`write_frame`] to put frames on a stream.
pub fn encode_frame(frame: &Frame) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    match frame {
        Frame::Hello { version, digest, channel, auth, commit } => {
            let _ = write!(s, "hello {version} {}", hex_u64(*digest));
            // Optional sections in canonical order (channel, auth, commit)
            // so each combination has exactly one encoding.
            if let Some(channel) = channel {
                let _ = write!(s, " channel {}", hex_u64(*channel));
            }
            if let Some(auth) = auth {
                let _ = write!(s, " auth {}", hex_u64(*auth));
            }
            if let Some(commit) = commit {
                let _ = write!(s, " commit {}", hex_u64(*commit));
            }
        }
        Frame::HelloOk { digest, groups, last_seq, secagg } => {
            let _ = write!(s, "hello-ok {} {groups}", hex_u64(*digest));
            if let Some(last_seq) = last_seq {
                let _ = write!(s, " seq {last_seq}");
            }
            if let Some((k, index)) = secagg {
                let _ = write!(s, " secagg {k} {index}");
            }
        }
        Frame::Ingest { group, report } => {
            let _ = write!(s, "ingest {group} {}", f64_to_hex(*report));
        }
        Frame::IngestBatch { group, reports } => {
            let _ = writeln!(s, "ingest-batch {group} {}", reports.len());
            for (i, r) in reports.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                codec::push_hex_f64(&mut s, *r);
            }
        }
        Frame::IngestBatchSeq { channel, seq, group, reports } => {
            let _ = writeln!(
                s,
                "seq-batch {} {seq} {group} {}",
                hex_u64(*channel),
                reports.len()
            );
            for (i, r) in reports.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                codec::push_hex_f64(&mut s, *r);
            }
        }
        Frame::ShareBatch { channel, seq, group, counts } => {
            let _ = writeln!(
                s,
                "share-batch {} {seq} {group} {}",
                hex_u64(*channel),
                counts.len()
            );
            for (i, &w) in counts.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                codec::push_hex_u64(&mut s, w);
            }
        }
        Frame::MaskedPull => s.push_str("masked-pull"),
        Frame::MaskedPart { part } => {
            s.push_str("masked-part");
            push_masked_part(&mut s, part);
        }
        Frame::Status => s.push_str("status"),
        Frame::StatusOk { digest, groups, ingested, counters } => {
            let _ = write!(s, "status-ok {} {groups} {ingested}", hex_u64(*digest));
            if let Some(c) = counters {
                let _ = write!(
                    s,
                    " counters {} {} {} {} {}",
                    u8::from(c.masked),
                    c.channels,
                    c.shares,
                    c.journal_records,
                    c.checkpoints
                );
                // The reactor section rides along only when the daemon
                // runs one, so legacy daemons keep the PR 8 encoding.
                if let Some(r) = &c.reactor {
                    let _ = write!(
                        s,
                        " reactor {} {} {} {} {}",
                        r.queue_depth,
                        r.queued_bytes,
                        r.active_connections,
                        r.peak_connections,
                        r.throttled
                    );
                }
            }
        }
        Frame::Ok => s.push_str("ok"),
        Frame::Pull => s.push_str("pull"),
        Frame::Part { part } => {
            s.push_str("part");
            push_part(&mut s, part);
        }
        Frame::Merge { part } => {
            s.push_str("merge");
            push_part(&mut s, part);
        }
        Frame::Finalize { schemes } => {
            let _ = write!(s, "finalize {}", schemes.len());
            for scheme in schemes {
                let _ = write!(s, " {}", scheme.label());
            }
        }
        Frame::Outputs { outputs } => {
            s.push_str("outputs");
            push_outputs(&mut s, outputs);
        }
        Frame::RunShard { request } => {
            let _ = write!(
                s,
                "run-shard {} {} {} {} {} {} {}",
                request.experiment,
                request.n,
                request.trials,
                request.seed,
                request.max_d_out,
                request.index,
                request.count
            );
        }
        Frame::ShardResult { json } => {
            s.push_str("shard-result\n");
            s.push_str(json);
        }
        Frame::Shutdown => s.push_str("shutdown"),
        Frame::Error(e) => encode_error(&mut s, e),
    }
    s
}

fn encode_error(s: &mut String, e: &WireError) {
    use std::fmt::Write as _;
    match e {
        WireError::Rejected(d) => match d {
            DapError::ReportOutOfRange { group, report, lo, hi } => {
                let _ = write!(
                    s,
                    "error rejected range {group} {} {} {}",
                    f64_to_hex(*report),
                    f64_to_hex(*lo),
                    f64_to_hex(*hi)
                );
            }
            DapError::QuotaExceeded { group, quota, ingested, attempted } => {
                let _ = write!(s, "error rejected quota {group} {quota} {ingested} {attempted}");
            }
            DapError::UnknownGroup { group, groups } => {
                let _ = write!(s, "error rejected group {group} {groups}");
            }
            DapError::DuplicateSequence { channel, seq, last } => {
                let _ =
                    write!(s, "error rejected dup-seq {} {seq} {last}", hex_u64(*channel));
            }
            DapError::SequenceGap { channel, seq, expected } => {
                let _ = write!(
                    s,
                    "error rejected seq-gap {} {seq} {expected}",
                    hex_u64(*channel)
                );
            }
            DapError::ModeMismatch { masked } => {
                let _ = write!(s, "error rejected mode {}", u8::from(*masked));
            }
            DapError::SessionMismatch { what } => {
                match DapError::MISMATCH_FIELDS.iter().position(|f| f == what) {
                    Some(idx) => {
                        let _ = write!(s, "error rejected mismatch {idx}");
                    }
                    None => {
                        let _ = write!(s, "error failed\n{d}");
                    }
                }
            }
            // The remaining variants cannot be raised by ingest/merge/
            // finalize on a live session; ship them as their message.
            other => {
                let _ = write!(s, "error failed\n{other}");
            }
        },
        WireError::VersionMismatch { client, server } => {
            let _ = write!(s, "error version {client} {server}");
        }
        WireError::DigestMismatch { client, server } => {
            let _ = write!(s, "error digest {} {}", hex_u64(*client), hex_u64(*server));
        }
        WireError::Unsupported { what } => {
            let _ = write!(s, "error unsupported\n{what}");
        }
        WireError::Unauthorized { what } => {
            let _ = write!(s, "error unauthorized\n{what}");
        }
        WireError::BadFrame { reason } => {
            let _ = write!(s, "error bad-frame\n{reason}");
        }
        WireError::Failed { message } => {
            let _ = write!(s, "error failed\n{message}");
        }
        WireError::Timeout { what } => {
            let _ = write!(s, "error timeout\n{what}");
        }
        WireError::Throttled { retry_after_ms } => {
            let _ = write!(s, "error throttled {retry_after_ms}");
        }
        WireError::Io { message } => {
            let _ = write!(s, "error io\n{message}");
        }
    }
}

/// Whitespace tokenizer with typed accessors; every parse failure is a
/// [`WireError::BadFrame`] naming the missing piece.
struct Tokens<'a> {
    it: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn new(body: &'a str) -> Tokens<'a> {
        Tokens { it: body.split_whitespace() }
    }

    fn bad(what: &str) -> WireError {
        WireError::BadFrame { reason: format!("missing or malformed {what}") }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, WireError> {
        self.it.next().ok_or_else(|| Self::bad(what))
    }

    fn usize(&mut self, what: &str) -> Result<usize, WireError> {
        self.next(what)?.parse().map_err(|_| Self::bad(what))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        self.next(what)?.parse().map_err(|_| Self::bad(what))
    }

    fn hex_u64(&mut self, what: &str) -> Result<u64, WireError> {
        codec::parse_hex_u64(self.next(what)?)
            .map_err(|reason| WireError::BadFrame { reason })
    }

    fn hex_f64(&mut self, what: &str) -> Result<f64, WireError> {
        codec::parse_hex_f64(self.next(what)?)
            .map_err(|reason| WireError::BadFrame { reason })
    }

    /// The next token without consuming it — how optional trailing
    /// sections (a hello's `channel`, a part's `seqs` table) are detected
    /// before [`Tokens::done`] enforces "no trailing garbage".
    fn peek(&self) -> Option<&'a str> {
        self.it.clone().next()
    }

    fn literal(&mut self, word: &str) -> Result<(), WireError> {
        if self.next(word)? == word {
            Ok(())
        } else {
            Err(Self::bad(word))
        }
    }

    fn done(self) -> Result<(), WireError> {
        let mut it = self.it;
        match it.next() {
            None => Ok(()),
            Some(extra) => Err(WireError::BadFrame {
                reason: format!("trailing token '{extra}'"),
            }),
        }
    }
}

fn parse_part(t: &mut Tokens) -> Result<SessionPart, WireError> {
    let digest = t.hex_u64("part digest")?;
    let n_groups = t.usize("part group count")?;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        t.literal("group")?;
        let n_reports = t.usize("group report count")?;
        let sum_reports = t.hex_f64("group report sum")?;
        let n_buckets = t.usize("group bucket count")?;
        let mut counts = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            counts.push(t.hex_f64("bucket count")?);
        }
        groups.push(PartGroup { counts, sum_reports, n_reports });
    }
    let mut channels = Vec::new();
    if t.peek() == Some("seqs") {
        t.literal("seqs")?;
        let n = t.usize("channel count")?;
        channels.reserve(n);
        for _ in 0..n {
            let channel = t.hex_u64("channel id")?;
            let seq = t.u64("channel seq")?;
            channels.push((channel, seq));
        }
    }
    Ok(SessionPart { digest, groups, channels })
}

fn parse_masked_part(t: &mut Tokens) -> Result<MaskedPart, WireError> {
    let digest = t.hex_u64("masked-part digest")?;
    let k = t.usize("masked-part k")?;
    let index = t.usize("masked-part index")?;
    let commitment = t.hex_u64("masked-part commitment")?;
    let n_groups = t.usize("masked-part group count")?;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        t.literal("mgroup")?;
        let n_buckets = t.usize("masked group bucket count")?;
        let mut counts = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            counts.push(t.hex_u64("masked bucket word")?);
        }
        groups.push(MaskedGroup { counts });
    }
    let mut channels = Vec::new();
    if t.peek() == Some("seqs") {
        t.literal("seqs")?;
        let n = t.usize("channel count")?;
        channels.reserve(n);
        for _ in 0..n {
            let channel = t.hex_u64("channel id")?;
            let seq = t.u64("channel seq")?;
            channels.push((channel, seq));
        }
    }
    Ok(MaskedPart { digest, k, index, commitment, groups, channels })
}

fn parse_outputs(t: &mut Tokens) -> Result<Vec<DapOutput>, WireError> {
    let n = t.usize("output count")?;
    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        t.literal("output")?;
        let mean = t.hex_f64("output mean")?;
        let side = match t.next("output side")? {
            "L" => Side::Left,
            "R" => Side::Right,
            other => {
                return Err(WireError::BadFrame { reason: format!("unknown side '{other}'") })
            }
        };
        let gamma = t.hex_f64("output gamma")?;
        let min_variance = t.hex_f64("output min_variance")?;
        let n_groups = t.usize("output group count")?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            t.literal("g")?;
            groups.push(GroupReport {
                eps_t: t.hex_f64("group eps_t")?,
                n_reports: t.usize("group n_reports")?,
                mean_t: t.hex_f64("group mean_t")?,
                m_hat: t.hex_f64("group m_hat")?,
                n_hat: t.hex_f64("group n_hat")?,
                weight: t.hex_f64("group weight")?,
            });
        }
        outputs.push(DapOutput { mean, side, gamma, min_variance, groups });
    }
    Ok(outputs)
}

fn parse_error(body: &str) -> Result<WireError, WireError> {
    // Frames whose payload is free text carry it after the first line.
    let (header, rest) = match body.split_once('\n') {
        Some((h, r)) => (h, r),
        None => (body, ""),
    };
    let mut t = Tokens::new(header);
    t.literal("error")?;
    let err = match t.next("error kind")? {
        "rejected" => WireError::Rejected(match t.next("rejection kind")? {
            "range" => DapError::ReportOutOfRange {
                group: t.usize("group")?,
                report: t.hex_f64("report")?,
                lo: t.hex_f64("lo")?,
                hi: t.hex_f64("hi")?,
            },
            "quota" => DapError::QuotaExceeded {
                group: t.usize("group")?,
                quota: t.usize("quota")?,
                ingested: t.usize("ingested")?,
                attempted: t.usize("attempted")?,
            },
            "group" => DapError::UnknownGroup {
                group: t.usize("group")?,
                groups: t.usize("groups")?,
            },
            "dup-seq" => DapError::DuplicateSequence {
                channel: t.hex_u64("channel")?,
                seq: t.u64("seq")?,
                last: t.u64("last")?,
            },
            "seq-gap" => DapError::SequenceGap {
                channel: t.hex_u64("channel")?,
                seq: t.u64("seq")?,
                expected: t.u64("expected")?,
            },
            "mode" => DapError::ModeMismatch { masked: t.u64("mode flag")? != 0 },
            "mismatch" => {
                let idx = t.usize("mismatch field index")?;
                let what = DapError::MISMATCH_FIELDS.get(idx).copied().ok_or_else(|| {
                    WireError::BadFrame { reason: format!("unknown mismatch field #{idx}") }
                })?;
                DapError::SessionMismatch { what }
            }
            other => {
                return Err(WireError::BadFrame {
                    reason: format!("unknown rejection kind '{other}'"),
                })
            }
        }),
        "version" => WireError::VersionMismatch {
            client: t.next("client version")?.to_string(),
            server: t.next("server version")?.to_string(),
        },
        "digest" => WireError::DigestMismatch {
            client: t.hex_u64("client digest")?,
            server: t.hex_u64("server digest")?,
        },
        "unsupported" => WireError::Unsupported { what: rest.to_string() },
        "unauthorized" => WireError::Unauthorized { what: rest.to_string() },
        "bad-frame" => WireError::BadFrame { reason: rest.to_string() },
        "failed" => WireError::Failed { message: rest.to_string() },
        "timeout" => WireError::Timeout { what: rest.to_string() },
        "throttled" => WireError::Throttled { retry_after_ms: t.u64("retry-after ms")? },
        "io" => WireError::Io { message: rest.to_string() },
        other => {
            return Err(WireError::BadFrame { reason: format!("unknown error kind '{other}'") })
        }
    };
    t.done()?;
    Ok(err)
}

/// Parses a frame body (the inverse of [`encode_frame`]).
pub fn decode_frame(body: &str) -> Result<Frame, WireError> {
    let tag = body.split_whitespace().next().unwrap_or("");
    match tag {
        "error" => return parse_error(body).map(Frame::Error),
        "shard-result" => {
            let json = body
                .split_once('\n')
                .map(|(_, rest)| rest)
                .unwrap_or("")
                .to_string();
            return Ok(Frame::ShardResult { json });
        }
        _ => {}
    }
    let mut t = Tokens::new(body);
    let tag = t.next("frame tag")?;
    let frame = match tag {
        "hello" => {
            let version = t.next("version")?.to_string();
            let digest = t.hex_u64("digest")?;
            let channel = if t.peek() == Some("channel") {
                t.literal("channel")?;
                Some(t.hex_u64("channel id")?)
            } else {
                None
            };
            let auth = if t.peek() == Some("auth") {
                t.literal("auth")?;
                Some(t.hex_u64("auth token")?)
            } else {
                None
            };
            let commit = if t.peek() == Some("commit") {
                t.literal("commit")?;
                Some(t.hex_u64("seed commitment")?)
            } else {
                None
            };
            Frame::Hello { version, digest, channel, auth, commit }
        }
        "hello-ok" => {
            let digest = t.hex_u64("digest")?;
            let groups = t.usize("groups")?;
            let last_seq = if t.peek() == Some("seq") {
                t.literal("seq")?;
                Some(t.u64("last seq")?)
            } else {
                None
            };
            let secagg = if t.peek() == Some("secagg") {
                t.literal("secagg")?;
                let k = t.usize("secagg k")?;
                let index = t.usize("secagg index")?;
                Some((k, index))
            } else {
                None
            };
            Frame::HelloOk { digest, groups, last_seq, secagg }
        }
        "ingest" => Frame::Ingest {
            group: t.usize("group")?,
            report: t.hex_f64("report")?,
        },
        "ingest-batch" => {
            let group = t.usize("group")?;
            let count = t.usize("report count")?;
            let mut reports = Vec::with_capacity(count);
            for _ in 0..count {
                reports.push(t.hex_f64("report")?);
            }
            Frame::IngestBatch { group, reports }
        }
        "seq-batch" => {
            let channel = t.hex_u64("channel")?;
            let seq = t.u64("seq")?;
            let group = t.usize("group")?;
            let count = t.usize("report count")?;
            let mut reports = Vec::with_capacity(count);
            for _ in 0..count {
                reports.push(t.hex_f64("report")?);
            }
            Frame::IngestBatchSeq { channel, seq, group, reports }
        }
        "share-batch" => {
            let channel = t.hex_u64("channel")?;
            let seq = t.u64("seq")?;
            let group = t.usize("group")?;
            let count = t.usize("share word count")?;
            let mut counts = Vec::with_capacity(count);
            for _ in 0..count {
                counts.push(t.hex_u64("share word")?);
            }
            Frame::ShareBatch { channel, seq, group, counts }
        }
        "masked-pull" => Frame::MaskedPull,
        "masked-part" => Frame::MaskedPart { part: parse_masked_part(&mut t)? },
        "status" => Frame::Status,
        "status-ok" => {
            let digest = t.hex_u64("digest")?;
            let groups = t.usize("groups")?;
            let ingested = t.usize("ingested")?;
            let counters = if t.peek() == Some("counters") {
                t.literal("counters")?;
                let mut c = StatusCounters {
                    masked: t.u64("masked flag")? != 0,
                    channels: t.u64("channel counter")?,
                    shares: t.u64("share counter")?,
                    journal_records: t.u64("journal record counter")?,
                    checkpoints: t.u64("checkpoint counter")?,
                    reactor: None,
                };
                if t.peek() == Some("reactor") {
                    t.literal("reactor")?;
                    c.reactor = Some(ReactorCounters {
                        queue_depth: t.u64("queue depth")?,
                        queued_bytes: t.u64("queued bytes")?,
                        active_connections: t.u64("active connections")?,
                        peak_connections: t.u64("peak connections")?,
                        throttled: t.u64("throttle counter")?,
                    });
                }
                Some(c)
            } else {
                None
            };
            Frame::StatusOk { digest, groups, ingested, counters }
        }
        "ok" => Frame::Ok,
        "pull" => Frame::Pull,
        "part" => Frame::Part { part: parse_part(&mut t)? },
        "merge" => Frame::Merge { part: parse_part(&mut t)? },
        "finalize" => {
            let count = t.usize("scheme count")?;
            let mut schemes = Vec::with_capacity(count);
            for _ in 0..count {
                let label = t.next("scheme label")?;
                schemes.push(Scheme::from_label(label).ok_or_else(|| WireError::BadFrame {
                    reason: format!("unknown scheme '{label}'"),
                })?);
            }
            Frame::Finalize { schemes }
        }
        "outputs" => Frame::Outputs { outputs: parse_outputs(&mut t)? },
        "run-shard" => Frame::RunShard {
            request: ShardRequest {
                experiment: t.next("experiment")?.to_string(),
                n: t.usize("n")?,
                trials: t.usize("trials")?,
                seed: t.u64("seed")?,
                max_d_out: t.usize("max_d_out")?,
                index: t.usize("shard index")?,
                count: t.usize("shard count")?,
            },
        },
        "shutdown" => Frame::Shutdown,
        other => {
            return Err(WireError::BadFrame { reason: format!("unknown frame tag '{other}'") })
        }
    };
    t.done()?;
    Ok(frame)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let body = encode_frame(frame);
    if body.len() > MAX_FRAME {
        return Err(WireError::BadFrame {
            reason: format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", body.len()),
        });
    }
    // One buffer, one write: a separate 4-byte prefix write would cost a
    // second syscall per frame (and, with TCP_NODELAY, its own packet).
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
    wire.extend_from_slice(body.as_bytes());
    w.write_all(&wire)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. An I/O failure (including EOF) is
/// [`WireError::Io`]; anything the peer sent that fails to parse is
/// [`WireError::BadFrame`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    read_frame_sized(r).map(|(frame, _)| frame)
}

/// [`read_frame`] also reporting the frame's body length in bytes — the
/// cost unit the reactor's [`ReactorOptions::queue_bytes`] bound accounts
/// in, so backpressure tracks actual memory held, not frame counts.
pub fn read_frame_sized(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::BadFrame {
            reason: format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| WireError::BadFrame { reason: "frame body is not UTF-8".into() })?;
    decode_frame(text).map(|frame| (frame, len))
}

// ---------------------------------------------------------------------------
// Deadlines and retries
// ---------------------------------------------------------------------------

/// Per-operation deadlines for a [`WireClient`] connection. `None` means
/// "wait forever" (the pre-hardening behavior, and the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadlines {
    /// Bound on establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Bound on each blocking read (per syscall, not per frame).
    pub read: Option<Duration>,
    /// Bound on each blocking write.
    pub write: Option<Duration>,
}

impl Deadlines {
    /// The same bound for connect, read and write.
    pub fn all(d: Duration) -> Deadlines {
        Deadlines { connect: Some(d), read: Some(d), write: Some(d) }
    }
}

/// Capped exponential backoff with deterministic, seeded jitter and a
/// per-deployment retry budget.
///
/// `attempts` bounds the tries for one operation; `budget` bounds the
/// *total* retries a coordinator spends across the whole deployment (the
/// caller decrements it — see `dap_bench`'s submit path), so a flapping
/// daemon cannot consume unbounded wall clock. Jitter is a pure function
/// of `(seed, salt, attempt)`, keeping every retry schedule reproducible:
/// two runs of the same deployment back off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Tries per operation (1 = no retries).
    pub attempts: usize,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub cap: Duration,
    /// Total retries allowed across the deployment.
    pub budget: usize,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            budget: 256,
            seed: 0xdab_5eed,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (1-based) of the operation
    /// identified by `salt`: `base · 2^(attempt-1)`, clamped to `cap`,
    /// scaled by a deterministic jitter fraction in `[0.5, 1.0)`.
    pub fn backoff(&self, attempt: usize, salt: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let exp = self
            .base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.cap)
            .min(self.cap);
        // xorshift64* over the (seed, salt, attempt) coordinate — no
        // process-global RNG state, so the schedule replays exactly.
        let mut x = self.seed
            ^ salt.rotate_left(17)
            ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = x.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let frac = 0.5 + ((x >> 11) as f64 / (1u64 << 53) as f64) / 2.0;
        exp.mul_f64(frac)
    }

    /// Whether an error is worth retrying: transport failures, deadline
    /// expiries and backpressure sheds ([`WireError::Throttled`] — the
    /// frame never touched the session, so a resend is always safe) are;
    /// typed protocol rejections (quota, digest mismatch, replay
    /// violations, …) are deterministic and are not.
    pub fn retryable(e: &WireError) -> bool {
        matches!(
            e,
            WireError::Io { .. } | WireError::Timeout { .. } | WireError::Throttled { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Successful masked-handshake reply: the session's group count, the
/// channel's last acknowledged sequence, and the daemon's share-group
/// topology `(k, index)` — `None` when the daemon serves plaintext.
pub type MaskedHelloOk = (usize, u64, Option<(usize, usize)>);

/// A typed client over one TCP connection to a `dap-wire/v1` daemon.
///
/// Each method is one request/reply exchange; an `error` reply surfaces as
/// the typed [`WireError`] (ingestion rejections as
/// [`WireError::Rejected`] with the original [`DapError`]).
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    /// Buffered read half over a clone of `stream` (replies otherwise cost
    /// two read syscalls each: length prefix, body).
    reader: std::io::BufReader<TcpStream>,
    /// Auth token presented in every `hello` ([`WireClient::set_auth`]);
    /// `None` omits the section for servers that require no token.
    auth: Option<u64>,
}

impl WireClient {
    fn over(stream: TcpStream) -> std::io::Result<WireClient> {
        let reader = std::io::BufReader::with_capacity(8 * 1024, stream.try_clone()?);
        Ok(WireClient { stream, reader, auth: None })
    }

    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        WireClient::over(stream)
    }

    /// Connects with [`Deadlines`]: the connect itself is bounded by
    /// `deadlines.connect`, and every subsequent read/write on the
    /// connection by `deadlines.read` / `deadlines.write` (surfacing as
    /// [`WireError::Timeout`] through the frame layer when exceeded).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        deadlines: &Deadlines,
    ) -> std::io::Result<WireClient> {
        let stream = match deadlines.connect {
            None => TcpStream::connect(addr)?,
            Some(bound) => {
                let mut last = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, bound) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(deadlines.read)?;
        stream.set_write_timeout(deadlines.write)?;
        WireClient::over(stream)
    }

    /// Sets the auth token every subsequent `hello` on this connection
    /// presents (for daemons started with [`ServeOptions::auth_tokens`]).
    pub fn set_auth(&mut self, token: Option<u64>) {
        self.auth = token;
    }

    /// [`WireClient::connect`] retrying for daemons that are still binding
    /// (e.g. just spawned by a test or a CI script).
    pub fn connect_retry(
        addr: &str,
        attempts: usize,
        delay: Duration,
    ) -> std::io::Result<WireClient> {
        WireClient::connect_retry_with(addr, attempts, delay, &Deadlines::default())
    }

    /// [`WireClient::connect_retry`] with [`Deadlines`] applied to the
    /// connection once it establishes.
    pub fn connect_retry_with(
        addr: &str,
        attempts: usize,
        delay: Duration,
        deadlines: &Deadlines,
    ) -> std::io::Result<WireClient> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match WireClient::connect_with(addr, deadlines) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// One request/reply exchange; `error` replies become `Err`.
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        self.send_frame(frame)?;
        self.recv_reply()
    }

    /// Sends one frame without waiting for its reply — the transmit half
    /// of a pipelined (windowed) exchange. The server still processes
    /// strictly one frame per connection at a time and replies in order,
    /// so pipelining overlaps scheduling without changing semantics;
    /// collect each reply with [`WireClient::recv_reply`].
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.stream, frame)
    }

    /// Receives the next in-order reply to a [`WireClient::send_frame`];
    /// `error` replies become `Err` exactly as in [`WireClient::call`].
    pub fn recv_reply(&mut self) -> Result<Frame, WireError> {
        match read_frame(&mut self.reader)? {
            Frame::Error(e) => Err(e),
            f => Ok(f),
        }
    }

    fn unexpected(wanted: &str, got: &Frame) -> WireError {
        WireError::BadFrame { reason: format!("expected {wanted} reply, got '{}'", got.tag()) }
    }

    /// Version + digest handshake; returns the server's group count.
    pub fn hello(&mut self, digest: u64) -> Result<usize, WireError> {
        let hello = Frame::Hello {
            version: WIRE_VERSION.to_string(),
            digest,
            channel: None,
            auth: self.auth,
            commit: None,
        };
        match self.call(&hello)? {
            Frame::HelloOk { groups, .. } => Ok(groups),
            f => Err(Self::unexpected("hello-ok", &f)),
        }
    }

    /// [`WireClient::hello`] announcing a coordinator channel; returns the
    /// group count and the channel's last acknowledged batch sequence (0
    /// when the channel is new) — the resume point after a reconnect.
    pub fn hello_channel(&mut self, digest: u64, channel: u64) -> Result<(usize, u64), WireError> {
        let hello = Frame::Hello {
            version: WIRE_VERSION.to_string(),
            digest,
            channel: Some(channel),
            auth: self.auth,
            commit: None,
        };
        match self.call(&hello)? {
            Frame::HelloOk { groups, last_seq, .. } => Ok((groups, last_seq.unwrap_or(0))),
            f => Err(Self::unexpected("hello-ok", &f)),
        }
    }

    /// Masked handshake: announces the dealer's seed commitment (and an
    /// optional coordinator channel) and returns the group count, the
    /// channel's last acknowledged sequence and the daemon's share-group
    /// topology `(k, index)` — `None` means the daemon serves a plaintext
    /// session and cannot accept shares.
    pub fn hello_masked(
        &mut self,
        digest: u64,
        channel: Option<u64>,
        commit: u64,
    ) -> Result<MaskedHelloOk, WireError> {
        let hello = Frame::Hello {
            version: WIRE_VERSION.to_string(),
            digest,
            channel,
            auth: self.auth,
            commit: Some(commit),
        };
        match self.call(&hello)? {
            Frame::HelloOk { groups, last_seq, secagg, .. } => {
                Ok((groups, last_seq.unwrap_or(0), secagg))
            }
            f => Err(Self::unexpected("hello-ok", &f)),
        }
    }

    /// Streams one report into `group`.
    pub fn ingest(&mut self, group: usize, report: f64) -> Result<(), WireError> {
        match self.call(&Frame::Ingest { group, report })? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }

    /// Streams an atomic batch into `group`.
    pub fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), WireError> {
        match self.call(&Frame::IngestBatch { group, reports: reports.to_vec() })? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }

    /// Streams a sequence-numbered batch into `group`. A
    /// [`DapError::DuplicateSequence`] rejection means the batch was
    /// already applied (the previous ack was lost) and may be treated as
    /// success by a resuming coordinator.
    pub fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), WireError> {
        let frame =
            Frame::IngestBatchSeq { channel, seq, group, reports: reports.to_vec() };
        match self.call(&frame)? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }

    /// Streams a sequence-numbered batch of masked share words into
    /// `group`. The same replay-guard semantics as
    /// [`WireClient::ingest_batch_seq`] apply: a
    /// [`DapError::DuplicateSequence`] rejection means the batch was
    /// already applied and may be treated as success.
    pub fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), WireError> {
        let frame = Frame::ShareBatch { channel, seq, group, counts: counts.to_vec() };
        match self.call(&frame)? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }

    /// Pulls a masked daemon's accumulated share state.
    pub fn pull_masked(&mut self) -> Result<MaskedPart, WireError> {
        match self.call(&Frame::MaskedPull)? {
            Frame::MaskedPart { part } => Ok(part),
            f => Err(Self::unexpected("masked-part", &f)),
        }
    }

    /// Liveness probe; returns the server's `(digest, groups, total
    /// reports ingested)`.
    pub fn status(&mut self) -> Result<(u64, usize, usize), WireError> {
        match self.call(&Frame::Status)? {
            Frame::StatusOk { digest, groups, ingested, .. } => Ok((digest, groups, ingested)),
            f => Err(Self::unexpected("status-ok", &f)),
        }
    }

    /// [`WireClient::status`] including the observability counters
    /// (`None` when probing a pre-counters daemon).
    pub fn status_counters(
        &mut self,
    ) -> Result<(u64, usize, usize, Option<StatusCounters>), WireError> {
        match self.call(&Frame::Status)? {
            Frame::StatusOk { digest, groups, ingested, counters } => {
                Ok((digest, groups, ingested, counters))
            }
            f => Err(Self::unexpected("status-ok", &f)),
        }
    }

    /// Pulls the server session's serialized state.
    pub fn pull_part(&mut self) -> Result<SessionPart, WireError> {
        match self.call(&Frame::Pull)? {
            Frame::Part { part } => Ok(part),
            f => Err(Self::unexpected("part", &f)),
        }
    }

    /// Pushes a serialized part into the server's session.
    pub fn merge_part(&mut self, part: &SessionPart) -> Result<(), WireError> {
        match self.call(&Frame::Merge { part: part.clone() })? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }

    /// Runs the collector pipeline server-side.
    pub fn finalize(&mut self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, WireError> {
        match self.call(&Frame::Finalize { schemes: schemes.to_vec() })? {
            Frame::Outputs { outputs } => Ok(outputs),
            f => Err(Self::unexpected("outputs", &f)),
        }
    }

    /// Runs one experiment shard on a bench daemon, returning its
    /// `dap-results/v1` JSON.
    pub fn run_shard(&mut self, request: &ShardRequest) -> Result<String, WireError> {
        match self.call(&Frame::RunShard { request: request.clone() })? {
            Frame::ShardResult { json } => Ok(json),
            f => Err(Self::unexpected("shard-result", &f)),
        }
    }

    /// Asks the server to stop (it replies `ok` first).
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.call(&Frame::Shutdown)? {
            Frame::Ok => Ok(()),
            f => Err(Self::unexpected("ok", &f)),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The session operations [`serve_session`] dispatches frames to.
///
/// Implemented by [`DapSession`] (a plain in-memory daemon) and by
/// [`crate::storage::DurableSession`] (a journaled one), so the same
/// accept loop serves both — durability is a deployment choice, not a
/// protocol change.
pub trait WireSession {
    /// The compatibility digest exchanged in the `hello` handshake.
    fn state_digest(&self) -> u64;
    /// Number of groups in the served plan.
    fn group_count(&self) -> usize;
    /// Handles an `ingest` frame.
    fn ingest(&mut self, group: usize, report: f64) -> Result<(), DapError>;
    /// Handles an `ingest-batch` frame.
    fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), DapError>;
    /// Handles a `seq-batch` frame (sequenced, replay-guarded ingestion).
    fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError>;
    /// The last acknowledged sequence on `channel` (the hello resume
    /// point); `None` when the channel never delivered a batch.
    fn last_seq(&self, channel: u64) -> Option<u64>;
    /// Total reports accepted across all groups (the `status` reply).
    fn ingested_total(&self) -> usize;
    /// Handles a `pull` frame.
    fn export_part(&self) -> SessionPart;
    /// Handles a `merge` frame.
    fn merge_part(&mut self, part: &SessionPart) -> Result<(), DapError>;
    /// Handles a `finalize` frame.
    fn finalize(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, DapError>;
    /// The share-group topology when the session is masked (`None` for a
    /// plaintext session) — advertised in `hello-ok`.
    fn secagg_role(&self) -> Option<SecaggRole>;
    /// Adopts the dealer's seed commitment from a masked `hello`.
    fn adopt_commitment(&mut self, commitment: u64) -> Result<(), DapError>;
    /// Handles a `share-batch` frame (sequenced, replay-guarded masked
    /// share ingestion).
    fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError>;
    /// Handles a `masked-pull` frame.
    fn export_masked_part(&self) -> Result<MaskedPart, DapError>;
    /// Observability counters for the `status` reply.
    fn status_counters(&self) -> StatusCounters;
    /// Enters group-commit mode: until [`WireSession::commit_acks`], the
    /// session may buffer durability work (journal flush/fsync) across
    /// ingest calls. The reactor brackets each coalesced batch with this
    /// pair so one fsync covers many connections' frames. No-op for
    /// sessions without a durability layer.
    fn defer_acks(&mut self) {}
    /// Leaves group-commit mode, forcing everything applied since
    /// [`WireSession::defer_acks`] durable. **No frame applied inside the
    /// bracket may be acknowledged before this returns `Ok`** — that is
    /// the write-ahead contract ("acked implies recoverable") stated in
    /// batch form.
    fn commit_acks(&mut self) -> Result<(), DapError> {
        Ok(())
    }
}

impl<M: NumericMechanism + Sync> WireSession for DapSession<M> {
    fn state_digest(&self) -> u64 {
        DapSession::state_digest(self)
    }

    fn group_count(&self) -> usize {
        DapSession::group_count(self)
    }

    fn ingest(&mut self, group: usize, report: f64) -> Result<(), DapError> {
        DapSession::ingest(self, group, report)
    }

    fn ingest_batch(&mut self, group: usize, reports: &[f64]) -> Result<(), DapError> {
        DapSession::ingest_batch(self, group, reports)
    }

    fn ingest_batch_seq(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        reports: &[f64],
    ) -> Result<(), DapError> {
        DapSession::ingest_batch_seq(self, channel, seq, group, reports)
    }

    fn last_seq(&self, channel: u64) -> Option<u64> {
        DapSession::last_seq(self, channel)
    }

    fn ingested_total(&self) -> usize {
        (0..DapSession::group_count(self)).map(|g| self.ingested(g)).sum()
    }

    fn export_part(&self) -> SessionPart {
        DapSession::export_part(self)
    }

    fn merge_part(&mut self, part: &SessionPart) -> Result<(), DapError> {
        DapSession::merge_part(self, part)
    }

    fn finalize(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, DapError> {
        DapSession::finalize(self, schemes)
    }

    fn secagg_role(&self) -> Option<SecaggRole> {
        DapSession::secagg_role(self)
    }

    fn adopt_commitment(&mut self, commitment: u64) -> Result<(), DapError> {
        DapSession::adopt_commitment(self, commitment)
    }

    fn ingest_shares(
        &mut self,
        channel: u64,
        seq: u64,
        group: usize,
        counts: &[u64],
    ) -> Result<(), DapError> {
        DapSession::ingest_shares(self, channel, seq, group, counts)
    }

    fn export_masked_part(&self) -> Result<MaskedPart, DapError> {
        DapSession::export_masked_part(self)
    }

    fn status_counters(&self) -> StatusCounters {
        StatusCounters {
            masked: DapSession::secagg_role(self).is_some(),
            channels: self.channel_count() as u64,
            shares: self.shares_applied(),
            journal_records: 0,
            checkpoints: 0,
            reactor: None,
        }
    }
}

struct ServerState<S> {
    session: Mutex<S>,
    digest: u64,
    groups: usize,
    /// Tokens accepted in a `hello` (empty: no authentication required).
    auth_tokens: Vec<u64>,
    stop: AtomicBool,
    addr: std::net::SocketAddr,
    /// Clones of every accepted connection, so a shutdown can unblock
    /// handler threads parked in `read_frame` on *other* clients (scoped
    /// threads are joined before `serve_session` returns — a lingering
    /// idle client must not wedge the daemon).
    conns: Mutex<Vec<TcpStream>>,
    /// The server's idle bound ([`ServeOptions::idle_timeout`]); under the
    /// reactor it also caps how long a handler stays parked waiting for a
    /// queued frame's ack, so a wedged apply queue cannot exempt its
    /// connections from reaping.
    idle_timeout: Option<Duration>,
    /// The ingestion reactor; `None` serves the legacy lock-per-frame
    /// path.
    reactor: Option<Reactor>,
}

/// One decoded mutation frame parked in the apply queue, with the byte
/// cost it holds against [`ReactorOptions::queue_bytes`] and the channel
/// its handler waits on for the ack.
struct QueuedOp {
    frame: Frame,
    cost: usize,
    reply: mpsc::Sender<Frame>,
}

#[derive(Default)]
struct QueueInner {
    ops: VecDeque<QueuedOp>,
    bytes: usize,
    stopped: bool,
}

/// Outcome of offering a frame to the bounded apply queue.
enum Push {
    Queued,
    Full,
    Stopped,
}

/// The ingestion reactor: a bounded MPSC apply queue fed by every
/// connection handler and drained in coalesced batches by a small worker
/// pool ([`worker_loop`]), plus the connection/backpressure counters the
/// `status` frame reports.
struct Reactor {
    opts: ReactorOptions,
    queue: Mutex<QueueInner>,
    ready: Condvar,
    active: AtomicU64,
    peak: AtomicU64,
    throttled: AtomicU64,
}

impl Reactor {
    fn new(opts: ReactorOptions) -> Reactor {
        Reactor {
            opts,
            queue: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            active: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    fn try_push(&self, op: QueuedOp) -> Push {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.stopped {
            return Push::Stopped;
        }
        // A frame larger than the whole byte budget is still admitted when
        // the queue is empty — otherwise it could never be served at all.
        let fits = q.ops.len() < self.opts.queue_ops.max(1)
            && (q.ops.is_empty() || q.bytes + op.cost <= self.opts.queue_bytes);
        if !fits {
            return Push::Full;
        }
        q.bytes += op.cost;
        q.ops.push_back(op);
        self.ready.notify_one();
        Push::Queued
    }

    /// Blocks until work is available, then drains up to
    /// [`ReactorOptions::coalesce`] frames. `None` means the reactor is
    /// stopped *and* drained — the worker should exit.
    fn pop_batch(&self) -> Option<Vec<QueuedOp>> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !q.ops.is_empty() {
                let take = q.ops.len().min(self.opts.coalesce.max(1));
                let batch: Vec<QueuedOp> = q.ops.drain(..take).collect();
                q.bytes -= batch.iter().map(|op| op.cost).sum::<usize>();
                return Some(batch);
            }
            if q.stopped {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the queue stopped and wakes every worker; queued frames are
    /// still drained (their handlers are waiting on acks) before workers
    /// exit.
    fn stop(&self) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).stopped = true;
        self.ready.notify_all();
    }

    fn counters(&self) -> ReactorCounters {
        let (queue_depth, queued_bytes) = {
            let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            (q.ops.len() as u64, q.bytes as u64)
        };
        ReactorCounters {
            queue_depth,
            queued_bytes,
            active_connections: self.active.load(Ordering::Relaxed),
            peak_connections: self.peak.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
        }
    }

    fn track_connection(&self) -> ConnGuard<'_> {
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        ConnGuard { reactor: self }
    }
}

/// Decrements the active-connection count however the handler exits.
struct ConnGuard<'a> {
    reactor: &'a Reactor,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.reactor.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether a frame is session-mutating ingest traffic the reactor queues;
/// everything else (handshakes, pulls, merges, finalize, shutdown) stays
/// on the direct dispatch path.
fn is_reactor_op(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Ingest { .. }
            | Frame::IngestBatch { .. }
            | Frame::IngestBatchSeq { .. }
            | Frame::ShareBatch { .. }
    )
}

/// Applies one mutation frame to the session, mapping the result to its
/// wire reply. Shared by the legacy dispatch path and the reactor's
/// workers so both apply identical semantics (validation, replay guard,
/// typed rejections).
fn apply_mutation<S: WireSession>(session: &mut S, frame: &Frame) -> Frame {
    let applied = match frame {
        Frame::Ingest { group, report } => session.ingest(*group, *report),
        Frame::IngestBatch { group, reports } => session.ingest_batch(*group, reports),
        Frame::IngestBatchSeq { channel, seq, group, reports } => {
            session.ingest_batch_seq(*channel, *seq, *group, reports)
        }
        Frame::ShareBatch { channel, seq, group, counts } => {
            session.ingest_shares(*channel, *seq, *group, counts)
        }
        other => {
            return Frame::Error(WireError::Unsupported { what: other.tag().to_string() })
        }
    };
    match applied {
        Ok(()) => Frame::Ok,
        Err(e) => Frame::Error(e.into()),
    }
}

/// One apply worker: drains coalesced batches off the reactor queue and
/// applies them under a *single* session-lock acquisition — and, for a
/// durable session, a single group commit ([`WireSession::defer_acks`] /
/// [`WireSession::commit_acks`]), so one journal fsync covers many
/// connections' frames. Acks are sent only after the commit succeeds,
/// preserving "acked implies recoverable" batch-wide; per-channel frame
/// order is preserved because the protocol allows one outstanding frame
/// per connection and the queue is FIFO.
fn worker_loop<S: WireSession>(state: &ServerState<S>) {
    let reactor = state.reactor.as_ref().expect("worker requires a reactor");
    while let Some(batch) = reactor.pop_batch() {
        if let Some(stall) = reactor.opts.apply_stall {
            std::thread::sleep(stall);
        }
        let mut replies = Vec::with_capacity(batch.len());
        {
            let mut session = state.lock();
            session.defer_acks();
            for op in &batch {
                replies.push(apply_mutation(&mut *session, &op.frame));
            }
            if let Err(e) = session.commit_acks() {
                // The group commit failed: nothing in this batch is known
                // durable, so no frame in it may be acknowledged as
                // applied.
                for reply in &mut replies {
                    if matches!(reply, Frame::Ok) {
                        *reply = Frame::Error(WireError::Rejected(e.clone()));
                    }
                }
            }
        }
        for (op, reply) in batch.into_iter().zip(replies) {
            // A handler that gave up (idle deadline hit, socket died) has
            // dropped its receiver; the frame is applied either way and a
            // retry on a fresh connection dedups via the replay guard.
            let _ = op.reply.send(reply);
        }
    }
}

/// Waits for a queued frame's ack, bounded by the server's idle timeout
/// (`None` waits indefinitely). `None` result: the bound expired.
fn wait_ack(rx: &mpsc::Receiver<Frame>, idle: Option<Duration>) -> Option<Frame> {
    let workers_gone =
        || Frame::Error(WireError::Failed { message: "apply workers exited".into() });
    match idle {
        None => Some(rx.recv().unwrap_or_else(|_| workers_gone())),
        Some(bound) => match rx.recv_timeout(bound) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(workers_gone()),
        },
    }
}

impl<S: WireSession> ServerState<S> {
    fn lock(&self) -> std::sync::MutexGuard<'_, S> {
        // A poisoned lock means a handler panicked mid-operation; the
        // session state is still a valid (if partial) accumulation.
        self.session.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn dispatch<X>(&self, frame: Frame, extra: &X) -> Frame
    where
        X: Fn(&Frame) -> Option<Frame> + Sync,
    {
        match frame {
            Frame::Hello { version, digest, channel, auth: _, commit } => {
                if version != WIRE_VERSION {
                    Frame::Error(WireError::VersionMismatch {
                        client: version,
                        server: WIRE_VERSION.to_string(),
                    })
                } else if digest != self.digest {
                    Frame::Error(WireError::DigestMismatch {
                        client: digest,
                        server: self.digest,
                    })
                } else {
                    let mut session = self.lock();
                    // A dealer's seed commitment binds this daemon's run
                    // to one mask seed (idempotent; a conflicting dealer
                    // is rejected typed).
                    if let Some(commit) = commit {
                        if let Err(e) = session.adopt_commitment(commit) {
                            return Frame::Error(e.into());
                        }
                    }
                    // An announced channel gets its resume point back: the
                    // last sequence this session applied for it (0 if new).
                    let last_seq = channel.map(|c| session.last_seq(c).unwrap_or(0));
                    let secagg = session.secagg_role().map(|r| (r.k, r.index));
                    Frame::HelloOk {
                        digest: self.digest,
                        groups: self.groups,
                        last_seq,
                        secagg,
                    }
                }
            }
            // The legacy (reactor-less) path applies mutations inline,
            // one lock acquisition per frame — the same `apply_mutation`
            // the reactor's workers run, so both paths reject and ack
            // identically.
            frame @ (Frame::Ingest { .. }
            | Frame::IngestBatch { .. }
            | Frame::IngestBatchSeq { .. }
            | Frame::ShareBatch { .. }) => apply_mutation(&mut *self.lock(), &frame),
            Frame::MaskedPull => match self.lock().export_masked_part() {
                Ok(part) => Frame::MaskedPart { part },
                Err(e) => Frame::Error(e.into()),
            },
            Frame::Status => {
                let (ingested, mut counters) = {
                    let session = self.lock();
                    (session.ingested_total(), session.status_counters())
                };
                if let Some(reactor) = &self.reactor {
                    counters.reactor = Some(reactor.counters());
                }
                Frame::StatusOk {
                    digest: self.digest,
                    groups: self.groups,
                    ingested,
                    counters: Some(counters),
                }
            }
            Frame::Pull => {
                let session = self.lock();
                // A masked session has no plaintext part; answering `pull`
                // with zeros would silently corrupt a plain coordinator's
                // merge, so the mode mismatch is surfaced typed instead.
                if session.secagg_role().is_some() {
                    Frame::Error(DapError::ModeMismatch { masked: true }.into())
                } else {
                    Frame::Part { part: session.export_part() }
                }
            }
            Frame::Merge { part } => match self.lock().merge_part(&part) {
                Ok(()) => Frame::Ok,
                Err(e) => Frame::Error(e.into()),
            },
            Frame::Finalize { schemes } => match self.lock().finalize(&schemes) {
                Ok(outputs) => Frame::Outputs { outputs },
                Err(e) => Frame::Error(e.into()),
            },
            Frame::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                Frame::Ok
            }
            other => extra(&other).unwrap_or_else(|| {
                Frame::Error(WireError::Unsupported { what: other.tag().to_string() })
            }),
        }
    }
}

fn handle_connection<S, X>(mut stream: TcpStream, state: &ServerState<S>, extra: &X)
where
    S: WireSession,
    X: Fn(&Frame) -> Option<Frame> + Sync,
{
    stream.set_nodelay(true).ok();
    let _conn = state.reactor.as_ref().map(|r| r.track_connection());
    // Buffered read half (the write half stays on the raw stream): frame
    // decode otherwise costs two read syscalls per frame (length prefix,
    // body). The clone shares the socket, so the idle read timeout and a
    // shutdown's half-close still apply.
    let mut reader = match stream.try_clone() {
        Ok(clone) => std::io::BufReader::with_capacity(32 * 1024, clone),
        Err(_) => return,
    };
    // One ack channel per connection, reused across frames: the protocol
    // is request/reply, so at most one frame from this connection is ever
    // parked in the apply queue.
    let (ack_tx, ack_rx) = mpsc::channel();
    // Authentication is connection-scoped: with tokens configured, nothing
    // reaches the session until a hello carrying a recognized token
    // succeeds on *this* connection.
    let mut authed = state.auth_tokens.is_empty();
    loop {
        let (frame, cost) = match read_frame_sized(&mut reader) {
            Ok(pair) => pair,
            // EOF / disconnect: the client is done with this connection.
            Err(WireError::Io { .. }) => return,
            // Idle past the server's deadline: close with a typed error so
            // a live-but-slow client learns why, instead of pinning a
            // handler thread forever.
            Err(WireError::Timeout { .. }) => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error(WireError::Timeout {
                        what: "idle connection closed by server".into(),
                    }),
                );
                return;
            }
            Err(e) => {
                let _ = write_frame(&mut stream, &Frame::Error(e));
                return;
            }
        };
        if !authed {
            let refusal = match &frame {
                Frame::Hello { auth: Some(token), .. }
                    if state.auth_tokens.contains(token) =>
                {
                    authed = true;
                    None
                }
                Frame::Hello { auth: Some(_), .. } => Some("unrecognized auth token".into()),
                Frame::Hello { auth: None, .. } => Some("auth token required".into()),
                other => {
                    Some(format!("frame '{}' before authenticated hello", other.tag()))
                }
            };
            if let Some(what) = refusal {
                // The connection stays open — the client may retry its
                // hello — but the frame never reaches the session.
                if write_frame(&mut stream, &Frame::Error(WireError::Unauthorized { what }))
                    .is_err()
                {
                    return;
                }
                continue;
            }
        }
        let reply = match &state.reactor {
            Some(reactor) if is_reactor_op(&frame) => {
                match reactor.try_push(QueuedOp { frame, cost, reply: ack_tx.clone() }) {
                    Push::Queued => match wait_ack(&ack_rx, state.idle_timeout) {
                        Some(reply) => reply,
                        None => {
                            // Parked past the idle bound behind a wedged
                            // apply queue: reap with the same typed
                            // farewell a silent client gets. The frame may
                            // still apply later; a retry on a fresh
                            // connection dedups via the replay guard.
                            let _ = write_frame(
                                &mut stream,
                                &Frame::Error(WireError::Timeout {
                                    what: "apply queue stalled past idle deadline; \
                                           connection closed by server"
                                        .into(),
                                }),
                            );
                            return;
                        }
                    },
                    Push::Full => {
                        reactor.throttled.fetch_add(1, Ordering::Relaxed);
                        Frame::Error(WireError::Throttled {
                            retry_after_ms: reactor.opts.retry_after_ms,
                        })
                    }
                    Push::Stopped => Frame::Error(WireError::Failed {
                        message: "server is shutting down".into(),
                    }),
                }
            }
            _ => state.dispatch(frame, extra),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
        if state.stop.load(Ordering::SeqCst) {
            state.release();
            return;
        }
    }
}

impl<S> ServerState<S> {
    /// Unblocks everything a shutdown must not wait on: half-closes every
    /// accepted connection (handler threads parked in `read_frame` see
    /// EOF and exit) and pokes the accept loop with a loopback connect.
    fn release(&self) {
        for conn in self.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // The bind address may be a wildcard (0.0.0.0 / ::), which some
        // platforms refuse to connect to — wake via loopback on the same
        // port instead. If even that fails there is nothing better to do
        // (the listener stays parked until its next connection).
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }
}

/// Serves one [`WireSession`] on `listener` until a client sends
/// `shutdown`, then returns the session (with everything it ingested).
/// Serve a [`DapSession`] for a plain in-memory daemon, or a
/// [`crate::storage::DurableSession`] for one whose acknowledged ingests
/// survive a kill (`experiments serve --journal`).
///
/// Connections are handled on their own scoped threads; under the
/// default reactor their mutation frames funnel through a bounded apply
/// queue to a worker pool (see [`ServeOptions::reactor`]), so many report
/// sources stream concurrently while the session lock is taken once per
/// coalesced batch instead of once per frame. Definition 2 is enforced at
/// the door by the session's own typed rejections, which travel back as
/// [`WireError::Rejected`].
///
/// `extra` handles frames the session layer does not (the bench daemon
/// plugs experiment-shard execution in here); return `None` to let the
/// server answer `error unsupported`. Pass `|_| None` for a plain
/// aggregation daemon.
pub fn serve_session<S, X>(listener: TcpListener, session: S, extra: X) -> std::io::Result<S>
where
    S: WireSession + Send,
    X: Fn(&Frame) -> Option<Frame> + Sync,
{
    serve_session_with(listener, session, extra, ServeOptions::default())
}

/// Server-side knobs for [`serve_session_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Close a connection whose next frame does not arrive within this
    /// bound, with a typed [`WireError::Timeout`] farewell — leaked client
    /// sockets can no longer pin handler threads forever. Under the
    /// reactor the same bound also reaps connections parked in the apply
    /// queue. `None` (the default) waits indefinitely, the pre-hardening
    /// behavior.
    pub idle_timeout: Option<Duration>,
    /// Allowlist of auth tokens a `hello` may present. Empty (the
    /// default): no authentication, the pre-auth behavior. Non-empty:
    /// every frame on a connection is answered
    /// [`WireError::Unauthorized`] until a hello carrying one of these
    /// tokens succeeds.
    pub auth_tokens: Vec<u64>,
    /// Ingestion-reactor configuration. `Some` (the default) serves the
    /// bounded-worker reactor: mutation frames cross a bounded apply
    /// queue to a worker pool that applies coalesced batches under one
    /// lock acquisition (one group commit for a durable session), with
    /// [`WireError::Throttled`] backpressure when the queue or connection
    /// table is full. `None` restores the thread-per-connection
    /// lock-per-frame path (`experiments serve --legacy`), kept
    /// selectable as the storm harness's baseline.
    pub reactor: Option<ReactorOptions>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            idle_timeout: None,
            auth_tokens: Vec::new(),
            reactor: Some(ReactorOptions::default()),
        }
    }
}

/// Tuning for the ingestion reactor ([`ServeOptions::reactor`]). The
/// defaults are sized for a small daemon fleet on one host; the storm
/// harness (`experiments storm`) deliberately shrinks the bounds to force
/// throttling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorOptions {
    /// Apply workers draining the queue. The session lock still
    /// serializes application, so per-channel ingest order (and
    /// therefore recovery and finalize) is identical for any worker
    /// count.
    pub workers: usize,
    /// Frame-count bound on the apply queue; a frame arriving at a full
    /// queue is shed with [`WireError::Throttled`].
    pub queue_ops: usize,
    /// Byte bound on queued frame payloads (body bytes as read off the
    /// wire), so memory held by parked frames stays bounded regardless of
    /// frame size. A frame larger than the whole budget is still admitted
    /// when the queue is empty.
    pub queue_bytes: usize,
    /// Open-connection cap; connections accepted beyond it are told
    /// [`WireError::Throttled`] and closed without reading a frame.
    pub max_connections: usize,
    /// The backoff hint carried in every throttle reply.
    pub retry_after_ms: u64,
    /// Most frames one worker applies per session-lock acquisition (and,
    /// for a durable session, per group commit / journal fsync).
    pub coalesce: usize,
    /// Fault injection for tests: sleep this long before applying each
    /// batch, simulating a wedged durability layer under the queue.
    pub apply_stall: Option<Duration>,
}

impl Default for ReactorOptions {
    fn default() -> ReactorOptions {
        ReactorOptions {
            workers: 2,
            queue_ops: 256,
            queue_bytes: 8 << 20,
            max_connections: 1024,
            retry_after_ms: 20,
            coalesce: 64,
            apply_stall: None,
        }
    }
}

/// [`serve_session`] with [`ServeOptions`] (idle-connection timeouts).
pub fn serve_session_with<S, X>(
    listener: TcpListener,
    session: S,
    extra: X,
    options: ServeOptions,
) -> std::io::Result<S>
where
    S: WireSession + Send,
    X: Fn(&Frame) -> Option<Frame> + Sync,
{
    let state = ServerState {
        digest: session.state_digest(),
        groups: session.group_count(),
        auth_tokens: options.auth_tokens.clone(),
        session: Mutex::new(session),
        stop: AtomicBool::new(false),
        addr: listener.local_addr()?,
        conns: Mutex::new(Vec::new()),
        idle_timeout: options.idle_timeout,
        reactor: options.reactor.clone().map(Reactor::new),
    };
    std::thread::scope(|scope| {
        if let Some(reactor) = &state.reactor {
            for _ in 0..reactor.opts.workers.max(1) {
                let state = &state;
                scope.spawn(move || worker_loop(state));
            }
        }
        for conn in listener.incoming() {
            if state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if let Some(reactor) = &state.reactor {
                if reactor.active.load(Ordering::Relaxed)
                    >= reactor.opts.max_connections.max(1) as u64
                {
                    // Over the connection cap: shed at the door with the
                    // same retryable throttle a full queue answers, so the
                    // client backs off and reconnects instead of failing.
                    reactor.throttled.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error(WireError::Throttled {
                            retry_after_ms: reactor.opts.retry_after_ms,
                        }),
                    );
                    continue;
                }
            }
            stream.set_read_timeout(options.idle_timeout).ok();
            if let Ok(clone) = stream.try_clone() {
                state.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let state = &state;
            let extra = &extra;
            scope.spawn(move || handle_connection(stream, state, extra));
        }
        // The accept loop is done (shutdown): wake the workers so they
        // drain the queue — every parked handler still gets its ack — and
        // exit, letting the scope join.
        if let Some(reactor) = &state.reactor {
            reactor.stop();
        }
    });
    Ok(state.session.into_inner().unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("encodes");
        let back = read_frame(&mut &buf[..]).expect("decodes");
        assert_eq!(back, frame);
        back
    }

    #[test]
    fn every_frame_round_trips() {
        let part = SessionPart {
            digest: 0xdead_beef_1234_5678,
            groups: vec![
                PartGroup { counts: vec![0.0, 2.0, 1.0], sum_reports: -1.25, n_reports: 3 },
                PartGroup { counts: vec![], sum_reports: 0.0, n_reports: 0 },
            ],
            channels: vec![],
        };
        let seq_part = SessionPart {
            channels: vec![(0xc0ffee, 12), (u64::MAX, 1)],
            ..part.clone()
        };
        let output = DapOutput {
            mean: (0.1f64 + 0.2).powi(3),
            side: Side::Left,
            gamma: 0.25,
            min_variance: 1e-9,
            groups: vec![GroupReport {
                eps_t: 0.125,
                n_reports: 640,
                mean_t: -0.5,
                m_hat: 12.5,
                n_hat: 313.7,
                weight: 0.25,
            }],
        };
        let masked_part = MaskedPart {
            digest: 0xdead_beef_1234_5678,
            k: 3,
            index: 1,
            commitment: 0xc0ffee,
            groups: vec![
                MaskedGroup { counts: vec![0, u64::MAX, 0x1234_5678_9abc_def0] },
                MaskedGroup { counts: vec![] },
            ],
            channels: vec![(0xfeed, 3)],
        };
        for frame in [
            Frame::Hello {
                version: WIRE_VERSION.to_string(),
                digest: 7,
                channel: None,
                auth: None,
                commit: None,
            },
            Frame::Hello {
                version: WIRE_VERSION.to_string(),
                digest: 7,
                channel: Some(0xfeed_beef),
                auth: None,
                commit: None,
            },
            Frame::Hello {
                version: WIRE_VERSION.to_string(),
                digest: 7,
                channel: Some(0xfeed_beef),
                auth: Some(0x5ec2e7),
                commit: Some(0xabcd_ef01_2345_6789),
            },
            Frame::Hello {
                version: WIRE_VERSION.to_string(),
                digest: 7,
                channel: None,
                auth: Some(u64::MAX),
                commit: None,
            },
            Frame::HelloOk { digest: 7, groups: 4, last_seq: None, secagg: None },
            Frame::HelloOk { digest: 7, groups: 4, last_seq: Some(0), secagg: None },
            Frame::HelloOk { digest: 7, groups: 4, last_seq: Some(917), secagg: Some((3, 2)) },
            Frame::HelloOk { digest: 7, groups: 4, last_seq: None, secagg: Some((2, 0)) },
            Frame::Ingest { group: 2, report: f64::NAN },
            Frame::IngestBatch { group: 0, reports: vec![1.0, -0.0, 0.5] },
            Frame::IngestBatch { group: 1, reports: vec![] },
            Frame::IngestBatchSeq {
                channel: 0xfeed_beef,
                seq: 3,
                group: 1,
                reports: vec![0.5, -0.25],
            },
            Frame::ShareBatch {
                channel: 0xfeed_beef,
                seq: 7,
                group: 2,
                counts: vec![0, 1, u64::MAX],
            },
            Frame::ShareBatch { channel: 1, seq: 1, group: 0, counts: vec![] },
            Frame::MaskedPull,
            Frame::MaskedPart { part: masked_part },
            Frame::Status,
            Frame::StatusOk { digest: 7, groups: 4, ingested: 123_456, counters: None },
            Frame::StatusOk {
                digest: 7,
                groups: 4,
                ingested: 123_456,
                counters: Some(StatusCounters {
                    masked: true,
                    channels: 3,
                    shares: 99,
                    journal_records: 1024,
                    checkpoints: 2,
                    reactor: None,
                }),
            },
            Frame::StatusOk {
                digest: 7,
                groups: 4,
                ingested: 123_456,
                counters: Some(StatusCounters {
                    masked: false,
                    channels: 12,
                    shares: 0,
                    journal_records: 64,
                    checkpoints: 1,
                    reactor: Some(ReactorCounters {
                        queue_depth: 17,
                        queued_bytes: 9000,
                        active_connections: 31,
                        peak_connections: 64,
                        throttled: 1234,
                    }),
                }),
            },
            Frame::Ok,
            Frame::Pull,
            Frame::Part { part: part.clone() },
            Frame::Part { part: seq_part.clone() },
            Frame::Merge { part },
            Frame::Merge { part: seq_part },
            Frame::Finalize { schemes: Scheme::ALL.to_vec() },
            Frame::Outputs { outputs: vec![output] },
            Frame::RunShard {
                request: ShardRequest {
                    experiment: "fig7".into(),
                    n: 2000,
                    trials: 3,
                    seed: 42,
                    max_d_out: 128,
                    index: 1,
                    count: 3,
                },
            },
            Frame::ShardResult { json: "{\n  \"schema\": \"dap-results/v1\"\n}\n".into() },
            Frame::Shutdown,
        ] {
            // NaN reports break PartialEq; compare those by encoding.
            if matches!(&frame, Frame::Ingest { report, .. } if report.is_nan()) {
                let mut buf = Vec::new();
                write_frame(&mut buf, &frame).expect("encodes");
                let back = read_frame(&mut &buf[..]).expect("decodes");
                match back {
                    Frame::Ingest { group, report } => {
                        assert_eq!(group, 2);
                        assert_eq!(report.to_bits(), f64::NAN.to_bits());
                    }
                    other => panic!("wrong frame {other:?}"),
                }
            } else {
                round_trip(frame);
            }
        }
    }

    #[test]
    fn every_wire_error_round_trips_typed() {
        for err in [
            WireError::Rejected(DapError::ReportOutOfRange {
                group: 3,
                report: 9.75,
                lo: -3.0,
                hi: 3.0,
            }),
            WireError::Rejected(DapError::QuotaExceeded {
                group: 1,
                quota: 640,
                ingested: 640,
                attempted: 2,
            }),
            WireError::Rejected(DapError::UnknownGroup { group: 9, groups: 4 }),
            WireError::Rejected(DapError::DuplicateSequence {
                channel: 0xfeed_beef,
                seq: 4,
                last: 7,
            }),
            WireError::Rejected(DapError::SequenceGap {
                channel: 0xfeed_beef,
                seq: 9,
                expected: 5,
            }),
            WireError::Rejected(DapError::SessionMismatch { what: "state digest" }),
            WireError::Rejected(DapError::SessionMismatch { what: "config eps" }),
            WireError::Rejected(DapError::ModeMismatch { masked: true }),
            WireError::Rejected(DapError::ModeMismatch { masked: false }),
            WireError::Unauthorized { what: "auth token required".into() },
            WireError::VersionMismatch { client: "dap-wire/v0".into(), server: WIRE_VERSION.into() },
            WireError::DigestMismatch { client: 1, server: 2 },
            WireError::Unsupported { what: "run-shard".into() },
            WireError::BadFrame { reason: "trailing token 'x'".into() },
            WireError::Failed { message: "multi\nline message".into() },
            WireError::Timeout { what: "read deadline of 250ms expired".into() },
            WireError::Throttled { retry_after_ms: 0 },
            WireError::Throttled { retry_after_ms: 20 },
            WireError::Throttled { retry_after_ms: u64::MAX },
            WireError::Io { message: "connection reset".into() },
        ] {
            round_trip(Frame::Error(err));
        }
    }

    #[test]
    fn pre_sequencing_encodings_still_parse() {
        // A hello / hello-ok / part without the new optional sections must
        // decode exactly as before — old journals and old peers depend on
        // it (PR 6 journal payloads are frame texts).
        assert_eq!(
            decode_frame("hello dap-wire/v1 0x0000000000000007").unwrap(),
            Frame::Hello {
                version: WIRE_VERSION.into(),
                digest: 7,
                channel: None,
                auth: None,
                commit: None,
            }
        );
        assert_eq!(
            decode_frame("hello-ok 0x0000000000000007 4").unwrap(),
            Frame::HelloOk { digest: 7, groups: 4, last_seq: None, secagg: None }
        );
        assert_eq!(
            decode_frame("status-ok 0x0000000000000007 4 99").unwrap(),
            Frame::StatusOk { digest: 7, groups: 4, ingested: 99, counters: None }
        );
        // A PR 8 (pre-reactor) counters section still parses, and a
        // reactor-less daemon still emits it byte-identically.
        let pr8_counters = StatusCounters {
            masked: true,
            channels: 3,
            shares: 99,
            journal_records: 1024,
            checkpoints: 2,
            reactor: None,
        };
        let pr8_status = Frame::StatusOk {
            digest: 7,
            groups: 4,
            ingested: 99,
            counters: Some(pr8_counters),
        };
        assert_eq!(
            encode_frame(&pr8_status),
            "status-ok 0x0000000000000007 4 99 counters 1 3 99 1024 2"
        );
        assert_eq!(
            decode_frame("status-ok 0x0000000000000007 4 99 counters 1 3 99 1024 2").unwrap(),
            pr8_status
        );
        // A channel-only hello (the PR 7 encoding) still parses, and the
        // new optional sections never appear unless set.
        assert_eq!(
            decode_frame("hello dap-wire/v1 0x0000000000000007 channel 0x00000000000000aa")
                .unwrap(),
            Frame::Hello {
                version: WIRE_VERSION.into(),
                digest: 7,
                channel: Some(0xaa),
                auth: None,
                commit: None,
            }
        );
        let plain_hello = Frame::Hello {
            version: WIRE_VERSION.into(),
            digest: 7,
            channel: None,
            auth: None,
            commit: None,
        };
        assert_eq!(encode_frame(&plain_hello), "hello dap-wire/v1 0x0000000000000007");
        let old_part = "part 0x0000000000000001 1\n\
                        group 1 0x3fe0000000000000 2 0x3ff0000000000000 0x0000000000000000";
        match decode_frame(old_part).unwrap() {
            Frame::Part { part } => {
                assert!(part.channels.is_empty());
                assert_eq!(part.groups.len(), 1);
            }
            other => panic!("wrong frame {other:?}"),
        }
        // And a channel-free part encodes without a seqs section.
        let part = SessionPart { digest: 1, groups: vec![], channels: vec![] };
        assert!(!encode_frame(&Frame::Part { part }).contains("seqs"));
    }

    #[test]
    fn timeouts_are_typed_not_io() {
        use std::io::{Error, ErrorKind};
        let e: WireError = Error::new(ErrorKind::TimedOut, "read timed out").into();
        assert!(matches!(e, WireError::Timeout { .. }), "{e:?}");
        let e: WireError = Error::new(ErrorKind::WouldBlock, "would block").into();
        assert!(matches!(e, WireError::Timeout { .. }), "{e:?}");
        let e: WireError = Error::new(ErrorKind::ConnectionRefused, "refused").into();
        assert!(matches!(e, WireError::Io { .. }), "{e:?}");
        assert!(RetryPolicy::retryable(&WireError::Timeout { what: "t".into() }));
        assert!(RetryPolicy::retryable(&WireError::Io { message: "m".into() }));
        // Backpressure sheds are safe to resend by construction (the frame
        // never touched the session), so they must be in the retryable set
        // — a coordinator that aborted on throttle would lose the batch.
        assert!(RetryPolicy::retryable(&WireError::Throttled { retry_after_ms: 20 }));
        assert!(!RetryPolicy::retryable(&WireError::Rejected(
            DapError::DuplicateSequence { channel: 1, seq: 1, last: 1 }
        )));
        assert!(!RetryPolicy::retryable(&WireError::DigestMismatch { client: 1, server: 2 }));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        for attempt in 1..=40 {
            for salt in [0u64, 7, u64::MAX] {
                let d = policy.backoff(attempt, salt);
                assert_eq!(d, policy.backoff(attempt, salt), "deterministic");
                assert!(d <= policy.cap, "attempt {attempt}: {d:?} above cap");
                // Jitter keeps at least half the nominal (capped) backoff.
                let nominal = policy
                    .base
                    .checked_mul(1u32 << (attempt - 1).min(16))
                    .unwrap_or(policy.cap)
                    .min(policy.cap);
                assert!(d >= nominal / 2, "attempt {attempt}: {d:?} under half backoff");
            }
        }
        // Different salts (operations) de-synchronize their schedules.
        assert_ne!(policy.backoff(3, 1), policy.backoff(3, 2));
        // The exponent climbs before the cap bites.
        assert!(policy.backoff(4, 9) > policy.backoff(1, 9));
    }

    #[test]
    fn every_mismatch_field_round_trips_typed() {
        // The whole table, not a sample: a `what` that fails to round-trip
        // would silently downgrade the typed rejection to `Failed`.
        for what in DapError::MISMATCH_FIELDS {
            round_trip(Frame::Error(WireError::Rejected(DapError::SessionMismatch { what })));
        }
    }

    #[test]
    fn non_wire_dap_errors_degrade_to_failed() {
        let mut buf = Vec::new();
        let err = WireError::Rejected(DapError::EmptyPopulation);
        write_frame(&mut buf, &Frame::Error(err)).expect("encodes");
        match read_frame(&mut &buf[..]).expect("decodes") {
            Frame::Error(WireError::Failed { message }) => {
                assert!(message.contains("empty population"), "{message}");
            }
            other => panic!("expected failed, got {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(matches!(
            decode_frame("ingest 0"),
            Err(WireError::BadFrame { .. })
        ));
        assert!(matches!(
            decode_frame("ingest 0 0x3ff0000000000000 extra"),
            Err(WireError::BadFrame { .. })
        ));
        assert!(matches!(
            decode_frame("warp-core-breach"),
            Err(WireError::BadFrame { .. })
        ));
        assert!(matches!(
            decode_frame("finalize 1 DAP_WAT"),
            Err(WireError::BadFrame { .. })
        ));
        // A truncated stream is an I/O error, not a parse error.
        let bytes = 12u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Io { .. })
        ));
    }
}
