//! Deterministic fault injection for the `dap-wire/v1` serving stack.
//!
//! [`ChaosProxy`] is an in-process TCP proxy that forwards client bytes to
//! an upstream daemon while injecting one [`Fault`] per connection,
//! chosen by a seeded [`ChaosSchedule`]. The schedule is a *finite* fault
//! list indexed by connection order: connection `k` suffers `faults[k]`,
//! and every connection past the end of the list is clean — so a
//! coordinator with enough retry budget always converges, and the same
//! seed replays the same failure story byte for byte.
//!
//! The proxy's upstream is swappable at runtime
//! ([`ChaosProxy::set_upstream`]): a chaos driver kills a journaled
//! daemon, restarts it on a fresh port, re-points the proxy, and the
//! coordinator's reconnect logic never learns the address changed — the
//! same topology as a load balancer in front of a respawning pod.
//!
//! This lives in `dap_core` (not the bench crate) because the faults it
//! models are properties of the *protocol*: the chaos suites assert that
//! any schedule either finalizes bit-identically to a clean run or fails
//! with a typed, named error — never silent divergence.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long relay loops block before re-checking the stop flag — bounds
/// both shutdown latency and the granularity of [`Fault::DelayMs`].
const POLL: Duration = Duration::from_millis(20);

/// One connection's worth of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything faithfully.
    None,
    /// Close the client connection immediately, before any byte flows —
    /// the client sees a reset/EOF on its first read (and a coordinator's
    /// `hello` fails).
    DropAtConnect,
    /// Hold the connection for this many milliseconds before relaying —
    /// models a congested hop; the client's connect succeeds but its first
    /// reply is late (tripping tight read deadlines).
    DelayMs(u64),
    /// Forward this many client bytes upstream, then silently blackhole
    /// the rest while keeping the connection open — the classic
    /// mid-stream stall. Only a read deadline gets the client out.
    StallAfter(usize),
    /// Forward this many client bytes upstream, then hard-close both
    /// sides — the client's pending read fails with an I/O error.
    ResetAfter(usize),
}

/// A deterministic, seeded fault schedule: `faults[k]` applies to the
/// `k`-th accepted connection, connections past the end are clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Faults by connection index.
    pub faults: Vec<Fault>,
}

impl ChaosSchedule {
    /// No faults at all (a transparent proxy).
    pub fn clean() -> ChaosSchedule {
        ChaosSchedule { faults: Vec::new() }
    }

    /// The given faults, then clean forever.
    pub fn of(faults: impl Into<Vec<Fault>>) -> ChaosSchedule {
        ChaosSchedule { faults: faults.into() }
    }

    /// A pseudo-random schedule of `len` faults derived from `seed` —
    /// roughly half the connections are clean, the rest draw uniformly
    /// from the four fault kinds with moderate parameters. Same seed,
    /// same schedule, on every platform.
    pub fn seeded(seed: u64, len: usize) -> ChaosSchedule {
        let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64*: deterministic, allocation-free, good enough to
            // scatter fault kinds (this is a schedule, not statistics).
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let faults = (0..len)
            .map(|_| {
                let r = next();
                match r % 8 {
                    0 => Fault::DropAtConnect,
                    1 => Fault::DelayMs(10 + (r >> 8) % 90),
                    2 => Fault::StallAfter(((r >> 8) % 4096) as usize),
                    3 => Fault::ResetAfter(((r >> 8) % 4096) as usize),
                    _ => Fault::None,
                }
            })
            .collect();
        ChaosSchedule { faults }
    }

    /// The fault for connection `index`.
    pub fn fault_for(&self, index: usize) -> Fault {
        self.faults.get(index).copied().unwrap_or(Fault::None)
    }
}

struct Inner {
    upstream: Mutex<String>,
    schedule: ChaosSchedule,
    stop: AtomicBool,
    connections: AtomicUsize,
    faults_injected: AtomicUsize,
}

/// A seeded fault-injecting TCP proxy (see the module docs).
pub struct ChaosProxy {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a proxy on an OS-assigned loopback port, forwarding to
    /// `upstream` under `schedule`.
    pub fn start(upstream: impl Into<String>, schedule: ChaosSchedule) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            upstream: Mutex::new(upstream.into()),
            schedule,
            stop: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            faults_injected: AtomicUsize::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let index = accept_inner.connections.fetch_add(1, Ordering::SeqCst);
                let fault = accept_inner.schedule.fault_for(index);
                let inner = Arc::clone(&accept_inner);
                // Detached on purpose: relay threads poll the stop flag
                // every POLL and exit on their own; joining them here
                // would serialize shutdown behind the slowest stall.
                std::thread::spawn(move || relay(client, fault, inner));
            }
        });
        Ok(ChaosProxy { addr, inner, accept: Some(accept) })
    }

    /// The proxy's listen address — what the coordinator dials.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Re-points the proxy at a new upstream (a restarted daemon's fresh
    /// port). Only connections accepted after the call use it.
    pub fn set_upstream(&self, upstream: impl Into<String>) {
        *self.inner.upstream.lock().unwrap_or_else(|e| e.into_inner()) = upstream.into();
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> usize {
        self.inner.connections.load(Ordering::SeqCst)
    }

    /// Connections that had a non-[`Fault::None`] fault injected.
    pub fn faults_injected(&self) -> usize {
        self.inner.faults_injected.load(Ordering::SeqCst)
    }

    /// Stops accepting and tears down the relay threads (they notice the
    /// flag within one poll interval).
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Copies `from` into `to` until EOF, error or the stop flag. With a
/// `limit`, at most that many bytes are forwarded; at the boundary the
/// connection either stalls (further bytes silently discarded, sockets
/// left open) or resets (both sockets hard-closed), per `stall_at_limit`.
/// Short read timeouts keep the loop responsive to `stop`.
fn pump(
    from: &mut TcpStream,
    to: &mut TcpStream,
    mut limit: Option<usize>,
    stall_at_limit: bool,
    inner: &Inner,
) {
    from.set_read_timeout(Some(POLL)).ok();
    let mut buf = [0u8; 8192];
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        };
        match limit {
            // Stalled: keep draining and discarding so the peer never
            // blocks on a full send buffer — the silence is the fault.
            Some(0) if stall_at_limit => continue,
            Some(remaining) if n >= remaining => {
                // The fault boundary falls inside this read.
                if to.write_all(&buf[..remaining]).is_err() {
                    return;
                }
                if stall_at_limit {
                    limit = Some(0);
                    continue;
                }
                // Reset: hard-close both directions mid-stream.
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Some(remaining) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
                limit = Some(remaining - n);
            }
            None => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
        }
    }
}

fn relay(client: TcpStream, fault: Fault, inner: Arc<Inner>) {
    if fault != Fault::None {
        inner.faults_injected.fetch_add(1, Ordering::SeqCst);
    }
    match fault {
        Fault::DropAtConnect => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        Fault::DelayMs(ms) => {
            let deadline = Duration::from_millis(ms);
            let mut waited = Duration::ZERO;
            while waited < deadline && !inner.stop.load(Ordering::SeqCst) {
                let step = POLL.min(deadline - waited);
                std::thread::sleep(step);
                waited += step;
            }
        }
        _ => {}
    }
    let upstream_addr =
        inner.upstream.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Ok(upstream) = TcpStream::connect(&upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    client.set_nodelay(true).ok();
    upstream.set_nodelay(true).ok();

    let (limit, stall) = match fault {
        Fault::StallAfter(n) => (Some(n), true),
        Fault::ResetAfter(n) => (Some(n), false),
        _ => (None, false),
    };

    // Upstream → client replies on a sibling thread; both directions exit
    // when either socket closes or the proxy stops.
    let (mut up_read, mut client_write) = match (upstream.try_clone(), client.try_clone()) {
        (Ok(u), Ok(c)) => (u, c),
        _ => return,
    };
    let reply_inner = Arc::clone(&inner);
    let reply = std::thread::spawn(move || {
        pump(&mut up_read, &mut client_write, None, false, &reply_inner);
    });

    let (mut client_read, mut up_write) = (client, upstream);
    pump(&mut client_read, &mut up_write, limit, stall, &inner);
    // Closing our halves unblocks the sibling.
    let _ = client_read.shutdown(Shutdown::Both);
    let _ = up_write.shutdown(Shutdown::Both);
    let _ = reply.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || {
            // Echo until the first connection that sends "quit".
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                let mut buf = [0u8; 1024];
                let mut quit = false;
                while let Ok(n) = stream.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    if &buf[..n] == b"quit" {
                        quit = true;
                        break;
                    }
                    if stream.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                if quit {
                    break;
                }
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: &str, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.write_all(payload)?;
        let mut got = vec![0u8; payload.len()];
        s.read_exact(&mut got)?;
        Ok(got)
    }

    #[test]
    fn clean_connections_relay_bytes_exactly() {
        let (addr, server) = echo_server();
        let mut proxy = ChaosProxy::start(addr.clone(), ChaosSchedule::clean()).expect("proxy");
        let got = roundtrip(&proxy.addr(), b"hello through the proxy").expect("echo");
        assert_eq!(&got, b"hello through the proxy");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.faults_injected(), 0);
        proxy.stop();
        let _ = TcpStream::connect(&addr).map(|mut s| s.write_all(b"quit"));
        server.join().expect("server thread");
    }

    #[test]
    fn faults_fire_per_schedule_then_go_clean() {
        let (addr, server) = echo_server();
        let schedule = ChaosSchedule::of([Fault::DropAtConnect, Fault::ResetAfter(2)]);
        let mut proxy = ChaosProxy::start(addr.clone(), schedule).expect("proxy");

        // Connection 0: dropped at connect — the roundtrip fails.
        assert!(roundtrip(&proxy.addr(), b"doomed").is_err());
        // Connection 1: reset after 2 bytes — fails too.
        assert!(roundtrip(&proxy.addr(), b"also doomed").is_err());
        // Connection 2: past the schedule, clean.
        let got = roundtrip(&proxy.addr(), b"survivor").expect("clean tail");
        assert_eq!(&got, b"survivor");
        assert_eq!(proxy.faults_injected(), 2);

        proxy.stop();
        let _ = TcpStream::connect(&addr).map(|mut s| s.write_all(b"quit"));
        server.join().expect("server thread");
    }

    #[test]
    fn stalled_connections_time_out_but_stay_open() {
        let (addr, server) = echo_server();
        let schedule = ChaosSchedule::of([Fault::StallAfter(4)]);
        let mut proxy = ChaosProxy::start(addr.clone(), schedule).expect("proxy");
        let mut s = TcpStream::connect(proxy.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_millis(200))).expect("deadline");
        s.write_all(b"0123456789").expect("write");
        // Only 4 bytes ever come back; the read blocks and times out.
        let mut got = [0u8; 10];
        let err = s.read_exact(&mut got).expect_err("stalled");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "{err:?}"
        );
        proxy.stop();
        let _ = TcpStream::connect(&addr).map(|mut s| s.write_all(b"quit"));
        server.join().expect("server thread");
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = ChaosSchedule::seeded(42, 32);
        let b = ChaosSchedule::seeded(42, 32);
        assert_eq!(a, b);
        assert_ne!(a, ChaosSchedule::seeded(43, 32));
        // The clean tail is implicit: everything past the list is None.
        assert_eq!(a.fault_for(32), Fault::None);
        assert_eq!(a.fault_for(1 << 20), Fault::None);
        // Roughly half the scheduled connections carry a fault.
        let faulted = a.faults.iter().filter(|f| **f != Fault::None).count();
        assert!(faulted > 4 && faulted < 28, "{faulted} of 32 faulted");
    }

    #[test]
    fn upstream_can_be_swapped_mid_flight() {
        let (addr_a, server_a) = echo_server();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr_b = listener.local_addr().expect("addr").to_string();
        // Server B answers everything with 'B's.
        let server_b = std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else { return };
            let mut buf = [0u8; 1024];
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    break;
                }
                if stream.write_all(&vec![b'B'; n]).is_err() {
                    break;
                }
            }
        });

        let mut proxy = ChaosProxy::start(addr_a.clone(), ChaosSchedule::clean()).expect("proxy");
        assert_eq!(roundtrip(&proxy.addr(), b"echo").expect("via a"), b"echo");
        proxy.set_upstream(addr_b);
        assert_eq!(roundtrip(&proxy.addr(), b"echo").expect("via b"), b"BBBB");

        proxy.stop();
        let _ = TcpStream::connect(&addr_a).map(|mut s| s.write_all(b"quit"));
        server_a.join().expect("server a");
        server_b.join().expect("server b");
    }
}
