//! The end-to-end Differential Aggregation Protocol (§V, Fig. 3).

use crate::accountant::PrivacyAccountant;
use crate::aggregation::{aggregate, Weighting};
use crate::grouping::GroupPlan;
use crate::parallel::parallel_map;
use crate::population::Population;
use crate::scheme::{estimate_group_means_hist, GroupEstimate, GroupHistogram, Scheme};
use dap_attack::{Attack, Side};
use dap_emf::{probe_side, EmfConfig};
use dap_estimation::{EmWorkspace, Grid};
use dap_ldp::{Epsilon, NumericMechanism};
use rand::RngCore;

/// Configuration of one DAP deployment.
#[derive(Debug, Clone, Copy)]
pub struct DapConfig {
    /// Global per-user privacy budget ε.
    pub eps: f64,
    /// Minimum acceptable group budget ε₀ (the paper's experiments use
    /// 1/16).
    pub eps0: f64,
    /// Reconstruction scheme (EMF / EMF\* / CEMF\*).
    pub scheme: Scheme,
    /// Inter-group weighting rule (Algorithm 5 by default).
    pub weighting: Weighting,
    /// Pessimistic initial mean `O'` (0 by the paper's convention; see
    /// Theorem 2 / [`dap_emf::pessimistic_init`] for data-driven choices).
    pub o_prime: f64,
    /// Cap on the per-group output-bucket count `d'` so EM cost stays
    /// bounded at paper-scale populations.
    pub max_d_out: usize,
    /// Project the final estimate onto the mechanism's input domain. The
    /// honest mean provably lies there, so projection can only reduce error;
    /// disable to observe the raw aggregate.
    pub clamp_to_input: bool,
}

impl DapConfig {
    /// The paper's default deployment: ε₀ = 1/16, Algorithm 5 weights,
    /// `O' = 0`.
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        DapConfig {
            eps,
            eps0: 1.0 / 16.0,
            scheme,
            weighting: Weighting::AlgorithmFive,
            o_prime: 0.0,
            max_d_out: 256,
            clamp_to_input: true,
        }
    }
}

/// Per-group diagnostics of a DAP run.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// The group's budget ε_t.
    pub eps_t: f64,
    /// Reports collected `N_t`.
    pub n_reports: usize,
    /// Intra-group mean estimate `M_t` (Eq. 13).
    pub mean_t: f64,
    /// Estimated poison-report count `m̂_t`.
    pub m_hat: f64,
    /// Estimated honest-user count `n̂_t = (N_t − m̂_t)·ε_t/ε`.
    pub n_hat: f64,
    /// Aggregation weight `w_t`.
    pub weight: f64,
}

/// Result of a DAP run.
#[derive(Debug, Clone)]
pub struct DapOutput {
    /// The aggregated mean estimate `M̃`.
    pub mean: f64,
    /// Probed poisoned side.
    pub side: Side,
    /// Probed coalition proportion `γ̂` (from the most private group).
    pub gamma: f64,
    /// Theorem 6's minimal worst-case variance for the realized weights.
    pub min_variance: f64,
    /// Per-group diagnostics.
    pub groups: Vec<GroupReport>,
}

/// The Differential Aggregation Protocol, generic over the numerical LDP
/// mechanism (PM in the paper's default deployment; see [`crate::sw`] for the
/// Square-Wave variant, which estimates from reconstructed histograms
/// instead).
#[derive(Debug, Clone)]
pub struct Dap<F> {
    config: DapConfig,
    mech_factory: F,
}

impl<M, F> Dap<F>
where
    M: NumericMechanism,
    // `Sync` lets stage 4 call the factory from worker threads; the
    // mechanisms themselves are built and dropped inside each worker.
    F: Fn(Epsilon) -> M + Sync,
{
    /// Builds a protocol instance from a config and a mechanism factory
    /// (e.g. `|eps| PiecewiseMechanism::new(eps)`).
    pub fn new(config: DapConfig, mech_factory: F) -> Self {
        assert!(config.eps >= config.eps0 && config.eps0 > 0.0, "need ε ≥ ε₀ > 0");
        Dap { config, mech_factory }
    }

    /// The active configuration.
    pub fn config(&self) -> &DapConfig {
        &self.config
    }

    /// Runs the five-stage protocol against a population and an attack,
    /// returning the aggregated mean and per-group diagnostics.
    ///
    /// The simulation enforces the privacy contract: every honest user's
    /// total spend is exactly ε (k_t reports at ε_t each), checked by the
    /// internal [`PrivacyAccountant`].
    pub fn run<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        rng: &mut R,
    ) -> DapOutput {
        self.run_schemes(population, attack, &[self.config.scheme], rng)
            .pop()
            .expect("one scheme in, one output out")
    }

    /// Runs the protocol once and reads the result off under several
    /// reconstruction schemes at a time, in `schemes` order.
    ///
    /// The schemes differ only in the stage-4 reconstruction (§V-B), so the
    /// expensive shared stages — grouping, perturbation of every report,
    /// probing, and the base EMF fit per group — run a single time. This is
    /// the evaluation harness's common-random-numbers mode: comparing
    /// schemes on identical report sets removes between-scheme sampling
    /// noise and cuts the figure drivers' wall-clock roughly by the number
    /// of schemes. `config.scheme` is ignored here.
    ///
    /// Stage 4 fans the (deterministic, RNG-free) per-group estimations out
    /// over [`crate::parallel::parallel_map`]; outputs are bit-identical
    /// for any thread count.
    pub fn run_schemes<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Vec<DapOutput> {
        let cfg = &self.config;
        let n_total = population.total();
        assert!(n_total > 0, "empty population");
        let plan = GroupPlan::build(n_total, cfg.eps, cfg.eps0, rng);
        let mut accountant = PrivacyAccountant::new(n_total, cfg.eps);

        // Stage 2: perturbation. User indices < |honest| are honest; the
        // rest are the coalition (assignment order is already shuffled).
        // Reports stream straight into each group's `d'`-bucket histogram —
        // the EMF sizing depends only on the solicited report volume
        // `|G_t|·k_t`, which is known up front, so the raw report vectors
        // never materialize.
        let n_honest = population.honest.len();
        let mut group_hists: Vec<GroupHistogram> = Vec::with_capacity(plan.len());
        let mut emf_cfgs: Vec<EmfConfig> = Vec::with_capacity(plan.len());
        for g in 0..plan.len() {
            let eps_t = plan.budgets[g];
            let k_t = plan.reports_per_user[g];
            let mech = (self.mech_factory)(eps_t);
            let emf_cfg =
                EmfConfig::capped(plan.reports_in_group(g), eps_t.get(), cfg.max_d_out);
            let (olo, ohi) = mech.output_range();
            let grid = Grid::new(olo, ohi, emf_cfg.d_out);
            let mut report_buf = vec![0.0f64; k_t];
            let mut counts = vec![0.0; emf_cfg.d_out];
            let mut sum = 0.0;
            let mut n_reports = 0usize;
            let mut byz_members = 0usize;
            for &user in &plan.assignment[g] {
                if user < n_honest {
                    // One accountant charge covers the user's k_t reports at
                    // ε_t each; ε_t = ε/2^t and k_t = 2^t, so the product is
                    // exactly ε with no accumulation error.
                    accountant
                        .charge(user, eps_t.get() * k_t as f64)
                        .expect("grouping never exceeds the budget");
                    let v = population.honest[user];
                    mech.perturb_into(v, &mut report_buf[..k_t], rng);
                    for &r in &report_buf[..k_t] {
                        counts[grid.bucket_of(r)] += 1.0;
                        sum += r;
                        n_reports += 1;
                    }
                } else {
                    byz_members += 1;
                }
            }
            // The coalition matches the honest report volume: k_t poison
            // reports per member, scaled to the group's output domain.
            for r in attack.reports(byz_members * k_t, &mech, rng) {
                counts[grid.bucket_of(r)] += 1.0;
                sum += r;
                n_reports += 1;
            }
            group_hists.push(GroupHistogram { counts, sum_reports: sum, n_reports });
            emf_cfgs.push(emf_cfg);
        }
        debug_assert!(accountant.all_depleted() || population.byzantine > 0);

        // Stage 3: probing on the most private group (Theorem 3: smallest ε
        // probes Byzantine features best). The probe reads the group's
        // streamed histogram directly.
        let probe_g = plan.probe_group();
        let probe_mech = (self.mech_factory)(plan.budgets[probe_g]);
        let probe_cfg = &emf_cfgs[probe_g];
        let probe = probe_side(
            &probe_mech,
            &group_hists[probe_g].counts,
            probe_cfg.d_in,
            cfg.o_prime,
            &probe_cfg.em,
        );
        let side = probe.side;
        let gamma = probe.chosen().poison_mass();

        // Stage 4: intra-group estimation (Eq. 13), fanned out over the
        // independent groups. The probe group's base EMF fit is exactly the
        // probe's chosen-side run (same cached matrix, counts and stopping
        // rule), so it is handed down instead of being recomputed.
        let group_inputs: Vec<usize> = (0..plan.len()).collect();
        let estimates: Vec<Vec<GroupEstimate>> = parallel_map(group_inputs, |g| {
            let eps_t = plan.budgets[g];
            let mech = (self.mech_factory)(eps_t);
            let probed_base = (g == probe_g).then(|| probe.chosen());
            estimate_group_means_hist(
                &mech,
                &group_hists[g],
                side,
                cfg.o_prime,
                gamma,
                schemes,
                &emf_cfgs[g],
                probed_base,
                &mut EmWorkspace::new(),
            )
        });

        // Stage 5: inter-group aggregation (Algorithm 5), per scheme.
        let mech0 = (self.mech_factory)(Epsilon::of(cfg.eps));
        let (ilo, ihi) = mech0.input_range();
        let worst_vars: Vec<f64> = plan
            .budgets
            .iter()
            .map(|&eps_t| (self.mech_factory)(eps_t).worst_case_variance())
            .collect();

        (0..schemes.len())
            .map(|s| {
                let mut means = Vec::with_capacity(plan.len());
                let mut n_hats = Vec::with_capacity(plan.len());
                let mut groups = Vec::with_capacity(plan.len());
                for (g, per_scheme) in estimates.iter().enumerate() {
                    let est = &per_scheme[s];
                    let eps_t = plan.budgets[g];
                    let n_hat = (est.n_reports as f64 - est.m_hat) * eps_t.get() / cfg.eps;
                    means.push(est.mean);
                    n_hats.push(n_hat);
                    groups.push(GroupReport {
                        eps_t: eps_t.get(),
                        n_reports: est.n_reports,
                        mean_t: est.mean,
                        m_hat: est.m_hat,
                        n_hat,
                        weight: 0.0, // filled below
                    });
                }
                let agg = aggregate(&means, &n_hats, &worst_vars, cfg.weighting);
                for (g, w) in groups.iter_mut().zip(&agg.weights) {
                    g.weight = *w;
                }
                let mean =
                    if cfg.clamp_to_input { agg.mean.clamp(ilo, ihi) } else { agg.mean };
                DapOutput { mean, side, gamma, min_variance: agg.min_variance, groups }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{NoAttack, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mean as smean;
    use dap_ldp::PiecewiseMechanism;

    fn pm_dap(eps: f64, scheme: Scheme) -> Dap<impl Fn(Epsilon) -> PiecewiseMechanism> {
        let mut cfg = DapConfig::paper_default(eps, scheme);
        cfg.max_d_out = 64; // keep debug-mode tests fast
        Dap::new(cfg, PiecewiseMechanism::new)
    }

    fn honest_values(n: usize, seed: u64) -> Vec<f64> {
        use rand::Rng;
        let mut rng = seeded(seed);
        (0..n).map(|_| (rng.gen::<f64>() * 1.2 - 0.8).clamp(-1.0, 1.0)).collect()
    }

    #[test]
    fn dap_beats_ostrich_under_attack() {
        let honest = honest_values(12_000, 1);
        let truth = smean(&honest);
        let pop = Population::with_gamma(honest, 0.25);
        let attack = UniformAttack::of_upper(0.5, 1.0);
        let mut rng = seeded(2);

        // Ostrich on the same total report volume at full ε.
        let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
        let mut ostrich_reports: Vec<f64> =
            pop.honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        ostrich_reports.extend(
            dap_attack::Attack::reports(&attack, pop.byzantine, &mech, &mut rng),
        );
        let ostrich_err = (smean(&ostrich_reports) - truth).abs();

        let dap = pm_dap(0.5, Scheme::EmfStar);
        let out = dap.run(&pop, &attack, &mut rng);
        let dap_err = (out.mean - truth).abs();
        assert!(
            dap_err < ostrich_err,
            "DAP err {dap_err} not below Ostrich err {ostrich_err}"
        );
        assert_eq!(out.side, Side::Right);
        assert!((out.gamma - 0.25).abs() < 0.1, "gamma {}", out.gamma);
    }

    #[test]
    fn group_structure_matches_plan() {
        let pop = Population::with_gamma(honest_values(6_000, 3), 0.1);
        let dap = pm_dap(0.5, Scheme::Emf);
        let mut rng = seeded(4);
        let out = dap.run(&pop, &UniformAttack::of_upper(0.5, 1.0), &mut rng);
        // ε = 1/2, ε₀ = 1/16 → h = 4 groups with doubling report volume.
        assert_eq!(out.groups.len(), 4);
        assert!((out.groups[0].eps_t - 0.5).abs() < 1e-12);
        assert!((out.groups[3].eps_t - 1.0 / 16.0).abs() < 1e-12);
        let w_sum: f64 = out.groups.iter().map(|g| g.weight).sum();
        assert!((w_sum - 1.0).abs() < 1e-9);
        // More reports in more private groups.
        assert!(out.groups[3].n_reports > out.groups[0].n_reports);
    }

    #[test]
    fn no_attack_estimate_is_accurate() {
        let honest = honest_values(12_000, 5);
        let truth = smean(&honest);
        let pop = Population::with_gamma(honest, 0.0);
        let dap = pm_dap(1.0, Scheme::CemfStar);
        let mut rng = seeded(6);
        let out = dap.run(&pop, &NoAttack, &mut rng);
        assert!((out.mean - truth).abs() < 0.08, "estimate {} vs {}", out.mean, truth);
    }

    #[test]
    fn output_is_deterministic_under_fixed_seed() {
        let pop = Population::with_gamma(honest_values(4_000, 7), 0.2);
        let dap = pm_dap(0.25, Scheme::EmfStar);
        let a = dap.run(&pop, &UniformAttack::of_upper(0.75, 1.0), &mut seeded(8));
        let b = dap.run(&pop, &UniformAttack::of_upper(0.75, 1.0), &mut seeded(8));
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.gamma, b.gamma);
    }

    #[test]
    fn clamping_keeps_estimate_in_input_domain() {
        let pop = Population::with_gamma(vec![1.0; 2_000], 0.3);
        let dap = pm_dap(0.25, Scheme::Emf);
        let mut rng = seeded(9);
        let out = dap.run(&pop, &UniformAttack::of_upper(0.9, 1.0), &mut rng);
        assert!((-1.0..=1.0).contains(&out.mean));
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn rejects_empty_population() {
        let pop = Population { honest: vec![], byzantine: 0 };
        let dap = pm_dap(0.25, Scheme::Emf);
        dap.run(&pop, &NoAttack, &mut seeded(0));
    }
}
