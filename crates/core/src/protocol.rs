//! The end-to-end Differential Aggregation Protocol (§V, Fig. 3).
//!
//! [`Dap`] is the *simulation driver*: it owns the parts of a run a real
//! deployment would never centralize — the honest population, the attack
//! and the RNG — and wires them through the split API: grouping via
//! [`GroupPlan`], local perturbation via [`crate::client`], and server-side
//! accumulation + estimation via [`crate::DapSession`]. The privacy
//! contract (every honest user spends exactly ε) is a property of the
//! *simulation*, so the [`PrivacyAccountant`] lives here, not in the client
//! module.

use crate::accountant::PrivacyAccountant;
use crate::aggregation::Weighting;
use crate::error::DapError;
use crate::grouping::GroupPlan;
use crate::population::Population;
use crate::scheme::Scheme;
use crate::session::{DapSession, EstimationMode};
use dap_attack::{Attack, Side};
use dap_ldp::{Epsilon, NumericMechanism};
use rand::RngCore;

/// Configuration of one DAP deployment.
///
/// Construct via [`DapConfig::paper_default`] + struct update, or through
/// the validating [`DapConfig::builder`]. Literal construction is kept
/// public for the experiment harness; validation happens whenever the
/// config enters the service surface ([`Dap::new`], [`DapSession::new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DapConfig {
    /// Global per-user privacy budget ε.
    pub eps: f64,
    /// Minimum acceptable group budget ε₀ (the paper's experiments use
    /// 1/16).
    pub eps0: f64,
    /// Reconstruction scheme (EMF / EMF\* / CEMF\*).
    pub scheme: Scheme,
    /// Inter-group weighting rule (Algorithm 5 by default).
    pub weighting: Weighting,
    /// Pessimistic initial mean `O'` (0 by the paper's convention; see
    /// Theorem 2 / [`dap_emf::pessimistic_init`] for data-driven choices).
    pub o_prime: f64,
    /// Cap on the per-group output-bucket count `d'` so EM cost stays
    /// bounded at paper-scale populations.
    pub max_d_out: usize,
    /// Project the final estimate onto the mechanism's input domain. The
    /// honest mean provably lies there, so projection can only reduce error;
    /// disable to observe the raw aggregate.
    pub clamp_to_input: bool,
    /// How [`DapSession::finalize`] probes and estimates
    /// ([`EstimationMode::ReportSum`] for unbiased mechanisms like PM).
    pub mode: EstimationMode,
}

impl DapConfig {
    /// The paper's default deployment: ε₀ = 1/16, Algorithm 5 weights,
    /// `O' = 0`, report-sum estimation.
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        DapConfig {
            eps,
            eps0: 1.0 / 16.0,
            scheme,
            weighting: Weighting::AlgorithmFive,
            o_prime: 0.0,
            max_d_out: 256,
            clamp_to_input: true,
            mode: EstimationMode::ReportSum,
        }
    }

    /// Names the first field on which two configs differ, or `None` when
    /// they are equal — so merge rejections can say *which* knob diverged
    /// (`"config eps"`, `"config scheme"`, …) instead of a blanket
    /// "configs differ". The names are drawn from
    /// [`DapError::MISMATCH_FIELDS`], which the wire layer uses to
    /// round-trip the rejection.
    pub fn diff_field(&self, other: &DapConfig) -> Option<&'static str> {
        if self.eps != other.eps {
            return Some("config eps");
        }
        if self.eps0 != other.eps0 {
            return Some("config eps0");
        }
        if self.scheme != other.scheme {
            return Some("config scheme");
        }
        if self.weighting != other.weighting {
            return Some("config weighting");
        }
        if self.o_prime != other.o_prime {
            return Some("config o_prime");
        }
        if self.max_d_out != other.max_d_out {
            return Some("config max_d_out");
        }
        if self.clamp_to_input != other.clamp_to_input {
            return Some("config clamp_to_input");
        }
        if self.mode != other.mode {
            return Some("config estimation mode");
        }
        None
    }

    /// A validating builder seeded with the paper defaults at ε = 1.
    pub fn builder() -> DapConfigBuilder {
        DapConfigBuilder { config: DapConfig::paper_default(1.0, Scheme::EmfStar) }
    }

    /// Checks the invariants the protocol relies on; every service-surface
    /// entry point calls this, so a [`DapConfig`] inside a running
    /// [`Dap`] or [`DapSession`] is always valid.
    pub fn validate(&self) -> Result<(), DapError> {
        if !(self.eps.is_finite() && self.eps0.is_finite() && self.eps0 > 0.0)
            || self.eps < self.eps0
        {
            return Err(DapError::InvalidBudget { eps: self.eps, eps0: self.eps0 });
        }
        if !self.o_prime.is_finite() {
            return Err(DapError::InvalidConfig {
                field: "o_prime",
                reason: format!("pessimistic mean must be finite, got {}", self.o_prime),
            });
        }
        if self.max_d_out < 2 {
            return Err(DapError::InvalidConfig {
                field: "max_d_out",
                reason: format!("need at least 2 output buckets, got {}", self.max_d_out),
            });
        }
        Ok(())
    }
}

/// Builder returned by [`DapConfig::builder`]; [`DapConfigBuilder::build`]
/// validates.
#[derive(Debug, Clone)]
pub struct DapConfigBuilder {
    config: DapConfig,
}

impl DapConfigBuilder {
    /// Sets the global per-user budget ε.
    pub fn eps(mut self, eps: f64) -> Self {
        self.config.eps = eps;
        self
    }

    /// Sets the minimum group budget ε₀.
    pub fn eps0(mut self, eps0: f64) -> Self {
        self.config.eps0 = eps0;
        self
    }

    /// Sets the reconstruction scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Sets the inter-group weighting rule.
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.config.weighting = weighting;
        self
    }

    /// Sets the pessimistic initial mean `O'`.
    pub fn o_prime(mut self, o_prime: f64) -> Self {
        self.config.o_prime = o_prime;
        self
    }

    /// Sets the cap on the per-group output-bucket count `d'`.
    pub fn max_d_out(mut self, max_d_out: usize) -> Self {
        self.config.max_d_out = max_d_out;
        self
    }

    /// Enables or disables projecting the estimate onto the input domain.
    pub fn clamp_to_input(mut self, clamp: bool) -> Self {
        self.config.clamp_to_input = clamp;
        self
    }

    /// Sets the probe/estimation mode.
    pub fn mode(mut self, mode: EstimationMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<DapConfig, DapError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-group diagnostics of a DAP run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// The group's budget ε_t.
    pub eps_t: f64,
    /// Reports collected `N_t`.
    pub n_reports: usize,
    /// Intra-group mean estimate `M_t` (Eq. 13).
    pub mean_t: f64,
    /// Estimated poison-report count `m̂_t`.
    pub m_hat: f64,
    /// Estimated honest-user count `n̂_t = (N_t − m̂_t)·ε_t/ε`.
    pub n_hat: f64,
    /// Aggregation weight `w_t`.
    pub weight: f64,
}

/// Result of a DAP run.
#[derive(Debug, Clone, PartialEq)]
pub struct DapOutput {
    /// The aggregated mean estimate `M̃`.
    pub mean: f64,
    /// Probed poisoned side.
    pub side: Side,
    /// Probed coalition proportion `γ̂` (from the most private group).
    pub gamma: f64,
    /// Theorem 6's minimal worst-case variance for the realized weights.
    pub min_variance: f64,
    /// Per-group diagnostics.
    pub groups: Vec<GroupReport>,
}

/// The Differential Aggregation Protocol simulation, generic over the
/// numerical LDP mechanism (PM in the paper's default deployment; see
/// [`crate::sw`] for the Square-Wave variant, which estimates from
/// reconstructed histograms instead).
#[derive(Debug, Clone)]
pub struct Dap<F> {
    config: DapConfig,
    mech_factory: F,
}

impl<M, F> Dap<F>
where
    // `Sync` lets the session's finalize stage fan per-group estimation out
    // over worker threads; all mechanisms in the workspace are plain data.
    M: NumericMechanism + Sync,
    F: Fn(Epsilon) -> M + Sync,
{
    /// Builds a protocol instance from a config and a mechanism factory
    /// (e.g. `|eps| PiecewiseMechanism::new(eps)`), rejecting invalid
    /// configurations (`ε ≥ ε₀ > 0` and friends) as [`DapError`]s.
    pub fn new(config: DapConfig, mech_factory: F) -> Result<Self, DapError> {
        config.validate()?;
        Ok(Dap { config, mech_factory })
    }

    /// The active configuration.
    pub fn config(&self) -> &DapConfig {
        &self.config
    }

    /// Runs the five-stage protocol against a population and an attack,
    /// returning the aggregated mean and per-group diagnostics.
    ///
    /// The simulation enforces the privacy contract: every honest user's
    /// total spend is exactly ε (k_t reports at ε_t each), checked by the
    /// internal [`PrivacyAccountant`].
    pub fn run<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        rng: &mut R,
    ) -> Result<DapOutput, DapError> {
        Ok(self
            .run_schemes(population, attack, &[self.config.scheme], rng)?
            .pop()
            .expect("one scheme in, one output out"))
    }

    /// Runs the protocol once and reads the result off under several
    /// reconstruction schemes at a time, in `schemes` order.
    ///
    /// The schemes differ only in the stage-4 reconstruction (§V-B), so the
    /// expensive shared stages — grouping, perturbation of every report,
    /// probing, and the base EMF fit per group — run a single time. This is
    /// the evaluation harness's common-random-numbers mode: comparing
    /// schemes on identical report sets removes between-scheme sampling
    /// noise and cuts the figure drivers' wall-clock roughly by the number
    /// of schemes. `config.scheme` is ignored here.
    ///
    /// Stages 1–2 drive the split API: the plan's [`crate::client`]
    /// assignments perturb locally and the reports stream into a
    /// [`DapSession`]; stages 3–5 are [`DapSession::finalize`].
    pub fn run_schemes<R: RngCore>(
        &self,
        population: &Population,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<DapOutput>, DapError> {
        self.run_schemes_on(&population.honest, population.byzantine, attack, schemes, rng)
    }

    /// [`Dap::run_schemes`] over a borrowed honest-value slice plus a
    /// coalition size, for callers that share one sampled population across
    /// many runs (the experiment engine's population cache) and must not
    /// clone it into a [`Population`] per run.
    pub fn run_schemes_on<R: RngCore>(
        &self,
        honest: &[f64],
        byzantine: usize,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<DapOutput>, DapError> {
        let cfg = &self.config;
        let n_total = honest.len() + byzantine;
        if n_total == 0 {
            return Err(DapError::EmptyPopulation);
        }
        let plan = GroupPlan::build(n_total, cfg.eps, cfg.eps0, rng);
        let mut session = DapSession::new(*cfg, plan, &self.mech_factory)?;
        let mut accountant = PrivacyAccountant::new(n_total, cfg.eps);

        // Stage 2: perturbation, client by client. User indices < |honest|
        // are honest; the rest are the coalition (assignment order is
        // already shuffled). Each honest user perturbs locally under their
        // assignment; the coalition matches the honest report volume with
        // k_t poison reports per member, scaled to the group's output
        // domain. Everything lands in the session through one ingestion
        // path.
        let n_honest = honest.len();
        for g in 0..session.group_count() {
            let assign = session.client_assignment(g)?;
            let mech = (self.mech_factory)(assign.eps_t);
            let mut report_buf = vec![0.0f64; assign.k_t];
            let mut byz_members = 0usize;
            for i in 0..session.plan().assignment[g].len() {
                let user = session.plan().assignment[g][i];
                if user < n_honest {
                    // One accountant charge covers the user's k_t reports at
                    // ε_t each; ε_t = ε/2^t and k_t = 2^t, so the product is
                    // exactly ε with no accumulation error.
                    accountant.charge(user, assign.total_spend())?;
                    assign.perturb_into(&mech, honest[user], &mut report_buf, rng);
                    session.ingest_batch(g, &report_buf)?;
                } else {
                    byz_members += 1;
                }
            }
            let mut poison = vec![0.0f64; byz_members * assign.k_t];
            let n_poison = attack.reports_into(&mut poison, &mech, rng);
            session.ingest_batch(g, &poison[..n_poison])?;
        }
        debug_assert!(accountant.all_depleted() || byzantine > 0);

        // Stages 3–5: probe, per-group estimation, aggregation.
        session.finalize(schemes)
    }

    /// Runs stages 1–2 only — grouping and honest perturbation — and
    /// returns the result as a reusable [`PreparedReports`].
    ///
    /// The protocol's honest work is attack-independent: the plan and the
    /// perturbed reports depend on `(honest values, n_total, ε, ε₀, rng)`
    /// but never on what the coalition will send. A caller sweeping
    /// attacks, defenses, or schemes over one population (the experiment
    /// engine's report cache) can therefore prepare once and replay via
    /// [`Dap::run_schemes_prepared`], paying for perturbation a single
    /// time. The privacy contract is enforced here, where the spending
    /// happens.
    pub fn prepare_reports<R: RngCore>(
        &self,
        honest: &[f64],
        byzantine: usize,
        rng: &mut R,
    ) -> Result<PreparedReports, DapError> {
        let cfg = &self.config;
        let n_total = honest.len() + byzantine;
        if n_total == 0 {
            return Err(DapError::EmptyPopulation);
        }
        let plan = GroupPlan::build(n_total, cfg.eps, cfg.eps0, rng);
        // A throwaway session gives us the validated per-group client
        // assignments without duplicating the budget arithmetic here.
        let session = DapSession::new(*cfg, plan.clone(), &self.mech_factory)?;
        let mut accountant = PrivacyAccountant::new(n_total, cfg.eps);

        let n_honest = honest.len();
        let mut group_reports = Vec::with_capacity(plan.assignment.len());
        for g in 0..session.group_count() {
            let assign = session.client_assignment(g)?;
            let mech = (self.mech_factory)(assign.eps_t);
            let mut report_buf = vec![0.0f64; assign.k_t];
            let honest_members =
                plan.assignment[g].iter().filter(|&&u| u < n_honest).count();
            let mut reports = Vec::with_capacity(honest_members * assign.k_t);
            for &user in &plan.assignment[g] {
                if user < n_honest {
                    accountant.charge(user, assign.total_spend())?;
                    assign.perturb_into(&mech, honest[user], &mut report_buf, rng);
                    reports.extend_from_slice(&report_buf);
                }
            }
            group_reports.push(reports);
        }
        debug_assert!(accountant.all_depleted() || byzantine > 0);
        Ok(PreparedReports {
            plan,
            group_reports,
            n_honest,
            n_total,
            eps: cfg.eps,
            eps0: cfg.eps0,
        })
    }

    /// [`Dap::run_schemes_on`] with stages 1–2 replayed from a
    /// [`PreparedReports`]: the cached honest reports are ingested verbatim
    /// and only the coalition's reports are drawn fresh from `rng`.
    ///
    /// The prepared value must come from a [`Dap`] with the same grouping
    /// parameters (ε, ε₀) and population shape; mismatches are rejected so
    /// a stale cache entry cannot silently aggregate under the wrong plan.
    pub fn run_schemes_prepared<R: RngCore>(
        &self,
        prepared: &PreparedReports,
        attack: &dyn Attack,
        schemes: &[Scheme],
        rng: &mut R,
    ) -> Result<Vec<DapOutput>, DapError> {
        let poison = self.poison_batches(prepared, attack, rng)?;
        self.run_schemes_prepared_with(prepared, &poison, schemes)
    }

    /// The coalition's reports against a [`PreparedReports`], one batch per
    /// group in group order — the attack-dependent half of a replay, split
    /// out so callers can memoize it (poison batches are a pure function of
    /// `(prepared plan, attack, rng stream)` and the experiment engine
    /// sweeps the same attack over one population many times).
    pub fn poison_batches<R: RngCore>(
        &self,
        prepared: &PreparedReports,
        attack: &dyn Attack,
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, DapError> {
        let cfg = &self.config;
        self.check_prepared(prepared)?;
        let session = DapSession::new(*cfg, prepared.plan.clone(), &self.mech_factory)?;
        let mut batches = Vec::with_capacity(session.group_count());
        for g in 0..session.group_count() {
            let assign = session.client_assignment(g)?;
            let byz_members = prepared.plan.assignment[g]
                .iter()
                .filter(|&&u| u >= prepared.n_honest)
                .count();
            let mech = (self.mech_factory)(assign.eps_t);
            let mut poison = vec![0.0f64; byz_members * assign.k_t];
            let n_poison = attack.reports_into(&mut poison, &mech, rng);
            poison.truncate(n_poison);
            batches.push(poison);
        }
        Ok(batches)
    }

    /// Replays stages 3–5 from a [`PreparedReports`] plus explicit per-group
    /// poison batches (as produced by [`Dap::poison_batches`], possibly
    /// served from a cache). Consumes no randomness: everything stochastic
    /// happened when the two inputs were drawn.
    pub fn run_schemes_prepared_with(
        &self,
        prepared: &PreparedReports,
        poison: &[Vec<f64>],
        schemes: &[Scheme],
    ) -> Result<Vec<DapOutput>, DapError> {
        let cfg = &self.config;
        self.check_prepared(prepared)?;
        let mut session = DapSession::new(*cfg, prepared.plan.clone(), &self.mech_factory)?;
        if poison.len() != session.group_count() {
            return Err(DapError::InvalidConfig {
                field: "poison batches",
                reason: format!(
                    "{} batches for {} groups",
                    poison.len(),
                    session.group_count()
                ),
            });
        }
        for (g, batch) in poison.iter().enumerate() {
            session.ingest_batch(g, &prepared.group_reports[g])?;
            session.ingest_batch(g, batch)?;
        }
        session.finalize(schemes)
    }

    /// Rejects a [`PreparedReports`] whose grouping parameters do not match
    /// this session's config, so a stale cache entry cannot silently
    /// aggregate under the wrong plan.
    fn check_prepared(&self, prepared: &PreparedReports) -> Result<(), DapError> {
        let cfg = &self.config;
        if prepared.eps != cfg.eps || prepared.eps0 != cfg.eps0 {
            return Err(DapError::InvalidConfig {
                field: "prepared reports",
                reason: format!(
                    "prepared under (ε={}, ε₀={}), session wants (ε={}, ε₀={})",
                    prepared.eps, prepared.eps0, cfg.eps, cfg.eps0
                ),
            });
        }
        Ok(())
    }
}

/// Stages 1–2 of a protocol run, frozen for replay: the shuffled
/// [`GroupPlan`] plus every honest user's perturbed reports, per group in
/// assignment order. Produced by [`Dap::prepare_reports`], consumed by
/// [`Dap::run_schemes_prepared`]; the experiment engine caches these so a
/// population swept across attacks and defenses is perturbed exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedReports {
    /// The shuffled group assignment the reports were perturbed under.
    pub plan: GroupPlan,
    /// Honest reports per group, concatenated in assignment order
    /// (`k_t` consecutive reports per honest member).
    pub group_reports: Vec<Vec<f64>>,
    /// Honest population size; assignment indices `≥ n_honest` are
    /// coalition slots whose reports the replay draws fresh.
    pub n_honest: usize,
    /// Total population size the plan was built for.
    pub n_total: usize,
    /// Budget ε the reports were perturbed under.
    pub eps: f64,
    /// Minimum group budget ε₀ the plan was built under.
    pub eps0: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{NoAttack, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mean as smean;
    use dap_ldp::PiecewiseMechanism;

    fn pm_dap(eps: f64, scheme: Scheme) -> Dap<impl Fn(Epsilon) -> PiecewiseMechanism> {
        let mut cfg = DapConfig::paper_default(eps, scheme);
        cfg.max_d_out = 64; // keep debug-mode tests fast
        Dap::new(cfg, PiecewiseMechanism::new).expect("valid config")
    }

    fn honest_values(n: usize, seed: u64) -> Vec<f64> {
        use rand::Rng;
        let mut rng = seeded(seed);
        (0..n).map(|_| (rng.gen::<f64>() * 1.2 - 0.8).clamp(-1.0, 1.0)).collect()
    }

    #[test]
    fn dap_beats_ostrich_under_attack() {
        let honest = honest_values(12_000, 1);
        let truth = smean(&honest);
        let pop = Population::with_gamma(honest, 0.25);
        let attack = UniformAttack::of_upper(0.5, 1.0);
        let mut rng = seeded(2);

        // Ostrich on the same total report volume at full ε.
        let mech = PiecewiseMechanism::with_epsilon(0.5).unwrap();
        let mut ostrich_reports: Vec<f64> =
            pop.honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        ostrich_reports.extend(
            dap_attack::Attack::reports(&attack, pop.byzantine, &mech, &mut rng),
        );
        let ostrich_err = (smean(&ostrich_reports) - truth).abs();

        let dap = pm_dap(0.5, Scheme::EmfStar);
        let out = dap.run(&pop, &attack, &mut rng).expect("valid run");
        let dap_err = (out.mean - truth).abs();
        assert!(
            dap_err < ostrich_err,
            "DAP err {dap_err} not below Ostrich err {ostrich_err}"
        );
        assert_eq!(out.side, Side::Right);
        assert!((out.gamma - 0.25).abs() < 0.1, "gamma {}", out.gamma);
    }

    #[test]
    fn group_structure_matches_plan() {
        let pop = Population::with_gamma(honest_values(6_000, 3), 0.1);
        let dap = pm_dap(0.5, Scheme::Emf);
        let mut rng = seeded(4);
        let out = dap.run(&pop, &UniformAttack::of_upper(0.5, 1.0), &mut rng).unwrap();
        // ε = 1/2, ε₀ = 1/16 → h = 4 groups with doubling report volume.
        assert_eq!(out.groups.len(), 4);
        assert!((out.groups[0].eps_t - 0.5).abs() < 1e-12);
        assert!((out.groups[3].eps_t - 1.0 / 16.0).abs() < 1e-12);
        let w_sum: f64 = out.groups.iter().map(|g| g.weight).sum();
        assert!((w_sum - 1.0).abs() < 1e-9);
        // More reports in more private groups.
        assert!(out.groups[3].n_reports > out.groups[0].n_reports);
    }

    #[test]
    fn no_attack_estimate_is_accurate() {
        let honest = honest_values(12_000, 5);
        let truth = smean(&honest);
        let pop = Population::with_gamma(honest, 0.0);
        let dap = pm_dap(1.0, Scheme::CemfStar);
        let mut rng = seeded(6);
        let out = dap.run(&pop, &NoAttack, &mut rng).unwrap();
        assert!((out.mean - truth).abs() < 0.08, "estimate {} vs {}", out.mean, truth);
    }

    #[test]
    fn output_is_deterministic_under_fixed_seed() {
        let pop = Population::with_gamma(honest_values(4_000, 7), 0.2);
        let dap = pm_dap(0.25, Scheme::EmfStar);
        let a = dap.run(&pop, &UniformAttack::of_upper(0.75, 1.0), &mut seeded(8)).unwrap();
        let b = dap.run(&pop, &UniformAttack::of_upper(0.75, 1.0), &mut seeded(8)).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.gamma, b.gamma);
    }

    #[test]
    fn clamping_keeps_estimate_in_input_domain() {
        let pop = Population::with_gamma(vec![1.0; 2_000], 0.3);
        let dap = pm_dap(0.25, Scheme::Emf);
        let mut rng = seeded(9);
        let out = dap.run(&pop, &UniformAttack::of_upper(0.9, 1.0), &mut rng).unwrap();
        assert!((-1.0..=1.0).contains(&out.mean));
    }

    #[test]
    fn rejects_empty_population() {
        let pop = Population { honest: vec![], byzantine: 0 };
        let dap = pm_dap(0.25, Scheme::Emf);
        let err = dap.run(&pop, &NoAttack, &mut seeded(0)).unwrap_err();
        assert!(matches!(err, DapError::EmptyPopulation));
    }

    #[test]
    fn rejects_invalid_budgets_at_construction() {
        let cfg = DapConfig { eps: 0.01, ..DapConfig::paper_default(0.01, Scheme::Emf) };
        let err = Dap::new(cfg, PiecewiseMechanism::new).err().expect("ε < ε₀ must fail");
        assert!(matches!(err, DapError::InvalidBudget { .. }));
    }

    #[test]
    fn every_config_diff_field_is_wire_encodable() {
        // `diff_field` names feed `SessionMismatch`, which the wire layer
        // encodes by index into `DapError::MISMATCH_FIELDS` — a name
        // missing from the table silently downgrades the typed rejection.
        // One variant per config field keeps the two lists in lockstep.
        let base = DapConfig::paper_default(1.0, Scheme::Emf);
        let variants = [
            DapConfig { eps: 2.0, ..base },
            DapConfig { eps0: 0.125, ..base },
            DapConfig { scheme: Scheme::EmfStar, ..base },
            DapConfig { weighting: Weighting::Uniform, ..base },
            DapConfig { o_prime: 0.5, ..base },
            DapConfig { max_d_out: 99, ..base },
            DapConfig { clamp_to_input: false, ..base },
            DapConfig { mode: EstimationMode::HistogramBands, ..base },
        ];
        assert_eq!(base.diff_field(&base), None);
        let mut seen = std::collections::HashSet::new();
        for other in variants {
            let field = other.diff_field(&base).expect("exactly one field differs");
            assert!(
                DapError::MISMATCH_FIELDS.contains(&field),
                "'{field}' missing from DapError::MISMATCH_FIELDS"
            );
            assert!(seen.insert(field), "'{field}' reused for two config fields");
        }
        assert_eq!(seen.len(), 8, "every config field must have its own name");
    }

    #[test]
    fn prepared_replay_is_bit_identical_without_a_coalition() {
        // With no coalition the inline path and the prepared path draw from
        // the RNG in exactly the same order (plan shuffle, then every honest
        // user's reports), so equally-seeded runs must agree to the bit.
        let honest = honest_values(3_000, 11);
        let dap = pm_dap(0.5, Scheme::EmfStar);
        let schemes = [Scheme::Emf, Scheme::EmfStar];
        let inline = dap
            .run_schemes_on(&honest, 0, &NoAttack, &schemes, &mut seeded(12))
            .unwrap();
        let prepared = dap.prepare_reports(&honest, 0, &mut seeded(12)).unwrap();
        let replayed =
            dap.run_schemes_prepared(&prepared, &NoAttack, &schemes, &mut seeded(99)).unwrap();
        for (a, b) in inline.iter().zip(&replayed) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.gamma.to_bits(), b.gamma.to_bits());
        }
    }

    #[test]
    fn prepared_replay_is_deterministic_and_accurate_under_attack() {
        let honest = honest_values(6_000, 13);
        let truth = smean(&honest);
        let byzantine = 1_500;
        let dap = pm_dap(0.5, Scheme::EmfStar);
        let attack = UniformAttack::of_upper(0.5, 1.0);
        let prepared = dap.prepare_reports(&honest, byzantine, &mut seeded(14)).unwrap();
        // Honest report volume matches the plan's honest membership.
        let n_honest_reports: usize =
            prepared.group_reports.iter().map(|r| r.len()).sum();
        let expected: usize = (0..prepared.plan.assignment.len())
            .map(|g| {
                prepared.plan.assignment[g].iter().filter(|&&u| u < honest.len()).count()
                    * prepared.plan.reports_per_user[g]
            })
            .sum();
        assert_eq!(n_honest_reports, expected);

        let a = dap
            .run_schemes_prepared(&prepared, &attack, &[Scheme::EmfStar], &mut seeded(15))
            .unwrap();
        let b = dap
            .run_schemes_prepared(&prepared, &attack, &[Scheme::EmfStar], &mut seeded(15))
            .unwrap();
        assert_eq!(a[0].mean.to_bits(), b[0].mean.to_bits());
        assert!((a[0].mean - truth).abs() < 0.1, "mean {} truth {}", a[0].mean, truth);
    }

    #[test]
    fn prepared_budget_mismatch_is_rejected() {
        let honest = honest_values(500, 17);
        let prepared =
            pm_dap(0.5, Scheme::Emf).prepare_reports(&honest, 100, &mut seeded(18)).unwrap();
        let other = pm_dap(1.0, Scheme::Emf);
        let err = other
            .run_schemes_prepared(&prepared, &NoAttack, &[Scheme::Emf], &mut seeded(19))
            .unwrap_err();
        assert!(matches!(err, DapError::InvalidConfig { field: "prepared reports", .. }));
    }

    #[test]
    fn builder_validates() {
        let cfg = DapConfig::builder()
            .eps(0.5)
            .eps0(0.125)
            .scheme(Scheme::CemfStar)
            .max_d_out(64)
            .build()
            .expect("valid config");
        assert_eq!(cfg.scheme, Scheme::CemfStar);
        assert_eq!(cfg.max_d_out, 64);
        assert!(matches!(
            DapConfig::builder().eps(f64::NAN).build(),
            Err(DapError::InvalidBudget { .. })
        ));
        assert!(matches!(
            DapConfig::builder().max_d_out(1).build(),
            Err(DapError::InvalidConfig { field: "max_d_out", .. })
        ));
        assert!(matches!(
            DapConfig::builder().o_prime(f64::INFINITY).build(),
            Err(DapError::InvalidConfig { field: "o_prime", .. })
        ));
    }
}
