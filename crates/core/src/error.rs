//! Typed errors for the DAP service surface.
//!
//! The protocol layer is the part of the workspace a deployment actually
//! links against — a collector ingesting untrusted client reports must be
//! able to reject malformed input without tearing the process down. Every
//! fallible operation on [`crate::DapSession`], the [`crate::Dap`] /
//! [`crate::sw::SwDap`] drivers and the config builders reports through
//! [`DapError`]; panics are reserved for internal invariants.

use crate::accountant::BudgetError;
use dap_ldp::LdpError;
use std::fmt;

/// Errors produced by DAP configuration, ingestion and finalization.
#[derive(Debug, Clone, PartialEq)]
pub enum DapError {
    /// The budget pair violates `ε ≥ ε₀ > 0` (or is not finite).
    InvalidBudget {
        /// Global per-user budget ε.
        eps: f64,
        /// Minimum group budget ε₀.
        eps0: f64,
    },
    /// A configuration field failed validation.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A protocol run was asked to aggregate zero users.
    EmptyPopulation,
    /// A group index outside the session's [`crate::GroupPlan`].
    UnknownGroup {
        /// The offending index.
        group: usize,
        /// Number of groups in the plan.
        groups: usize,
    },
    /// A report fell outside the group mechanism's output domain — by
    /// Definition 2 even Byzantine users are confined to `[DL, DR]`, so the
    /// aggregator drops such reports at the door.
    ReportOutOfRange {
        /// The group the report was addressed to.
        group: usize,
        /// The offending report value.
        report: f64,
        /// Inclusive lower end of the group's output domain.
        lo: f64,
        /// Inclusive upper end of the group's output domain.
        hi: f64,
    },
    /// More reports than the group plan solicited (`|G_t|·k_t`) — extra
    /// traffic is a protocol violation, not data.
    QuotaExceeded {
        /// The over-full group.
        group: usize,
        /// The group's solicited report volume.
        quota: usize,
        /// Reports already accepted.
        ingested: usize,
        /// Size of the rejected submission.
        attempted: usize,
    },
    /// A sequence-numbered batch re-sent a sequence the session already
    /// applied — the retry was dedup'd, and the sender may treat the
    /// original submission as acknowledged.
    DuplicateSequence {
        /// The coordinator channel the batch arrived on.
        channel: u64,
        /// The re-sent sequence number.
        seq: u64,
        /// The highest sequence the session has applied for the channel.
        last: u64,
    },
    /// A sequence-numbered batch skipped ahead — an earlier batch on the
    /// channel was never applied, so accepting this one would silently
    /// lose reports.
    SequenceGap {
        /// The coordinator channel the batch arrived on.
        channel: u64,
        /// The out-of-order sequence number.
        seq: u64,
        /// The sequence the session expected next.
        expected: u64,
    },
    /// Sharded sessions being merged disagree on config or group plan.
    SessionMismatch {
        /// What differed.
        what: &'static str,
    },
    /// A plaintext operation reached a masked (secret-shared) session, or
    /// a masked-share operation reached a plaintext session. The two modes
    /// hold incompatible per-group state, so the frame is refused instead
    /// of being misapplied — in particular a plaintext report can never be
    /// accumulated (or journaled) by a share server.
    ModeMismatch {
        /// Whether the *session* is in masked mode (`true`: a plaintext
        /// frame was refused; `false`: a masked frame was refused).
        masked: bool,
    },
    /// The durability layer ([`crate::storage`]) failed: a journal append
    /// did not complete, a record or checkpoint is corrupt, or recovery
    /// found state that does not belong to this deployment.
    Journal {
        /// Byte offset into the journal where the problem was detected
        /// (0 when the failure is not positional, e.g. a backend I/O
        /// error or a checkpoint that fails to apply).
        at: u64,
        /// What went wrong.
        reason: String,
    },
    /// An underlying LDP mechanism rejected its parameters.
    Ldp(LdpError),
    /// A simulated user would exceed their privacy budget.
    Budget(BudgetError),
}

impl DapError {
    /// Every `what` a [`DapError::SessionMismatch`] can carry, in one
    /// place: the session-construction checks, the field-by-field merge
    /// comparisons ([`crate::DapConfig::diff_field`],
    /// [`crate::GroupPlan::diff_field`]) and the serialized-part checks.
    /// The wire layer ([`crate::net`]) round-trips a mismatch by index
    /// into this table, which is what keeps the variant's `&'static str`
    /// intact across a network hop.
    pub const MISMATCH_FIELDS: [&'static str; 20] = [
        "zero sessions (nothing to merge)",
        "config budgets and group plan",
        "config eps",
        "config eps0",
        "config scheme",
        "config weighting",
        "config o_prime",
        "config max_d_out",
        "config clamp_to_input",
        "config estimation mode",
        "plan budgets",
        "plan reports-per-user",
        "plan user assignment",
        "mechanism output grids",
        "state digest",
        "part group count",
        "part histogram resolution",
        "share resolution",
        "secagg topology",
        "seed commitment",
    ];
}

impl fmt::Display for DapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DapError::InvalidBudget { eps, eps0 } => {
                write!(f, "need ε ≥ ε₀ > 0, got ε = {eps}, ε₀ = {eps0}")
            }
            DapError::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            DapError::EmptyPopulation => write!(f, "empty population"),
            DapError::UnknownGroup { group, groups } => {
                write!(f, "group {group} out of range for a {groups}-group plan")
            }
            DapError::ReportOutOfRange { group, report, lo, hi } => {
                write!(f, "report {report} for group {group} outside output domain [{lo}, {hi}]")
            }
            DapError::QuotaExceeded { group, quota, ingested, attempted } => {
                write!(
                    f,
                    "group {group} quota exceeded: {ingested} ingested + {attempted} \
                     attempted > {quota} solicited"
                )
            }
            DapError::DuplicateSequence { channel, seq, last } => {
                write!(
                    f,
                    "duplicate sequence {seq} on channel {channel:#018x}: \
                     already applied through {last}"
                )
            }
            DapError::SequenceGap { channel, seq, expected } => {
                write!(
                    f,
                    "sequence gap on channel {channel:#018x}: got {seq}, expected {expected}"
                )
            }
            DapError::SessionMismatch { what } => {
                write!(f, "sessions cannot be merged: {what} differ")
            }
            DapError::ModeMismatch { masked } => {
                if *masked {
                    write!(f, "session is in masked (secret-shared) mode: plaintext frame refused")
                } else {
                    write!(f, "session is in plaintext mode: masked-share frame refused")
                }
            }
            DapError::Journal { at, reason } => {
                write!(f, "journal error at byte {at}: {reason}")
            }
            DapError::Ldp(e) => write!(f, "mechanism error: {e}"),
            DapError::Budget(e) => write!(f, "privacy budget violation: {e}"),
        }
    }
}

impl std::error::Error for DapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DapError::Ldp(e) => Some(e),
            DapError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LdpError> for DapError {
    fn from(e: LdpError) -> Self {
        DapError::Ldp(e)
    }
}

impl From<BudgetError> for DapError {
    fn from(e: BudgetError) -> Self {
        DapError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DapError::InvalidBudget { eps: 0.01, eps0: 0.0625 };
        assert!(e.to_string().contains("ε ≥ ε₀"));
        let e = DapError::ReportOutOfRange { group: 2, report: 9.0, lo: -3.0, hi: 3.0 };
        assert!(e.to_string().contains("group 2") && e.to_string().contains("[-3, 3]"));
        let e = DapError::QuotaExceeded { group: 0, quota: 10, ingested: 10, attempted: 1 };
        assert!(e.to_string().contains("quota"));
        assert_eq!(DapError::EmptyPopulation.to_string(), "empty population");
        let e = DapError::Journal { at: 34, reason: "record digest mismatch".into() };
        assert!(e.to_string().contains("journal") && e.to_string().contains("byte 34"), "{e}");
        let e = DapError::DuplicateSequence { channel: 0xabcd, seq: 4, last: 7 };
        assert!(e.to_string().contains("duplicate sequence 4"), "{e}");
        assert!(e.to_string().contains("through 7"), "{e}");
        let e = DapError::SequenceGap { channel: 0xabcd, seq: 9, expected: 5 };
        assert!(e.to_string().contains("got 9, expected 5"), "{e}");
        let e = DapError::ModeMismatch { masked: true };
        assert!(e.to_string().contains("masked"), "{e}");
        let e = DapError::ModeMismatch { masked: false };
        assert!(e.to_string().contains("plaintext"), "{e}");
    }

    #[test]
    fn wraps_underlying_errors_with_sources() {
        use std::error::Error;
        let e: DapError = LdpError::InvalidEpsilon(-1.0).into();
        assert!(matches!(e, DapError::Ldp(_)));
        assert!(e.source().is_some());
        let e: DapError =
            BudgetError { user: 3, spent: 1.0, attempted: 0.5, cap: 1.0 }.into();
        assert!(matches!(e, DapError::Budget(_)));
        assert!(e.to_string().contains("user 3"));
    }
}
