//! Secret-shared multi-aggregator tier: additive masking over `u64`.
//!
//! The single-aggregator deployment trusts every daemon that owns a group:
//! the daemon sees that group's raw perturbed reports and its journal
//! persists them. This module removes that trust. A dealer (the
//! coordinator acting for the clients) converts each report chunk into a
//! per-group **histogram contribution** — integer bucket counts — and
//! splits it into `k` additive shares over `u64` wrapping arithmetic. Each
//! of `k` share servers receives exactly one share per contribution, so:
//!
//! * a single daemon (or its stolen journal) holds uniformly masked words
//!   that reveal nothing about any report or any group histogram;
//! * any `k−1` daemons colluding still hold at least one unresolved
//!   pairwise mask per word, so their combined view stays masked;
//! * wrapping-summing all `k` shares cancels every mask **exactly** —
//!   not approximately — because `u64` addition is associative and
//!   commutative, and each mask is added once and subtracted once.
//!
//! Bucket counts are integers, so the reconstructed `u64` totals convert
//! to the session's `f64` histogram counts without rounding (counts are
//! far below 2⁵³), and `finalize` over the reconstructed state is
//! **bit-identical** to the single-aggregator path — the existing golden
//! byte-diff machinery keeps working verbatim.
//!
//! Masks are pure functions of `(mask seed, group, chunk, daemon pair)`
//! via per-pair xorshift64* streams ([`ShareSplitter`]), so share
//! generation is deterministic: a retried or re-split chunk produces the
//! same bytes, and the dealer can re-derive any single daemon's full
//! intended share from the seed — the dropout path. If a share server
//! dies mid-stream, the coordinator reconstructs that server's total
//! share locally (seed reveal) and combines it with the surviving
//! quorum's [`MaskedPart`]s; the masks baked into the survivors' state
//! cancel against the re-derived share and the true totals emerge.
//!
//! The dealer publishes a [`SeedCommitment`] binding the mask seed and
//! topology; share servers echo it in their [`MaskedPart`]s so parts
//! masked under different seeds (which would wrapping-sum to garbage)
//! are refused typed instead of merged.

use crate::codec::Fnv;
use crate::error::DapError;

/// A share server's place in a secret-sharing deployment: one of `k`
/// daemons, holding share `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecaggRole {
    /// Total share servers (≥ 2).
    pub k: usize,
    /// This server's share index (`0 ≤ index < k`).
    pub index: usize,
}

impl SecaggRole {
    /// Validates `index < k` and `k ≥ 2` (one share server would hold the
    /// plaintext, defeating the tier).
    pub fn new(k: usize, index: usize) -> Result<SecaggRole, DapError> {
        if k < 2 {
            return Err(DapError::InvalidConfig {
                field: "secagg k",
                reason: format!("need at least 2 share servers, got {k}"),
            });
        }
        if index >= k {
            return Err(DapError::InvalidConfig {
                field: "secagg index",
                reason: format!("share index {index} out of range for k = {k}"),
            });
        }
        Ok(SecaggRole { k, index })
    }
}

/// The dealer's public commitment to its mask seed and topology.
///
/// Share servers cannot verify masks (they are blind to them by design),
/// but they *can* carry the commitment the dealer announced at handshake
/// and echo it in their [`MaskedPart`]s. [`reconstruct`] then refuses to
/// combine parts masked under different seeds — without this, mixing
/// parts from two submits would wrapping-sum to silent garbage. FNV is a
/// structural stand-in for a cryptographic commitment, consistent with
/// the digests the rest of the wire protocol pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedCommitment(u64);

impl SeedCommitment {
    /// Commits to `(mask_seed, k)`.
    pub fn of(mask_seed: u64, k: usize) -> SeedCommitment {
        let mut h = Fnv::new();
        h.bytes(b"dap-secagg-commit/v1");
        h.word(mask_seed);
        h.word(k as u64);
        SeedCommitment(h.finish())
    }

    /// The commitment digest (what travels on the wire; never 0 — see
    /// [`SeedCommitment::of`]'s domain-separated hash).
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One pairwise mask stream: xorshift64* seeded from the FNV of the
/// `(mask seed, group, chunk, pair)` coordinate. No process-global state,
/// so every mask word is a pure function of its coordinate and replays
/// exactly — the property the retry, failover and seed-reveal paths rely
/// on.
struct MaskStream(u64);

impl MaskStream {
    fn new(seed: u64) -> MaskStream {
        // xorshift is stuck at zero; the golden-ratio constant is the
        // conventional escape hatch.
        MaskStream(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The dealer half of the tier: splits per-(group, chunk) bucket-count
/// contributions into `k` additive shares whose pairwise masks cancel
/// exactly on a full wrapping sum.
#[derive(Debug, Clone, Copy)]
pub struct ShareSplitter {
    k: usize,
    mask_seed: u64,
}

impl ShareSplitter {
    /// A splitter for `k ≥ 2` share servers under `mask_seed`.
    pub fn new(k: usize, mask_seed: u64) -> Result<ShareSplitter, DapError> {
        SecaggRole::new(k, 0)?;
        Ok(ShareSplitter { k, mask_seed })
    }

    /// Number of shares per contribution.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The public [`SeedCommitment`] for this splitter.
    pub fn commitment(&self) -> SeedCommitment {
        SeedCommitment::of(self.mask_seed, self.k)
    }

    fn pair_stream(&self, group: u64, chunk: u64, a: usize, b: usize) -> MaskStream {
        let mut h = Fnv::new();
        h.bytes(b"dap-secagg-mask/v1");
        h.word(self.mask_seed);
        h.word(group);
        h.word(chunk);
        h.word(a as u64);
        h.word(b as u64);
        MaskStream::new(h.finish())
    }

    /// Splits one contribution (the bucket-count delta of chunk `chunk`
    /// of group `group`) into `k` shares. Share 0 carries the data plus
    /// masks; every other share is masks alone — which one carries data
    /// is irrelevant to secrecy (each share is blinded by at least one
    /// mask no strict subset can resolve) but matters for dropout
    /// accounting: re-deriving *any* share needs the dealer's chunk data
    /// only for share 0.
    pub fn split(&self, group: u64, chunk: u64, counts: &[u64]) -> Vec<Vec<u64>> {
        let mut shares = vec![vec![0u64; counts.len()]; self.k];
        shares[0].copy_from_slice(counts);
        for a in 0..self.k {
            for b in (a + 1)..self.k {
                let mut stream = self.pair_stream(group, chunk, a, b);
                let masks: Vec<u64> = counts.iter().map(|_| stream.next()).collect();
                for (s, &m) in shares[a].iter_mut().zip(&masks) {
                    *s = s.wrapping_add(m);
                }
                for (s, &m) in shares[b].iter_mut().zip(&masks) {
                    *s = s.wrapping_sub(m);
                }
            }
        }
        shares
    }

    /// Re-derives share `index` of a contribution without materializing
    /// the other `k−1` — the seed-reveal path: when a share server is
    /// lost, the dealer reconstructs its full intended share from the
    /// retained chunks and combines it with the surviving quorum.
    /// Identical to `split(...)[index]` (pinned by test).
    pub fn share_for(&self, index: usize, group: u64, chunk: u64, counts: &[u64]) -> Vec<u64> {
        let mut share = if index == 0 { counts.to_vec() } else { vec![0u64; counts.len()] };
        for other in 0..self.k {
            if other == index {
                continue;
            }
            let (a, b) = (index.min(other), index.max(other));
            let mut stream = self.pair_stream(group, chunk, a, b);
            for s in share.iter_mut() {
                let m = stream.next();
                // The lower pair index adds the mask, the higher subtracts.
                *s = if index == a { s.wrapping_add(m) } else { s.wrapping_sub(m) };
            }
        }
        share
    }
}

/// One group's masked state inside a [`MaskedPart`]: the wrapping sum of
/// every share word this server accepted for the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedGroup {
    /// Per-bucket masked words (length = the group's histogram
    /// resolution `d'`). Uniformly distributed to any observer without
    /// all `k` parts; `n_reports` needs no separate field — it is the
    /// bucket-count sum after reconstruction.
    pub counts: Vec<u64>,
}

/// A share server's serialized masked state — the secret-shared analogue
/// of [`crate::session::SessionPart`], carried by the `masked-part`
/// frame and by masked journal checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedPart {
    /// [`crate::DapSession::state_digest`] of the deployment (masked and
    /// plain twins of one deployment share it).
    pub digest: u64,
    /// Share-group size the server was launched with.
    pub k: usize,
    /// The server's share index.
    pub index: usize,
    /// Echo of the dealer's [`SeedCommitment`] (0 when the server has
    /// not yet been told one — such a part never passes
    /// [`reconstruct`]).
    pub commitment: u64,
    /// Per-group masked state, in group order.
    pub groups: Vec<MaskedGroup>,
    /// Replay-guard high-water marks, exactly as in a plain part.
    pub channels: Vec<(u64, u64)>,
}

/// Wrapping-sums one complete share group — exactly `k` parts, one per
/// share index, same deployment digest and same seed commitment — into
/// the true per-group bucket counts. Every pairwise mask appears once
/// added and once subtracted across the `k` parts, so the sum is the
/// unmasked contribution total, exactly.
///
/// Validation is typed and total: a missing or duplicated share index,
/// mixed deployments, mixed seed commitments or mismatched group shapes
/// are refused before any arithmetic.
pub fn reconstruct(parts: &[MaskedPart]) -> Result<Vec<Vec<u64>>, DapError> {
    let first = parts
        .first()
        .ok_or(DapError::SessionMismatch { what: "zero sessions (nothing to merge)" })?;
    let k = first.k;
    if parts.len() != k {
        return Err(DapError::SessionMismatch { what: "secagg topology" });
    }
    let mut seen = vec![false; k];
    for part in parts {
        if part.k != k || part.index >= k || seen[part.index] {
            return Err(DapError::SessionMismatch { what: "secagg topology" });
        }
        seen[part.index] = true;
        if part.digest != first.digest {
            return Err(DapError::SessionMismatch { what: "state digest" });
        }
        if part.commitment == 0 || part.commitment != first.commitment {
            return Err(DapError::SessionMismatch { what: "seed commitment" });
        }
        if part.groups.len() != first.groups.len() {
            return Err(DapError::SessionMismatch { what: "part group count" });
        }
        for (g, fg) in part.groups.iter().zip(&first.groups) {
            if g.counts.len() != fg.counts.len() {
                return Err(DapError::SessionMismatch { what: "part histogram resolution" });
            }
        }
    }
    let mut totals: Vec<Vec<u64>> =
        first.groups.iter().map(|g| vec![0u64; g.counts.len()]).collect();
    for part in parts {
        for (total, group) in totals.iter_mut().zip(&part.groups) {
            for (t, &c) in total.iter_mut().zip(&group.counts) {
                *t = t.wrapping_add(c);
            }
        }
    }
    Ok(totals)
}

/// The masked half of a [`crate::DapSession`] in secret-sharing mode:
/// per-group wrapping accumulators in place of plaintext histograms.
#[derive(Debug, Clone)]
pub(crate) struct MaskedState {
    pub(crate) role: SecaggRole,
    /// The dealer's seed commitment, adopted at handshake (or restored
    /// from a checkpoint); `None` until a dealer announces one.
    pub(crate) commitment: Option<u64>,
    /// Per-group masked bucket words, wrapping-summed share by share.
    pub(crate) groups: Vec<Vec<u64>>,
    /// Share batches accepted (observability only — not part of the
    /// content digest).
    pub(crate) shares_applied: u64,
}

impl MaskedState {
    pub(crate) fn new(role: SecaggRole, group_resolutions: &[usize]) -> MaskedState {
        MaskedState {
            role,
            commitment: None,
            groups: group_resolutions.iter().map(|&d| vec![0u64; d]).collect(),
            shares_applied: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(len: usize, seed: u64) -> Vec<u64> {
        // Small integer counts, the realistic payload.
        (0..len).map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64)) % 7).collect()
    }

    #[test]
    fn shares_wrapping_sum_back_to_the_contribution() {
        for k in 2..=5 {
            let splitter = ShareSplitter::new(k, 0xfeed).unwrap();
            let data = contribution(16, 3);
            let shares = splitter.split(9, 4, &data);
            assert_eq!(shares.len(), k);
            let mut total = vec![0u64; data.len()];
            for share in &shares {
                for (t, &s) in total.iter_mut().zip(share) {
                    *t = t.wrapping_add(s);
                }
            }
            assert_eq!(total, data, "k = {k}");
        }
    }

    #[test]
    fn share_for_matches_split() {
        let splitter = ShareSplitter::new(4, 0xdab).unwrap();
        let data = contribution(9, 11);
        let shares = splitter.split(2, 7, &data);
        for (j, share) in shares.iter().enumerate() {
            assert_eq!(&splitter.share_for(j, 2, 7, &data), share, "share {j}");
        }
    }

    #[test]
    fn masks_are_unique_per_chunk_and_group() {
        // Reusing a mask across chunks would let one daemon difference two
        // of its own shares and unmask the contribution delta — so the
        // same data split under different (group, chunk) coordinates must
        // produce different shares.
        let splitter = ShareSplitter::new(3, 5).unwrap();
        let data = contribution(8, 1);
        let a = splitter.split(0, 0, &data);
        let b = splitter.split(0, 1, &data);
        let c = splitter.split(1, 0, &data);
        assert_ne!(a, b, "chunk coordinate must move the masks");
        assert_ne!(a, c, "group coordinate must move the masks");
        // And deterministic: the same coordinate replays the same bytes.
        assert_eq!(a, splitter.split(0, 0, &data));
    }

    #[test]
    fn any_k_minus_one_shares_stay_masked() {
        // Leave out each share in turn: the partial sum must depend on the
        // mask seed (it is mask material, not data), while the full sum
        // must not. This is the distinguishability boundary: k−1 shares
        // look uniform; the kth resolves them.
        let data = contribution(12, 2);
        for k in 2..=5 {
            let s1 = ShareSplitter::new(k, 1001).unwrap();
            let s2 = ShareSplitter::new(k, 2002).unwrap();
            for omit in 0..k {
                let partial = |s: &ShareSplitter| {
                    let shares = s.split(3, 8, &data);
                    let mut total = vec![0u64; data.len()];
                    for (j, share) in shares.iter().enumerate() {
                        if j == omit {
                            continue;
                        }
                        for (t, &w) in total.iter_mut().zip(share) {
                            *t = t.wrapping_add(w);
                        }
                    }
                    total
                };
                let p1 = partial(&s1);
                assert_ne!(p1, partial(&s2), "k = {k}, omit {omit}: partial sum ignored the seed");
                assert_ne!(p1, data, "k = {k}, omit {omit}: partial sum leaked the data");
            }
        }
    }

    #[test]
    fn reconstruct_validates_then_cancels() {
        let splitter = ShareSplitter::new(3, 77).unwrap();
        let commitment = splitter.commitment().digest();
        let data = [contribution(4, 1), contribution(6, 2)];
        let mut parts: Vec<MaskedPart> = (0..3)
            .map(|j| MaskedPart {
                digest: 42,
                k: 3,
                index: j,
                commitment,
                groups: data
                    .iter()
                    .enumerate()
                    .map(|(g, d)| MaskedGroup {
                        counts: splitter.share_for(j, g as u64, 0, d),
                    })
                    .collect(),
                channels: vec![],
            })
            .collect();
        let totals = reconstruct(&parts).expect("complete share group");
        assert_eq!(totals[0], data[0]);
        assert_eq!(totals[1], data[1]);

        // A duplicated index, a foreign digest and a foreign commitment
        // are each refused typed.
        let mut dup = parts.clone();
        dup[2].index = 0;
        assert!(matches!(
            reconstruct(&dup).unwrap_err(),
            DapError::SessionMismatch { what: "secagg topology" }
        ));
        let mut alien = parts.clone();
        alien[1].digest = 43;
        assert!(matches!(
            reconstruct(&alien).unwrap_err(),
            DapError::SessionMismatch { what: "state digest" }
        ));
        parts[1].commitment = SeedCommitment::of(78, 3).digest();
        assert!(matches!(
            reconstruct(&parts).unwrap_err(),
            DapError::SessionMismatch { what: "seed commitment" }
        ));
        assert!(matches!(
            reconstruct(&parts[..2]).unwrap_err(),
            DapError::SessionMismatch { what: "secagg topology" }
        ));
        assert!(reconstruct(&[]).is_err());
    }

    #[test]
    fn commitments_bind_seed_and_k() {
        let c = SeedCommitment::of(7, 3);
        assert_eq!(c, SeedCommitment::of(7, 3));
        assert_ne!(c, SeedCommitment::of(8, 3));
        assert_ne!(c, SeedCommitment::of(7, 4));
        assert_ne!(c.digest(), 0, "0 is the 'never announced' sentinel");
    }

    #[test]
    fn roles_and_splitters_validate_their_topology() {
        assert!(SecaggRole::new(1, 0).is_err(), "k = 1 is the trusted-aggregator tier");
        assert!(SecaggRole::new(3, 3).is_err());
        assert!(SecaggRole::new(2, 1).is_ok());
        assert!(ShareSplitter::new(1, 0).is_err());
        assert!(ShareSplitter::new(2, 0).is_ok());
    }
}
