//! The simulated user population a protocol run consumes.

/// A population of `N` users: honest users holding values, plus a Byzantine
/// coalition of known size (known to the *simulation*, not to the
/// collector).
#[derive(Debug, Clone)]
pub struct Population {
    /// Honest users' true values, already normalized to the mechanism's
    /// input domain.
    pub honest: Vec<f64>,
    /// Number of colluding Byzantine users.
    pub byzantine: usize,
}

impl Population {
    /// Builds a population from honest values and a Byzantine proportion
    /// `γ ∈ [0, ½)` of the *total* population: `m = ⌊γ/(1−γ)·n⌋` attackers
    /// join `n` honest users so that `m/(n+m) ≈ γ`.
    pub fn with_gamma(honest: Vec<f64>, gamma: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&gamma),
            "Byzantine proportion {gamma} outside [0, 0.5) (BFT bound, §III-A)"
        );
        let n = honest.len() as f64;
        let m = (gamma / (1.0 - gamma) * n).round() as usize;
        Population { honest, byzantine: m }
    }

    /// Total population size `N = n + m`.
    pub fn total(&self) -> usize {
        self.honest.len() + self.byzantine
    }

    /// True Byzantine proportion `γ = m / N`.
    pub fn gamma(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.byzantine as f64 / self.total() as f64
    }

    /// True honest mean `O` — the protocol's estimand.
    pub fn true_mean(&self) -> f64 {
        dap_estimation::stats::mean(&self.honest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_gamma_hits_the_target_proportion() {
        let pop = Population::with_gamma(vec![0.0; 7_500], 0.25);
        assert_eq!(pop.byzantine, 2_500);
        assert!((pop.gamma() - 0.25).abs() < 1e-3);
        assert_eq!(pop.total(), 10_000);
    }

    #[test]
    fn gamma_zero_means_no_attackers() {
        let pop = Population::with_gamma(vec![1.0; 100], 0.0);
        assert_eq!(pop.byzantine, 0);
        assert_eq!(pop.gamma(), 0.0);
    }

    #[test]
    #[should_panic(expected = "BFT bound")]
    fn rejects_majority_byzantine() {
        Population::with_gamma(vec![0.0; 10], 0.5);
    }

    #[test]
    fn true_mean_ignores_attackers() {
        let pop = Population { honest: vec![-1.0, 1.0, 1.0, 1.0], byzantine: 1000 };
        assert!((pop.true_mean() - 0.5).abs() < 1e-12);
    }
}
