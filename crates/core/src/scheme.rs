//! Intra-group mean estimation (Eq. 13) under the three reconstruction
//! schemes.

use dap_attack::Side;
use dap_emf::{cemf_star, cemf_star_threshold, EmfConfig};
use dap_estimation::em::{self, EmOutcome, EmWorkspace, MStep};
use dap_estimation::{cached_for_numeric, Grid, PoisonRegion};
use dap_ldp::NumericMechanism;

/// Which EMF reconstruction a DAP variant uses per group (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain EMF (Algorithm 2) — the `DAP_EMF` scheme.
    Emf,
    /// EMF\* post-processing (Algorithm 4) — `DAP_EMF*`.
    EmfStar,
    /// CEMF\* post-processing (Theorem 5) — `DAP_CEMF*`.
    CemfStar,
}

impl Scheme {
    /// All schemes, in the paper's order.
    pub const ALL: [Scheme; 3] = [Scheme::Emf, Scheme::EmfStar, Scheme::CemfStar];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Emf => "DAP_EMF",
            Scheme::EmfStar => "DAP_EMF*",
            Scheme::CemfStar => "DAP_CEMF*",
        }
    }

    /// Parses a [`Scheme::label`] back (the wire encoding of a scheme).
    pub fn from_label(label: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// One group's corrected mean estimate.
#[derive(Debug, Clone)]
pub struct GroupEstimate {
    /// The corrected group mean `M_t` (Eq. 13).
    pub mean: f64,
    /// Reports observed in the group `N_t`.
    pub n_reports: usize,
    /// Estimated poison-report count `m̂_t = N_t·Σŷ(t)`.
    pub m_hat: f64,
    /// The group's reconstructed poison share `Σŷ(t)`.
    pub gamma_group: f64,
}

/// Estimates one group's mean from its reports (Eq. 13):
/// `M_t = (Σ v' − N_t·Σ_j ŷ_j(t)·ν_j) / (N_t − m̂_t)`.
///
/// * `side`/`o_prime` — poisoned side and pivot from the probing stage,
/// * `gamma_global` — coalition proportion probed from the most private
///   group, consumed by the EMF\*/CEMF\* constraints.
pub fn estimate_group_mean(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    side: Side,
    o_prime: f64,
    gamma_global: f64,
    scheme: Scheme,
    config: &EmfConfig,
) -> GroupEstimate {
    estimate_group_means(
        mech,
        reports,
        side,
        o_prime,
        gamma_global,
        &[scheme],
        config,
        None,
        &mut EmWorkspace::new(),
    )
    .pop()
    .expect("one scheme in, one estimate out")
}

/// A group's report set reduced to what estimation needs: the `d'`-bucket
/// histogram, the report sum (for Eq. 13) and the report count. The
/// protocol streams perturbed reports straight into this, so the raw
/// per-group report vectors never materialize.
#[derive(Debug, Clone)]
pub struct GroupHistogram {
    /// Per-output-bucket report counts (length `d'`).
    pub counts: Vec<f64>,
    /// `Σ v'` over the group's reports.
    pub sum_reports: f64,
    /// Number of reports `N_t`.
    pub n_reports: usize,
}

impl GroupHistogram {
    /// Buckets a report slice over the mechanism's output range.
    pub fn from_reports(mech: &dyn NumericMechanism, reports: &[f64], d_out: usize) -> Self {
        let (olo, ohi) = mech.output_range();
        let counts = Grid::new(olo, ohi, d_out).counts(reports);
        GroupHistogram {
            counts,
            sum_reports: reports.iter().sum(),
            n_reports: reports.len(),
        }
    }
}

/// [`estimate_group_mean`] for several schemes over the *same* reports,
/// sharing everything the schemes have in common: the report histogram, the
/// (cached) transform matrix, and the base EMF fit — EMF's own outcome and
/// the input to CEMF\*'s suppression rule, which the per-scheme path used
/// to recompute from scratch. EMF\* never needs the base fit at all, so it
/// runs exactly one constrained solve.
///
/// `probed_base` short-circuits the base fit with an EMF outcome already
/// computed on this exact `(matrix, counts, options)` problem — the probing
/// stage's chosen-side run for the most private group. Estimates come back
/// in `schemes` order.
#[allow(clippy::too_many_arguments)]
pub fn estimate_group_means(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    side: Side,
    o_prime: f64,
    gamma_global: f64,
    schemes: &[Scheme],
    config: &EmfConfig,
    probed_base: Option<&EmOutcome>,
    ws: &mut EmWorkspace,
) -> Vec<GroupEstimate> {
    let hist = GroupHistogram::from_reports(mech, reports, config.d_out);
    estimate_group_means_hist(
        mech,
        &hist,
        side,
        o_prime,
        gamma_global,
        schemes,
        config,
        probed_base,
        ws,
    )
}

/// [`estimate_group_means`] over a pre-bucketed [`GroupHistogram`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_group_means_hist(
    mech: &dyn NumericMechanism,
    hist: &GroupHistogram,
    side: Side,
    o_prime: f64,
    gamma_global: f64,
    schemes: &[Scheme],
    config: &EmfConfig,
    probed_base: Option<&EmOutcome>,
    ws: &mut EmWorkspace,
) -> Vec<GroupEstimate> {
    let n_reports = hist.n_reports;
    if n_reports == 0 {
        return schemes
            .iter()
            .map(|_| GroupEstimate { mean: 0.0, n_reports: 0, m_hat: 0.0, gamma_group: 0.0 })
            .collect();
    }
    assert_eq!(hist.counts.len(), config.d_out, "histogram resolution mismatch");
    let counts = &hist.counts;
    let region = match side {
        Side::Right => PoisonRegion::RightOf(o_prime),
        Side::Left => PoisonRegion::LeftOf(o_prime),
    };
    let matrix = cached_for_numeric(mech, config.d_in, config.d_out, &region);

    // Shared solves, each at most once.
    let needs_base =
        schemes.iter().any(|s| matches!(s, Scheme::Emf | Scheme::CemfStar));
    let base: Option<EmOutcome> = if needs_base {
        Some(match probed_base {
            Some(b) => b.clone(),
            None => em::solve_in(&matrix, counts, MStep::Free, &config.em, ws),
        })
    } else {
        None
    };
    let star: Option<EmOutcome> = schemes.contains(&Scheme::EmfStar).then(|| {
        em::solve_in(&matrix, counts, MStep::Constrained { gamma: gamma_global }, &config.em, ws)
    });
    let cemf: Option<EmOutcome> = schemes.contains(&Scheme::CemfStar).then(|| {
        let b = base.as_ref().expect("base computed for CEMF*");
        let thr = cemf_star_threshold(gamma_global, matrix.poison_buckets().len());
        cemf_star(&matrix, counts, gamma_global, thr, b, &config.em)
    });

    let sum_reports: f64 = hist.sum_reports;
    schemes
        .iter()
        .map(|scheme| {
            let outcome = match scheme {
                Scheme::Emf => base.as_ref().expect("base computed for EMF"),
                Scheme::EmfStar => star.as_ref().expect("star computed"),
                Scheme::CemfStar => cemf.as_ref().expect("cemf computed"),
            };
            let gamma_group: f64 = outcome.poison.iter().sum();
            let nt = n_reports as f64;
            let m_hat = nt * gamma_group;
            let poison_term: f64 = outcome
                .poison
                .iter()
                .zip(matrix.output_centers())
                .map(|(y, nu)| nt * y * nu)
                .sum();
            let honest_reports = nt - m_hat;
            let mean = if honest_reports >= 1.0 {
                mech.debias_mean((sum_reports - poison_term) / honest_reports)
            } else {
                // Degenerate probe claiming everything is poison: fall back
                // to the uncorrected mean rather than dividing by ~0.
                mech.debias_mean(sum_reports / nt)
            };
            GroupEstimate { mean, n_reports, m_hat, gamma_group }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{Attack, UniformAttack};
    use dap_estimation::rng::seeded;
    use dap_ldp::PiecewiseMechanism;

    fn group_reports(
        eps: f64,
        n: usize,
        gamma: f64,
        honest_value: f64,
        seed: u64,
    ) -> (Vec<f64>, PiecewiseMechanism) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mut rng = seeded(seed);
        let m = (n as f64 * gamma).round() as usize;
        let mut reports: Vec<f64> =
            (0..n - m).map(|_| mech.perturb(honest_value, &mut rng)).collect();
        reports.extend(UniformAttack::of_upper(0.5, 1.0).reports(m, &mech, &mut rng));
        (reports, mech)
    }

    #[test]
    fn corrected_mean_beats_raw_mean_under_attack() {
        let truth = -0.3;
        let (reports, mech) = group_reports(0.5, 30_000, 0.25, truth, 1);
        let raw = dap_estimation::stats::mean(&reports);
        let config = EmfConfig::capped(reports.len(), 0.5, 64);
        for scheme in Scheme::ALL {
            let est = estimate_group_mean(
                &mech,
                &reports,
                Side::Right,
                0.0,
                0.25,
                scheme,
                &config,
            );
            assert!(
                (est.mean - truth).abs() < (raw - truth).abs(),
                "{}: {} vs raw {}",
                scheme.label(),
                est.mean,
                raw
            );
            assert!(est.gamma_group > 0.1, "{}: gamma {}", scheme.label(), est.gamma_group);
        }
    }

    #[test]
    fn emf_star_respects_global_gamma() {
        let (reports, mech) = group_reports(1.0, 20_000, 0.2, 0.0, 2);
        let config = EmfConfig::capped(reports.len(), 1.0, 64);
        let est =
            estimate_group_mean(&mech, &reports, Side::Right, 0.0, 0.2, Scheme::EmfStar, &config);
        assert!((est.gamma_group - 0.2).abs() < 1e-9);
        assert!((est.m_hat - 0.2 * reports.len() as f64).abs() < 1.0);
    }

    #[test]
    fn clean_group_is_estimated_without_large_bias() {
        let truth = 0.4;
        let (reports, mech) = group_reports(1.0, 30_000, 0.0, truth, 3);
        let config = EmfConfig::capped(reports.len(), 1.0, 64);
        let est =
            estimate_group_mean(&mech, &reports, Side::Right, 0.0, 0.0, Scheme::EmfStar, &config);
        assert!((est.mean - truth).abs() < 0.05, "estimate {}", est.mean);
    }

    #[test]
    fn empty_group_is_harmless() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let config = EmfConfig::capped(0, 1.0, 16);
        let est = estimate_group_mean(&mech, &[], Side::Right, 0.0, 0.1, Scheme::Emf, &config);
        assert_eq!(est.mean, 0.0);
        assert_eq!(est.n_reports, 0);
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(Scheme::Emf.label(), "DAP_EMF");
        assert_eq!(Scheme::EmfStar.label(), "DAP_EMF*");
        assert_eq!(Scheme::CemfStar.label(), "DAP_CEMF*");
    }
}
