//! Inter-group mean aggregation (Algorithm 5 / Theorem 6).
//!
//! Group means are combined linearly with weights minimizing the worst-case
//! variance (all inputs at ±1). The paper's Algorithm 5 line 3 sets
//! `w_t ∝ 1/B_t` with `B_t = n̂_t·Var_worst(ε_t)`, while its Theorem 6 proof
//! derives `w_t ∝ n̂_t²/B_t`; the two differ whenever group sizes differ.
//! Both are implemented (plus uniform weights) so the discrepancy can be
//! measured — see the `ablation-weights` experiment.

/// Weighting rule for combining group means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// `w_t ∝ 1/B_t` — Algorithm 5 as printed (the default).
    AlgorithmFive,
    /// `w_t ∝ n̂_t²/B_t` — the weight the Theorem 6 proof derives.
    ProofOptimal,
    /// Equal weights, as a reference point.
    Uniform,
}

/// Result of an aggregation.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The combined mean `M̃ = Σ w_t M_t`.
    pub mean: f64,
    /// The weights used (sum to 1).
    pub weights: Vec<f64>,
    /// The minimal worst-case variance `[Σ n̂_t²/B_t]⁻¹` of Theorem 6.
    pub min_variance: f64,
}

/// The paper's `B_t = n̂_t·Var_worst(v'; ε_t)` where the worst-case
/// per-report variance for PM is `1/(e^{ε/2}−1) + (e^{ε/2}+3)/(3(e^{ε/2}−1)²)`
/// (Theorem 6). `worst_case_variance` is passed in so other mechanisms can
/// reuse the aggregation.
pub fn b_factor(n_hat: f64, worst_case_variance: f64) -> f64 {
    n_hat.max(1.0) * worst_case_variance
}

/// Combines group means (Algorithm 5).
///
/// * `means[t]` — intra-group estimate `M_t`,
/// * `n_hats[t]` — estimated honest-user count `n̂_t`,
/// * `worst_vars[t]` — per-report worst-case variance at `ε_t`.
///
/// ```
/// use dap_core::{aggregate, Weighting};
///
/// // Two groups: the first has a 10x smaller per-report variance (larger
/// // ε), so it dominates the combination.
/// let agg = aggregate(&[0.10, 0.50], &[1000.0, 1000.0], &[1.0, 10.0],
///                     Weighting::AlgorithmFive);
/// assert!((agg.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(agg.weights[0] > 0.9);
/// assert!(agg.mean < 0.15);
/// ```
///
/// # Panics
/// If slice lengths differ or are empty.
pub fn aggregate(
    means: &[f64],
    n_hats: &[f64],
    worst_vars: &[f64],
    weighting: Weighting,
) -> Aggregate {
    assert!(
        !means.is_empty() && means.len() == n_hats.len() && means.len() == worst_vars.len(),
        "aggregation inputs must be non-empty and the same length"
    );
    let b: Vec<f64> = n_hats.iter().zip(worst_vars).map(|(&n, &v)| b_factor(n, v)).collect();
    let raw: Vec<f64> = match weighting {
        Weighting::AlgorithmFive => b.iter().map(|&bt| 1.0 / bt).collect(),
        Weighting::ProofOptimal => {
            n_hats.iter().zip(&b).map(|(&n, &bt)| n * n / bt).collect()
        }
        Weighting::Uniform => vec![1.0; means.len()],
    };
    let total: f64 = raw.iter().sum();
    let weights: Vec<f64> = raw.iter().map(|&w| w / total).collect();
    let mean = weights.iter().zip(means).map(|(w, m)| w * m).sum();
    // Theorem 6's minimal variance (independent of the weighting actually
    // chosen; reported for diagnostics).
    let min_variance = 1.0 / n_hats.iter().zip(&b).map(|(&n, &bt)| n * n / bt).sum::<f64>();
    Aggregate { mean, weights, min_variance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_ldp::{NumericMechanism, PiecewiseMechanism};

    #[test]
    fn weights_sum_to_one() {
        for w in [Weighting::AlgorithmFive, Weighting::ProofOptimal, Weighting::Uniform] {
            let agg = aggregate(&[0.1, 0.2, 0.3], &[100.0, 200.0, 400.0], &[1.0, 2.0, 4.0], w);
            assert!((agg.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{w:?}");
        }
    }

    #[test]
    fn higher_budget_groups_get_more_weight() {
        // Same n̂, increasing worst-case variance (decreasing ε): weights
        // must decrease.
        let pm_var = |eps: f64| PiecewiseMechanism::with_epsilon(eps).unwrap().worst_case_variance();
        let vars = [pm_var(2.0), pm_var(1.0), pm_var(0.5)];
        let agg =
            aggregate(&[0.0, 0.0, 0.0], &[100.0, 100.0, 100.0], &vars, Weighting::AlgorithmFive);
        assert!(agg.weights[0] > agg.weights[1]);
        assert!(agg.weights[1] > agg.weights[2]);
    }

    #[test]
    fn uniform_weighting_is_plain_average() {
        let agg = aggregate(&[1.0, 3.0], &[10.0, 1000.0], &[1.0, 1.0], Weighting::Uniform);
        assert!((agg.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn the_two_printed_rules_disagree_on_unequal_groups() {
        // Group 1 has 10× the users at the same per-report variance.
        // Algorithm 5 (w ∝ 1/B = 1/(n̂·v)) *down*-weights the larger group
        // to 1/11; the Theorem 6 proof (w ∝ n̂²/B = n̂/v) up-weights it to
        // 10/11. This is the discrepancy the weights ablation measures.
        let a5 = aggregate(&[0.0, 1.0], &[10.0, 100.0], &[1.0, 1.0], Weighting::AlgorithmFive);
        let po = aggregate(&[0.0, 1.0], &[10.0, 100.0], &[1.0, 1.0], Weighting::ProofOptimal);
        assert!((a5.weights[1] - 1.0 / 11.0).abs() < 1e-9, "{:?}", a5.weights);
        assert!((po.weights[1] - 10.0 / 11.0).abs() < 1e-9, "{:?}", po.weights);
    }

    #[test]
    fn min_variance_matches_theorem6_closed_form() {
        let n = [100.0, 200.0];
        let v = [2.0, 3.0];
        let agg = aggregate(&[0.0, 0.0], &n, &v, Weighting::AlgorithmFive);
        let expect = 1.0 / (n[0] * n[0] / (n[0] * v[0]) + n[1] * n[1] / (n[1] * v[1]));
        assert!((agg.min_variance - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_group_sizes_are_floored() {
        // n̂ can come out 0 from a bad probe; b_factor floors it so the
        // weights stay finite.
        let agg = aggregate(&[0.5], &[0.0], &[1.0], Weighting::AlgorithmFive);
        assert!(agg.mean.is_finite());
        assert_eq!(agg.weights, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn rejects_mismatched_inputs() {
        aggregate(&[1.0], &[1.0, 2.0], &[1.0], Weighting::Uniform);
    }
}
