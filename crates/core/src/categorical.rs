//! Categorical frequency estimation under attack (§V-D, Fig. 9c-d).
//!
//! Honest users perturb their category with k-RR; Byzantine users inject
//! chosen categories directly. The collector first *locates* the poisoned
//! categories with a greedy likelihood-ratio extension of Algorithm 3:
//! the poison hypothesis `{c}` is worth keeping exactly when it raises the
//! EM log-likelihood far beyond the O(1) gain a spurious free parameter
//! yields — an injected category's count exceeds what any honest
//! distribution smoothed through k-RR can produce, so its gain is O(N·KL).
//! The honest frequency vector is then reconstructed with EMF / EMF\* /
//! CEMF\* on the located poison block.

use crate::scheme::Scheme;
use dap_emf::{cemf_star, cemf_star_threshold, emf, emf_star};
use dap_estimation::em::EmOptions;
use dap_estimation::TransformMatrix;
use dap_ldp::{CategoricalMechanism, KRandomizedResponse};
use rand::RngCore;

/// Configuration for one categorical DAP run.
#[derive(Debug, Clone, Copy)]
pub struct CategoricalConfig {
    /// Privacy budget ε for k-RR.
    pub eps: f64,
    /// Reconstruction scheme.
    pub scheme: Scheme,
    /// Absolute log-likelihood gain a candidate category must contribute.
    /// A useless extra parameter gains O(1) (half a χ²₁); genuine injections
    /// gain thousands at Fig. 9 scales.
    pub min_ll_gain: f64,
    /// Relative floor: later additions must keep at least this fraction of
    /// the first (largest) gain.
    pub min_relative_gain: f64,
    /// Upper bound on how many categories may be flagged as poisoned.
    pub max_poisoned: usize,
    /// EM stopping rule.
    pub em: EmOptions,
}

impl CategoricalConfig {
    /// Defaults matching the Fig. 9 experiments.
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        CategoricalConfig {
            eps,
            scheme,
            min_ll_gain: 25.0,
            min_relative_gain: 0.02,
            max_poisoned: 6,
            em: EmOptions::paper_default(eps),
        }
    }
}

/// Result of a categorical run.
#[derive(Debug, Clone)]
pub struct CategoricalOutput {
    /// Estimated honest frequency vector (sums to 1).
    pub frequencies: Vec<f64>,
    /// Categories flagged as poisoned.
    pub poisoned: Vec<usize>,
    /// Reconstructed coalition proportion.
    pub gamma: f64,
}

/// Greedy Algorithm-3 extension: grow the poison category set while each
/// addition buys a log-likelihood gain far above parameter-counting noise.
pub fn locate_poisoned_categories(
    mech: &KRandomizedResponse,
    counts: &[f64],
    config: &CategoricalConfig,
) -> Vec<usize> {
    let k = mech.categories();
    assert_eq!(counts.len(), k, "counts length must equal k");
    // Tight EM runs: the location step compares likelihoods, so converge
    // well past the estimation tolerance.
    let em = EmOptions { tol: config.em.tol.min(1e-3), max_iters: config.em.max_iters.max(500) };
    let mut chosen: Vec<usize> = Vec::new();
    let baseline = TransformMatrix::for_categorical(mech, &chosen);
    let mut best_ll = emf(&baseline, counts, &em).log_likelihood;
    let mut first_gain: Option<f64> = None;

    while chosen.len() < config.max_poisoned.min(k - 1) {
        let mut best_candidate: Option<(usize, f64)> = None;
        for c in 0..k {
            if chosen.contains(&c) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(c);
            let matrix = TransformMatrix::for_categorical(mech, &trial);
            let ll = emf(&matrix, counts, &em).log_likelihood;
            if best_candidate.is_none_or(|(_, best)| ll > best) {
                best_candidate = Some((c, ll));
            }
        }
        let Some((c, ll)) = best_candidate else { break };
        let gain = ll - best_ll;
        let floor = match first_gain {
            None => config.min_ll_gain,
            Some(first) => config.min_ll_gain.max(config.min_relative_gain * first),
        };
        if gain < floor {
            break;
        }
        first_gain.get_or_insert(gain);
        chosen.push(c);
        best_ll = ll;
    }
    chosen.sort_unstable();
    chosen
}

/// Full pipeline: locate poisoned categories, then reconstruct the honest
/// frequencies from the report counts.
pub fn estimate_frequencies(
    mech: &KRandomizedResponse,
    counts: &[f64],
    config: &CategoricalConfig,
) -> CategoricalOutput {
    let poisoned = locate_poisoned_categories(mech, counts, config);
    let matrix = TransformMatrix::for_categorical(mech, &poisoned);
    let base = emf(&matrix, counts, &config.em);
    let gamma = base.poison_mass();
    let outcome = match config.scheme {
        Scheme::Emf => base,
        Scheme::EmfStar => emf_star(&matrix, counts, gamma, &config.em),
        Scheme::CemfStar => {
            let thr = cemf_star_threshold(gamma, matrix.poison_buckets().len());
            cemf_star(&matrix, counts, gamma, thr, &base, &config.em)
        }
    };
    let total: f64 = outcome.normal.iter().sum();
    let frequencies = if total > 0.0 {
        outcome.normal.iter().map(|&v| v / total).collect()
    } else {
        vec![1.0 / matrix.d_in() as f64; matrix.d_in()]
    };
    CategoricalOutput { frequencies, poisoned, gamma }
}

/// Configuration of the grouped categorical DAP (the Fig. 9c-d protocol).
#[derive(Debug, Clone, Copy)]
pub struct CategoricalDapConfig {
    /// Global per-user budget ε.
    pub eps: f64,
    /// Minimum group budget ε₀ (probing group).
    pub eps0: f64,
    /// Reconstruction scheme for the per-group estimates.
    pub scheme: Scheme,
    /// Location parameters applied on the probing group.
    pub location: CategoricalConfig,
}

impl CategoricalDapConfig {
    /// Paper-style defaults: ε₀ = 1/16, location at the probing budget.
    pub fn paper_default(eps: f64, scheme: Scheme) -> Self {
        let eps0: f64 = 1.0 / 16.0;
        CategoricalDapConfig {
            eps,
            eps0,
            scheme,
            location: CategoricalConfig::paper_default(eps0.min(eps), scheme),
        }
    }
}

/// Grouped categorical DAP: random ε-grouping as in the numeric protocol,
/// poison-category location and `γ̂` probing on the most private group
/// (where honest k-RR counts are near-uniform and injections stick out —
/// Theorem 3's analogue), per-group EMF\*/CEMF\* reconstruction with the
/// shared poison set, and inverse-variance aggregation of the per-group
/// frequency vectors (k-RR frequency-oracle variance `∝ 1/(n̂_t (p_t−q_t)²)`).
pub fn categorical_dap(
    honest: &[usize],
    byzantine: usize,
    attack_categories: &[usize],
    k: usize,
    config: &CategoricalDapConfig,
    rng: &mut dyn RngCore,
) -> CategoricalOutput {
    use crate::grouping::GroupPlan;
    use rand::Rng;
    assert!(!honest.is_empty(), "empty honest population");
    assert!(attack_categories.iter().all(|&c| c < k), "attack category out of range");
    assert!(byzantine == 0 || !attack_categories.is_empty(), "attack needs target categories");
    let n_total = honest.len() + byzantine;
    let plan = GroupPlan::build(n_total, config.eps, config.eps0, rng);

    // Perturbation per group: honest users k-RR their category k_t times,
    // the coalition injects k_t reports each over its target categories.
    let mut group_counts: Vec<Vec<f64>> = Vec::with_capacity(plan.len());
    let mut group_mechs: Vec<KRandomizedResponse> = Vec::with_capacity(plan.len());
    for g in 0..plan.len() {
        let mech = KRandomizedResponse::new(plan.budgets[g], k).expect("k >= 2");
        let k_t = plan.reports_per_user[g];
        let mut counts = vec![0.0; k];
        for &user in &plan.assignment[g] {
            if user < honest.len() {
                for _ in 0..k_t {
                    counts[mech.perturb(honest[user], rng)] += 1.0;
                }
            } else {
                for _ in 0..k_t {
                    let c = attack_categories[rng.gen_range(0..attack_categories.len().max(1))];
                    counts[c] += 1.0;
                }
            }
        }
        group_counts.push(counts);
        group_mechs.push(mech);
    }

    // Probing on the most private group.
    let pg = plan.probe_group();
    let poisoned =
        locate_poisoned_categories(&group_mechs[pg], &group_counts[pg], &config.location);
    let probe_matrix = TransformMatrix::for_categorical(&group_mechs[pg], &poisoned);
    let gamma = emf(&probe_matrix, &group_counts[pg], &config.location.em).poison_mass();

    // Per-group reconstruction with the shared poison set and γ̂.
    let mut freq_acc = vec![0.0; k];
    let mut weight_acc = 0.0;
    for g in 0..plan.len() {
        let mech = &group_mechs[g];
        let matrix = TransformMatrix::for_categorical(mech, &poisoned);
        let em = EmOptions::paper_default(plan.budgets[g].get());
        let base = emf(&matrix, &group_counts[g], &em);
        let outcome = match config.scheme {
            Scheme::Emf => base,
            Scheme::EmfStar => emf_star(&matrix, &group_counts[g], gamma, &em),
            Scheme::CemfStar => {
                let thr = cemf_star_threshold(gamma, matrix.poison_buckets().len());
                cemf_star(&matrix, &group_counts[g], gamma, thr, &base, &em)
            }
        };
        let total: f64 = outcome.normal.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let n_t: f64 = group_counts[g].iter().sum();
        let n_hat = n_t * (1.0 - gamma) * plan.budgets[g].get() / config.eps;
        let pq = mech.p_keep() - mech.p_flip();
        let weight = n_hat * pq * pq;
        for (acc, &v) in freq_acc.iter_mut().zip(&outcome.normal) {
            *acc += weight * v / total;
        }
        weight_acc += weight;
    }
    let frequencies: Vec<f64> = if weight_acc > 0.0 {
        freq_acc.iter().map(|&v| v / weight_acc).collect()
    } else {
        vec![1.0 / k as f64; k]
    };
    CategoricalOutput { frequencies, poisoned, gamma }
}

/// The Ostrich categorical baseline: standard k-RR debiasing over *all*
/// reports, clamped and renormalized.
pub fn ostrich_frequencies(mech: &KRandomizedResponse, counts: &[f64]) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / mech.categories() as f64; mech.categories()];
    }
    let mut freqs: Vec<f64> = counts.iter().map(|&c| c / total).collect();
    mech.debias_frequencies(&mut freqs);
    for f in &mut freqs {
        *f = f.max(0.0);
    }
    let s: f64 = freqs.iter().sum();
    if s > 0.0 {
        for f in &mut freqs {
            *f /= s;
        }
    }
    freqs
}

/// Simulates a categorical collection: honest users k-RR their categories,
/// the coalition injects uniformly over `poison_categories`. Returns report
/// counts.
pub fn simulate_reports(
    mech: &KRandomizedResponse,
    honest: &[usize],
    byzantine: usize,
    poison_categories: &[usize],
    rng: &mut dyn RngCore,
) -> Vec<f64> {
    use rand::Rng;
    let k = mech.categories();
    let mut counts = vec![0.0; k];
    for &v in honest {
        counts[mech.perturb(v, rng)] += 1.0;
    }
    assert!(!poison_categories.is_empty() || byzantine == 0, "attack needs target categories");
    for _ in 0..byzantine {
        let c = poison_categories[rng.gen_range(0..poison_categories.len())];
        counts[c] += 1.0;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mse;
    use dap_ldp::Epsilon;

    fn covid_like_honest(n: usize, rng: &mut dyn RngCore) -> Vec<usize> {
        dap_datasets::sample_covid(n, rng)
    }

    #[test]
    fn locates_a_single_poisoned_category() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 15).unwrap();
        let mut rng = seeded(1);
        let honest = covid_like_honest(40_000, &mut rng);
        let counts = simulate_reports(&mech, &honest, 10_000, &[10], &mut rng);
        let cfg = CategoricalConfig::paper_default(1.0, Scheme::EmfStar);
        let found = locate_poisoned_categories(&mech, &counts, &cfg);
        assert!(found.contains(&10), "found {found:?}");
        assert!(found.len() <= 3, "over-flagged: {found:?}");
    }

    #[test]
    fn locates_a_poisoned_block() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 15).unwrap();
        let mut rng = seeded(2);
        let honest = covid_like_honest(40_000, &mut rng);
        let counts = simulate_reports(&mech, &honest, 12_000, &[10, 11, 12], &mut rng);
        let cfg = CategoricalConfig::paper_default(1.0, Scheme::EmfStar);
        let found = locate_poisoned_categories(&mech, &counts, &cfg);
        for c in [10, 11, 12] {
            assert!(found.contains(&c), "missing {c} in {found:?}");
        }
    }

    #[test]
    fn dap_frequencies_beat_ostrich_under_attack() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 15).unwrap();
        let mut rng = seeded(3);
        let honest = covid_like_honest(40_000, &mut rng);
        // True honest frequencies.
        let mut truth = vec![0.0; 15];
        for &v in &honest {
            truth[v] += 1.0;
        }
        let n = honest.len() as f64;
        truth.iter_mut().for_each(|t| *t /= n);

        let counts = simulate_reports(&mech, &honest, 10_000, &[10], &mut rng);
        let cfg = CategoricalConfig::paper_default(1.0, Scheme::EmfStar);
        let dap = estimate_frequencies(&mech, &counts, &cfg);
        let ostrich = ostrich_frequencies(&mech, &counts);

        let err_dap: f64 = dap
            .frequencies
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 15.0;
        let err_ostrich: f64 = ostrich
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 15.0;
        assert!(
            err_dap < err_ostrich,
            "DAP {err_dap:.2e} not below Ostrich {err_ostrich:.2e}"
        );
        assert!((dap.frequencies.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clean_data_flags_nothing_catastrophic() {
        let mech = KRandomizedResponse::new(Epsilon::of(1.0), 15).unwrap();
        let mut rng = seeded(4);
        let honest = covid_like_honest(40_000, &mut rng);
        let counts = simulate_reports(&mech, &honest, 0, &[], &mut rng);
        let cfg = CategoricalConfig::paper_default(1.0, Scheme::EmfStar);
        let out = estimate_frequencies(&mech, &counts, &cfg);
        // Reconstruction still close to the k-RR debiased truth.
        let ostrich = ostrich_frequencies(&mech, &counts);
        let diff = mse(&out.frequencies, 0.0) - mse(&ostrich, 0.0);
        assert!(diff.abs() < 0.05);
        assert!(out.gamma < 0.25, "phantom coalition {}", out.gamma);
    }

    #[test]
    fn grouped_dap_locates_block_even_at_large_eps() {
        // A single batch at ε = 2 cannot separate a 3-category injection
        // (the honest block absorbs it feasibly); the grouped protocol's
        // ε₀ = 1/16 probe group can.
        let mut rng = seeded(11);
        let honest = covid_like_honest(30_000, &mut rng);
        let cfg = CategoricalDapConfig::paper_default(2.0, Scheme::EmfStar);
        let out = categorical_dap(&honest, 10_000, &[10, 11, 12], 15, &cfg, &mut rng);
        for c in [10usize, 11, 12] {
            assert!(out.poisoned.contains(&c), "missing {c} in {:?}", out.poisoned);
        }
        assert!((out.gamma - 0.25).abs() < 0.08, "gamma {}", out.gamma);
        assert!((out.frequencies.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_dap_beats_single_batch_ostrich() {
        let mut rng = seeded(12);
        let honest = covid_like_honest(30_000, &mut rng);
        let mut truth = vec![0.0; 15];
        for &v in &honest {
            truth[v] += 1.0;
        }
        truth.iter_mut().for_each(|t| *t /= honest.len() as f64);
        let err = |est: &[f64]| -> f64 {
            est.iter().zip(&truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / 15.0
        };

        let eps = 1.0;
        let cfg = CategoricalDapConfig::paper_default(eps, Scheme::EmfStar);
        let dap = categorical_dap(&honest, 10_000, &[10], 15, &cfg, &mut rng);

        let mech = KRandomizedResponse::new(Epsilon::of(eps), 15).unwrap();
        let counts = simulate_reports(&mech, &honest, 10_000, &[10], &mut rng);
        let ostrich = ostrich_frequencies(&mech, &counts);
        assert!(
            err(&dap.frequencies) < err(&ostrich),
            "DAP {:.2e} !< Ostrich {:.2e}",
            err(&dap.frequencies),
            err(&ostrich)
        );
    }

    #[test]
    fn ostrich_frequencies_are_a_distribution() {
        let mech = KRandomizedResponse::new(Epsilon::of(0.5), 5).unwrap();
        let freqs = ostrich_frequencies(&mech, &[10.0, 0.0, 0.0, 0.0, 90.0]);
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(freqs.iter().all(|&f| f >= 0.0));
    }
}
