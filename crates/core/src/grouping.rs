//! DAP grouping stage (§V-A).
//!
//! The collector fixes a minimum acceptable budget `ε₀`, creates
//! `h = ⌈log₂(ε/ε₀)⌉ + 1` equal-sized groups with budgets
//! `ε, ε/2, ε/4, …, ε₀`, and randomly assigns users. A user in group `t`
//! reports `ε/ε_t` times so every user spends exactly ε in total.

use dap_ldp::Epsilon;
use rand::seq::SliceRandom;
use rand::RngCore;

/// The grouping layout for one DAP run.
///
/// ```
/// use dap_core::GroupPlan;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let plan = GroupPlan::build(1_000, 1.0, 0.25, &mut rng);
/// // ε = 1, ε₀ = 1/4 → h = ⌈log₂ 4⌉ + 1 = 3 groups at ε, ε/2, ε/4.
/// assert_eq!(plan.len(), 3);
/// // Every user spends exactly ε in total: k_t · ε_t = ε.
/// for (k, eps_t) in plan.reports_per_user.iter().zip(&plan.budgets) {
///     assert!((*k as f64 * eps_t.get() - 1.0).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// Per-group privacy budget `ε_t` (decreasing).
    pub budgets: Vec<Epsilon>,
    /// Per-group reports per user `k_t = ε/ε_t`.
    pub reports_per_user: Vec<usize>,
    /// `assignment[g]` lists the user indices of group `g`.
    pub assignment: Vec<Vec<usize>>,
}

impl GroupPlan {
    /// Number of groups `h = ⌈log₂(ε/ε₀)⌉ + 1`.
    pub fn group_count(eps: f64, eps0: f64) -> usize {
        assert!(eps >= eps0 && eps0 > 0.0, "need ε ≥ ε₀ > 0 (got {eps}, {eps0})");
        ((eps / eps0).log2().ceil() as usize) + 1
    }

    /// Builds the plan for `n_users` users, shuffling them into equal-sized
    /// groups (the paper assumes `ε/ε₀` is a power of two; `k_t` is rounded
    /// to the nearest integer otherwise and budgets rescaled so the total
    /// spend stays exactly ε).
    pub fn build<R: RngCore + ?Sized>(n_users: usize, eps: f64, eps0: f64, rng: &mut R) -> Self {
        let h = Self::group_count(eps, eps0);
        let mut budgets = Vec::with_capacity(h);
        let mut reports_per_user = Vec::with_capacity(h);
        for t in 0..h {
            let k = 1usize << t;
            // ε_t = ε / 2^t exactly, so k_t·ε_t = ε with no rounding error.
            budgets.push(Epsilon::of(eps / k as f64));
            reports_per_user.push(k);
        }

        let mut users: Vec<usize> = (0..n_users).collect();
        users.shuffle(rng);
        let base = n_users / h;
        let extra = n_users % h;
        let mut assignment = Vec::with_capacity(h);
        let mut cursor = 0usize;
        for g in 0..h {
            let size = base + usize::from(g < extra);
            assignment.push(users[cursor..cursor + size].to_vec());
            cursor += size;
        }
        GroupPlan { budgets, reports_per_user, assignment }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// Names the first component on which two plans differ, or `None` when
    /// they are equal — the plan-side analogue of
    /// [`crate::DapConfig::diff_field`], consumed by
    /// [`crate::DapSession::merge`] rejections.
    pub fn diff_field(&self, other: &GroupPlan) -> Option<&'static str> {
        if self.budgets != other.budgets {
            return Some("plan budgets");
        }
        if self.reports_per_user != other.reports_per_user {
            return Some("plan reports-per-user");
        }
        if self.assignment != other.assignment {
            return Some("plan user assignment");
        }
        None
    }

    /// True when the plan has no groups (only possible for 0 users… never).
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Expected number of collected *reports* from group `g`
    /// (`N_t = |G_t| · k_t`, the paper's `N_t = εN/(ε_t h)` for equal
    /// groups).
    pub fn reports_in_group(&self, g: usize) -> usize {
        self.assignment[g].len() * self.reports_per_user[g]
    }

    /// Index of the most private group (smallest `ε_t`) — the probing group.
    pub fn probe_group(&self) -> usize {
        self.len() - 1
    }

    /// The grouping instruction sent to clients of group `g`: report
    /// [`crate::client::ClientAssignment::k_t`] times under budget `ε_t`.
    ///
    /// # Panics
    /// If `g` is not a group of this plan (use
    /// [`crate::DapSession::client_assignment`] for a fallible lookup).
    pub fn client_assignment(&self, g: usize) -> crate::client::ClientAssignment {
        crate::client::ClientAssignment {
            group: g,
            eps_t: self.budgets[g],
            k_t: self.reports_per_user[g],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn group_count_matches_paper_formula() {
        assert_eq!(GroupPlan::group_count(2.0, 1.0 / 16.0), 6);
        assert_eq!(GroupPlan::group_count(0.25, 1.0 / 16.0), 3);
        assert_eq!(GroupPlan::group_count(1.0 / 16.0, 1.0 / 16.0), 1);
    }

    #[test]
    fn budgets_halve_and_reports_double() {
        let mut rng = seeded(1);
        let plan = GroupPlan::build(1200, 1.0, 1.0 / 8.0, &mut rng);
        assert_eq!(plan.len(), 4);
        let eps: Vec<f64> = plan.budgets.iter().map(|e| e.get()).collect();
        assert_eq!(eps, vec![1.0, 0.5, 0.25, 0.125]);
        assert_eq!(plan.reports_per_user, vec![1, 2, 4, 8]);
        // Total spend per user is exactly ε.
        for (k, e) in plan.reports_per_user.iter().zip(&plan.budgets) {
            assert!((*k as f64 * e.get() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn assignment_partitions_all_users() {
        let mut rng = seeded(2);
        let plan = GroupPlan::build(1000, 2.0, 1.0 / 16.0, &mut rng);
        let mut seen = vec![false; 1000];
        for group in &plan.assignment {
            for &u in group {
                assert!(!seen[u], "user {u} assigned twice");
                seen[u] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Equal-sized groups up to the remainder.
        let sizes: Vec<usize> = plan.assignment.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn report_volume_grows_in_private_groups() {
        let mut rng = seeded(3);
        let plan = GroupPlan::build(600, 1.0, 0.25, &mut rng);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.reports_in_group(0), 200);
        assert_eq!(plan.reports_in_group(2), 800);
        assert_eq!(plan.probe_group(), 2);
    }

    #[test]
    fn shuffling_is_seed_deterministic() {
        let a = GroupPlan::build(100, 1.0, 0.5, &mut seeded(7));
        let b = GroupPlan::build(100, 1.0, 0.5, &mut seeded(7));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "need ε ≥ ε₀")]
    fn rejects_eps_below_eps0() {
        GroupPlan::group_count(0.01, 0.0625);
    }

    #[test]
    fn every_plan_diff_field_is_wire_encodable() {
        use crate::error::DapError;
        let base = GroupPlan::build(100, 1.0, 0.25, &mut seeded(1));
        assert_eq!(base.diff_field(&base), None);

        let mut budgets = base.clone();
        budgets.budgets[0] = Epsilon::of(2.0);
        let mut reports = base.clone();
        reports.reports_per_user[0] += 1;
        let mut assignment = base.clone();
        assignment.assignment[0].reverse();
        for (plan, expected) in [
            (budgets, "plan budgets"),
            (reports, "plan reports-per-user"),
            (assignment, "plan user assignment"),
        ] {
            let field = plan.diff_field(&base).expect("one component differs");
            assert_eq!(field, expected);
            assert!(
                DapError::MISMATCH_FIELDS.contains(&field),
                "'{field}' missing from DapError::MISMATCH_FIELDS"
            );
        }
    }
}
