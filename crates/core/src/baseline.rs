//! The §IV baseline protocol: every user perturbs twice, with budgets
//! `ε_α ≪ ε_β` (`ε_α + ε_β = ε`). The collector probes Byzantine features
//! from the strongly-perturbed `V'(α)` batch (Theorem 3: small ε probes
//! best) and corrects the mean of the weakly-perturbed `V'(β)` batch with
//! them (Eq. 12).
//!
//! The protocol's security flaw — attackers who behave honestly during the
//! α phase and only poison the β phase defeat the probe — is modelled by
//! [`BaselineProtocol::run_with_evading_attacker`]; it is the motivation for
//! DAP's single-but-random-ε design (§V).

use crate::accountant::PrivacyAccountant;
use crate::error::DapError;
use crate::population::Population;
use crate::scheme::{estimate_group_mean, Scheme};
use dap_attack::{Attack, Side};
use dap_emf::{probe_side, EmfConfig};
use dap_estimation::Grid;
use dap_ldp::{Epsilon, NumericMechanism};
use rand::RngCore;

/// Configuration of the baseline protocol.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Total per-user budget ε.
    pub eps: f64,
    /// Fraction of ε assigned to the probing phase (`ε_α = alpha·ε`);
    /// must satisfy `0 < alpha < 1` and should be small (`ε_α ≪ ε_β`).
    pub alpha: f64,
    /// Reconstruction scheme for the correction.
    pub scheme: Scheme,
    /// Pessimistic initial mean `O'`.
    pub o_prime: f64,
    /// Cap on `d'`.
    pub max_d_out: usize,
}

impl BaselineConfig {
    /// A sensible default split: one eighth of the budget for probing.
    pub fn with_eps(eps: f64) -> Self {
        BaselineConfig { eps, alpha: 0.125, scheme: Scheme::EmfStar, o_prime: 0.0, max_d_out: 256 }
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Corrected mean estimate `M̃` (Eq. 12).
    pub mean: f64,
    /// Probed poisoned side.
    pub side: Side,
    /// Probed coalition proportion `γ̂`.
    pub gamma: f64,
}

/// The two-budget baseline protocol of §IV.
#[derive(Debug, Clone)]
pub struct BaselineProtocol<F> {
    config: BaselineConfig,
    mech_factory: F,
}

impl<M, F> BaselineProtocol<F>
where
    M: NumericMechanism,
    F: Fn(Epsilon) -> M,
{
    /// Builds the protocol from a config and mechanism factory, rejecting
    /// degenerate budget splits as [`DapError`]s.
    pub fn new(config: BaselineConfig, mech_factory: F) -> Result<Self, DapError> {
        if !(config.alpha > 0.0 && config.alpha < 1.0) {
            return Err(DapError::InvalidConfig {
                field: "alpha",
                reason: format!("budget split {} outside (0, 1)", config.alpha),
            });
        }
        if !(config.eps.is_finite() && config.eps > 0.0) {
            return Err(DapError::InvalidBudget { eps: config.eps, eps0: config.eps });
        }
        Ok(BaselineProtocol { config, mech_factory })
    }

    /// Runs the protocol with attackers poisoning *both* phases (the naive
    /// coalition the baseline was designed for).
    pub fn run(
        &self,
        population: &Population,
        attack: &dyn Attack,
        rng: &mut dyn RngCore,
    ) -> Result<BaselineOutput, DapError> {
        self.run_inner(population, attack, None, rng)
    }

    /// Runs the protocol with probing-aware attackers: during the α phase
    /// they perturb the decoy input honestly; they poison only the β phase.
    /// This defeats the probe and demonstrates the baseline's flaw.
    pub fn run_with_evading_attacker(
        &self,
        population: &Population,
        attack: &dyn Attack,
        decoy_input: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BaselineOutput, DapError> {
        self.run_inner(population, attack, Some(decoy_input), rng)
    }

    fn run_inner(
        &self,
        population: &Population,
        attack: &dyn Attack,
        evading_decoy: Option<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<BaselineOutput, DapError> {
        let cfg = &self.config;
        let n_total = population.total();
        if n_total == 0 {
            return Err(DapError::EmptyPopulation);
        }
        let (eps_a, eps_b) = Epsilon::new(cfg.eps)?.split(cfg.alpha)?;
        let mech_a = (self.mech_factory)(eps_a);
        let mech_b = (self.mech_factory)(eps_b);
        let mut accountant = PrivacyAccountant::new(n_total, cfg.eps);

        let mut reports_a = Vec::with_capacity(n_total);
        let mut reports_b = Vec::with_capacity(n_total);
        for (user, &v) in population.honest.iter().enumerate() {
            accountant.charge(user, eps_a.get())?;
            accountant.charge(user, eps_b.get())?;
            reports_a.push(mech_a.perturb(v, rng));
            reports_b.push(mech_b.perturb(v, rng));
        }
        let m = population.byzantine;
        match evading_decoy {
            None => reports_a.extend(attack.reports(m, &mech_a, rng)),
            Some(decoy) => {
                reports_a.extend((0..m).map(|_| mech_a.perturb(decoy, rng)));
            }
        }
        reports_b.extend(attack.reports(m, &mech_b, rng));

        // Probe on V'(α).
        let probe_cfg = EmfConfig::capped(reports_a.len(), eps_a.get(), cfg.max_d_out);
        let (olo, ohi) = mech_a.output_range();
        let counts_a = Grid::new(olo, ohi, probe_cfg.d_out).counts(&reports_a);
        let probe = probe_side(&mech_a, &counts_a, probe_cfg.d_in, cfg.o_prime, &probe_cfg.em);
        let gamma = probe.chosen().poison_mass();

        // Correct V'(β) (Eq. 12, realized through the shared Eq. 13 path
        // with the probed γ̂ driving the EMF*/CEMF* constraints).
        let est_cfg = EmfConfig::capped(reports_b.len(), eps_b.get(), cfg.max_d_out);
        let est = estimate_group_mean(
            &mech_b,
            &reports_b,
            probe.side,
            cfg.o_prime,
            gamma,
            cfg.scheme,
            &est_cfg,
        );
        let (ilo, ihi) = mech_b.input_range();
        Ok(BaselineOutput { mean: est.mean.clamp(ilo, ihi), side: probe.side, gamma })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::UniformAttack;
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mean as smean;
    use dap_ldp::PiecewiseMechanism;
    use rand::Rng;

    fn protocol(eps: f64) -> BaselineProtocol<impl Fn(Epsilon) -> PiecewiseMechanism> {
        let mut cfg = BaselineConfig::with_eps(eps);
        cfg.max_d_out = 64;
        BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config")
    }

    fn population(n: usize, gamma: f64, seed: u64) -> Population {
        let mut rng = seeded(seed);
        let honest: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.8..=0.2)).collect();
        Population::with_gamma(honest, gamma)
    }

    #[test]
    fn baseline_corrects_naive_attacks() {
        let pop = population(15_000, 0.25, 1);
        let truth = smean(&pop.honest);
        let attack = UniformAttack::of_upper(0.5, 1.0);
        let mut rng = seeded(2);
        let out = protocol(1.0).run(&pop, &attack, &mut rng).unwrap();
        assert_eq!(out.side, Side::Right);
        assert!((out.gamma - 0.25).abs() < 0.08, "gamma {}", out.gamma);
        assert!((out.mean - truth).abs() < 0.15, "estimate {} vs {}", out.mean, truth);
    }

    #[test]
    fn evading_attackers_defeat_the_baseline() {
        let pop = population(15_000, 0.25, 3);
        let truth = smean(&pop.honest);
        let attack = UniformAttack::of_upper(0.5, 1.0);
        let proto = protocol(1.0);

        let naive = proto.run(&pop, &attack, &mut seeded(4)).unwrap();
        let evading =
            proto.run_with_evading_attacker(&pop, &attack, 0.0, &mut seeded(4)).unwrap();
        // The evading coalition hides from the probe (tiny γ̂) and the
        // estimate degrades markedly versus the naive case.
        assert!(evading.gamma < naive.gamma, "{} !< {}", evading.gamma, naive.gamma);
        assert!(
            (evading.mean - truth).abs() > (naive.mean - truth).abs(),
            "evading {} naive {} truth {}",
            evading.mean,
            naive.mean,
            truth
        );
    }

    #[test]
    fn rejects_degenerate_alpha_and_empty_population() {
        use crate::error::DapError;
        let cfg = BaselineConfig { alpha: 1.0, ..BaselineConfig::with_eps(1.0) };
        assert!(matches!(
            BaselineProtocol::new(cfg, PiecewiseMechanism::new),
            Err(DapError::InvalidConfig { field: "alpha", .. })
        ));
        let empty = Population { honest: vec![], byzantine: 0 };
        let err = protocol(1.0)
            .run(&empty, &UniformAttack::of_upper(0.5, 1.0), &mut seeded(5))
            .unwrap_err();
        assert!(matches!(err, DapError::EmptyPopulation));
    }
}
