//! Per-user privacy budget accounting.
//!
//! DAP's grouping stage has users in low-budget groups report multiple
//! times; sequential composition says the spends must sum to at most the
//! global ε. The accountant makes that invariant explicit and testable
//! instead of assumed.

use std::fmt;

/// Error raised when a user would exceed their privacy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetError {
    /// The user that would overspend.
    pub user: usize,
    /// Budget spent so far.
    pub spent: f64,
    /// The attempted additional spend.
    pub attempted: f64,
    /// The per-user cap.
    pub cap: f64,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user {} would spend {} + {} > ε = {}",
            self.user, self.spent, self.attempted, self.cap
        )
    }
}

impl std::error::Error for BudgetError {}

/// Tracks per-user cumulative ε spend against a global cap.
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    cap: f64,
    spent: Vec<f64>,
    /// Numerical slack for accumulating many float spends.
    slack: f64,
}

impl PrivacyAccountant {
    /// An accountant for `users` users, each capped at `eps`.
    pub fn new(users: usize, eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "invalid budget cap {eps}");
        PrivacyAccountant { cap: eps, spent: vec![0.0; users], slack: 1e-9 * eps }
    }

    /// Charges `eps` to `user`; fails if the cap would be exceeded.
    pub fn charge(&mut self, user: usize, eps: f64) -> Result<(), BudgetError> {
        assert!(eps > 0.0 && eps.is_finite(), "invalid charge {eps}");
        let spent = self.spent[user];
        if spent + eps > self.cap + self.slack {
            return Err(BudgetError { user, spent, attempted: eps, cap: self.cap });
        }
        self.spent[user] = spent + eps;
        Ok(())
    }

    /// Budget already spent by `user`.
    pub fn spent(&self, user: usize) -> f64 {
        self.spent[user]
    }

    /// Remaining budget of `user` (never negative).
    pub fn remaining(&self, user: usize) -> f64 {
        (self.cap - self.spent[user]).max(0.0)
    }

    /// The per-user cap ε.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// True when every user spent their full budget (within slack) — DAP's
    /// "perturb and report multiple times until the overall privacy budget
    /// is depleted".
    pub fn all_depleted(&self) -> bool {
        self.spent.iter().all(|&s| (self.cap - s).abs() <= self.slack.max(1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut acc = PrivacyAccountant::new(2, 1.0);
        acc.charge(0, 0.25).unwrap();
        acc.charge(0, 0.25).unwrap();
        assert!((acc.spent(0) - 0.5).abs() < 1e-12);
        assert!((acc.remaining(0) - 0.5).abs() < 1e-12);
        assert_eq!(acc.spent(1), 0.0);
    }

    #[test]
    fn overspend_is_rejected() {
        let mut acc = PrivacyAccountant::new(1, 1.0);
        acc.charge(0, 0.75).unwrap();
        let err = acc.charge(0, 0.5).unwrap_err();
        assert_eq!(err.user, 0);
        assert!(err.to_string().contains("0.75"));
        // The failed charge did not mutate state.
        assert!((acc.spent(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_depletion_is_allowed() {
        let mut acc = PrivacyAccountant::new(1, 1.0);
        for _ in 0..16 {
            acc.charge(0, 1.0 / 16.0).unwrap();
        }
        assert!(acc.all_depleted());
        assert!(acc.charge(0, 1.0 / 16.0).is_err());
    }

    #[test]
    fn all_depleted_is_false_while_budget_remains() {
        let mut acc = PrivacyAccountant::new(2, 1.0);
        acc.charge(0, 1.0).unwrap();
        assert!(!acc.all_depleted());
        acc.charge(1, 1.0).unwrap();
        assert!(acc.all_depleted());
    }
}
