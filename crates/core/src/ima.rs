//! EMF-based defense against input manipulation attacks (Fig. 9b).
//!
//! Under an IMA every Byzantine user submits a fabricated input `g` through
//! the *honest* mechanism, so individual reports are indistinguishable from
//! honest ones and the EMF poison block stays empty (Fig. 5d). The paper's
//! integration: use EMF to confirm `γ̂` is small (the coalition is evading),
//! reconstruct the *input* distribution with the γ̂ = 0 constraint, and
//! apply a k-means-style split on the reconstructed histogram to excise the
//! coalition's spike before reading off the mean.

use dap_emf::{emf, EmfConfig};
use dap_estimation::stats::histogram_mean;
use dap_estimation::{Grid, PoisonRegion, TransformMatrix};
use dap_ldp::NumericMechanism;

/// Result of the EMF-based IMA defense.
#[derive(Debug, Clone)]
pub struct ImaOutput {
    /// Mean estimate after spike excision.
    pub mean: f64,
    /// γ̂ from the confirmation probe (small under a true IMA).
    pub gamma_probe: f64,
    /// Input buckets flagged as the coalition's spike.
    pub spikes: Vec<usize>,
}

/// Ratio a bucket must exceed its neighbourhood median by to be flagged as a
/// coalition spike.
const SPIKE_RATIO: f64 = 2.2;
/// Absolute mass floor under which buckets are never flagged.
const SPIKE_FLOOR: f64 = 0.02;

/// Median of a small slice (by copy).
fn median(values: &[f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Flags buckets whose mass towers over their local neighbourhood.
///
/// An IMA coalition all submits the *same* fabricated input `g`, so the
/// reconstructed input histogram carries a one-bucket spike of height ≈ γ on
/// top of the smooth honest density; honest modes are wide (several buckets)
/// and survive a neighbourhood-median comparison that a point mass cannot.
fn find_spikes(hist: &[f64]) -> Vec<(usize, f64)> {
    let n = hist.len();
    if n < 5 {
        return Vec::new();
    }
    let mut spikes = Vec::new();
    for i in 0..n {
        // Neighbourhood of up to two buckets on each side, excluding i.
        let lo = i.saturating_sub(2);
        let hi = (i + 2).min(n - 1);
        let neighbours: Vec<f64> =
            (lo..=hi).filter(|&j| j != i).map(|j| hist[j]).collect();
        let base = median(&neighbours);
        if hist[i] > SPIKE_FLOOR && hist[i] > SPIKE_RATIO * base + SPIKE_FLOOR {
            spikes.push((i, base));
        }
    }
    spikes
}

/// Runs the EMF-based IMA defense on a batch of reports.
///
/// 1. probe γ̂ with the ordinary poison block (it comes out small — the IMA
///    hides from direct-injection probing, Fig. 5d);
/// 2. reconstruct the input histogram with γ = 0 (plain EM on the normal
///    block, the paper's "EMF\* with γ̂ = 0");
/// 3. excise local spikes: cap any bucket towering over its neighbourhood
///    median at that median (the coalition's fabricated input is a point
///    mass; honest modes are wide) and renormalize;
/// 4. return the adjusted histogram mean.
pub fn emf_based_ima_mean(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    config: &EmfConfig,
) -> ImaOutput {
    assert!(!reports.is_empty(), "no reports to defend");
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, config.d_out).counts(reports);

    // Step 1: confirmation probe with the usual right-side poison block.
    let probed = TransformMatrix::for_numeric(mech, config.d_in, config.d_out, &PoisonRegion::RightOf(0.0));
    let gamma_probe = emf(&probed, &counts, &config.em).poison_mass();

    // Step 2: γ = 0 reconstruction of the input histogram.
    let clean = TransformMatrix::for_numeric(mech, config.d_in, config.d_out, &PoisonRegion::None);
    let outcome = emf(&clean, &counts, &config.em);
    let mut hist = outcome.normal;

    // Step 3: local spike excision.
    let found = find_spikes(&hist);
    let spikes: Vec<usize> = found.iter().map(|&(i, _)| i).collect();
    if !found.is_empty() {
        for &(i, base) in &found {
            hist[i] = base;
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            hist.iter_mut().for_each(|h| *h /= total);
        }
    }

    let mean = histogram_mean(&hist, clean.input_centers());
    ImaOutput { mean, gamma_probe, spikes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_attack::{Attack, InputManipulationAttack};
    use dap_estimation::rng::seeded;
    use dap_estimation::sampling;
    use dap_estimation::stats::mean as smean;
    use dap_ldp::PiecewiseMechanism;

    fn ima_reports(
        g: f64,
        gamma: f64,
        n: usize,
        eps: f64,
        seed: u64,
    ) -> (Vec<f64>, f64, PiecewiseMechanism) {
        let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
        let mut rng = seeded(seed);
        let m = (n as f64 * gamma).round() as usize;
        let honest: Vec<f64> = (0..n - m)
            .map(|_| (sampling::normal(0.1, 0.3, &mut rng)).clamp(-1.0, 1.0))
            .collect();
        let truth = smean(&honest);
        let mut reports: Vec<f64> =
            honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
        reports.extend(InputManipulationAttack { g }.reports(m, &mech, &mut rng));
        (reports, truth, mech)
    }

    #[test]
    fn ima_probe_sees_small_gamma() {
        let (reports, _, mech) = ima_reports(1.0, 0.25, 40_000, 1.0, 1);
        let cfg = EmfConfig::capped(reports.len(), 1.0, 64);
        let out = emf_based_ima_mean(&mech, &reports, &cfg);
        // Fig. 5d: EMF attributes only a small share to the poison block
        // because the IMA reports are honestly perturbed — far below the
        // true coalition size of 0.25.
        assert!(out.gamma_probe < 0.15, "gamma probe {}", out.gamma_probe);
    }

    #[test]
    fn spike_excision_reduces_ima_bias() {
        for (seed, g) in [(2u64, -1.0), (3u64, 1.0)] {
            let (reports, truth, mech) = ima_reports(g, 0.25, 40_000, 1.0, seed);
            let cfg = EmfConfig::capped(reports.len(), 1.0, 64);
            let defended = emf_based_ima_mean(&mech, &reports, &cfg);
            let raw = smean(&reports);
            assert!(
                (defended.mean - truth).abs() < (raw - truth).abs(),
                "g={g}: defended {} raw {} truth {}",
                defended.mean,
                raw,
                truth
            );
            assert!(!defended.spikes.is_empty(), "g={g}: no spike found");
        }
    }

    #[test]
    fn clean_data_is_not_mutilated() {
        let (reports, truth, mech) = ima_reports(0.0, 0.0, 40_000, 1.0, 4);
        let cfg = EmfConfig::capped(reports.len(), 1.0, 64);
        let out = emf_based_ima_mean(&mech, &reports, &cfg);
        assert!((out.mean - truth).abs() < 0.1, "estimate {} vs {}", out.mean, truth);
    }

    #[test]
    fn find_spikes_flags_point_masses_only() {
        // A smooth ramp with a point spike at index 3.
        let hist = [0.05, 0.06, 0.07, 0.40, 0.08, 0.09, 0.10, 0.15];
        let found = find_spikes(&hist);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 3);
        // A wide mode is left alone.
        let smooth = [0.02, 0.05, 0.2, 0.25, 0.22, 0.15, 0.08, 0.03];
        assert!(find_spikes(&smooth).is_empty());
    }
}
