//! The client half of the protocol: local perturbation under an assigned
//! group budget.
//!
//! The paper's protocol (§V, Fig. 3) is client/server: the collector only
//! ever decides *grouping* — which budget `ε_t` a user reports under and how
//! many reports `k_t = ε/ε_t` they owe — while every perturbation happens on
//! the user's device. [`ClientAssignment`] is exactly that instruction, and
//! together with any [`NumericMechanism`] it turns one private value into
//! the user's `k_t` reports. Nothing here touches aggregator state; the
//! reports are handed to a [`crate::DapSession`] (or any other transport)
//! by the caller.
//!
//! Privacy accounting is intentionally *not* done here: the client spends
//! `k_t · ε_t = ε` by construction, and the simulation layer
//! ([`crate::Dap`]) double-checks that invariant with a
//! [`crate::PrivacyAccountant`] across all simulated users.

use dap_ldp::{Epsilon, NumericMechanism};
use rand::RngCore;

/// One user's grouping instruction: report `k_t` times under budget `ε_t`
/// into group `group`.
///
/// Produced by [`crate::GroupPlan::client_assignment`]; `k_t · ε_t` always
/// equals the deployment's global budget ε (sequential composition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientAssignment {
    /// Index of the group the reports belong to.
    pub group: usize,
    /// The per-report budget `ε_t`.
    pub eps_t: Epsilon,
    /// Number of reports owed, `k_t = ε/ε_t`.
    pub k_t: usize,
}

impl ClientAssignment {
    /// Total privacy spend of honoring this assignment,
    /// `k_t · ε_t` (= ε exactly, since `ε_t = ε/2^t` and `k_t = 2^t`).
    pub fn total_spend(&self) -> f64 {
        self.eps_t.get() * self.k_t as f64
    }

    /// Perturbs `value` into the caller's buffer, one report per slot.
    ///
    /// `out` must hold exactly `k_t` slots and `mech` must be built for
    /// `ε_t` — both are the client's own bookkeeping, so violations are
    /// programming errors (panics), not protocol errors.
    ///
    /// Generic over the mechanism and RNG so the simulation hot path gets
    /// the same fully inlined draws as the pre-split protocol loop
    /// ([`NumericMechanism::perturb_into`]).
    pub fn perturb_into<M: NumericMechanism, R: RngCore>(
        &self,
        mech: &M,
        value: f64,
        out: &mut [f64],
        rng: &mut R,
    ) {
        assert_eq!(out.len(), self.k_t, "assignment owes {} reports", self.k_t);
        debug_assert_eq!(
            mech.epsilon().get().to_bits(),
            self.eps_t.get().to_bits(),
            "mechanism budget does not match the assignment"
        );
        mech.perturb_into(value, out, rng);
    }

    /// Allocating variant of [`Self::perturb_into`].
    pub fn perturb<M: NumericMechanism, R: RngCore>(
        &self,
        mech: &M,
        value: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.k_t];
        self.perturb_into(mech, value, &mut out, rng);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;
    use dap_ldp::PiecewiseMechanism;

    fn assignment() -> ClientAssignment {
        ClientAssignment { group: 2, eps_t: Epsilon::of(0.25), k_t: 4 }
    }

    #[test]
    fn spend_is_exactly_eps() {
        assert!((assignment().total_spend() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn reports_stay_in_the_output_domain() {
        let a = assignment();
        let mech = PiecewiseMechanism::new(a.eps_t);
        let reports = a.perturb(&mech, 0.3, &mut seeded(1));
        assert_eq!(reports.len(), 4);
        let (lo, hi) = dap_ldp::NumericMechanism::output_range(&mech);
        assert!(reports.iter().all(|r| (lo..=hi).contains(r)));
    }

    #[test]
    fn matches_direct_perturb_into_bitwise() {
        let a = assignment();
        let mech = PiecewiseMechanism::new(a.eps_t);
        let client = a.perturb(&mech, -0.4, &mut seeded(9));
        let mut direct = vec![0.0; a.k_t];
        mech.perturb_into(-0.4, &mut direct, &mut seeded(9));
        assert_eq!(
            client.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "owes 4 reports")]
    fn wrong_buffer_size_is_a_programming_error() {
        let a = assignment();
        let mech = PiecewiseMechanism::new(a.eps_t);
        a.perturb_into(&mech, 0.0, &mut [0.0; 3], &mut seeded(1));
    }
}
