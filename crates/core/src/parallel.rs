//! A minimal deterministic parallel map over scoped threads.
//!
//! The build environment has no crates.io access, so instead of rayon this
//! module provides the one primitive the workspace needs: map a function
//! over independent items on however many cores exist, **without changing
//! any result**. Items are claimed from a shared atomic cursor and each
//! result is written into its own pre-allocated slot, so the output order —
//! and therefore every downstream reduction — is identical for 1 thread or
//! 64. Work items must not share mutable state; in this workspace they
//! never do, because every trial/group derives its own RNG stream.
//!
//! Thread count resolution: [`set_thread_override`] (used by determinism
//! tests and benchmarks) beats the `DAP_THREADS` environment variable,
//! which beats [`std::thread::available_parallelism`]. With one thread the
//! map degenerates to an inline loop — no spawn, no synchronization.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent [`parallel_map`] onto exactly `n` threads
/// (`None` restores automatic detection). Intended for tests proving
/// thread-count independence and for benchmarks pinning a configuration;
/// the override is process-global.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The thread count [`parallel_map`] will use right now.
pub fn effective_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("DAP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to [`effective_threads`] scoped threads,
/// returning results in input order. Results are bit-identical to the
/// serial `items.into_iter().map(f).collect()` as long as `f` is a pure
/// function of its item.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = effective_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each item moves into its slot behind a Mutex so worker threads can
    // take ownership; results land in per-index slots, preserving order.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let work = &work;
    let slots = &slots;
    let cursor = &cursor;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("work slot poisoned").take().expect("claimed once");
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            }));
        }
        for h in handles {
            // Propagate panics from workers instead of swallowing them.
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .iter()
        .map(|s| s.lock().expect("result slot poisoned").take().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 7] {
            set_thread_override(Some(threads));
            let got = parallel_map(items.clone(), |x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |x| x).is_empty());
        assert_eq!(parallel_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // A reduction-style payload sensitive to evaluation order if the
        // implementation ever leaked one.
        let items: Vec<usize> = (0..64).collect();
        let run = |threads| {
            set_thread_override(Some(threads));
            let out = parallel_map(items.clone(), |i| {
                let mut acc = 0.0f64;
                for j in 0..100 {
                    acc += ((i * 31 + j) as f64).sqrt().sin();
                }
                acc
            });
            set_thread_override(None);
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        set_thread_override(Some(2));
        let _ = parallel_map(vec![1, 2, 3, 4], |x| {
            if x == 3 {
                panic!("worker boom");
            }
            x
        });
    }
}
