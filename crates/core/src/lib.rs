//! The Differential Aggregation Protocol (DAP) — the paper's primary
//! contribution — plus the §IV baseline protocol and the extensions of §V-D.
//!
//! # Protocol overview
//!
//! DAP estimates the mean of honest users' values under ε-LDP while an
//! unknown coalition of Byzantine users injects arbitrary reports:
//!
//! 1. **Grouping** — users are randomly assigned to `h = ⌈log₂(ε/ε₀)⌉ + 1`
//!    equal groups with geometrically decreasing budgets `ε, ε/2, …, ε₀`.
//!    Users in low-budget groups report multiple times until their total
//!    budget reaches ε (sequential composition, enforced by
//!    [`PrivacyAccountant`]).
//! 2. **Probing** — the Expectation-Maximization Filter runs per group; the
//!    most private group (budget ε₀) yields the poisoned side and the
//!    coalition proportion `γ̂` (Theorem 3 says small ε probes best).
//! 3. **Intra-group estimation** — each group's mean is corrected by
//!    subtracting the reconstructed poison mass (Eq. 13), with EMF, EMF\* or
//!    CEMF\* reconstructions ([`Scheme`]).
//! 4. **Inter-group aggregation** — group means are combined with the
//!    variance-optimal weights of Algorithm 5 / Theorem 6
//!    ([`aggregation`]).
//!
//! # Client/aggregator split
//!
//! The crate's service surface mirrors the paper's deployment model:
//!
//! * [`client`] — the user's device: a [`client::ClientAssignment`] plus any
//!   [`dap_ldp::NumericMechanism`] turns one private value into the user's
//!   `k_t` reports, locally.
//! * [`session`] — the collector: a [`DapSession`] owns the [`GroupPlan`]
//!   and per-group histograms, ingests reports incrementally (rejecting
//!   out-of-range and over-quota submissions as [`DapError`]s), merges
//!   shards accumulated by independent threads/processes, and finalizes
//!   into [`DapOutput`]s.
//! * [`protocol`] / [`sw`] — the *simulations*: thin drivers wiring a
//!   [`Population`] and an attack through the client API into a session.
//! * [`net`] — the transport: `dap-wire/v1`, a std-only length-prefixed
//!   TCP frame protocol serving a session ([`net::serve_session`] /
//!   [`net::WireClient`]) with exact f64 bit patterns (shared [`codec`])
//!   and typed [`DapError`] rejections across the wire.
//! * [`storage`] — durability: a write-ahead journal behind a pluggable
//!   [`StorageBackend`] (memory and append-only-file implementations),
//!   [`SessionPart`] checkpoints that compact it, and
//!   [`storage::DurableSession`] recovery that restores a killed daemon's
//!   session bit-for-bit.
//! * [`secagg`] — the multi-aggregator trust tier: additive `u64` secret
//!   sharing of the integer report histograms ([`ShareSplitter`] /
//!   [`MaskedPart`]) so a session can run in masked mode where no single
//!   daemon — nor its journal — ever holds a plaintext report, yet the
//!   reconstructed aggregate finalizes bit-identically.
//! * [`chaos`] — fault injection: [`ChaosProxy`], a deterministic seeded
//!   TCP proxy that drops, delays, stalls and resets connections per a
//!   [`ChaosSchedule`], so the retry/replay machinery's exactness claims
//!   are tested against real socket failures, not mocks.
//!
//! The [`baseline`] module implements the §IV two-budget protocol (and its
//! security flaw against probing-aware attackers, which motivates DAP), the
//! [`categorical`] module the k-RR frequency-estimation extension, the
//! [`sw`] module the Square-Wave extension, and [`ima`] the EMF + k-means
//! integration against input-manipulation attacks.

pub mod accountant;
pub mod aggregation;
pub mod baseline;
pub mod categorical;
pub mod chaos;
pub mod client;
pub mod codec;
pub mod error;
pub mod grouping;
pub mod ima;
pub mod net;
pub mod parallel;
pub mod population;
pub mod protocol;
pub mod scheme;
pub mod secagg;
pub mod session;
pub mod storage;
pub mod sw;

pub use accountant::{BudgetError, PrivacyAccountant};
pub use aggregation::{aggregate, Weighting};
pub use baseline::{BaselineConfig, BaselineProtocol};
pub use client::ClientAssignment;
pub use error::DapError;
pub use grouping::GroupPlan;
pub use parallel::parallel_map;
pub use population::Population;
pub use protocol::{Dap, DapConfig, DapConfigBuilder, DapOutput, GroupReport, PreparedReports};
pub use scheme::{GroupHistogram, Scheme};
pub use chaos::{ChaosProxy, ChaosSchedule, Fault};
pub use net::{
    Deadlines, RetryPolicy, ServeOptions, WireClient, WireError, WireSession,
};
pub use secagg::{MaskedGroup, MaskedPart, SecaggRole, SeedCommitment, ShareSplitter};
pub use session::{DapSession, EstimationMode, PartGroup, SessionPart};
pub use storage::{
    DurableOptions, DurableSession, FaultBackend, FileBackend, Journal, MemoryBackend,
    Recovery, StorageBackend,
};
pub use sw::{SwDap, SwDapConfig, SwDapOutput};
