//! Shared exact-value codec: the one place f64s and strings become text.
//!
//! Two machine-readable surfaces serialize floating-point results: the
//! `dap-results/v1` JSON schema (`dap_bench::results`, behind
//! `experiments --out`) and the `dap-wire/v1` network protocol
//! ([`crate::net`]). Both must round-trip every f64 **bit for bit** — the
//! golden equivalence suites compare sharded/served runs to in-process
//! runs at the bit-pattern level — so the encoding lives here, once, and
//! both layers import it. A decimal printed for humans is advisory; the
//! `0x`-hex IEEE-754 bit pattern is authoritative.

use std::fmt::Write as _;

/// Largest integer an f64-backed JSON number represents exactly (2⁵³).
pub const MAX_EXACT_JSON_INT: u64 = 1 << 53;

/// Fixed-width u64 hex: `0x` + 16 digits (`{:#018x}`), the token format
/// shared by stream ids, digests and f64 bit patterns.
pub fn hex_u64(v: u64) -> String {
    let mut out = String::with_capacity(18);
    push_hex_u64(&mut out, v);
    out
}

/// The authoritative f64 encoding: its IEEE-754 bit pattern via
/// [`hex_u64`]. `parse_hex_f64` reconstructs the exact value, NaN payloads
/// and signed zeros included.
pub fn f64_to_hex(v: f64) -> String {
    hex_u64(v.to_bits())
}

/// Appends [`hex_u64`] to an existing buffer — the allocation-free form
/// for hot encoding loops (a million-report wire batch writes a million
/// of these).
pub fn push_hex_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v:#018x}");
}

/// Appends [`f64_to_hex`] to an existing buffer without allocating.
pub fn push_hex_f64(out: &mut String, v: f64) {
    push_hex_u64(out, v.to_bits());
}

/// Parses a `0x`-prefixed hex u64 (the inverse of [`hex_u64`]; leading
/// zeros optional).
pub fn parse_hex_u64(s: &str) -> Result<u64, String> {
    let digits = s.strip_prefix("0x").ok_or_else(|| format!("expected 0x-hex, got '{s}'"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex '{s}': {e}"))
}

/// Parses an f64 from its [`f64_to_hex`] bit pattern.
pub fn parse_hex_f64(s: &str) -> Result<f64, String> {
    parse_hex_u64(s).map(f64::from_bits)
}

/// Shortest-roundtrip decimal for human consumers, with non-finite values
/// mapped to `null` (the hex bit pattern stays authoritative either way).
pub fn decimal(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON-style string quoting (escapes quotes, backslashes and control
/// characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a over little-endian words and length-prefixed byte strings — the
/// stable digest behind session-compatibility checks ([`crate::DapSession::
/// state_digest`]) and `dap_bench`'s cell stream ids. No `std::hash`
/// involvement, so digests are stable across Rust versions and can be
/// pinned in golden files and exchanged between processes.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds one word (as its 8 little-endian bytes).
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// Feeds raw bytes, length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_awkward_values() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            (0.1f64 + 0.2).powi(7),
            f64::MIN_POSITIVE,
        ] {
            let text = f64_to_hex(v);
            assert_eq!(text.len(), 18, "fixed width: {text}");
            let back = parse_hex_f64(&text).expect("own output parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert!(parse_hex_u64("42").is_err(), "missing 0x prefix");
        assert!(parse_hex_u64("0xzz").is_err());
    }

    #[test]
    fn decimal_maps_non_finite_to_null() {
        assert_eq!(decimal(1.5), "1.5");
        assert_eq!(decimal(f64::NAN), "null");
        assert_eq!(decimal(f64::INFINITY), "null");
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fnv_separates_adjacent_encodings() {
        let digest = |f: &dyn Fn(&mut Fnv)| {
            let mut h = Fnv::new();
            f(&mut h);
            h.finish()
        };
        assert_ne!(
            digest(&|h| {
                h.bytes(b"ab");
                h.bytes(b"c");
            }),
            digest(&|h| {
                h.bytes(b"a");
                h.bytes(b"bc");
            }),
        );
        assert_ne!(digest(&|h| h.word(1)), digest(&|h| h.word(2)));
    }
}
