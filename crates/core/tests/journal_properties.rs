//! Property suite for the journal byte format ([`dap_core::storage`]).
//!
//! Three families of properties, each over randomized journals:
//!
//! * **round trips** — every journal record type (`ingest`,
//!   `ingest-batch`, `merge`, and the `part` checkpoint payload) survives
//!   append → reopen byte-for-byte, and still decodes as the frame it was;
//! * **torn tails** — truncating a valid journal at *any* byte yields a
//!   recoverable state: the fully-written record prefix, a `torn` marker
//!   when the cut lands mid-record, and never a panic or a corruption
//!   verdict (an unacknowledged partial write is a crash artifact, not
//!   damage);
//! * **flipped bytes** — damaging any acknowledged record byte is
//!   *detected*: a digest/payload flip is typed
//!   [`DapError::Journal`] corruption at the record's offset, a
//!   length-prefix flip is at worst misread as a torn tail (the one
//!   documented ambiguity), and in every case the records before the
//!   damage survive intact. Damaging the *header line* is corruption
//!   too, and must never truncate the acknowledged records behind it —
//!   the bytes stay exactly as found for the typed refusal.

use dap_core::net::{decode_frame, encode_frame, Frame};
use dap_core::storage::{Journal, MemoryBackend};
use dap_core::{DapConfig, DapError, DapSession, GroupPlan, Scheme};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn session(seed: u64) -> DapSession<PiecewiseMechanism> {
    let cfg =
        DapConfig { eps0: 1.0 / 16.0, max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let plan = GroupPlan::build(200, cfg.eps, cfg.eps0, &mut seeded(seed));
    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
}

/// One random journal payload of each mutating record type, plus a `part`
/// checkpoint payload — all built from a live session so every frame is
/// one the durability layer actually writes.
fn random_payloads(seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut donor = session(seed ^ 0x5eed);
    let groups = donor.group_count();
    let mut payloads = Vec::with_capacity(count);
    // PM output domains at these budgets comfortably contain [-1, 1], so
    // uniform reports there are valid for every group.
    let report = |rng: &mut StdRng| rng.gen::<f64>() * 2.0 - 1.0;
    for i in 0..count {
        let g = rng.gen_range(0..groups);
        let frame = match i % 3 {
            0 => Frame::Ingest { group: g, report: report(&mut rng) },
            1 => {
                let n = rng.gen_range(1..5usize);
                let reports = (0..n).map(|_| report(&mut rng)).collect::<Vec<_>>();
                // Keep the donor's quota honest so parts stay realistic.
                let _ = donor.ingest_batch(g, &reports);
                Frame::IngestBatch { group: g, reports }
            }
            _ => Frame::Merge { part: donor.export_part() },
        };
        payloads.push(encode_frame(&frame).into_bytes());
    }
    payloads
}

/// Appends `payloads` to a fresh memory journal and returns the raw bytes
/// plus each record's start offset (and the total length as a final
/// sentinel boundary).
fn journal_bytes(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<u64>) {
    let (mut journal, state) = Journal::open(MemoryBackend::new()).expect("fresh journal");
    assert!(state.replay.is_empty() && !state.damaged());
    let mut boundaries = vec![journal.len_bytes()];
    for p in payloads {
        journal.append(p).expect("append");
        boundaries.push(journal.len_bytes());
    }
    (journal.into_backend().journal_bytes().to_vec(), boundaries)
}

proptest! {
    /// Every record type round-trips: reopening replays exactly the
    /// appended payload bytes, and each payload still decodes as a
    /// `dap-wire/v1` frame that re-encodes identically.
    #[test]
    fn all_record_types_round_trip(seed in 0u64..1_000_000, count in 1usize..12) {
        let payloads = random_payloads(seed, count);
        let (bytes, _) = journal_bytes(&payloads);
        let (_, state) = Journal::open(MemoryBackend::with_journal(bytes)).expect("reopen");
        prop_assert!(state.corruption.is_none());
        prop_assert!(state.torn.is_none());
        prop_assert_eq!(state.replay.len(), payloads.len());
        for ((_, replayed), original) in state.replay.iter().zip(&payloads) {
            prop_assert_eq!(replayed, original);
            let text = std::str::from_utf8(replayed).expect("frame payloads are UTF-8");
            let frame = decode_frame(text).expect("payload decodes as a frame");
            prop_assert_eq!(encode_frame(&frame).as_bytes(), replayed.as_slice());
        }
    }

    /// Compaction round-trips the checkpoint payload and the epoch fence:
    /// records appended after a compact are replayed on top of the
    /// checkpoint, records before it are not.
    #[test]
    fn checkpoints_round_trip_across_reopen(seed in 0u64..1_000_000, before in 0usize..6, after in 0usize..6) {
        let payloads = random_payloads(seed, before + after);
        let (mut journal, _) = Journal::open(MemoryBackend::new()).expect("fresh journal");
        for p in &payloads[..before] {
            journal.append(p).expect("append");
        }
        let checkpoint = encode_frame(&Frame::Part { part: session(seed).export_part() });
        journal.compact(checkpoint.as_bytes()).expect("compact");
        for p in &payloads[before..] {
            journal.append(p).expect("append");
        }
        let (_, state) = Journal::open(journal.into_backend()).expect("reopen");
        prop_assert!(!state.damaged());
        prop_assert_eq!(state.checkpoint.as_deref(), Some(checkpoint.as_bytes()));
        prop_assert_eq!(state.replay.len(), after);
        for ((_, replayed), original) in state.replay.iter().zip(&payloads[before..]) {
            prop_assert_eq!(replayed, original);
        }
    }

    /// Truncating anywhere never panics and never reads as corruption:
    /// the fully-written records survive, and a mid-record cut is
    /// reported as a torn tail.
    #[test]
    fn truncation_keeps_the_valid_prefix(seed in 0u64..1_000_000, count in 1usize..10, where_ in 0.0f64..1.0) {
        let payloads = random_payloads(seed, count);
        let (bytes, boundaries) = journal_bytes(&payloads);
        let cut = (bytes.len() as f64 * where_) as usize;
        let (_, state) =
            Journal::open(MemoryBackend::with_journal(bytes[..cut].to_vec())).expect("open");
        prop_assert!(state.corruption.is_none(), "truncation is a crash artifact, not corruption");
        // Records wholly before the cut survive, byte for byte.
        let intact = boundaries[1..].iter().filter(|&&b| b <= cut as u64).count();
        prop_assert_eq!(state.replay.len(), intact);
        for ((_, replayed), original) in state.replay.iter().zip(&payloads) {
            prop_assert_eq!(replayed, original);
        }
        // A cut on a record boundary is clean; anywhere else is torn.
        // (A cut inside the header re-initializes an empty journal, which
        // also reads clean.)
        let on_boundary = boundaries.contains(&(cut as u64));
        if on_boundary {
            prop_assert!(state.torn.is_none());
        } else {
            let in_header = (cut as u64) < boundaries[0];
            prop_assert!(state.torn.is_some() || in_header);
        }
    }

    /// Flipping any acknowledged record byte is detected: typed
    /// [`DapError::Journal`] corruption anchored at the damaged record's
    /// offset — except a length-prefix flip, which may masquerade as a
    /// torn tail (the documented ambiguity). The prefix before the damage
    /// always survives.
    #[test]
    fn flipped_bytes_are_detected(seed in 0u64..1_000_000, count in 1usize..10, where_ in 0.0f64..1.0, mask in 1u8..=255) {
        let payloads = random_payloads(seed, count);
        let (mut bytes, boundaries) = journal_bytes(&payloads);
        let header = boundaries[0] as usize;
        let at = header + ((bytes.len() - header) as f64 * where_) as usize % (bytes.len() - header);
        bytes[at] ^= mask;

        let (_, state) = Journal::open(MemoryBackend::with_journal(bytes)).expect("open");
        // Which record was hit, and was the flip inside its length prefix?
        let rec = boundaries[..boundaries.len() - 1]
            .iter()
            .rposition(|&b| b <= at as u64)
            .expect("flip lands in some record");
        let rec_start = boundaries[rec] as usize;
        let in_len_prefix = at < rec_start + 4;

        prop_assert!(state.damaged(), "a flipped record byte must never read clean");
        match &state.corruption {
            Some(DapError::Journal { at: reported, .. }) => {
                prop_assert_eq!(*reported, rec_start as u64, "corruption anchors at the record");
            }
            Some(other) => prop_assert!(false, "corruption must be typed Journal, got {other:?}"),
            None => {
                prop_assert!(
                    in_len_prefix,
                    "only a length-prefix flip may be misread as torn (flip at {at}, record {rec})"
                );
            }
        }
        // Records before the damaged one replay intact.
        prop_assert_eq!(state.replay.len(), rec);
        for ((_, replayed), original) in state.replay.iter().zip(&payloads) {
            prop_assert_eq!(replayed, original);
        }
    }

    /// Flipping any byte of the *header line* never destroys acknowledged
    /// records: an unreadable header is typed corruption with every
    /// journal byte left exactly as found (truncating would turn a
    /// refusal into silent data loss), and a flip that happens to leave
    /// the header parseable (an epoch digit) still replays every record.
    #[test]
    fn header_damage_never_truncates_acknowledged_bytes(seed in 0u64..1_000_000, count in 1usize..10, where_ in 0.0f64..1.0, mask in 1u8..=255) {
        let payloads = random_payloads(seed, count);
        let (mut bytes, boundaries) = journal_bytes(&payloads);
        let header = boundaries[0] as usize;
        let at = (header as f64 * where_) as usize % header;
        bytes[at] ^= mask;

        let backend = MemoryBackend::with_journal(bytes.clone());
        let (journal, state) = Journal::open(backend).expect("damage never hard-fails the open");
        match &state.corruption {
            Some(DapError::Journal { at: reported, .. }) => {
                prop_assert_eq!(*reported, 0, "header corruption anchors at byte 0");
                prop_assert!(state.replay.is_empty(), "records past the damage are unscanned");
                prop_assert_eq!(
                    journal.into_backend().journal_bytes(),
                    bytes.as_slice(),
                    "acknowledged bytes must be left exactly as found"
                );
            }
            Some(other) => prop_assert!(false, "corruption must be typed Journal, got {other:?}"),
            None => {
                // The flip left a parseable header (e.g. a different
                // epoch digit): with no checkpoint, every record replays
                // — no acknowledged state is lost on this path either.
                prop_assert_eq!(state.replay.len(), payloads.len());
            }
        }
    }
}
