//! `dap-wire/v1` over real loopback TCP: the session API driven through
//! [`WireClient`] against a [`serve_session`] daemon thread.
//!
//! Covers the full frame surface — handshake (version + digest), ingest,
//! atomic batch rejection, pull/merge of serialized parts, remote
//! finalize — and pins that every [`DapError`] rejection crosses the wire
//! *typed*, with its fields intact. The bit-exact coordinator-vs-local
//! equivalence suite lives in `crates/bench/tests/serve.rs`.

use dap_core::net::{
    serve_session, serve_session_with, Deadlines, Frame, ServeOptions, WireClient, WireError,
    WIRE_VERSION,
};
use dap_core::storage::{DurableOptions, DurableSession, FileBackend};
use dap_core::{DapConfig, DapError, DapSession, GroupPlan, Scheme};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

fn session(eps: f64, users: usize, seed: u64) -> DapSession<PiecewiseMechanism> {
    let cfg = DapConfig { max_d_out: 16, ..DapConfig::paper_default(eps, Scheme::Emf) };
    let plan = GroupPlan::build(users, cfg.eps, cfg.eps0, &mut seeded(seed));
    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
}

/// Spawns a daemon for `session` on an OS-assigned loopback port.
fn daemon(
    session: DapSession<PiecewiseMechanism>,
) -> (String, JoinHandle<DapSession<PiecewiseMechanism>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        serve_session(listener, session, |_| None).expect("serve")
    });
    (addr, handle)
}

fn connect(addr: &str) -> WireClient {
    WireClient::connect_retry(addr, 50, Duration::from_millis(20)).expect("daemon reachable")
}

#[test]
fn handshake_checks_version_and_digest() {
    let local = session(0.25, 120, 1);
    let digest = local.state_digest();
    let (addr, handle) = daemon(local);

    let mut c = connect(&addr);
    // Wrong protocol version.
    let err = c
        .call(&Frame::Hello {
            version: "dap-wire/v0".into(),
            digest,
            channel: None,
            auth: None,
            commit: None,
        })
        .expect_err("version mismatch");
    assert_eq!(
        err,
        WireError::VersionMismatch { client: "dap-wire/v0".into(), server: WIRE_VERSION.into() }
    );
    // Wrong deployment digest — the server names both digests.
    let err = c.hello(digest ^ 1).expect_err("digest mismatch");
    assert_eq!(err, WireError::DigestMismatch { client: digest ^ 1, server: digest });
    // Matching handshake reports the group count.
    let groups = c.hello(digest).expect("handshake");
    assert_eq!(groups, 3, "eps = 1/4, eps0 = 1/16 -> 3 groups");

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn rejections_cross_the_wire_typed() {
    let local = session(0.25, 60, 2);
    let quota0 = local.quota(0);
    let (addr, handle) = daemon(local.clone());
    let mut c = connect(&addr);
    c.hello(local.state_digest()).expect("handshake");

    // Out-of-range: Definition 2 enforced at the daemon's door, with the
    // offending value and the domain bounds round-tripped exactly.
    let err = c.ingest(0, 1e9).expect_err("out of range");
    match err {
        WireError::Rejected(DapError::ReportOutOfRange { group, report, lo, hi }) => {
            assert_eq!(group, 0);
            assert_eq!(report.to_bits(), 1e9f64.to_bits());
            assert!(lo < hi);
        }
        other => panic!("expected typed out-of-range, got {other:?}"),
    }

    // Unknown group.
    let err = c.ingest(99, 0.0).expect_err("unknown group");
    assert_eq!(
        err,
        WireError::Rejected(DapError::UnknownGroup { group: 99, groups: 3 })
    );

    // Over-quota: a batch straddling the limit is rejected atomically…
    c.ingest_batch(0, &vec![0.0; quota0 - 1]).expect("fits");
    let err = c.ingest_batch(0, &[0.0, 0.0]).expect_err("straddles quota");
    assert_eq!(
        err,
        WireError::Rejected(DapError::QuotaExceeded {
            group: 0,
            quota: quota0,
            ingested: quota0 - 1,
            attempted: 2,
        })
    );
    // …leaving no trace: the last in-quota report still fits.
    c.ingest(0, 0.5).expect("exactly at quota");
    let err = c.ingest(0, 0.5).expect_err("now full");
    assert!(matches!(
        err,
        WireError::Rejected(DapError::QuotaExceeded { group: 0, .. })
    ));

    // A part from an incompatible deployment is a typed merge rejection.
    let stranger = session(0.25, 60, 3).export_part();
    let err = c.merge_part(&stranger).expect_err("incompatible part");
    assert_eq!(
        err,
        WireError::Rejected(DapError::SessionMismatch { what: "state digest" })
    );

    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.ingested(0), quota0, "rejections left no trace");
}

#[test]
fn pull_merge_and_remote_finalize_match_local_state() {
    // A twin pair: reports streamed to the daemon must come back (via
    // pull) exactly as if ingested locally, remote finalize must equal
    // local finalize bit for bit, and a merge push must land server-side.
    let mut local = session(0.25, 400, 4);
    let (addr, handle) = daemon(local.clone());
    let mut c = connect(&addr);
    c.hello(local.state_digest()).expect("handshake");

    let mut rng = seeded(9);
    for g in 0..local.group_count() {
        let assign = local.client_assignment(g).expect("known group");
        let mech = PiecewiseMechanism::new(assign.eps_t);
        let mut batch = vec![0.0; assign.k_t * 40];
        for chunk in batch.chunks_exact_mut(assign.k_t) {
            assign.perturb_into(&mech, 0.2, chunk, &mut rng);
        }
        local.ingest_batch(g, &batch).expect("local ingest");
        c.ingest_batch(g, &batch).expect("remote ingest");
    }

    // Pulled state is bit-identical to the local twin's.
    let part = c.pull_part().expect("pull");
    assert_eq!(part, local.export_part(), "served state diverged from local twin");

    // Remote finalize returns exactly what the local session computes.
    let remote = c.finalize(&Scheme::ALL).expect("remote finalize");
    let expected = local.finalize(&Scheme::ALL).expect("local finalize");
    assert_eq!(remote, expected, "remote finalize diverged");

    // Push a merge: an empty twin's part is a no-op, a second copy of the
    // real part doubles the counts server-side.
    let empty = session(0.25, 400, 4).export_part();
    c.merge_part(&empty).expect("empty part merges");
    let after = c.pull_part().expect("pull after merge");
    assert_eq!(after, part, "empty merge must not change state");

    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.export_part(), local.export_part());
}

#[test]
fn shutdown_returns_even_with_idle_connections_open() {
    // A lingering client parked between requests must not wedge the
    // daemon: shutdown half-closes every accepted connection, so the
    // scoped handler threads unblock and `serve_session` returns.
    let local = session(0.25, 120, 6);
    let (addr, handle) = daemon(local.clone());
    let mut idle = connect(&addr);
    idle.hello(local.state_digest()).expect("handshake");

    let mut closer = connect(&addr);
    closer.shutdown().expect("shutdown accepted");
    handle.join().expect("daemon returned despite the idle connection");

    // The idle client's connection was released; its next call fails
    // cleanly instead of blocking.
    assert!(idle.ingest(0, 0.0).is_err());
}

#[test]
fn idle_connections_are_timed_out_but_the_daemon_keeps_serving() {
    // An idle-timeout daemon reclaims a parked connection instead of
    // holding it forever, and stays healthy for the next client.
    let local = session(0.25, 120, 7);
    let digest = local.state_digest();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let options = ServeOptions {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServeOptions::default()
    };
    let handle = std::thread::spawn(move || {
        serve_session_with(listener, local, |_| None, options).expect("serve")
    });

    let mut idle = connect(&addr);
    idle.hello(digest).expect("handshake");
    std::thread::sleep(Duration::from_millis(300));
    // The server reclaimed the connection while we were parked: the next
    // call fails with the typed farewell (if our write still got through)
    // or a plain broken pipe — never a hang.
    let err = idle.ingest(0, 0.0).expect_err("connection was reclaimed");
    assert!(
        matches!(err, WireError::Timeout { .. } | WireError::Io { .. }),
        "expected a timeout or closed-connection error, got {err:?}"
    );

    // The daemon is still alive for fresh clients, and shuts down cleanly.
    let mut c = connect(&addr);
    c.hello(digest).expect("handshake after the idle reclaim");
    c.ingest(0, 0.25).expect("daemon still ingests");
    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.ingested(0), 1);
}

#[test]
fn status_probe_reports_liveness_without_a_handshake() {
    let mut local = session(0.25, 120, 8);
    local.ingest_batch(0, &[0.5, -0.5]).expect("local ingest");
    let digest = local.state_digest();
    let (addr, handle) = daemon(local);

    // `status` needs no hello: it is the liveness probe a coordinator
    // sends before deciding whether a daemon is worth retrying.
    let mut c = WireClient::connect_with(&addr, &Deadlines::all(Duration::from_secs(5)))
        .expect("connect with deadlines");
    let (got_digest, groups, ingested) = c.status().expect("status");
    assert_eq!(got_digest, digest);
    assert_eq!(groups, 3);
    assert_eq!(ingested, 2);

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn sequenced_resume_survives_a_reconnect_without_double_apply() {
    let local = session(0.25, 200, 9);
    let digest = local.state_digest();
    let (addr, handle) = daemon(local);
    const CH: u64 = 0xc0ffee;

    // First connection: two acknowledged sequenced batches.
    let mut c = connect(&addr);
    let (_, last) = c.hello_channel(digest, CH).expect("handshake");
    assert_eq!(last, 0, "fresh channel");
    c.ingest_batch_seq(CH, 1, 0, &[0.5, -0.25]).expect("seq 1");
    c.ingest_batch_seq(CH, 2, 1, &[0.125]).expect("seq 2");
    drop(c); // connection lost without a goodbye

    // Reconnect: the handshake reports how far the channel got, the
    // uncertain batch retried anyway is refused typed (= acknowledged),
    // and the next sequence is accepted.
    let mut c = connect(&addr);
    let (_, last) = c.hello_channel(digest, CH).expect("resume handshake");
    assert_eq!(last, 2, "server remembers the acknowledged prefix");
    let err = c.ingest_batch_seq(CH, 2, 1, &[0.125]).expect_err("duplicate");
    assert_eq!(
        err,
        WireError::Rejected(DapError::DuplicateSequence { channel: CH, seq: 2, last: 2 })
    );
    let err = c.ingest_batch_seq(CH, 4, 1, &[0.25]).expect_err("gap");
    assert_eq!(
        err,
        WireError::Rejected(DapError::SequenceGap { channel: CH, seq: 4, expected: 3 })
    );
    c.ingest_batch_seq(CH, 3, 1, &[0.25]).expect("seq 3");

    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.ingested(0) + served.ingested(1), 4, "no report lost or doubled");
}

// ---------------------------------------------------------------------------
// Kill/restart durability (process-level)
// ---------------------------------------------------------------------------

/// The deployment both halves of the kill/restart test agree on.
fn durable_deployment() -> DapSession<PiecewiseMechanism> {
    session(0.25, 400, 44)
}

const CHILD_DIR_VAR: &str = "DAP_DURABLE_JOURNAL_DIR";

/// Re-exec helper, not a test of its own: [`kill_dash_nine_mid_submit_loses_no_acked_report`]
/// spawns this test binary again filtered down to this function, which
/// runs a journaled daemon on the directory named by `DAP_DURABLE_JOURNAL_DIR`
/// and prints its bound address. The parent then SIGKILLs it — a real
/// process death, not a dropped thread.
#[test]
#[ignore = "re-exec helper; spawned as a child process by the kill/restart test"]
fn durable_daemon_child() {
    let Some(dir) = std::env::var_os(CHILD_DIR_VAR) else { return };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    println!("DAP_ADDR {}", listener.local_addr().expect("local addr"));
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush addr line");
    let backend = FileBackend::open(Path::new(&dir)).expect("open journal dir");
    let (durable, _) =
        DurableSession::open(durable_deployment(), backend, DurableOptions::default())
            .expect("recover journaled session");
    serve_session(listener, durable, |_| None).expect("serve");
}

/// Spawns a journaled daemon as a separate OS process and reads back the
/// address it bound. The stdout handle stays attached so the harness can
/// keep writing to it for the daemon's whole life.
fn spawn_durable_daemon(dir: &Path) -> (Child, BufReader<ChildStdout>, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["--exact", "durable_daemon_child", "--ignored", "--nocapture"])
        .env(CHILD_DIR_VAR, dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child daemon");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if lines.read_line(&mut line).expect("child stdout") == 0 {
            panic!("child daemon exited before printing its address");
        }
        // The harness prints `test durable_daemon_child ... ` (no newline)
        // before the test body runs, so the marker is mid-line.
        if let Some(at) = line.find("DAP_ADDR ") {
            break line[at + "DAP_ADDR ".len()..].trim_end().to_string();
        }
    };
    (child, lines, addr)
}

#[test]
fn kill_dash_nine_mid_submit_loses_no_acked_report() {
    // A journaled daemon is SIGKILLed halfway through a submission — a
    // process death, so nothing in memory survives. A restarted daemon on
    // the same journal directory must hold exactly the acknowledged
    // prefix, and finishing the submission against it must finalize
    // bit-identically to a never-interrupted local run.
    let dir = std::env::temp_dir().join(format!("dap-kill-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut local = durable_deployment();
    let digest = local.state_digest();

    // Six deterministic batches, round-robin across the three groups
    // (each group takes 120 of its ~134-report quota).
    let mut rng = seeded(91);
    let batches: Vec<(usize, Vec<f64>)> = (0..6)
        .map(|i| {
            let g = i % local.group_count();
            let batch: Vec<f64> =
                (0..60).map(|_| rand::Rng::gen::<f64>(&mut rng) * 2.0 - 1.0).collect();
            (g, batch)
        })
        .collect();

    // Generation 1: stream half the batches, then kill -9 between two
    // acknowledged calls. An ack means the record hit the journal before
    // the reply, so the half-submitted state is durable.
    let (mut child, _stdout, addr) = spawn_durable_daemon(&dir);
    let mut c = connect(&addr);
    c.hello(digest).expect("handshake");
    for (g, batch) in &batches[..3] {
        c.ingest_batch(*g, batch).expect("acked ingest");
        local.ingest_batch(*g, batch).expect("local twin");
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Generation 2: a fresh process on the same journal. Its recovered
    // state must be bit-identical to the local twin at the kill point…
    let (mut child, _stdout, addr) = spawn_durable_daemon(&dir);
    let mut c = connect(&addr);
    c.hello(digest).expect("handshake with the restarted daemon");
    assert_eq!(
        c.pull_part().expect("pull recovered state"),
        local.export_part(),
        "restart dropped or invented acknowledged reports"
    );

    // …and finishing the submission must match an uninterrupted run.
    for (g, batch) in &batches[3..] {
        c.ingest_batch(*g, batch).expect("acked ingest after restart");
        local.ingest_batch(*g, batch).expect("local twin");
    }
    let remote = c.finalize(&Scheme::ALL).expect("remote finalize");
    let expected = local.finalize(&Scheme::ALL).expect("local finalize");
    assert_eq!(remote, expected, "kill/restart changed the finalized outputs");

    c.shutdown().expect("shutdown");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "restarted daemon exited uncleanly: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_share_one_daemon() {
    // Group-sharded concurrent writers: each client owns one group, the
    // daemon serializes ingestion behind its lock, and the result equals a
    // single-writer session exactly (counts are exact for any sharding;
    // each group's stream order is preserved because one client owns it).
    let mut local = session(0.25, 300, 5);
    let (addr, handle) = daemon(local.clone());

    let digest = local.state_digest();
    let groups = local.group_count();
    let batches: Vec<(usize, Vec<f64>)> = {
        let mut rng = seeded(31);
        (0..groups)
            .map(|g| {
                let assign = local.client_assignment(g).expect("known group");
                let mech = PiecewiseMechanism::new(assign.eps_t);
                let mut batch = vec![0.0; assign.k_t * 30];
                for chunk in batch.chunks_exact_mut(assign.k_t) {
                    assign.perturb_into(&mech, -0.1, chunk, &mut rng);
                }
                (g, batch)
            })
            .collect()
    };
    for (g, batch) in &batches {
        local.ingest_batch(*g, batch).expect("local ingest");
    }

    std::thread::scope(|scope| {
        for (g, batch) in &batches {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut c = connect(&addr);
                c.hello(digest).expect("handshake");
                // Chunked, in order — order within a group is part of the
                // exactness contract.
                for chunk in batch.chunks(64) {
                    c.ingest_batch(*g, chunk).expect("remote ingest");
                }
            });
        }
    });

    let mut c = connect(&addr);
    c.hello(digest).expect("handshake");
    assert_eq!(c.pull_part().expect("pull"), local.export_part());
    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}
