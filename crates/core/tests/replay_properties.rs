//! Property suite for the idempotent-replay contract
//! ([`DapSession`]'s per-channel sequence guard + the durable journal).
//!
//! The contract under test is the one the self-healing coordinator leans
//! on: **any** interleaving of retries, duplicate deliveries, premature
//! (gapped) deliveries, and mid-stream crash/recoveries of a journaled
//! session finalizes with a `content_digest` bit-identical to the no-fault
//! run — and every double-apply is refused with the typed
//! [`DapError::DuplicateSequence`], never silently absorbed. Three
//! families:
//!
//! * **faulted delivery** — random duplicate/gap injections plus random
//!   crash+reopen points leave the digest equal to the clean run's, and
//!   (when no checkpointing interferes) refused traffic costs no journal
//!   storage;
//! * **full-stream replay** — after a crash at any point, a sender that
//!   naively replays the *entire* stream from sequence 1 lands every
//!   report exactly once: the recovered guard refuses exactly the
//!   already-applied prefix, typed, and accepts the rest;
//! * **resume handshake** — `last_seq` is always the correct resume
//!   point: everything at or below it is refused, `last_seq + 1` is
//!   accepted, regardless of where the crash fell.

use dap_core::storage::{DurableOptions, DurableSession, MemoryBackend};
use dap_core::{DapConfig, DapError, DapSession, GroupPlan, Scheme};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two client connections ("channels") the interleavings run over.
const CHANNELS: [u64; 2] = [0xc0ffee, 0x0decaf];

fn session(seed: u64) -> DapSession<PiecewiseMechanism> {
    let cfg =
        DapConfig { eps0: 1.0 / 16.0, max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let plan = GroupPlan::build(200, cfg.eps, cfg.eps0, &mut seeded(seed));
    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
}

/// One sequenced batch as a client would send it.
struct Batch {
    channel: u64,
    seq: u64,
    group: usize,
    reports: Vec<f64>,
}

/// A random stream of sequenced batches across [`CHANNELS`], with
/// per-channel sequences assigned contiguously from 1 (the send order).
/// Groups rotate deterministically so no group's quota is ever at risk.
fn stream(seed: u64, count: usize) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = session(seed).group_count();
    let mut next = [1u64; CHANNELS.len()];
    (0..count)
        .map(|i| {
            let ch = rng.gen_range(0..CHANNELS.len());
            let seq = next[ch];
            next[ch] += 1;
            let n = rng.gen_range(1..4usize);
            Batch {
                channel: CHANNELS[ch],
                seq,
                group: i % groups,
                // PM output domains at these budgets contain [-1, 1].
                reports: (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect(),
            }
        })
        .collect()
}

/// The no-fault reference: the same batches applied once each, in send
/// order, to a plain in-memory session.
fn clean_digest(seed: u64, stream: &[Batch]) -> u64 {
    let mut clean = session(seed);
    for b in stream {
        clean.ingest_batch(b.group, &b.reports).expect("clean ingest");
    }
    clean.content_digest()
}

type Durable = DurableSession<PiecewiseMechanism, MemoryBackend>;

/// Crash the durable session (drop it mid-stream) and recover a fresh one
/// from the surviving backend bytes.
fn crash_and_recover(durable: Durable, seed: u64, opts: DurableOptions) -> Durable {
    let (_, backend) = durable.into_parts();
    DurableSession::open(session(seed), backend, opts).expect("recovery").0
}

proptest! {
    /// Random duplicates (retries whose ack was lost), premature future
    /// sequences (a lost predecessor), and crash+reopen points — in any
    /// combination — finalize bit-identical to the clean run. Every
    /// duplicate is refused typed; refused traffic never reaches the
    /// journal.
    #[test]
    fn faulted_delivery_finalizes_bit_identical(
        seed in 0u64..1_000_000,
        count in 1usize..12,
        dup_mask in 0u64..u64::MAX,
        gap_mask in 0u64..u64::MAX,
        crash_mask in 0u64..u64::MAX,
        checkpoint_every in 0usize..3,
    ) {
        let plan = stream(seed, count);
        let reference = clean_digest(seed, &plan);
        let opts = DurableOptions { checkpoint_every, salvage: false };
        let mut durable: Durable =
            DurableSession::open(session(seed), MemoryBackend::new(), opts).unwrap().0;

        let mut accepted = 0usize;
        for (i, b) in plan.iter().enumerate() {
            // A stale retransmission of the channel's previous batch
            // (the classic lost-ack retry) must be refused typed.
            if dup_mask >> (i % 64) & 1 == 1 {
                if let Some(prev) = plan[..i].iter().rev().find(|p| p.channel == b.channel) {
                    let err = durable
                        .ingest_batch_seq(prev.channel, prev.seq, prev.group, &prev.reports)
                        .unwrap_err();
                    prop_assert!(matches!(err, DapError::DuplicateSequence { .. }), "{err}");
                }
            }
            // A batch from the future (its predecessor was lost in
            // flight) is refused as a typed gap and applies nothing.
            if gap_mask >> (i % 64) & 1 == 1 {
                let err = durable
                    .ingest_batch_seq(b.channel, b.seq + 1, b.group, &b.reports)
                    .unwrap_err();
                prop_assert!(
                    matches!(err, DapError::SequenceGap { seq, expected, .. }
                        if seq == b.seq + 1 && expected == b.seq),
                    "{err}"
                );
            }
            // The in-order delivery itself.
            durable.ingest_batch_seq(b.channel, b.seq, b.group, &b.reports).unwrap();
            accepted += 1;
            // An immediate duplicate of what was just applied (the ack
            // raced the retry) — refused with the exact coordinates.
            if dup_mask >> ((i + 17) % 64) & 1 == 1 {
                let err = durable
                    .ingest_batch_seq(b.channel, b.seq, b.group, &b.reports)
                    .unwrap_err();
                prop_assert!(
                    matches!(err, DapError::DuplicateSequence { channel, seq, last }
                        if channel == b.channel && seq == b.seq && last == b.seq),
                    "{err}"
                );
            }
            // A crash (process death) between any two batches: recovery
            // restores both the data and the replay guard.
            if crash_mask >> (i % 64) & 1 == 1 {
                let before = durable.session().content_digest();
                durable = crash_and_recover(durable, seed, opts);
                prop_assert_eq!(durable.session().content_digest(), before);
            }
        }

        prop_assert_eq!(durable.session().content_digest(), reference);
        if checkpoint_every == 0 {
            prop_assert_eq!(
                durable.journal().records(),
                accepted,
                "refused traffic must cost no journal storage"
            );
        }
    }

    /// After a crash at any point in the stream, replaying the ENTIRE
    /// stream from sequence 1 is safe: the recovered guard refuses
    /// exactly the already-applied prefix (typed, per channel) and
    /// accepts the tail — landing every report exactly once.
    #[test]
    fn full_stream_replay_after_a_crash_lands_each_report_once(
        seed in 0u64..1_000_000,
        count in 1usize..12,
        crash_at in 0.0f64..1.0,
        checkpoint_every in 0usize..3,
    ) {
        let plan = stream(seed, count);
        let reference = clean_digest(seed, &plan);
        let opts = DurableOptions { checkpoint_every, salvage: false };
        let mut durable: Durable =
            DurableSession::open(session(seed), MemoryBackend::new(), opts).unwrap().0;

        // Deliver a prefix, then die.
        let delivered = (count as f64 * crash_at) as usize;
        for b in &plan[..delivered] {
            durable.ingest_batch_seq(b.channel, b.seq, b.group, &b.reports).unwrap();
        }
        let mut durable = crash_and_recover(durable, seed, opts);

        // The sender lost its cursor: it replays everything from the top.
        for b in &plan {
            let acked = durable.session().last_seq(b.channel).unwrap_or(0);
            match durable.ingest_batch_seq(b.channel, b.seq, b.group, &b.reports) {
                Ok(()) => prop_assert_eq!(b.seq, acked + 1, "only the next sequence applies"),
                Err(DapError::DuplicateSequence { channel, seq, last }) => {
                    prop_assert!(seq <= acked, "only the applied prefix is refused");
                    prop_assert_eq!(channel, b.channel);
                    prop_assert_eq!(seq, b.seq);
                    prop_assert_eq!(last, acked);
                }
                Err(other) => prop_assert!(false, "unexpected rejection: {other}"),
            }
        }
        prop_assert_eq!(durable.session().content_digest(), reference);
    }

    /// `last_seq` is always the correct resume point after recovery:
    /// everything at or below it is refused, `last_seq + 1` is accepted —
    /// the invariant the `hello-ok ... seq n` handshake hands to
    /// reconnecting senders.
    #[test]
    fn last_seq_is_the_resume_point(
        seed in 0u64..1_000_000,
        count in 2usize..12,
        crash_at in 0.0f64..1.0,
    ) {
        let plan = stream(seed, count);
        let opts = DurableOptions::default();
        let mut durable: Durable =
            DurableSession::open(session(seed), MemoryBackend::new(), opts).unwrap().0;
        let delivered = 1 + (count.saturating_sub(1) as f64 * crash_at) as usize;
        for b in &plan[..delivered] {
            durable.ingest_batch_seq(b.channel, b.seq, b.group, &b.reports).unwrap();
        }
        let mut durable = crash_and_recover(durable, seed, opts);

        for &channel in &CHANNELS {
            let Some(acked) = durable.session().last_seq(channel) else { continue };
            // Every acknowledged sequence is refused on retry...
            for seq in 1..=acked {
                let err = durable.ingest_batch_seq(channel, seq, 0, &[0.5]).unwrap_err();
                prop_assert!(
                    matches!(err, DapError::DuplicateSequence { last, .. } if last == acked),
                    "{err}"
                );
            }
            // ...and the handshake's resume point is accepted.
            durable.ingest_batch_seq(channel, acked + 1, 0, &[0.5]).unwrap();
        }
    }
}
