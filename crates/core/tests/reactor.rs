//! The bounded-worker ingestion reactor under load: backpressure sheds
//! typed [`WireError::Throttled`] frames before they touch the session,
//! retry-with-backoff lands every report exactly once (a property checked
//! over seeded storm schedules), connections parked in the apply queue
//! are reaped by the idle timeout, the connection cap sheds at accept,
//! the `status` frame surfaces the reactor counters, and a reactor daemon
//! serves state bit-identical to the legacy thread-per-connection path.

use dap_core::net::{
    read_frame, serve_session_with, Frame, ReactorOptions, ServeOptions, WireClient, WireError,
};
use dap_core::{DapConfig, DapError, DapSession, GroupPlan, Scheme};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::thread::JoinHandle;
use std::time::Duration;

fn session(seed: u64) -> DapSession<PiecewiseMechanism> {
    // eps = 1/4, eps0 = 1/16 -> 3 groups, comfortable quotas at 200 users.
    let cfg =
        DapConfig { max_d_out: 16, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let plan = GroupPlan::build(200, cfg.eps, cfg.eps0, &mut seeded(seed));
    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
}

/// Spawns a daemon with explicit [`ServeOptions`] on an OS-assigned port.
fn daemon_with(
    session: DapSession<PiecewiseMechanism>,
    options: ServeOptions,
) -> (String, JoinHandle<DapSession<PiecewiseMechanism>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        serve_session_with(listener, session, |_| None, options).expect("serve")
    });
    (addr, handle)
}

fn connect(addr: &str) -> WireClient {
    WireClient::connect_retry(addr, 50, Duration::from_millis(20)).expect("daemon reachable")
}

/// A reactor squeezed down until it sheds: one worker, a one-slot queue,
/// and a per-batch stall simulating a slow durability layer underneath.
fn tiny_reactor(stall: Duration) -> ReactorOptions {
    ReactorOptions {
        workers: 1,
        queue_ops: 1,
        coalesce: 1,
        retry_after_ms: 2,
        apply_stall: Some(stall),
        ..ReactorOptions::default()
    }
}

/// Client-side throttle-aware resend: sleep the server's hint (or the
/// policy backoff, whichever is longer — here the hint) and resend the
/// identical sequenced frame. [`WireError::Throttled`] is pre-validation,
/// so the resend is always safe; the replay guard turns an
/// already-applied duplicate into a typed refusal we count as landed.
fn send_with_retry(
    c: &mut WireClient,
    channel: u64,
    seq: u64,
    group: usize,
    reports: &[f64],
) {
    loop {
        match c.ingest_batch_seq(channel, seq, group, reports) {
            Ok(()) => return,
            Err(WireError::Throttled { retry_after_ms }) => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
            }
            Err(WireError::Rejected(DapError::DuplicateSequence { .. })) => return,
            Err(other) => panic!("storm client hit a non-retryable error: {other}"),
        }
    }
}

proptest! {
    /// Seeded storm schedules: each client owns one group and one
    /// sequencing channel and streams its batches concurrently through a
    /// deliberately starved reactor (one worker, one queue slot, stalled
    /// applies), retrying every [`WireError::Throttled`] shed. Whatever
    /// the interleaving and however many sheds occur, the served state
    /// must be bit-identical to a clean local twin — every report landed
    /// exactly once, in its channel's order.
    #[test]
    fn storm_retry_lands_every_report_exactly_once(
        seed in 0u64..1_000_000,
        clients in 1usize..4,
        batches in 1usize..5,
    ) {
        let local = session(seed);
        let digest = local.state_digest();
        // Per-client schedules: client `i` owns group `i` (disjoint groups
        // keep per-group float-sum order deterministic under any
        // cross-client interleaving) and channel 0xc0ffee + i.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5707_99ED);
        let plans: Vec<Vec<Vec<f64>>> = (0..clients)
            .map(|_| {
                (0..batches)
                    .map(|_| {
                        let n = rng.gen_range(1..4usize);
                        (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
                    })
                    .collect()
            })
            .collect();

        // The clean reference: the same sequenced schedules applied once,
        // in order (channel state is part of the exported bytes).
        let mut twin = local.clone();
        for (g, plan) in plans.iter().enumerate() {
            for (i, batch) in plan.iter().enumerate() {
                twin.ingest_batch_seq(0xc0ffee + g as u64, i as u64 + 1, g, batch)
                    .expect("twin ingest");
            }
        }

        let options = ServeOptions {
            reactor: Some(tiny_reactor(Duration::from_millis(1))),
            ..ServeOptions::default()
        };
        let (addr, handle) = daemon_with(local, options);
        std::thread::scope(|scope| {
            for (g, plan) in plans.iter().enumerate() {
                let addr = addr.clone();
                scope.spawn(move || {
                    let channel = 0xc0ffee + g as u64;
                    let mut c = connect(&addr);
                    c.hello_channel(digest, channel).expect("handshake");
                    for (i, batch) in plan.iter().enumerate() {
                        send_with_retry(&mut c, channel, i as u64 + 1, g, batch);
                    }
                });
            }
        });

        let mut c = connect(&addr);
        c.hello(digest).expect("handshake");
        let part = c.pull_part().expect("pull");
        c.shutdown().expect("shutdown");
        let served = handle.join().expect("daemon thread");
        prop_assert_eq!(&part, &twin.export_part(), "storm lost or duplicated a report");
        prop_assert_eq!(&served.export_part(), &twin.export_part());
    }
}

#[test]
fn backpressure_sheds_typed_throttle_and_retry_recovers() {
    // One worker stalled 200 ms per batch, one queue slot: with one frame
    // being applied and one parked, a third connection's frame must be
    // shed with the typed throttle (carrying the configured hint) before
    // touching the session — and a patient resend must land it.
    let local = session(11);
    let digest = local.state_digest();
    let stall = Duration::from_millis(200);
    let options = ServeOptions {
        reactor: Some(ReactorOptions { retry_after_ms: 7, ..tiny_reactor(stall) }),
        ..ServeOptions::default()
    };
    let (addr, handle) = daemon_with(local.clone(), options);

    let mut twin = local;
    for (ch, r) in [(1u64, 0.5f64), (2, -0.25), (3, 0.125)] {
        twin.ingest_batch_seq(ch, 1, 0, &[r]).expect("twin ingest");
    }

    // Connections 1 and 2 occupy the worker and the queue slot…
    let spawn_sender = |ch: u64, r: f64| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = connect(&addr);
            c.hello_channel(digest, ch).expect("handshake");
            send_with_retry(&mut c, ch, 1, 0, &[r]);
        })
    };
    let t1 = spawn_sender(1, 0.5);
    std::thread::sleep(stall / 4); // worker has popped frame 1 and is stalled
    let t2 = spawn_sender(2, -0.25);
    std::thread::sleep(stall / 4); // frame 2 is parked in the one-slot queue

    // …so connection 3 is shed, typed and with the server's hint intact.
    let mut c = connect(&addr);
    c.hello_channel(digest, 3).expect("handshake");
    let err = c.ingest_batch_seq(3, 1, 0, &[0.125]).expect_err("queue is full");
    assert_eq!(err, WireError::Throttled { retry_after_ms: 7 });
    // The shed happened before validation: the channel's sequence is
    // untouched, so the identical resend (with backoff) lands.
    send_with_retry(&mut c, 3, 1, 0, &[0.125]);

    t1.join().expect("sender 1");
    t2.join().expect("sender 2");

    let (_, _, ingested, counters) = c.status_counters().expect("status");
    assert_eq!(ingested, 3, "every report landed exactly once");
    let reactor = counters.expect("countered daemon").reactor.expect("reactor daemon");
    assert!(reactor.throttled >= 1, "the shed must show in the counters: {reactor:?}");
    assert!(reactor.peak_connections >= 1);

    let part = c.pull_part().expect("pull");
    assert_eq!(part, twin.export_part(), "throttle retry lost or duplicated a report");
    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn connections_parked_in_the_apply_queue_are_reaped_by_the_idle_timeout() {
    // Regression: the idle timeout used to cover only connections blocked
    // in `read_frame`; a connection whose frame sat in the apply queue
    // behind a wedged durability layer could pin its handler forever.
    // Under the reactor the same bound reaps the parked connection with a
    // typed timeout farewell — and because the queued op may still apply
    // after the farewell, the client's retry on a fresh connection must
    // dedup through the replay guard, keeping exactly-once.
    let local = session(12);
    let digest = local.state_digest();
    let stall = Duration::from_millis(200);
    let options = ServeOptions {
        idle_timeout: Some(Duration::from_millis(50)),
        reactor: Some(ReactorOptions {
            queue_ops: 64, // roomy queue: the stall, not backpressure, parks us
            ..tiny_reactor(stall)
        }),
        ..ServeOptions::default()
    };
    let (addr, handle) = daemon_with(local, options);
    const CH: u64 = 0xdecaf;

    // Every queued op stalls past the idle deadline, so each submission
    // sees the reap farewell instead of its ack — the client is left
    // uncertain and must resend. Three submissions go in: the batch, its
    // uncertain duplicate, and the channel's next batch.
    let mut reaped = Vec::new();
    for (seq, batch) in [(1u64, vec![0.5, -0.5]), (1, vec![0.5, -0.5]), (2, vec![0.25])] {
        let mut c = connect(&addr);
        c.hello_channel(digest, CH).expect("handshake");
        let err = c
            .ingest_batch_seq(CH, seq, 0, &batch)
            .expect_err("parked past the idle deadline");
        assert!(
            matches!(err, WireError::Timeout { .. } | WireError::Io { .. }),
            "expected the typed reap farewell or a closed socket, got {err:?}"
        );
        reaped.push(err);
    }
    // At least the first reap must be the *typed* farewell (later ones may
    // race the socket teardown into a plain I/O error).
    assert!(
        matches!(&reaped[0], WireError::Timeout { what } if what.contains("apply queue")),
        "expected the apply-queue reap farewell, got {:?}",
        reaped[0]
    );

    // The daemon stays responsive while the queue drains: `status` is not
    // a reactor op, so it answers immediately from a fresh connection.
    let mut probe = connect(&addr);
    let (probe_digest, _, _) = probe.status().expect("status while wedged");
    assert_eq!(probe_digest, digest);
    drop(probe);

    // Once the wedged applies finish, the resume handshake shows the
    // channel advanced exactly once per sequence: the duplicate was
    // refused by the replay guard, nothing was lost or doubled.
    std::thread::sleep(3 * stall + Duration::from_millis(200));
    let mut c = connect(&addr);
    let (_, last) = c.hello_channel(digest, CH).expect("resume handshake");
    assert_eq!(last, 2, "both batches applied despite the reaps");
    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.ingested(0), 3, "reap + retry lost or doubled a report");
}

#[test]
fn connection_cap_sheds_at_accept_with_a_typed_throttle() {
    // Beyond `max_connections` the daemon answers the throttle farewell
    // without reading a frame; once a slot frees, new clients are served.
    let local = session(13);
    let digest = local.state_digest();
    let options = ServeOptions {
        reactor: Some(ReactorOptions {
            max_connections: 1,
            retry_after_ms: 9,
            ..ReactorOptions::default()
        }),
        ..ServeOptions::default()
    };
    let (addr, handle) = daemon_with(local, options);

    let mut first = connect(&addr);
    first.hello(digest).expect("the one admitted connection");

    // The shed connection is told why before being closed: the farewell
    // frame is already in flight, readable without sending anything.
    let mut shed = std::net::TcpStream::connect(&addr).expect("tcp connect");
    let farewell = read_frame(&mut shed).expect("shed farewell");
    assert_eq!(farewell, Frame::Error(WireError::Throttled { retry_after_ms: 9 }));

    // Freeing the slot lets the next client in (the handler needs a
    // moment to notice the closed socket and release its slot; a client
    // racing that teardown may still be shed or hit the closing socket).
    drop(first);
    let mut c = loop {
        let mut c = connect(&addr);
        match c.hello(digest) {
            Ok(_) => break c,
            Err(WireError::Throttled { .. } | WireError::Io { .. }) => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(other) => panic!("unexpected error while the slot drained: {other}"),
        }
    };
    c.ingest(0, 0.5).expect("admitted client is served");
    c.shutdown().expect("shutdown");
    let served = handle.join().expect("daemon thread");
    assert_eq!(served.ingested(0), 1);
}

#[test]
fn status_surfaces_reactor_counters_and_legacy_omits_them() {
    // Default serve: the reactor section rides in `status-ok`.
    let local = session(14);
    let digest = local.state_digest();
    let (addr, handle) = daemon_with(local.clone(), ServeOptions::default());
    let mut c = connect(&addr);
    c.hello(digest).expect("handshake");
    c.ingest_batch(0, &[0.5, -0.5]).expect("ingest");
    let (_, _, ingested, counters) = c.status_counters().expect("status");
    assert_eq!(ingested, 2);
    let reactor = counters.expect("counters present").reactor.expect("reactor serving");
    assert!(reactor.active_connections >= 1, "{reactor:?}");
    assert!(reactor.peak_connections >= reactor.active_connections, "{reactor:?}");
    assert_eq!(reactor.throttled, 0, "an unloaded daemon sheds nothing");
    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    // Legacy thread-per-connection serve: no reactor section.
    let options = ServeOptions { reactor: None, ..ServeOptions::default() };
    let (addr, handle) = daemon_with(local, options);
    let mut c = connect(&addr);
    c.hello(digest).expect("handshake");
    let (_, _, _, counters) = c.status_counters().expect("status");
    assert!(counters.expect("counters present").reactor.is_none());
    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn reactor_and_legacy_daemons_serve_bit_identical_state() {
    // The same deterministic submission through both serving paths must
    // produce byte-identical exported state — the reactor's coalesced
    // group-committed applies change scheduling, never arithmetic.
    let local = session(15);
    let digest = local.state_digest();
    let mut rng = seeded(77);
    let batches: Vec<(usize, Vec<f64>)> = (0..9)
        .map(|i| {
            let g = i % local.group_count();
            let n = rng.gen_range(1..6usize);
            (g, (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        })
        .collect();

    let mut parts = Vec::new();
    for reactor in [Some(ReactorOptions::default()), None] {
        let options = ServeOptions { reactor, ..ServeOptions::default() };
        let (addr, handle) = daemon_with(local.clone(), options);
        let mut c = connect(&addr);
        c.hello_channel(digest, 0xfeed).expect("handshake");
        for (i, (g, batch)) in batches.iter().enumerate() {
            c.ingest_batch_seq(0xfeed, i as u64 + 1, *g, batch).expect("ingest");
        }
        parts.push(c.pull_part().expect("pull"));
        c.shutdown().expect("shutdown");
        handle.join().expect("daemon thread");
    }
    assert_eq!(parts[0], parts[1], "reactor and legacy paths diverged");

    let mut twin = local;
    for (i, (g, batch)) in batches.iter().enumerate() {
        twin.ingest_batch_seq(0xfeed, i as u64 + 1, *g, batch).expect("twin ingest");
    }
    assert_eq!(parts[0], twin.export_part(), "served state diverged from local");
}
