//! Property suite for the secret-shared aggregation tier
//! ([`dap_core::secagg`]).
//!
//! The contract under test is the one the multi-aggregator deployment
//! leans on, over random share counts k ∈ {2..5}, random group shapes,
//! and random chunk orders:
//!
//! * **exactness** — wrapping-summing all k shares of every contribution
//!   reconstructs the true integer histogram bit-exactly (the pairwise
//!   masks cancel), no matter how chunks are interleaved per daemon;
//! * **seed reveal** — [`ShareSplitter::share_for`] re-derives exactly
//!   the share `split` dealt, for every index, so a dead share server
//!   can be replaced without changing a single bit;
//! * **opacity** — any k−1 of the k shares wrapping-sum to the true
//!   counts *plus* the missing share's masks, which are never all zero
//!   for a non-trivial stream: a colluding k−1 subset learns a blinded
//!   vector, not the histogram;
//! * **typed refusals** — a short share group, a duplicate index, or a
//!   mixed seed commitment is a named [`DapError`], never a silent
//!   wrong answer;
//! * **session equivalence** — k masked [`DapSession`]s fed shares over
//!   the sequenced wire path reconstruct exactly the histogram of a
//!   plain session fed the same reports in the same order.

use dap_core::secagg::reconstruct;
use dap_core::{
    DapConfig, DapError, DapSession, GroupPlan, MaskedPart, Scheme, SecaggRole, ShareSplitter,
};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random per-(group, chunk) contribution stream: `groups` groups with
/// random bucket resolutions, each with a few chunks of small counts.
fn contributions(seed: u64, groups: usize) -> Vec<Vec<Vec<u64>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..groups)
        .map(|_| {
            let resolution = rng.gen_range(1..12usize);
            let chunks = rng.gen_range(0..5usize);
            (0..chunks)
                .map(|_| (0..resolution).map(|_| rng.gen_range(0..50u64)).collect())
                .collect()
        })
        .collect()
}

/// Deals `stream` with `splitter` and accumulates each daemon's masked
/// state, visiting chunks in an order shuffled by `order_seed` — share
/// application is commutative, and the suite proves it.
fn deal(
    splitter: &ShareSplitter,
    stream: &[Vec<Vec<u64>>],
    order_seed: u64,
) -> Vec<MaskedPart> {
    let k = splitter.k();
    let mut accum: Vec<Vec<Vec<u64>>> = (0..k)
        .map(|_| {
            stream
                .iter()
                .map(|chunks| vec![0u64; chunks.first().map_or(1, Vec::len)])
                .collect()
        })
        .collect();
    let mut sites: Vec<(usize, usize)> = stream
        .iter()
        .enumerate()
        .flat_map(|(g, chunks)| (0..chunks.len()).map(move |c| (g, c)))
        .collect();
    // Fisher–Yates with a per-daemon offset: every daemon sees its own
    // chunk order.
    let mut rng = StdRng::seed_from_u64(order_seed);
    for (j, daemon) in accum.iter_mut().enumerate() {
        for i in (1..sites.len()).rev() {
            sites.swap(i, rng.gen_range(0..=i));
        }
        for &(g, c) in &sites {
            let share = splitter.share_for(j, g as u64, c as u64, &stream[g][c]);
            for (t, w) in daemon[g].iter_mut().zip(&share) {
                *t = t.wrapping_add(*w);
            }
        }
    }
    let commitment = splitter.commitment().digest();
    accum
        .into_iter()
        .enumerate()
        .map(|(index, groups)| MaskedPart {
            digest: 0xd1_6e57,
            k,
            index,
            commitment,
            groups: groups
                .into_iter()
                .map(|counts| dap_core::MaskedGroup { counts })
                .collect(),
            channels: Vec::new(),
        })
        .collect()
}

/// The true (unmasked) per-group totals of a contribution stream.
fn totals(stream: &[Vec<Vec<u64>>]) -> Vec<Vec<u64>> {
    stream
        .iter()
        .map(|chunks| {
            let resolution = chunks.first().map_or(1, Vec::len);
            let mut sum = vec![0u64; resolution];
            for chunk in chunks {
                for (t, &c) in sum.iter_mut().zip(chunk) {
                    *t += c;
                }
            }
            sum
        })
        .collect()
}

proptest! {
    /// Masked merge is bit-identical to the unmasked sum for every k,
    /// every random group shape, and independently shuffled per-daemon
    /// chunk orders.
    #[test]
    fn masked_merge_reconstructs_the_exact_histogram(
        seed in 0u64..1_000_000,
        mask_seed in 0u64..u64::MAX,
        k in 2usize..6,
        groups in 1usize..5,
        order_seed in 0u64..u64::MAX,
    ) {
        let stream = contributions(seed, groups);
        let splitter = ShareSplitter::new(k, mask_seed).expect("valid k");
        let parts = deal(&splitter, &stream, order_seed);
        prop_assert_eq!(reconstruct(&parts).expect("complete group"), totals(&stream));
    }

    /// `share_for(j, ...)` re-derives exactly what `split` dealt to
    /// daemon j — the seed-reveal path a dead share server is rebuilt
    /// from.
    #[test]
    fn seed_reveal_rederives_every_dealt_share(
        seed in 0u64..1_000_000,
        mask_seed in 0u64..u64::MAX,
        k in 2usize..6,
    ) {
        let stream = contributions(seed, 3);
        let splitter = ShareSplitter::new(k, mask_seed).expect("valid k");
        for (g, chunks) in stream.iter().enumerate() {
            for (c, counts) in chunks.iter().enumerate() {
                let dealt = splitter.split(g as u64, c as u64, counts);
                prop_assert_eq!(dealt.len(), k);
                for (j, share) in dealt.iter().enumerate() {
                    prop_assert_eq!(
                        share,
                        &splitter.share_for(j, g as u64, c as u64, counts)
                    );
                }
            }
        }
    }

    /// Any k−1 of the k shares miss the true histogram by exactly the
    /// withheld share — and for a stream with at least one chunk the
    /// withheld share carries live masks, so the colluding subset's sum
    /// is blinded (it differs from the truth unless the masks cancel to
    /// zero, which the dealt shares themselves rule out here).
    #[test]
    fn k_minus_one_shares_are_blinded_by_the_missing_mask(
        seed in 0u64..1_000_000,
        mask_seed in 1u64..u64::MAX,
        k in 2usize..6,
        withhold in 0usize..6,
    ) {
        let stream = contributions(seed, 3);
        prop_assume!(stream.iter().any(|chunks| !chunks.is_empty()));
        let withhold = withhold % k;
        let splitter = ShareSplitter::new(k, mask_seed).expect("valid k");
        let parts = deal(&splitter, &stream, seed);
        let truth = totals(&stream);

        // The colluding subset's wrapping sum, per group.
        let colluding: Vec<Vec<u64>> = truth
            .iter()
            .enumerate()
            .map(|(g, t)| {
                let mut sum = vec![0u64; t.len()];
                for part in parts.iter().filter(|p| p.index != withhold) {
                    for (s, &w) in sum.iter_mut().zip(&part.groups[g].counts) {
                        *s = s.wrapping_add(w);
                    }
                }
                sum
            })
            .collect();
        // Exactly the withheld part is missing: adding it back restores
        // the truth bit-for-bit…
        let restored: Vec<Vec<u64>> = colluding
            .iter()
            .enumerate()
            .map(|(g, sum)| {
                sum.iter()
                    .zip(&parts[withhold].groups[g].counts)
                    .map(|(&s, &w)| s.wrapping_add(w))
                    .collect()
            })
            .collect();
        prop_assert_eq!(&restored, &truth);
        // …and without it the subset is off by the withheld share's
        // accumulated masks, which are non-zero for this stream (they
        // include at least one live pairwise mask word).
        let missing_is_blank = colluding == truth;
        let withheld_blank =
            parts[withhold].groups.iter().all(|g| g.counts.iter().all(|&w| w == 0));
        prop_assert_eq!(missing_is_blank, withheld_blank);
    }

    /// Reconstruction refuses malformed share groups typed: short groups,
    /// duplicate indices, and mixed seed commitments are all named
    /// [`DapError::SessionMismatch`] rejections, never a wrong sum.
    #[test]
    fn malformed_share_groups_are_refused_typed(
        seed in 0u64..1_000_000,
        mask_seed in 0u64..u64::MAX,
        k in 2usize..6,
    ) {
        let stream = contributions(seed, 2);
        let splitter = ShareSplitter::new(k, mask_seed).expect("valid k");
        let parts = deal(&splitter, &stream, seed);

        // Short group (k−1 parts).
        let err = reconstruct(&parts[..k - 1]).expect_err("short group");
        prop_assert!(matches!(err, DapError::SessionMismatch { .. }));
        // Duplicate index.
        let mut dup = parts.clone();
        dup[0].index = dup[1].index;
        let err = reconstruct(&dup).expect_err("duplicate index");
        prop_assert!(matches!(err, DapError::SessionMismatch { .. }));
        // Mixed seed commitment: shares masked under different seeds
        // must never be combined.
        let other = ShareSplitter::new(k, mask_seed ^ 0xdead_beef).expect("valid k");
        let mut mixed = parts;
        mixed[0].commitment = other.commitment().digest();
        let err = reconstruct(&mixed).expect_err("mixed commitment");
        prop_assert!(matches!(err, DapError::SessionMismatch { .. }));
    }
}

/// A masked deployment of `k` [`DapSession`]s plus its plain twin.
fn masked_fleet(
    k: usize,
    seed: u64,
) -> (DapSession<PiecewiseMechanism>, Vec<DapSession<PiecewiseMechanism>>) {
    let cfg = DapConfig {
        eps0: 1.0 / 16.0,
        max_d_out: 16,
        ..DapConfig::paper_default(0.25, Scheme::Emf)
    };
    let plan = GroupPlan::build(200, cfg.eps, cfg.eps0, &mut seeded(seed));
    let plain =
        DapSession::new(cfg, plan.clone(), PiecewiseMechanism::new).expect("valid session");
    let fleet = (0..k)
        .map(|index| {
            DapSession::new_masked(
                cfg,
                plan.clone(),
                PiecewiseMechanism::new,
                SecaggRole { k, index },
            )
            .expect("valid masked session")
        })
        .collect();
    (plain, fleet)
}

proptest! {
    /// End-to-end session equivalence: random report chunks streamed to a
    /// plain session, and their bucket-count contributions dealt as
    /// shares to k masked sessions over the sequenced path, reconstruct
    /// the exact same histogram — and no masked session ever accepts a
    /// plaintext report.
    #[test]
    fn masked_sessions_reconstruct_the_plain_histogram(
        seed in 0u64..1_000_000,
        mask_seed in 0u64..u64::MAX,
        k in 2usize..5,
        chunks in 1usize..6,
    ) {
        let (mut plain, mut fleet) = masked_fleet(k, seed);
        let commitment = ShareSplitter::new(k, mask_seed)
            .expect("valid k")
            .commitment()
            .digest();
        for session in &mut fleet {
            session.adopt_commitment(commitment).expect("fresh commitment");
            // The mode guard: a plaintext report at a share server is the
            // typed masked-mode rejection, and leaves no trace.
            let err = session.ingest(0, 0.0).expect_err("masked mode refuses plaintext");
            prop_assert!(matches!(err, DapError::ModeMismatch { masked: true }));
        }
        let splitter = ShareSplitter::new(k, mask_seed).expect("valid k");

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let groups = plain.group_count();
        for c in 0..chunks {
            let g = rng.gen_range(0..groups);
            let reports: Vec<f64> =
                (0..rng.gen_range(1..6usize)).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut counts = vec![0u64; plain.histogram(g).counts.len()];
            for &r in &reports {
                counts[plain.bucket_of(g, r).expect("in range")] += 1;
            }
            plain.ingest_batch(g, &reports).expect("plain ingest");
            for (j, share) in splitter.split(g as u64, c as u64, &counts).iter().enumerate() {
                fleet[j]
                    .ingest_shares(0xc0ffee, c as u64 + 1, g, share)
                    .expect("share ingest");
                // The replay guard rides the same channel contract as the
                // plaintext path: a duplicate is refused typed.
                let err = fleet[j]
                    .ingest_shares(0xc0ffee, c as u64 + 1, g, share)
                    .expect_err("duplicate share batch");
                prop_assert!(matches!(err, DapError::DuplicateSequence { .. }));
            }
        }

        let parts: Vec<MaskedPart> = fleet
            .iter()
            .map(|s| s.export_masked_part().expect("masked export"))
            .collect();
        let reconstructed = reconstruct(&parts).expect("complete group");
        for (g, counts) in reconstructed.iter().enumerate() {
            let expected: Vec<u64> =
                plain.histogram(g).counts.iter().map(|&c| c as u64).collect();
            prop_assert_eq!(counts, &expected, "group {} diverged", g);
        }
    }
}
