//! Crash-at-every-record-boundary sweep over a 1k-report ingest.
//!
//! [`FaultBackend`] severs the journal byte stream at a configured
//! offset: the append that crosses the cut lands only its prefix (a torn
//! write) and every later backend mutation fails — a simulated crash at
//! any chosen point. The sweep enumerates **every record boundary** of a
//! reference run (plus mid-record offsets), drives the same ingest script
//! against a cut backend until it trips, then recovers a fresh session
//! from the surviving bytes and demands, for each cut:
//!
//! * recovery succeeds with no corruption verdict (a torn tail is a
//!   crash artifact, not damage);
//! * the recovered state is **bit-identical**
//!   ([`DapSession::content_digest`]) to the crashed session's in-memory
//!   state — exactly the acknowledged operations survive;
//! * it equals an independent plain [`DapSession`] replayed to the same
//!   accepted prefix — the journal neither loses nor invents operations.
//!
//! A second sweep runs with automatic checkpoints enabled so the cuts
//! also land inside compaction windows (checkpoint write → truncate →
//! new header).

use dap_core::storage::{DurableOptions, DurableSession, FaultBackend, MemoryBackend};
use dap_core::{DapConfig, DapSession, GroupPlan, Scheme, SessionPart};
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Session = DapSession<PiecewiseMechanism>;
type FaultDurable = DurableSession<PiecewiseMechanism, FaultBackend<MemoryBackend>>;

const SEED: u64 = 21;

fn session() -> Session {
    // 1 600 users so the per-group report quotas (~n_g) hold a full
    // 1k-report script plus the merge tallies on top.
    let cfg =
        DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let plan = GroupPlan::build(1_600, cfg.eps, cfg.eps0, &mut seeded(SEED));
    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session")
}

/// One journaled mutation — the three record types the durability layer
/// writes.
enum Op {
    Ingest(usize, f64),
    Batch(usize, Vec<f64>),
    Merge(SessionPart),
}

/// A deterministic mixed script carrying at least 1 000 reports: batches,
/// single ingests, and merges of a growing donor session, spread across
/// every group.
fn script() -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut donor = session();
    let probe = session();
    let groups = probe.group_count();
    let quotas: Vec<usize> = (0..groups).map(|g| probe.quota(g)).collect();
    // Reports already scripted per group (merges count: donor tallies land
    // against the same quotas). Picking groups quota-aware keeps the whole
    // script acceptable, so every cut's prefix is too.
    let mut load = vec![0usize; groups];
    let mut donor_load = vec![0usize; groups];
    // PM output domains at these budgets comfortably contain [-1, 1], so
    // uniform reports there are valid for every group.
    let report = |rng: &mut StdRng| rng.gen::<f64>() * 2.0 - 1.0;
    let pick = |load: &[usize], quotas: &[usize], cost: usize, rng: &mut StdRng| {
        let g = rng.gen_range(0..load.len());
        if load[g] + cost <= quotas[g] {
            return g;
        }
        (0..load.len())
            .min_by_key(|&g| load[g])
            .filter(|&g| load[g] + cost <= quotas[g])
            .expect("deployment sized for the script")
    };
    let mut ops = Vec::new();
    let mut reports = 0usize;
    while reports < 1_000 {
        let op = match ops.len() % 7 {
            4 | 5 => {
                let g = pick(&load, &quotas, 1, &mut rng);
                load[g] += 1;
                reports += 1;
                Op::Ingest(g, report(&mut rng))
            }
            6 if (0..groups).all(|g| load[g] + donor_load[g] < quotas[g]) => {
                let g = pick(&donor_load, &quotas, 1, &mut rng);
                donor.ingest(g, report(&mut rng)).expect("donor ingest");
                donor_load[g] += 1;
                for g in 0..groups {
                    load[g] += donor_load[g];
                }
                Op::Merge(donor.export_part())
            }
            _ => {
                let g = pick(&load, &quotas, 16, &mut rng);
                let batch: Vec<f64> = (0..16).map(|_| report(&mut rng)).collect();
                load[g] += batch.len();
                reports += batch.len();
                Op::Batch(g, batch)
            }
        };
        ops.push(op);
    }
    ops
}

fn drive_durable(durable: &mut FaultDurable, op: &Op) -> Result<(), dap_core::DapError> {
    match op {
        Op::Ingest(g, v) => durable.ingest(*g, *v),
        Op::Batch(g, vs) => durable.ingest_batch(*g, vs),
        Op::Merge(part) => durable.merge_part(part),
    }
}

fn apply_reference(reference: &mut Session, op: &Op) {
    match op {
        Op::Ingest(g, v) => reference.ingest(*g, *v).expect("reference ingest"),
        Op::Batch(g, vs) => reference.ingest_batch(*g, vs).expect("reference batch"),
        Op::Merge(part) => reference.merge_part(part).expect("reference merge"),
    }
}

/// Runs the uncut script once and returns the journal length after the
/// header and after every operation — the record boundaries the sweep
/// cuts at. (With checkpoints enabled the length resets at each
/// compaction, so the set is deduplicated.)
fn record_boundaries(ops: &[Op], opts: DurableOptions) -> Vec<u64> {
    let backend = FaultBackend::cut_at(MemoryBackend::new(), u64::MAX);
    let (mut durable, _) = DurableSession::open(session(), backend, opts).expect("open");
    let mut cuts = vec![durable.journal().len_bytes()];
    for op in ops {
        drive_durable(&mut durable, op).expect("uncut run accepts the script");
        cuts.push(durable.journal().len_bytes());
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// The sweep: for each cut, crash the script there, recover from the
/// surviving bytes, and compare against a reference replayed to the same
/// accepted prefix.
fn sweep(ops: &[Op], cuts: &[u64], opts: DurableOptions) {
    for &cut in cuts {
        let backend = FaultBackend::cut_at(MemoryBackend::new(), cut);
        let (mut durable, _) =
            DurableSession::open(session(), backend, opts).expect("fresh journaled session");
        let mut reference = session();
        let mut tripped_mid_script = false;
        for op in ops {
            match drive_durable(&mut durable, op) {
                // Acknowledged: the record is journaled and applied.
                Ok(()) => apply_reference(&mut reference, op),
                // Crashed: the append died before the apply — the
                // operation was never acknowledged and must not survive.
                Err(_) => {
                    tripped_mid_script = true;
                    break;
                }
            }
        }
        let crashed = durable.session().content_digest();
        assert_eq!(
            crashed,
            reference.content_digest(),
            "cut {cut}: in-memory state drifted from the accepted prefix"
        );

        let (_, fault) = durable.into_parts();
        assert_eq!(fault.tripped(), tripped_mid_script, "cut {cut}");
        let survivor = fault.into_inner();
        let (recovered, recovery) = DurableSession::open(session(), survivor, opts)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        assert_eq!(
            recovered.session().content_digest(),
            crashed,
            "cut {cut}: recovered state is not bit-identical to the crashed one \
             (torn: {:?}, replayed: {}, from_checkpoint: {})",
            recovery.torn,
            recovery.replayed,
            recovery.from_checkpoint
        );
        assert_eq!(
            recovered.session().state_digest(),
            reference.state_digest(),
            "cut {cut}: deployment digest changed across recovery"
        );
    }
}

#[test]
fn crash_at_every_record_boundary_recovers_the_acked_prefix_bit_for_bit() {
    let ops = script();
    let opts = DurableOptions::default();
    let boundaries = record_boundaries(&ops, opts);
    assert!(boundaries.len() > ops.len(), "every op journals at least one record");

    // Every record boundary (a clean crash between appends), plus offsets
    // inside each record (a torn append), plus one past the end (no crash
    // at all — the journal closed cleanly).
    let mut cuts = Vec::new();
    for w in boundaries.windows(2) {
        cuts.push(w[0]);
        cuts.push(w[0] + 1);
        cuts.push(w[0] + (w[1] - w[0]) / 2);
    }
    let last = *boundaries.last().expect("nonempty");
    cuts.extend([last, last + 1_000]);
    cuts.sort_unstable();
    cuts.dedup();
    sweep(&ops, &cuts, opts);
}

#[test]
fn crash_sweep_with_checkpoints_crossing_compaction_windows() {
    let ops = script();
    let opts = DurableOptions { checkpoint_every: 9, ..DurableOptions::default() };
    let boundaries = record_boundaries(&ops, opts);
    // Compaction truncates the journal, so distinct boundary offsets are
    // far fewer than ops — the same cut now lands in several epochs.
    assert!(boundaries.len() < ops.len(), "cadence-9 compaction reuses offsets");

    let mut cuts: Vec<u64> = boundaries.iter().flat_map(|&b| [b, b + 3]).collect();
    let last = *boundaries.last().expect("nonempty");
    cuts.push(last + 1_000);
    cuts.sort_unstable();
    cuts.dedup();
    sweep(&ops, &cuts, opts);
}
