//! The poisoned side of the value domain.

/// Which side of the initial mean `O'` an attack biases toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Poison values in `[DL, O']`.
    Left,
    /// Poison values in `[O', DR]`.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn flipped(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// `+1` for right, `-1` for left — handy for symmetric formulas.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Side::Left => -1.0,
            Side::Right => 1.0,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        assert_eq!(Side::Left.flipped(), Side::Right);
        assert_eq!(Side::Left.flipped().flipped(), Side::Left);
    }

    #[test]
    fn signs() {
        assert_eq!(Side::Right.sign(), 1.0);
        assert_eq!(Side::Left.sign(), -1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Side::Left.to_string(), "L");
        assert_eq!(Side::Right.to_string(), "R");
    }
}
