//! Constructive GBA → BBA reduction (Theorem 1).
//!
//! For mean estimation only the total deviation `Σ (v' − O)` of a poison set
//! matters (Definition 3). Theorem 1 states that any two-sided General
//! Byzantine Attack is equivalent to a one-sided Biased Byzantine Attack.
//! [`reduce_to_bba`] realizes the reduction by repeatedly merging one value
//! from each side into a single value carrying their combined deviation —
//! each merge stays inside the domain and preserves the total deviation, and
//! removes one value, so the loop terminates with all survivors on one side.

use crate::side::Side;

/// Reduces a poison-value set to an equivalent one-sided (BBA) set.
///
/// * `poison` — the GBA report values, each in `[dl, dr]`.
/// * `o` — the reference mean `O` deviations are measured against.
///
/// Returns the reduced values and the side they ended on (values exactly at
/// `o` are dropped — they carry zero deviation). The sum of deviations is
/// preserved exactly up to floating-point rounding.
///
/// ```
/// use dap_attack::{reduce_to_bba, Side};
///
/// // A two-sided attack with net-positive deviation...
/// let (reduced, side) = reduce_to_bba(&[-1.0, 2.0, 1.5], 0.0, -3.0, 3.0);
/// // ...is equivalent to a right-sided one with the same total deviation.
/// assert_eq!(side, Side::Right);
/// let total: f64 = reduced.iter().sum();
/// assert!((total - 2.5).abs() < 1e-12);
/// ```
///
/// # Panics
/// If any value lies outside `[dl, dr]` or `o` does.
pub fn reduce_to_bba(poison: &[f64], o: f64, dl: f64, dr: f64) -> (Vec<f64>, Side) {
    assert!((dl..=dr).contains(&o), "reference mean {o} outside domain [{dl}, {dr}]");
    let mut left: Vec<f64> = Vec::new();
    let mut right: Vec<f64> = Vec::new();
    for &v in poison {
        assert!(
            v >= dl - 1e-9 && v <= dr + 1e-9,
            "poison value {v} outside domain [{dl}, {dr}]"
        );
        if v < o {
            left.push(v);
        } else if v > o {
            right.push(v);
        }
        // Values equal to o contribute no deviation; drop them.
    }

    while !left.is_empty() && !right.is_empty() {
        let l = left.pop().expect("non-empty");
        let r = right.pop().expect("non-empty");
        let s = (l - o) + (r - o);
        if s < 0.0 {
            // Merged value lands on the left: o + s ≥ l ≥ dl because r ≥ o.
            left.push(o + s);
        } else if s > 0.0 {
            // Merged value lands on the right: o + s ≤ r ≤ dr because l ≤ o.
            right.push(o + s);
        }
        // s == 0: both deviations cancel; drop the pair.
    }

    if right.is_empty() {
        (left, Side::Left)
    } else {
        (right, Side::Right)
    }
}

/// Total deviation `Σ (v − o)` of a value set — the GBA equivalence
/// invariant of Definition 3.
pub fn total_deviation(values: &[f64], o: f64) -> f64 {
    values.iter().map(|&v| v - o).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DL: f64 = -3.0;
    const DR: f64 = 3.0;

    #[test]
    fn preserves_total_deviation() {
        let poison = [-2.5, -1.0, 0.5, 2.0, 2.9, -0.2];
        let before = total_deviation(&poison, 0.0);
        let (reduced, _) = reduce_to_bba(&poison, 0.0, DL, DR);
        let after = total_deviation(&reduced, 0.0);
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn result_is_one_sided() {
        let poison = [-2.5, -1.0, 0.5, 2.0, 2.9, -0.2];
        let (reduced, side) = reduce_to_bba(&poison, 0.0, DL, DR);
        match side {
            Side::Left => assert!(reduced.iter().all(|&v| v <= 0.0)),
            Side::Right => assert!(reduced.iter().all(|&v| v >= 0.0)),
        }
    }

    #[test]
    fn result_stays_in_domain() {
        let poison = [-3.0, 3.0, -3.0, 3.0, 2.0];
        let (reduced, _) = reduce_to_bba(&poison, 0.0, DL, DR);
        assert!(reduced.iter().all(|&v| (DL..=DR).contains(&v)));
    }

    #[test]
    fn already_biased_set_is_untouched_in_sum_and_side() {
        let poison = [1.0, 2.0, 2.5];
        let (reduced, side) = reduce_to_bba(&poison, 0.0, DL, DR);
        assert_eq!(side, Side::Right);
        assert!((total_deviation(&reduced, 0.0) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn cancelling_set_reduces_to_nothing() {
        let poison = [-1.5, 1.5];
        let (reduced, _) = reduce_to_bba(&poison, 0.0, DL, DR);
        assert!(total_deviation(&reduced, 0.0).abs() < 1e-12);
        assert!(reduced.is_empty());
    }

    #[test]
    fn nonzero_reference_mean() {
        let o = 0.5;
        let poison = [-2.0, 1.0, 2.0, 0.4];
        let before = total_deviation(&poison, o);
        let (reduced, side) = reduce_to_bba(&poison, o, DL, DR);
        assert!((total_deviation(&reduced, o) - before).abs() < 1e-9);
        match side {
            Side::Left => assert!(reduced.iter().all(|&v| v <= o)),
            Side::Right => assert!(reduced.iter().all(|&v| v >= o)),
        }
    }

    #[test]
    fn values_at_reference_are_dropped() {
        let (reduced, _) = reduce_to_bba(&[0.0, 0.0], 0.0, DL, DR);
        assert!(reduced.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain_values() {
        reduce_to_bba(&[10.0], 0.0, DL, DR);
    }
}
