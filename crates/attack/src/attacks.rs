//! Concrete attack strategies.
//!
//! Every attack implements [`Attack`]: given the number of Byzantine users
//! and the LDP mechanism in force, it emits the poison *reports* the
//! collector receives. Direct (general-manipulation) attacks place values
//! straight into the mechanism's output domain; the input-manipulation
//! attack routes a poison input through the honest mechanism instead.

use dap_estimation::rng::BufferedRng;
use dap_estimation::sampling;
use dap_ldp::NumericMechanism;
use rand::RngCore;

/// A Byzantine attack strategy (Definition 2: any map from the Byzantine
/// coalition to reports inside the perturbation output domain).
/// `Sync` so the experiment harness can share one attack across parallel
/// trials (attacks are parameter structs; per-trial state lives in the RNG).
///
/// [`Attack::reports`] and [`Attack::reports_into`] are defined in terms of
/// each other; implementors must override at least one (the in-tree attacks
/// all implement the buffer-filling `reports_into`, which is what the
/// protocol driver's hot loop calls).
pub trait Attack: Sync {
    /// Generates `m` poison reports. The result may be *shorter* than `m`
    /// (a coalition is free to stay silent — [`NoAttack`] always does).
    fn reports(&self, m: usize, mech: &dyn NumericMechanism, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut out = vec![0.0; m];
        let n = self.reports_into(&mut out, mech, rng);
        out.truncate(n);
        out
    }

    /// Fills up to `out.len()` poison reports into the caller's buffer and
    /// returns how many were written (a prefix of `out`); the rest of the
    /// buffer is unspecified. Lets the driver reuse one allocation per
    /// group instead of collecting a fresh `Vec` per call.
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let v = self.reports(out.len(), mech, rng);
        out[..v.len()].copy_from_slice(&v);
        v.len()
    }

    /// Short human-readable label used by the experiment harness.
    fn label(&self) -> String;
}

/// A point of the poison range, resolved against the mechanism in force.
///
/// DAP assigns different budgets (hence different output domains `[DL, DR]`)
/// to different groups, and a coordinated coalition scales its poison range
/// with each group's domain — `Poi[C/2, C]` means the top half of *that
/// group's* `[0, C]`. Anchors express the paper's range specs
/// mechanism-relatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Anchor {
    /// An absolute output value.
    Abs(f64),
    /// `frac · DR` — fractions of the upper output bound (the paper's
    /// `C`-relative ranges for PM, e.g. `Anchor::OfUpper(0.75)` = `3C/4`).
    OfUpper(f64),
    /// `frac · |DL|` mirrored to the left: resolves to `frac · DL`
    /// (e.g. `OfLower(0.5)` = `−C/2` for PM).
    OfLower(f64),
    /// `input_hi + frac·(DR − input_hi)` — fractions of the inflated band
    /// above the input domain (the Square-Wave spec `[1 + b/2, 1 + b]` is
    /// `AboveInputMax(0.5)..AboveInputMax(1.0)`).
    AboveInputMax(f64),
}

impl Anchor {
    /// Resolves the anchor to a concrete output value for `mech`.
    pub fn resolve(self, mech: &dyn NumericMechanism) -> f64 {
        let (dl, dr) = mech.output_range();
        match self {
            Anchor::Abs(v) => v,
            Anchor::OfUpper(f) => f * dr,
            Anchor::OfLower(f) => f * dl,
            Anchor::AboveInputMax(f) => {
                let (_, ihi) = mech.input_range();
                ihi + f * (dr - ihi)
            }
        }
    }
}

fn resolve_range(lo: Anchor, hi: Anchor, mech: &dyn NumericMechanism) -> (f64, f64) {
    let (lo, hi) = (lo.resolve(mech), hi.resolve(mech));
    let (dl, dr) = mech.output_range();
    assert!(
        lo < hi && lo >= dl - 1e-9 && hi <= dr + 1e-9,
        "poison range [{lo}, {hi}] outside output domain [{dl}, {dr}]"
    );
    (lo, hi)
}

/// No attack — used for the γ = 0 false-positive experiments (Fig. 5c).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAttack;

impl Attack for NoAttack {
    fn reports(&self, _m: usize, _mech: &dyn NumericMechanism, _rng: &mut dyn RngCore) -> Vec<f64> {
        Vec::new()
    }

    fn reports_into(
        &self,
        _out: &mut [f64],
        _mech: &dyn NumericMechanism,
        _rng: &mut dyn RngCore,
    ) -> usize {
        0
    }

    fn label(&self) -> String {
        "none".into()
    }
}

/// Poison values uniform on the resolved range — the paper's default attack
/// (`Poi[rl, rr]` in every figure).
#[derive(Debug, Clone, Copy)]
pub struct UniformAttack {
    /// Lower end of the poison range.
    pub lo: Anchor,
    /// Upper end of the poison range.
    pub hi: Anchor,
}

impl UniformAttack {
    /// Uniform attack between two anchors.
    pub fn new(lo: Anchor, hi: Anchor) -> Self {
        UniformAttack { lo, hi }
    }

    /// Uniform attack on an absolute range `[lo, hi]`.
    pub fn absolute(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty poison range [{lo}, {hi}]");
        UniformAttack { lo: Anchor::Abs(lo), hi: Anchor::Abs(hi) }
    }

    /// The paper's `Poi[a·C, b·C]` spec (right-side, PM-style).
    pub fn of_upper(a: f64, b: f64) -> Self {
        assert!(a < b, "empty poison range");
        UniformAttack { lo: Anchor::OfUpper(a), hi: Anchor::OfUpper(b) }
    }
}

impl Attack for UniformAttack {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let m = out.len();
        let (lo, hi) = resolve_range(self.lo, self.hi, mech);
        // Batch the raw words through `fill_bytes` (one `dyn` dispatch per
        // block instead of per report) and apply the same inclusive-range
        // map as `Rng::gen_range(lo..=hi)`.
        let mut block = [0u8; 8 * 512];
        let scale = 1.0 / ((1u64 << 53) - 1) as f64;
        let mut filled = 0usize;
        while filled < m {
            let take = (m - filled).min(512);
            rng.fill_bytes(&mut block[..8 * take]);
            for (slot, word) in
                out[filled..filled + take].iter_mut().zip(block.chunks_exact(8))
            {
                let bits = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
                let u = (bits >> 11) as f64 * scale;
                *slot = (lo + u * (hi - lo)).min(hi);
            }
            filled += take;
        }
        m
    }

    fn label(&self) -> String {
        format!("uniform[{:?},{:?}]", self.lo, self.hi)
    }
}

/// Poison values from a truncated Gaussian centred in the poison range
/// (Fig. 7c, d).
#[derive(Debug, Clone, Copy)]
pub struct GaussianAttack {
    /// Lower end of the poison range.
    pub lo: Anchor,
    /// Upper end of the poison range.
    pub hi: Anchor,
}

impl GaussianAttack {
    /// Truncated Gaussian attack between two anchors, with μ at the range
    /// midpoint and σ a sixth of the range width.
    pub fn new(lo: Anchor, hi: Anchor) -> Self {
        GaussianAttack { lo, hi }
    }
}

impl Attack for GaussianAttack {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let (lo, hi) = resolve_range(self.lo, self.hi, mech);
        let mu = (lo + hi) / 2.0;
        let sigma = (hi - lo) / 6.0;
        // Rejection sampling draws a variable number of words per report, so
        // batching happens on the RNG side: one `dyn` dispatch per block,
        // monomorphic (inlined) draws inside the sampler.
        let mut brng = BufferedRng::new(rng);
        for slot in out.iter_mut() {
            *slot = sampling::truncated_normal(mu, sigma, lo, hi, &mut brng);
        }
        out.len()
    }

    fn label(&self) -> String {
        format!("gaussian[{:?},{:?}]", self.lo, self.hi)
    }
}

/// Poison values Beta(α, β)-shaped, rescaled into the poison range
/// (Beta(1,6) and Beta(6,1) in Fig. 7c, d).
#[derive(Debug, Clone, Copy)]
pub struct BetaShapedAttack {
    /// Beta α parameter.
    pub alpha: f64,
    /// Beta β parameter.
    pub beta: f64,
    /// Lower end of the poison range.
    pub lo: Anchor,
    /// Upper end of the poison range.
    pub hi: Anchor,
}

impl BetaShapedAttack {
    /// Beta(α, β) attack rescaled onto the anchored range.
    pub fn new(alpha: f64, beta: f64, lo: Anchor, hi: Anchor) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "invalid beta parameters");
        BetaShapedAttack { alpha, beta, lo, hi }
    }
}

impl Attack for BetaShapedAttack {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let (lo, hi) = resolve_range(self.lo, self.hi, mech);
        // Gamma rejection sampling under the hood — same RNG-side batching
        // as the Gaussian attack.
        let mut brng = BufferedRng::new(rng);
        for slot in out.iter_mut() {
            *slot = lo + (hi - lo) * sampling::beta(self.alpha, self.beta, &mut brng);
        }
        out.len()
    }

    fn label(&self) -> String {
        format!("beta({},{})[{:?},{:?}]", self.alpha, self.beta, self.lo, self.hi)
    }
}

/// All poison reports at a single point — the long-tail / maximum-gain attack
/// (`Anchor::OfUpper(1.0)` = all at `C` maximizes deviation, Eq. 18).
#[derive(Debug, Clone, Copy)]
pub struct PointAttack {
    /// The injected report location.
    pub value: Anchor,
}

impl Attack for PointAttack {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        _rng: &mut dyn RngCore,
    ) -> usize {
        let v = self.value.resolve(mech);
        let (dl, dr) = mech.output_range();
        assert!(
            (dl - 1e-9..=dr + 1e-9).contains(&v),
            "point {v} outside output domain [{dl}, {dr}]"
        );
        out.fill(v);
        out.len()
    }

    fn label(&self) -> String {
        format!("point[{:?}]", self.value)
    }
}

/// Input manipulation attack: every Byzantine user submits the poison input
/// `g` through the *honest* mechanism, making reports statistically
/// indistinguishable from an honest user holding `g` (Fig. 5d, Fig. 9b).
#[derive(Debug, Clone, Copy)]
pub struct InputManipulationAttack {
    /// The fabricated input value in the mechanism's input domain.
    pub g: f64,
}

impl Attack for InputManipulationAttack {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let (lo, hi) = mech.input_range();
        assert!(
            (lo..=hi).contains(&self.g),
            "IMA input {} outside input domain [{lo}, {hi}]",
            self.g
        );
        // The honest mechanism perturbs the fabricated input; the draws come
        // from a block buffer so the per-report `dyn` RNG cost disappears.
        let mut brng = BufferedRng::new(rng);
        for slot in out.iter_mut() {
            *slot = mech.perturb(self.g, &mut brng);
        }
        out.len()
    }

    fn label(&self) -> String {
        format!("ima[g={:.2}]", self.g)
    }
}

/// Evasion attack of §V-D: fraction `a` of the coalition posts decoy reports
/// at `evasive_value` on the opposite side, the rest runs the `true_attack`.
pub struct EvasionAttack<A> {
    /// Fraction of Byzantine users posting decoys, in `[0, 1]`.
    pub a: f64,
    /// Location of the decoy reports (the paper uses `−C/2`, i.e.
    /// `Anchor::OfLower(0.5)`).
    pub evasive_value: Anchor,
    /// The genuine one-sided attack.
    pub true_attack: A,
}

impl<A: Attack> EvasionAttack<A> {
    /// Builds an evasion attack; `a` must be in `[0, 1]`.
    pub fn new(a: f64, evasive_value: Anchor, true_attack: A) -> Self {
        assert!((0.0..=1.0).contains(&a), "evasive fraction {a} outside [0, 1]");
        EvasionAttack { a, evasive_value, true_attack }
    }

    /// The paper's utility bound Eq. 20: the minimum utility loss
    /// `U_max − U_eva = m·a·(C − O')/(m + n)` the attacker pays for the
    /// decoys.
    pub fn utility_loss_bound(&self, m: usize, n: usize, c: f64, o_prime: f64) -> f64 {
        m as f64 * self.a * (c - o_prime) / (m + n) as f64
    }
}

impl<A: Attack> Attack for EvasionAttack<A> {
    fn reports_into(
        &self,
        out: &mut [f64],
        mech: &dyn NumericMechanism,
        rng: &mut dyn RngCore,
    ) -> usize {
        let m = out.len();
        let decoys = (self.a * m as f64).round() as usize;
        let decoys = decoys.min(m);
        let decoy_value = self.evasive_value.resolve(mech);
        let (dl, dr) = mech.output_range();
        assert!(
            (dl - 1e-9..=dr + 1e-9).contains(&decoy_value),
            "evasive value outside output domain"
        );
        // A silent true attack shrinks the genuine share; the decoys still
        // land, packed right after it.
        let genuine = self.true_attack.reports_into(&mut out[..m - decoys], mech, rng);
        out[genuine..genuine + decoys].fill(decoy_value);
        genuine + decoys
    }

    fn label(&self) -> String {
        format!("evasion[a={:.2}]+{}", self.a, self.true_attack.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;
    use dap_estimation::stats::mean;
    use dap_ldp::PiecewiseMechanism;

    fn mech() -> PiecewiseMechanism {
        PiecewiseMechanism::with_epsilon(1.0).unwrap()
    }

    #[test]
    fn no_attack_is_empty() {
        let mut rng = seeded(0);
        assert!(NoAttack.reports(100, &mech(), &mut rng).is_empty());
    }

    #[test]
    fn anchors_resolve_against_the_mechanism() {
        let m = mech();
        let c = m.c();
        assert_eq!(Anchor::Abs(0.7).resolve(&m), 0.7);
        assert!((Anchor::OfUpper(0.75).resolve(&m) - 0.75 * c).abs() < 1e-12);
        assert!((Anchor::OfLower(0.5).resolve(&m) + 0.5 * c).abs() < 1e-12);
        // Above input max: 1 + 0.5·(C − 1).
        assert!((Anchor::AboveInputMax(0.5).resolve(&m) - (1.0 + 0.5 * (c - 1.0))).abs() < 1e-12);
    }

    #[test]
    fn uniform_attack_stays_in_range() {
        let m = mech();
        let c = m.c();
        let mut rng = seeded(1);
        let reports = UniformAttack::of_upper(0.5, 1.0).reports(10_000, &m, &mut rng);
        assert_eq!(reports.len(), 10_000);
        assert!(reports.iter().all(|&v| v >= c / 2.0 && v <= c));
        // Mean near 3C/4.
        assert!((mean(&reports) - 0.75 * c).abs() < 0.05 * c);
    }

    #[test]
    fn uniform_attack_rescales_across_budgets() {
        // The same spec Poi[C/2, C] resolves to different absolute ranges
        // for different group budgets — the coordinated-coalition model.
        let strong = PiecewiseMechanism::with_epsilon(0.25).unwrap();
        let weak = PiecewiseMechanism::with_epsilon(2.0).unwrap();
        let atk = UniformAttack::of_upper(0.5, 1.0);
        let mut rng = seeded(8);
        let r_strong = atk.reports(1000, &strong, &mut rng);
        let r_weak = atk.reports(1000, &weak, &mut rng);
        assert!(mean(&r_strong) > 2.0 * mean(&r_weak));
    }

    #[test]
    #[should_panic(expected = "outside output domain")]
    fn uniform_attack_rejects_out_of_domain_range() {
        let m = mech();
        let mut rng = seeded(2);
        UniformAttack::absolute(0.0, m.c() * 2.0).reports(10, &m, &mut rng);
    }

    #[test]
    fn gaussian_attack_concentrates_at_midpoint() {
        let m = mech();
        let c = m.c();
        let mut rng = seeded(3);
        let reports = GaussianAttack::new(Anchor::Abs(0.0), Anchor::OfUpper(1.0))
            .reports(20_000, &m, &mut rng);
        assert!(reports.iter().all(|&v| (0.0..=c).contains(&v)));
        assert!((mean(&reports) - c / 2.0).abs() < 0.05 * c);
    }

    #[test]
    fn beta_attacks_skew_correctly() {
        let m = mech();
        let c = m.c();
        let mut rng = seeded(4);
        let low = BetaShapedAttack::new(1.0, 6.0, Anchor::Abs(0.0), Anchor::OfUpper(1.0))
            .reports(10_000, &m, &mut rng);
        let high = BetaShapedAttack::new(6.0, 1.0, Anchor::Abs(0.0), Anchor::OfUpper(1.0))
            .reports(10_000, &m, &mut rng);
        assert!(mean(&low) < 0.25 * c);
        assert!(mean(&high) > 0.75 * c);
    }

    #[test]
    fn point_attack_is_constant() {
        let m = mech();
        let mut rng = seeded(5);
        let reports = PointAttack { value: Anchor::OfUpper(1.0) }.reports(5, &m, &mut rng);
        assert_eq!(reports, vec![m.c(); 5]);
    }

    #[test]
    fn ima_reports_look_like_perturbed_values() {
        let m = mech();
        let mut rng = seeded(6);
        let reports = InputManipulationAttack { g: 1.0 }.reports(50_000, &m, &mut rng);
        // Honest PM on input 1.0 is unbiased: sample mean ≈ 1.0, and values
        // span the whole output range rather than clustering at C.
        assert!((mean(&reports) - 1.0).abs() < 0.05);
        assert!(reports.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn evasion_attack_splits_reports() {
        let m = mech();
        let c = m.c();
        let mut rng = seeded(7);
        let atk =
            EvasionAttack::new(0.3, Anchor::OfLower(0.5), UniformAttack::of_upper(0.5, 1.0));
        let reports = atk.reports(1000, &m, &mut rng);
        assert_eq!(reports.len(), 1000);
        let decoys = reports.iter().filter(|&&v| v == -c / 2.0).count();
        assert_eq!(decoys, 300);
    }

    #[test]
    fn evasion_utility_loss_bound_matches_eq20() {
        let atk =
            EvasionAttack::new(0.2, Anchor::Abs(-1.0), PointAttack { value: Anchor::Abs(1.0) });
        let loss = atk.utility_loss_bound(250, 750, 3.0, 0.0);
        assert!((loss - 250.0 * 0.2 * 3.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn labels_are_informative() {
        assert!(UniformAttack::absolute(0.0, 1.0).label().contains("uniform"));
        assert!(InputManipulationAttack { g: 0.5 }.label().contains("ima"));
        assert!(EvasionAttack::new(0.1, Anchor::Abs(0.0), NoAttack).label().contains("evasion"));
    }
}
