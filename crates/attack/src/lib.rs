//! Byzantine threat models for LDP aggregation.
//!
//! Implements the paper's attacker taxonomy:
//!
//! * **GBA** — General Byzantine Attack (Definition 2): colluding users may
//!   report *arbitrary* values in the perturbed output domain `[DL, DR]`.
//!   Modelled by the [`Attack`] trait.
//! * **BBA** — Biased Byzantine Attack (Definition 4): poison values
//!   coordinated on one side of the true mean. Every GBA is mean-equivalent
//!   to a BBA (Theorem 1); [`reduction::reduce_to_bba`] is a constructive
//!   implementation used to validate the theorem.
//! * **IMA** — input manipulation attack (refs. \[12\], \[38\] of the paper): Byzantine users feed a
//!   poison *input* through the honest LDP mechanism, which disguises them
//!   from histogram probing (Fig. 5d / Fig. 9b).
//! * **Evasion** — a fraction `a` of decoy reports on the opposite side to
//!   flip the poisoned-side probe (§V-D, Fig. 10).

pub mod attacks;
pub mod reduction;
pub mod side;

pub use attacks::{
    Anchor, Attack, BetaShapedAttack, EvasionAttack, GaussianAttack, InputManipulationAttack,
    NoAttack, PointAttack, UniformAttack,
};
pub use reduction::reduce_to_bba;
pub use side::Side;
