//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the workspace vendors the subset of the `rand` 0.8/0.9 API it actually
//! uses as a path dependency. The subset is:
//!
//! * [`RngCore`] — the object-safe core trait (`&mut dyn RngCore` is the
//!   RNG currency of the whole workspace),
//! * [`Rng`] — extension methods [`Rng::gen`], [`Rng::gen_range`],
//!   [`Rng::gen_bool`], blanket-implemented for every `RngCore`,
//! * [`SeedableRng`] / [`rngs::StdRng`] — deterministic seeding via
//!   `StdRng::seed_from_u64` (xoshiro256++ behind a SplitMix64 seeder; the
//!   real crate uses ChaCha12, but every consumer in this workspace only
//!   relies on determinism and statistical quality, not on the exact
//!   stream),
//! * [`seq::SliceRandom`] — Fisher–Yates [`seq::SliceRandom::shuffle`] and
//!   [`seq::SliceRandom::choose`].
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no source file references anything outside the real API.

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of random `u64`s.
///
/// Object safe, so workspace APIs can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "by default" (the `Standard` distribution of
/// the real crate): `rng.gen::<T>()`.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range {self:?}");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        // Include the top endpoint by scaling from [0, 2^53] inclusive.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + u * (hi - lo)).min(hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Cast the span through the same-width unsigned type:
                // sign-extending a wrapped span wider than $t::MAX would
                // inflate the bound and yield out-of-range draws.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_sample_range!((i64, u64), (i32, u32), (i16, u16), (i8, u8), (isize, usize));

/// Uniform draw in `[0, bound)` by rejection sampling (Lemire-style
/// threshold), avoiding modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = widening_mul(r, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5..=0.1);
            assert!((-0.5..=0.1).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn signed_ranges_wider_than_max_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(i32::MIN..0);
            assert!(v < 0);
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-range inclusive must not panic or loop
            let x = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&x));
        }
    }

    #[test]
    fn bounded_draws_cover_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
