//! Concrete generators. Only [`StdRng`] is provided; the workspace always
//! seeds explicitly, so no OS entropy source is needed.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++ with a SplitMix64
/// seed expander.
///
/// The real `rand` crate backs `StdRng` with ChaCha12; consumers in this
/// workspace rely only on determinism-given-a-seed and reasonable
/// statistical quality, both of which xoshiro256++ provides (it is the
/// reference general-purpose generator of Blackman & Vigna, 2019).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 stream expands one word into the four state words, as
        // recommended by the xoshiro authors (never yields the all-zero
        // state).
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            w ^ (w >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Overridden so one `dyn` dispatch fills the whole buffer with a
    /// monomorphic generator loop (the trait default would re-dispatch
    /// `next_u64` per word); batch consumers lean on this.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
