//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A vector length specification: either exact or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
