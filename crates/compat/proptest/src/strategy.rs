//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type, sampled per test case.
///
/// Unlike real proptest there is no value tree / shrinking: `sample` draws
/// one concrete value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32);

/// A strategy that always yields clones of one value (`Just` in real
/// proptest).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
