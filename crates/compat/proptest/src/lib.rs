//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ...) { .. }`
//!   test bodies,
//! * range strategies (`0.1f64..4.0`, `1usize..64`, `0u64..1000`, and the
//!   inclusive forms),
//! * [`collection::vec`](fn@collection::vec) with a fixed size or a size
//!   range,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Semantics differ from real proptest in three deliberate ways: cases are
//! drawn from a deterministic per-test seed (no persisted failure file),
//! there is **no shrinking** — a failing case panics with the standard
//! `assert!` message — and [`prop_assume!`] skips a rejected case instead
//! of re-drawing it. Case count defaults to 64 and can be overridden with
//! the `PROPTEST_CASES` environment variable, matching the real crate's
//! knob.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG for case `case` of the test named `name`.
pub fn case_rng(name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // (test, case) pair gets an independent, reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples every argument [`case_count`] times and
/// runs the body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::case_count() {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    // The closure gives `prop_assume!` a whole-case scope to
                    // `return` out of, matching real proptest's rejection
                    // semantics even inside loops in the body.
                    #[allow(clippy::redundant_closure_call)]
                    let () = (|| { $body })();
                }
            }
        )*
    };
}

/// Asserts a property; identical to `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality; identical to `assert_eq!` (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Unlike real proptest, a rejected case is simply skipped rather than
/// re-drawn, so heavy rejection shrinks the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The runner samples within the strategy's bounds.
        #[test]
        fn ranges_are_respected(x in -1.0f64..1.0, n in 1usize..10) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// Vec strategies honour both fixed and ranged sizes.
        #[test]
        fn vec_sizes_are_respected(
            fixed in crate::collection::vec(0.0f64..1.0, 7),
            ranged in crate::collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
            prop_assert!(fixed.iter().chain(&ranged).all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        /// `prop_assume!` must reject the *whole case*, not just break an
        /// enclosing loop iteration.
        #[test]
        fn assume_rejects_the_whole_case(n in 0usize..10) {
            for _ in 0..3 {
                prop_assume!(n % 2 == 0);
            }
            assert!(n % 2 == 0, "odd case {n} survived prop_assume");
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        assert_eq!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 3).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 4).next_u64()
        );
    }
}
