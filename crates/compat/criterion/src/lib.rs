//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's four bench targets use — benchmark
//! groups, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a simple wall-clock timing loop.
//!
//! Reported numbers are medians over `sample_size` samples, each sample
//! auto-calibrated to run long enough for the clock to resolve. There is
//! no statistical regression analysis, HTML report, or baseline
//! comparison; swap the real crate back in (one line in the workspace
//! manifest) for those.
//!
//! # Machine-readable output
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! finished benchmark appends one JSON line to it:
//!
//! ```json
//! {"label":"emf_converge/emf/128","median_ns":123456,"iters_per_sample":4,
//!  "samples":10,"throughput_elements":null,"throughput_bytes":null}
//! ```
//!
//! CI's bench smoke job reads these lines to track the perf trajectory.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    /// Per-sample time budget; calibration stops growing the iteration
    /// count once one sample takes at least this long.
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            sample_budget: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            sample_budget: self.sample_budget,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (size, budget) = (self.sample_size, self.sample_budget);
        run_benchmark(&id.into().label, size, budget, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    sample_budget: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs, so results are also
    /// reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.sample_budget, self.throughput, f);
        self
    }

    /// Benchmarks `f(input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; all output is already printed).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Work performed by one benchmark iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    sample_budget: Duration,
    /// Median per-iteration time, filled by `iter`.
    median: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // fills the budget, so short routines aren't dominated by clock
        // resolution.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget || iters >= 1 << 24 {
                break;
            }
            let target = self.sample_budget.as_nanos().max(1) as u64;
            let took = elapsed.as_nanos().max(1) as u64;
            iters = (iters * target / took).clamp(iters + 1, iters * 100);
        }
        self.iters_per_sample = iters;

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }
}

/// Substring filters from the command line, real-criterion style:
/// `cargo bench --bench foo -- em_solve` runs only benchmarks whose label
/// contains `em_solve`. Flag-like arguments (cargo's own `--bench` etc.)
/// are ignored; no filters means run everything.
fn matches_cli_filter(label: &str) -> bool {
    let mut any = false;
    for arg in std::env::args().skip(1).filter(|a| !a.starts_with('-')) {
        if label.contains(arg.as_str()) {
            return true;
        }
        any = true;
    }
    !any
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    sample_budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !matches_cli_filter(label) {
        return;
    }
    let mut bencher = Bencher {
        iters_per_sample: 0,
        sample_size,
        sample_budget,
        median: None,
    };
    f(&mut bencher);
    match bencher.median {
        Some(per_iter) => {
            let rate = throughput.map(|t| {
                let secs = per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
                match t {
                    Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
                    Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
                }
            });
            println!(
                "{label:<40} {per_iter:>12.3?}/iter{}  ({} iters/sample, {} samples)",
                rate.unwrap_or_default(),
                bencher.iters_per_sample,
                sample_size,
            );
            emit_json(label, per_iter, bencher.iters_per_sample, sample_size, throughput);
        }
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Appends one JSON line per benchmark to the file named by
/// `CRITERION_JSON`, if set (see the module docs). Failures print a warning
/// instead of panicking — timing output must never take the benchmark down.
fn emit_json(
    label: &str,
    per_iter: Duration,
    iters_per_sample: u64,
    samples: usize,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let (elements, bytes) = match throughput {
        Some(Throughput::Elements(n)) => (n.to_string(), "null".to_string()),
        Some(Throughput::Bytes(n)) => ("null".to_string(), n.to_string()),
        None => ("null".to_string(), "null".to_string()),
    };
    // The label is a bench identifier (module/function/param); escape the
    // two JSON-significant characters it could plausibly contain.
    let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"label\":\"{}\",\"median_ns\":{},\"iters_per_sample\":{},\"samples\":{},\"throughput_elements\":{},\"throughput_bytes\":{}}}\n",
        escaped,
        per_iter.as_nanos(),
        iters_per_sample,
        samples,
        elements,
        bytes,
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: CRITERION_JSON={path} not writable: {e}");
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single #[test] covers both the measurement loop and the JSON
    // emission: the JSON path toggles the process environment
    // (`std::env::set_var`), which must not race with another test's
    // benchmarks reading it on a sibling thread.
    #[test]
    fn bench_function_measures_and_emits_json() {
        measurement_case();
        json_emission_case();
    }

    fn measurement_case() {
        let mut c = Criterion {
            sample_size: 3,
            sample_budget: Duration::from_micros(50),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        assert!(ran);
    }

    fn json_emission_case() {
        let path = std::env::temp_dir().join("criterion_json_emission_test.jsonl");
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        std::fs::remove_file(&path).ok();
        std::env::set_var("CRITERION_JSON", &path_str);

        let mut c = Criterion {
            sample_size: 2,
            sample_budget: Duration::from_micros(20),
        };
        let mut group = c.benchmark_group("jsongroup");
        group.sample_size(2).throughput(Throughput::Elements(7));
        group.bench_function("payload", |b| b.iter(|| 2_u64 + 2));
        group.finish();
        std::env::remove_var("CRITERION_JSON");

        let body = std::fs::read_to_string(&path).expect("json file written");
        // Other tests may run benchmarks while the env var is set; pick out
        // this test's line instead of assuming it is the only one.
        let line = body
            .lines()
            .find(|l| l.contains("jsongroup/payload"))
            .expect("one line for this benchmark");
        assert!(line.starts_with("{\"label\":\"jsongroup/payload\""), "line: {line}");
        assert!(line.contains("\"median_ns\":"), "line: {line}");
        assert!(line.contains("\"throughput_elements\":7"), "line: {line}");
        assert!(line.contains("\"throughput_bytes\":null"), "line: {line}");
        std::fs::remove_file(&path).ok();
    }
}
