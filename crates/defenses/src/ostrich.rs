//! The Ostrich baseline: pretend there is no attack.

use crate::MeanDefense;
use dap_estimation::stats::mean;
use rand::RngCore;

/// Averages every report, Byzantine or not (the paper's "Ostrich" scheme).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ostrich;

impl MeanDefense for Ostrich {
    fn estimate_mean(&self, reports: &[f64], _rng: &mut dyn RngCore) -> f64 {
        mean(reports)
    }

    fn label(&self) -> String {
        "Ostrich".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn averages_everything() {
        let mut rng = seeded(0);
        let est = Ostrich.estimate_mean(&[1.0, 2.0, 3.0], &mut rng);
        assert!((est - 2.0).abs() < 1e-12);
    }

    #[test]
    fn poison_shifts_ostrich_fully() {
        let mut rng = seeded(0);
        // 50% poison at +10 shifts the estimate by +5.
        let reports: Vec<f64> = vec![0.0; 100].into_iter().chain(vec![10.0; 100]).collect();
        let est = Ostrich.estimate_mean(&reports, &mut rng);
        assert!((est - 5.0).abs() < 1e-12);
    }
}
