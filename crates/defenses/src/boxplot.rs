//! Boxplot (IQR) outlier filter \[56\], one of the detection techniques the
//! paper's §III-A mentions as composable with DAP.
//!
//! Two IQR fences are applied:
//!
//! 1. **Value fence** — classic Tukey: drop reports outside
//!    `[Q1 − k·IQR, Q3 + k·IQR]` of the report values. This catches poison
//!    far outside the perturbed output domain.
//! 2. **Frequency fence** — drop reports in histogram buckets whose *count*
//!    exceeds `Q3 + k·IQR` of the bucket counts. An LDP mechanism spreads
//!    honest reports over the whole (inflated) output domain, so a
//!    concentrated coalition is invisible to the value fence — its spike
//!    sits inside the honest support — but produces a count outlier. This
//!    is how boxplot detection is applied against LDP poisoning in
//!    practice, and what lets the filter trim a bulk point attack at the
//!    domain edge.
//!
//! The frequency fence assumes its input is LDP-perturbed by a *continuous*
//! mechanism: ε-LDP bounds the honest output density's peak-to-trough ratio
//! by `e^ε`, which keeps natural modes under the fence at the small budgets
//! the paper studies. Documented limits, all instances of the inherent
//! weakness of detection defenses the paper's §III discusses:
//!
//! * On *raw* (unperturbed) data with a sharp mode, the fence cannot tell
//!   the mode from a coalition spike and will trim it.
//! * On a *discrete* output domain (e.g. Duchi's two atoms) fewer than 8
//!   histogram buckets are occupied; count quantiles over so few buckets
//!   necessarily bracket the attack bucket, so the stage stands down and
//!   concentrated poison on such domains passes unflagged.
//! * At *large* ε (≳ 2.2) a concentrated honest input makes the mechanism's
//!   high-probability band dwarf the tail counts, which would fence off the
//!   honest majority. Coalitions are minorities (γ < ½ in the threat
//!   model), so the stage refuses to discard buckets holding more than half
//!   of the reports and stands down instead.
//!
//! Set [`BoxplotFilter::freq_buckets`] to `0` for the classic value-only
//! filter.

use crate::MeanDefense;
use dap_estimation::stats::mean;
use dap_estimation::Grid;
use rand::RngCore;

/// Drops value outliers (Tukey fences) and frequency outliers (buckets with
/// anomalous counts), then averages the rest.
#[derive(Debug, Clone, Copy)]
pub struct BoxplotFilter {
    /// Whisker multiplier `k` (1.5 is Tukey's classic value), used by both
    /// fences.
    pub whisker: f64,
    /// Resolution cap for the frequency fence. The effective bucket count
    /// adapts to the sample size (at least 32 reports per bucket on
    /// average) and the stage disables itself below 8 buckets, where counts
    /// are too noisy to flag. `0` disables the frequency fence entirely.
    pub freq_buckets: usize,
}

impl Default for BoxplotFilter {
    fn default() -> Self {
        BoxplotFilter { whisker: 1.5, freq_buckets: 64 }
    }
}

impl BoxplotFilter {
    /// Linear-interpolated quantile of sorted data, `q ∈ [0, 1]`.
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        debug_assert!(!sorted.is_empty());
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The retained (inlier) reports.
    pub fn inliers(&self, reports: &[f64]) -> Vec<f64> {
        if reports.is_empty() {
            return Vec::new();
        }
        let mut sorted = reports.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reports"));
        let q1 = Self::quantile(&sorted, 0.25);
        let q3 = Self::quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - self.whisker * iqr, q3 + self.whisker * iqr);
        sorted.retain(|&v| v >= lo && v <= hi);
        self.frequency_inliers(sorted)
    }

    /// The frequency fence: drops survivors in buckets whose count is an
    /// upper IQR outlier.
    fn frequency_inliers(&self, sorted: Vec<f64>) -> Vec<f64> {
        let buckets = self
            .freq_buckets
            .min(sorted.len() / 32);
        let (&vlo, &vhi) = match (sorted.first(), sorted.last()) {
            (Some(first), Some(last)) => (first, last),
            _ => return sorted,
        };
        if buckets < 8 || vhi <= vlo {
            return sorted;
        }
        let grid = Grid::new(vlo, vhi, buckets);
        let counts = grid.counts(&sorted);
        // Quantiles are taken over *occupied* buckets only: empty buckets
        // carry no information about what a typical count looks like, and
        // on a discrete output domain (e.g. Duchi's two atoms) they would
        // drag Q3 to zero and the fence onto every real bucket.
        let mut ranked: Vec<f64> = counts.iter().copied().filter(|&c| c > 0.0).collect();
        if ranked.len() < 8 {
            // Quantiles over a handful of occupied buckets necessarily
            // bracket the largest one, so no fence drawn from them can flag
            // anything — stand down rather than pretend to filter.
            return sorted;
        }
        ranked.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        let q1 = Self::quantile(&ranked, 0.25);
        let q3 = Self::quantile(&ranked, 0.75);
        // Floor the whisker span at three standard deviations of counting
        // noise (Poisson σ ≈ √Q3): near-tied counts have IQR ≈ 0, and a
        // lower floor lets ordinary sampling jitter in one of many buckets
        // poke over the fence, silently discarding honest reports.
        let fence = q3 + (self.whisker * (q3 - q1)).max(3.0 * q3.sqrt());
        let flagged_mass: f64 = counts.iter().filter(|&&c| c > fence).sum();
        if flagged_mass == 0.0 {
            return sorted;
        }
        // A coalition is a minority (γ < 1/2 in the paper's threat model);
        // a fence that flags most of the reports is mis-specified — e.g. a
        // sharply banded honest marginal at large ε — so stand down instead
        // of discarding the honest majority.
        if flagged_mass > 0.5 * sorted.len() as f64 {
            return sorted;
        }
        sorted
            .into_iter()
            .filter(|&v| counts[grid.bucket_of(v)] <= fence)
            .collect()
    }
}

impl MeanDefense for BoxplotFilter {
    fn estimate_mean(&self, reports: &[f64], _rng: &mut dyn RngCore) -> f64 {
        mean(&self.inliers(reports))
    }

    fn label(&self) -> String {
        if self.freq_buckets == 0 {
            format!("Boxplot(k={})", self.whisker)
        } else {
            format!("Boxplot(k={}, fq={})", self.whisker, self.freq_buckets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((BoxplotFilter::quantile(&sorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((BoxplotFilter::quantile(&sorted, 1.0) - 4.0).abs() < 1e-12);
        assert!((BoxplotFilter::quantile(&sorted, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn removes_far_outliers_only() {
        let mut reports: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        reports.push(50.0);
        reports.push(-50.0);
        let inliers = BoxplotFilter::default().inliers(&reports);
        assert_eq!(inliers.len(), 100);
        assert!(inliers.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn estimate_ignores_spikes() {
        let mut rng = seeded(0);
        let mut reports: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        reports.extend(std::iter::repeat_n(100.0, 50));
        let est = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
        assert!((est - 0.5).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn frequency_fence_trims_in_band_point_mass() {
        let mut rng = seeded(1);
        // 8000 reports spread evenly over [-4, 4] (an inflated LDP output
        // domain) plus a 2000-report coalition at the domain edge: inside
        // the value fences, but a massive count outlier.
        let mut reports: Vec<f64> = (0..8000).map(|i| i as f64 / 7999.0 * 8.0 - 4.0).collect();
        reports.extend(std::iter::repeat_n(4.0, 2000));
        let est = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
        assert!(est.abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn banded_honest_majority_is_never_discarded() {
        // At large ε concentrated honest inputs put most reports into
        // narrow high-probability bands; those buckets tower over the tail
        // counts but ARE the honest signal. Two modes at ±0.9 under ε = 5
        // make the bands hold >90% of the mass in <25% of the buckets, so
        // the count fence flags them all — the majority guard must stand
        // down (without it the estimate collapses onto the noise tails:
        // 0.006 instead of ≈0.18).
        use dap_ldp::{NumericMechanism, PiecewiseMechanism};
        let mut rng = seeded(3);
        let mech = PiecewiseMechanism::with_epsilon(5.0).unwrap();
        let mut reports: Vec<f64> =
            (0..12_000).map(|_| mech.perturb(0.9, &mut rng)).collect();
        reports.extend((0..8_000).map(|_| mech.perturb(-0.9, &mut rng)));
        let truth = (12_000.0 * 0.9 - 8_000.0 * 0.9) / 20_000.0;
        let est = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
        assert!((est - truth).abs() < 0.05, "estimate {est} truth {truth}");
    }

    #[test]
    fn iid_honest_reports_survive_sampling_jitter() {
        // Genuinely random (not evenly spaced) honest-only data: bucket
        // counts carry Poisson jitter, and the 3σ noise floor must keep the
        // occasional high-count bucket under the fence.
        use rand::Rng;
        // A ~3.7σ fence still has per-run odds below ~1% of one ~125-report
        // bucket poking over it, so bound the *total* drops across seeds
        // (≤ one bucket) rather than tying the test to the exact RNG stream
        // (the compat rand is swappable); the pre-noise-floor fence dropped
        // a bucket in ~30% of runs and still fails this bound.
        let mut dropped_total = 0;
        for seed in 0..6 {
            let mut rng = seeded(seed);
            let reports: Vec<f64> = (0..8000).map(|_| rng.gen_range(-1.0..1.0)).collect();
            dropped_total += 8000 - BoxplotFilter::default().inliers(&reports).len();
        }
        assert!(dropped_total <= 130, "dropped {dropped_total} honest reports over 6 runs");
    }

    #[test]
    fn discrete_atom_reports_are_kept() {
        // A two-atom output domain (Duchi-style): most buckets are empty.
        // The fence must judge the two occupied buckets against each other,
        // not against the empty majority (which would drop everything).
        let mut rng = seeded(2);
        let mut reports = vec![-1.0; 550];
        reports.extend(std::iter::repeat_n(1.0, 474));
        let n = reports.len();
        assert_eq!(BoxplotFilter::default().inliers(&reports).len(), n);
        let est = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
        assert!((est - (474.0 - 550.0) / 1024.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn near_tied_counts_survive_the_noise_floor() {
        // 8001 evenly spread reports: 64 buckets of 125 except one of 126.
        // The count IQR is ~0; without the √Q3 noise floor the 126-report
        // bucket of honest data would be dropped.
        let reports: Vec<f64> = (0..8001).map(|i| i as f64 / 8000.0).collect();
        assert_eq!(BoxplotFilter::default().inliers(&reports).len(), 8001);
    }

    #[test]
    fn frequency_fence_disabled_on_small_samples() {
        // 100 evenly spread reports: far too few for count statistics, so
        // the frequency stage must stand down and keep everything.
        let reports: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        assert_eq!(BoxplotFilter::default().inliers(&reports).len(), 100);
    }

    #[test]
    fn empty_input_is_zero() {
        let mut rng = seeded(0);
        assert_eq!(BoxplotFilter::default().estimate_mean(&[], &mut rng), 0.0);
    }
}
