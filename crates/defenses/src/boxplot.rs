//! Boxplot (IQR) outlier filter \[56\], one of the detection techniques the
//! paper's §III-A mentions as composable with DAP.

use crate::MeanDefense;
use dap_estimation::stats::mean;
use rand::RngCore;

/// Drops reports outside `[Q1 − k·IQR, Q3 + k·IQR]` and averages the rest.
#[derive(Debug, Clone, Copy)]
pub struct BoxplotFilter {
    /// Whisker multiplier `k` (1.5 is Tukey's classic value).
    pub whisker: f64,
}

impl Default for BoxplotFilter {
    fn default() -> Self {
        BoxplotFilter { whisker: 1.5 }
    }
}

impl BoxplotFilter {
    /// Linear-interpolated quantile of sorted data, `q ∈ [0, 1]`.
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        debug_assert!(!sorted.is_empty());
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The retained (inlier) reports.
    pub fn inliers(&self, reports: &[f64]) -> Vec<f64> {
        if reports.is_empty() {
            return Vec::new();
        }
        let mut sorted = reports.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reports"));
        let q1 = Self::quantile(&sorted, 0.25);
        let q3 = Self::quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - self.whisker * iqr, q3 + self.whisker * iqr);
        sorted.retain(|&v| v >= lo && v <= hi);
        sorted
    }
}

impl MeanDefense for BoxplotFilter {
    fn estimate_mean(&self, reports: &[f64], _rng: &mut dyn RngCore) -> f64 {
        mean(&self.inliers(reports))
    }

    fn label(&self) -> String {
        format!("Boxplot(k={})", self.whisker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((BoxplotFilter::quantile(&sorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((BoxplotFilter::quantile(&sorted, 1.0) - 4.0).abs() < 1e-12);
        assert!((BoxplotFilter::quantile(&sorted, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn removes_far_outliers_only() {
        let mut reports: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        reports.push(50.0);
        reports.push(-50.0);
        let inliers = BoxplotFilter::default().inliers(&reports);
        assert_eq!(inliers.len(), 100);
        assert!(inliers.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn estimate_ignores_spikes() {
        let mut rng = seeded(0);
        let mut reports: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        reports.extend(std::iter::repeat_n(100.0, 50));
        let est = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
        assert!((est - 0.5).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn empty_input_is_zero() {
        let mut rng = seeded(0);
        assert_eq!(BoxplotFilter::default().estimate_mean(&[], &mut rng), 0.0);
    }
}
