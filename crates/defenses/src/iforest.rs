//! Isolation forest \[41\] over one-dimensional reports, another detection
//! technique §III-A lists as composable with DAP.
//!
//! Each isolation tree recursively splits a subsample at a uniform random
//! point between the node's min and max; anomalies isolate near the root, so
//! short average path lengths mean high anomaly scores
//! `s(x) = 2^{−E[h(x)]/c(ψ)}`.

use crate::MeanDefense;
use dap_estimation::stats::mean;
use rand::{Rng, RngCore};

/// Isolation-forest outlier filter.
#[derive(Debug, Clone, Copy)]
pub struct IsolationForest {
    /// Number of trees (the original paper recommends 100).
    pub trees: usize,
    /// Subsample size per tree (256 in the original paper).
    pub subsample: usize,
    /// Reports with anomaly score above this are dropped (0.5 = average,
    /// 0.6+ = clear anomaly).
    pub score_threshold: f64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        IsolationForest { trees: 100, subsample: 256, score_threshold: 0.6 }
    }
}

/// One fitted isolation tree: a flat array of nodes.
#[derive(Debug, Clone)]
enum Node {
    Split { point: f64, left: usize, right: usize },
    Leaf { size: usize },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

/// Average unsuccessful-search path length of a BST with `n` nodes — the
/// normalizer `c(n)` from the isolation-forest paper.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    let harmonic = (n - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (n - 1.0) / n
}

impl Tree {
    fn fit(sample: &mut [f64], max_depth: usize, rng: &mut dyn RngCore) -> Tree {
        let mut nodes = Vec::new();
        Self::build(sample, 0, max_depth, &mut nodes, rng);
        Tree { nodes }
    }

    fn build(
        sample: &mut [f64],
        depth: usize,
        max_depth: usize,
        nodes: &mut Vec<Node>,
        rng: &mut dyn RngCore,
    ) -> usize {
        let idx = nodes.len();
        let (min, max) = sample.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
        if sample.len() <= 1 || depth >= max_depth || max - min < 1e-12 {
            nodes.push(Node::Leaf { size: sample.len() });
            return idx;
        }
        let point = rng.gen_range(min..max);
        nodes.push(Node::Leaf { size: 0 }); // placeholder, patched below
        let split = partition(sample, point);
        let (lo, hi) = sample.split_at_mut(split);
        let left = Self::build(lo, depth + 1, max_depth, nodes, rng);
        let right = Self::build(hi, depth + 1, max_depth, nodes, rng);
        nodes[idx] = Node::Split { point, left, right };
        idx
    }

    /// Path length of `x`, with the standard `c(size)` leaf adjustment.
    fn path_length(&self, x: f64) -> f64 {
        let mut node = 0usize;
        let mut depth = 0.0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { size } => return depth + c_factor(*size),
                Node::Split { point, left, right } => {
                    node = if x < *point { *left } else { *right };
                    depth += 1.0;
                }
            }
        }
    }
}

/// In-place partition: values `< point` first; returns the split index.
fn partition(sample: &mut [f64], point: f64) -> usize {
    let mut i = 0;
    for j in 0..sample.len() {
        if sample[j] < point {
            sample.swap(i, j);
            i += 1;
        }
    }
    i
}

impl IsolationForest {
    /// Anomaly scores in `[0, 1]` for every report.
    pub fn scores(&self, reports: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        if reports.is_empty() {
            return Vec::new();
        }
        let psi = self.subsample.min(reports.len()).max(2);
        let max_depth = (psi as f64).log2().ceil() as usize;
        let trees: Vec<Tree> = (0..self.trees)
            .map(|_| {
                let mut sample: Vec<f64> =
                    (0..psi).map(|_| reports[rng.gen_range(0..reports.len())]).collect();
                Tree::fit(&mut sample, max_depth, rng)
            })
            .collect();
        let cn = c_factor(psi);
        reports
            .iter()
            .map(|&x| {
                let avg: f64 =
                    trees.iter().map(|t| t.path_length(x)).sum::<f64>() / trees.len() as f64;
                2.0f64.powf(-avg / cn)
            })
            .collect()
    }

    /// Reports that survive the anomaly filter.
    pub fn inliers(&self, reports: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        let scores = self.scores(reports, rng);
        reports
            .iter()
            .zip(scores)
            .filter_map(|(&v, s)| (s <= self.score_threshold).then_some(v))
            .collect()
    }
}

impl MeanDefense for IsolationForest {
    fn estimate_mean(&self, reports: &[f64], rng: &mut dyn RngCore) -> f64 {
        let kept = self.inliers(reports, rng);
        if kept.is_empty() {
            mean(reports)
        } else {
            mean(&kept)
        }
    }

    fn label(&self) -> String {
        format!("IsolationForest(t={}, psi={})", self.trees, self.subsample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn c_factor_grows_slowly() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(256) > c_factor(16));
        assert!(c_factor(256) < 16.0);
    }

    #[test]
    fn partition_splits_correctly() {
        let mut v = [5.0, 1.0, 4.0, 2.0, 3.0];
        let split = partition(&mut v, 3.0);
        assert_eq!(split, 2);
        assert!(v[..split].iter().all(|&x| x < 3.0));
        assert!(v[split..].iter().all(|&x| x >= 3.0));
    }

    #[test]
    fn isolated_point_scores_higher() {
        let mut rng = seeded(1);
        let mut reports: Vec<f64> = (0..500).map(|i| i as f64 / 499.0).collect();
        reports.push(25.0); // far outlier
        let forest = IsolationForest::default();
        let scores = forest.scores(&reports, &mut rng);
        let outlier_score = *scores.last().expect("non-empty");
        let typical: f64 = scores[..500].iter().sum::<f64>() / 500.0;
        assert!(
            outlier_score > typical + 0.1,
            "outlier {outlier_score} vs typical {typical}"
        );
    }

    #[test]
    fn filter_recovers_clean_mean() {
        let mut rng = seeded(2);
        let mut reports: Vec<f64> = (0..2000).map(|i| i as f64 / 1999.0).collect();
        reports.extend(std::iter::repeat_n(40.0, 100));
        let est = IsolationForest::default().estimate_mean(&reports, &mut rng);
        // Ostrich would give ≈ 2.38; the forest should land near 0.5.
        assert!((est - 0.5).abs() < 0.2, "estimate {est}");
    }

    #[test]
    fn empty_input_is_safe() {
        let mut rng = seeded(3);
        assert_eq!(IsolationForest::default().estimate_mean(&[], &mut rng), 0.0);
    }

    #[test]
    fn constant_input_is_safe() {
        let mut rng = seeded(4);
        let est = IsolationForest::default().estimate_mean(&[2.0; 500], &mut rng);
        assert!((est - 2.0).abs() < 1e-12);
    }
}
