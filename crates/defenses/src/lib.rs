//! Baseline defenses the paper compares DAP against.
//!
//! * [`Ostrich`] — ignore the attack, average everything (the paper's
//!   no-defense baseline),
//! * [`Trimming`] — drop the extreme half of the reports on the poisoned
//!   side before averaging (the robust-statistics baseline of §I),
//! * [`KMeansDefense`] — the subset-sampling 2-means defense of Li et
//!   al. \[38\] (Fig. 9a, b),
//! * [`BoxplotFilter`] — IQR outlier removal \[56\],
//! * [`IsolationForest`] — isolation-forest anomaly filtering \[41\].
//!
//! Every defense implements [`MeanDefense`]: reports in, mean estimate out.
//! Honest Piecewise-Mechanism reports are unbiased, so averaging surviving
//! reports estimates the honest mean directly.
//!
//! ```
//! use dap_defenses::{BoxplotFilter, MeanDefense, Ostrich};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // 1000 clean reports around 0 plus 50 poison reports at +100.
//! let mut reports: Vec<f64> = (0..1000).map(|i| (i as f64 / 999.0) - 0.5).collect();
//! reports.extend(std::iter::repeat_n(100.0, 50));
//!
//! let naive = Ostrich.estimate_mean(&reports, &mut rng);
//! let robust = BoxplotFilter::default().estimate_mean(&reports, &mut rng);
//! assert!(naive > 4.0);          // dragged far off by the poison
//! assert!(robust.abs() < 0.1);   // the IQR filter drops the spike
//! ```

pub mod boxplot;
pub mod iforest;
pub mod kmeans;
pub mod ostrich;
pub mod trimming;

pub use boxplot::BoxplotFilter;
pub use iforest::IsolationForest;
pub use kmeans::KMeansDefense;
pub use ostrich::Ostrich;
pub use trimming::Trimming;

use rand::RngCore;

/// A defense that turns a batch of (possibly poisoned) LDP reports into a
/// mean estimate.
/// `Sync` so the experiment harness can share one defense across parallel
/// trials.
pub trait MeanDefense: Sync {
    /// Estimates the honest-population mean from the reports.
    fn estimate_mean(&self, reports: &[f64], rng: &mut dyn RngCore) -> f64;

    /// Short label for experiment output.
    fn label(&self) -> String;
}
