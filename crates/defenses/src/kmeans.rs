//! Subset-sampling k-means defense (Li et al. \[38\], compared in Fig. 9).
//!
//! The collector draws many random subsets of the reports, computes each
//! subset's mean, and 2-means-clusters the subset means. Subsets dominated by
//! poison pull away from the honest cluster; the *larger* cluster is declared
//! honest and its centroid is the estimate.
//!
//! The 1-D 2-means step is solved exactly: sort the subset means and scan all
//! split points with prefix sums, minimizing within-cluster SSE — no Lloyd
//! iterations, no initialization sensitivity.

use crate::MeanDefense;
use rand::{Rng, RngCore};

/// The k-means-based defense with subset sampling.
///
/// Separation between the honest and poisoned clusters of subset means only
/// occurs when a majority of subsets is poison-free, i.e. roughly when
/// `subset_size < ln 2 / γ`; with larger subsets every subset carries the
/// same expected poison bias and the defense degenerates toward Ostrich.
/// The experiment harness reports it as-described either way.
#[derive(Debug, Clone, Copy)]
pub struct KMeansDefense {
    /// Sampling rate β: each subset contains `⌈β·N⌉` reports (overridden by
    /// `subset_size` if set).
    pub beta: f64,
    /// Number of subsets to draw (the paper uses 10⁶; 10⁴–10⁵ behaves the
    /// same and is the experiment default here).
    pub subsets: usize,
    /// Optional absolute subset size overriding `β·N`.
    pub subset_size: Option<usize>,
}

impl KMeansDefense {
    /// Builds a defense; `beta ∈ (0, 1]`, `subsets ≥ 2`.
    pub fn new(beta: f64, subsets: usize) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta {beta} outside (0, 1]");
        assert!(subsets >= 2, "need at least two subsets");
        KMeansDefense { beta, subsets, subset_size: None }
    }

    /// Builds a defense with an absolute subset size instead of a rate.
    pub fn with_subset_size(size: usize, subsets: usize) -> Self {
        assert!(size >= 1, "subset size must be positive");
        assert!(subsets >= 2, "need at least two subsets");
        KMeansDefense { beta: 1.0, subsets, subset_size: Some(size) }
    }

    /// Exact 1-D 2-means: returns `(split_index, lower_centroid,
    /// upper_centroid)` for sorted input, where the lower cluster is
    /// `sorted[..split]`.
    fn two_means_split(sorted: &[f64]) -> (usize, f64, f64) {
        let n = sorted.len();
        debug_assert!(n >= 2);
        // Prefix sums for O(1) cluster SSE at every split.
        let mut pref = Vec::with_capacity(n + 1);
        let mut pref2 = Vec::with_capacity(n + 1);
        pref.push(0.0);
        pref2.push(0.0);
        for &v in sorted {
            pref.push(pref.last().expect("non-empty") + v);
            pref2.push(pref2.last().expect("non-empty") + v * v);
        }
        let sse = |a: usize, b: usize| -> f64 {
            // SSE of sorted[a..b] around its own mean.
            let cnt = (b - a) as f64;
            if cnt == 0.0 {
                return 0.0;
            }
            let s = pref[b] - pref[a];
            let s2 = pref2[b] - pref2[a];
            s2 - s * s / cnt
        };
        let mut best = (1, f64::INFINITY);
        for split in 1..n {
            let total = sse(0, split) + sse(split, n);
            if total < best.1 {
                best = (split, total);
            }
        }
        let split = best.0;
        let lower = (pref[split] - pref[0]) / split as f64;
        let upper = (pref[n] - pref[split]) / (n - split) as f64;
        (split, lower, upper)
    }
}

impl MeanDefense for KMeansDefense {
    fn estimate_mean(&self, reports: &[f64], rng: &mut dyn RngCore) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        let subset_size = self
            .subset_size
            .unwrap_or_else(|| (self.beta * reports.len() as f64).ceil() as usize)
            .max(1);
        let mut subset_means = Vec::with_capacity(self.subsets);
        for _ in 0..self.subsets {
            let mut sum = 0.0;
            for _ in 0..subset_size {
                sum += reports[rng.gen_range(0..reports.len())];
            }
            subset_means.push(sum / subset_size as f64);
        }
        subset_means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in means"));
        let (split, lower, upper) = Self::two_means_split(&subset_means);
        // Majority cluster wins.
        if split >= subset_means.len() - split {
            lower
        } else {
            upper
        }
    }

    fn label(&self) -> String {
        format!("K-means(beta={})", self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn two_means_finds_the_obvious_split() {
        let sorted = [0.0, 0.1, 0.2, 10.0, 10.1];
        let (split, lower, upper) = KMeansDefense::two_means_split(&sorted);
        assert_eq!(split, 3);
        assert!((lower - 0.1).abs() < 1e-9);
        assert!((upper - 10.05).abs() < 1e-9);
    }

    #[test]
    fn clean_data_estimates_the_mean() {
        let mut rng = seeded(1);
        let reports: Vec<f64> = (0..2000).map(|i| (i as f64 / 1999.0) * 2.0 - 1.0).collect();
        let d = KMeansDefense::new(0.3, 500);
        let est = d.estimate_mean(&reports, &mut rng);
        assert!(est.abs() < 0.1, "estimate {est} for zero-mean data");
    }

    #[test]
    fn resists_minority_point_poison_with_small_subsets() {
        let mut rng = seeded(2);
        // 10% poison at +5 on data centred at 0. With subsets of 4 reports,
        // (0.9)⁴ ≈ 66% of subsets are poison-free: the honest cluster is the
        // majority and its centroid sits near the honest mean.
        let mut reports: Vec<f64> =
            (0..9000).map(|i| (i as f64 / 8999.0) * 2.0 - 1.0).collect();
        reports.extend(std::iter::repeat_n(5.0, 1000));
        let d = KMeansDefense::with_subset_size(4, 2000);
        let est = d.estimate_mean(&reports, &mut rng);
        // Ostrich would report 0.5; the defense should land well below.
        assert!(est < 0.3, "estimate {est} not better than Ostrich (0.5)");
    }

    #[test]
    fn large_subsets_degenerate_toward_the_poisoned_mean() {
        let mut rng = seeded(5);
        // With subsets of 500 every subset carries ≈ the same poison bias:
        // no separation is possible and the estimate tracks Ostrich.
        let mut reports: Vec<f64> =
            (0..8000).map(|i| (i as f64 / 7999.0) * 2.0 - 1.0).collect();
        reports.extend(std::iter::repeat_n(5.0, 2000));
        let d = KMeansDefense::new(0.05, 500);
        let est = d.estimate_mean(&reports, &mut rng);
        assert!((est - 1.0).abs() < 0.3, "estimate {est}, poisoned mean 1.0");
    }

    #[test]
    fn handles_empty_input() {
        let mut rng = seeded(3);
        assert_eq!(KMeansDefense::new(0.5, 10).estimate_mean(&[], &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_bad_beta() {
        KMeansDefense::new(0.0, 10);
    }
}
