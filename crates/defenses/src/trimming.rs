//! Trimming baseline: drop a fixed fraction of extreme reports on the
//! poisoned side (§VI-C uses 50%).

use crate::MeanDefense;
use dap_attack::Side;
use dap_estimation::stats::mean;
use rand::RngCore;

/// Removes the most extreme `fraction` of the reports on `side`, then
/// averages the remainder.
#[derive(Debug, Clone, Copy)]
pub struct Trimming {
    /// Fraction of reports to remove, in `[0, 1)`.
    pub fraction: f64,
    /// Which tail to remove (the hypothesized poisoned side).
    pub side: Side,
}

impl Trimming {
    /// The paper's configuration: trim 50% on the given side.
    pub fn paper_default(side: Side) -> Self {
        Trimming { fraction: 0.5, side }
    }
}

impl MeanDefense for Trimming {
    fn estimate_mean(&self, reports: &[f64], _rng: &mut dyn RngCore) -> f64 {
        assert!((0.0..1.0).contains(&self.fraction), "invalid trim fraction");
        if reports.is_empty() {
            return 0.0;
        }
        // The kept set is "everything outside the trimmed tail" — a
        // selection, not a sort: an O(n) partition around the cut rank
        // replaces the old O(n log n) full sort (the mean of the kept
        // multiset is identical either way).
        let mut values = reports.to_vec();
        let drop = (self.fraction * values.len() as f64).round() as usize;
        let drop = drop.min(values.len() - 1);
        if drop == 0 {
            return mean(&values);
        }
        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("no NaN in reports");
        let kept = match self.side {
            Side::Right => {
                let cut = values.len() - drop;
                values.select_nth_unstable_by(cut - 1, cmp);
                &values[..cut]
            }
            Side::Left => {
                let (_, _, upper) = values.select_nth_unstable_by(drop - 1, cmp);
                &*upper
            }
        };
        mean(kept)
    }

    fn label(&self) -> String {
        format!("Trimming({}%, {})", self.fraction * 100.0, self.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn removes_the_right_tail() {
        let mut rng = seeded(0);
        let reports = [0.0, 1.0, 2.0, 3.0, 100.0, 100.0];
        let t = Trimming { fraction: 1.0 / 3.0, side: Side::Right };
        let est = t.estimate_mean(&reports, &mut rng);
        assert!((est - 1.5).abs() < 1e-12); // mean of [0,1,2,3]
    }

    #[test]
    fn removes_the_left_tail() {
        let mut rng = seeded(0);
        let reports = [-100.0, -100.0, 0.0, 1.0, 2.0, 3.0];
        let t = Trimming { fraction: 1.0 / 3.0, side: Side::Left };
        let est = t.estimate_mean(&reports, &mut rng);
        assert!((est - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trimming_biases_clean_data() {
        // The §I criticism: trimming removes honest tail values and biases
        // the estimate even with no attack present.
        let mut rng = seeded(0);
        let reports: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect(); // uniform [0,1]
        let t = Trimming::paper_default(Side::Right);
        let est = t.estimate_mean(&reports, &mut rng);
        assert!(est < 0.3, "50% right-trim of uniform[0,1] should be ≈0.25, got {est}");
    }

    #[test]
    fn survives_tiny_inputs() {
        let mut rng = seeded(0);
        let t = Trimming::paper_default(Side::Right);
        assert_eq!(t.estimate_mean(&[], &mut rng), 0.0);
        let one = t.estimate_mean(&[7.0], &mut rng);
        assert!((one - 7.0).abs() < 1e-12);
    }
}
