//! Chaos sweep for the self-healing serving stack: a coordinator driven
//! through deterministic fault-injection proxies ([`ChaosProxy`]) must
//! finalize **bit-identically** to the in-process reference — dropped
//! connects, mid-batch stalls, resets, daemon death-and-restart — or fail
//! with a typed, named error. The one outcome that must be impossible is
//! silent divergence. The same property is exercised across real process
//! boundaries by `experiments chaos` and CI's `chaos-smoke` job.

use dap_bench::serve::{render_outputs, ServeSpec, SubmitOptions, SubmitSpec, WireMech};
use dap_core::net::{Deadlines, RetryPolicy, WireClient};
use dap_core::{ChaosProxy, ChaosSchedule, Fault, Scheme};
use dap_datasets::Dataset;
use std::net::TcpListener;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

fn spec() -> SubmitSpec {
    SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 400,
            seed: 11,
            max_d_out: 16,
            secagg: None,
        },
        dataset: Dataset::Taxi,
        gamma: 0.2,
        data_seed: 3,
    }
}

/// Retry/deadline options every chaos run uses: bounded reads (stalls
/// must become typed timeouts), quick backoff (tests, not production),
/// and enough attempts to outlast any schedule below.
fn chaos_options() -> SubmitOptions {
    SubmitOptions {
        retry: RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            ..RetryPolicy::default()
        },
        deadlines: Deadlines::all(Duration::from_millis(500)),
        ..SubmitOptions::default()
    }
}

fn spawn_daemon(serve: &ServeSpec) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve = *serve;
    let handle = std::thread::spawn(move || serve.serve(listener).expect("daemon serves"));
    (addr, handle)
}

fn shutdown_daemon(addr: &str, handle: JoinHandle<()>) {
    let mut c =
        WireClient::connect_retry(addr, 50, Duration::from_millis(20)).expect("daemon reachable");
    c.shutdown().expect("shutdown accepted");
    handle.join().expect("daemon thread");
}

#[test]
fn seeded_fault_sweeps_finalize_bit_identical() {
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));

    let mut faults_seen = 0usize;
    for chaos_seed in [1u64, 2, 3] {
        let mut daemons = Vec::new();
        let mut proxies = Vec::new();
        for i in 0..2u64 {
            let (addr, handle) = spawn_daemon(&spec.serve);
            let proxy = ChaosProxy::start(
                addr.clone(),
                ChaosSchedule::seeded(chaos_seed * 1000 + i, 6),
            )
            .expect("proxy starts");
            daemons.push((addr, handle));
            proxies.push(proxy);
        }
        let proxy_addrs: Vec<String> = proxies.iter().map(|p| p.addr()).collect();

        let outcome = spec
            .submit(&proxy_addrs, &Scheme::ALL, chaos_options())
            .unwrap_or_else(|e| panic!("chaos seed {chaos_seed} failed: {e}"));
        assert_eq!(
            render_outputs(&Scheme::ALL, &outcome.outputs),
            local,
            "chaos seed {chaos_seed} diverged from the clean reference"
        );
        faults_seen += proxies.iter().map(|p| p.faults_injected()).sum::<usize>();
        for (addr, handle) in daemons {
            shutdown_daemon(&addr, handle);
        }
    }
    assert!(faults_seen > 0, "the sweep injected no faults — it tested nothing");
}

#[test]
fn directed_connect_and_midstream_faults_each_recover() {
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));

    // (name, schedule, must_force_a_retry): a delay under the read
    // deadline injects latency, not an error, so it proves convergence
    // but not retry accounting.
    let cases: [(&str, Vec<Fault>, bool); 5] = [
        ("drop@connect", vec![Fault::DropAtConnect], true),
        ("delay@connect", vec![Fault::DelayMs(80)], false),
        ("stall@mid-batch", vec![Fault::StallAfter(400)], true),
        ("reset@mid-batch", vec![Fault::ResetAfter(900)], true),
        (
            "compound",
            vec![Fault::DropAtConnect, Fault::StallAfter(300), Fault::ResetAfter(600)],
            true,
        ),
    ];
    for (name, schedule, must_retry) in cases {
        let (addr, handle) = spawn_daemon(&spec.serve);
        let proxy =
            ChaosProxy::start(addr.clone(), ChaosSchedule::of(schedule)).expect("proxy starts");

        let outcome = spec
            .submit(&[proxy.addr()], &Scheme::ALL, chaos_options())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(
            render_outputs(&Scheme::ALL, &outcome.outputs),
            local,
            "{name} diverged from the clean reference"
        );
        let summary = &outcome.daemons[0];
        assert!(summary.dead.is_none(), "{name}: daemon wrongly declared dead");
        if must_retry {
            assert!(
                summary.retries > 0,
                "{name}: the fault left no retry evidence in the summary"
            );
        }
        shutdown_daemon(&addr, handle);
    }
}

#[test]
fn reset_during_the_pull_phase_recovers() {
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));

    // Populate the daemon over a clean direct connection, keeping it
    // alive: the daemon now holds the full session state.
    let (addr, handle) = spawn_daemon(&spec.serve);
    let first = spec
        .submit(std::slice::from_ref(&addr), &Scheme::ALL, SubmitOptions::default())
        .expect("clean populate");
    assert_eq!(render_outputs(&Scheme::ALL, &first.outputs), local);

    // A pull-only run through a proxy that hard-resets the connection a
    // few bytes into the `pull` request (the handshake is ~67 bytes): the
    // coordinator must reconnect and pull the part intact.
    let proxy = ChaosProxy::start(addr.clone(), ChaosSchedule::of(vec![Fault::ResetAfter(70)]))
        .expect("proxy starts");
    let outcome = spec
        .submit(
            &[proxy.addr()],
            &Scheme::ALL,
            SubmitOptions { pull_only: true, ..chaos_options() },
        )
        .expect("pull-only through the reset");
    assert_eq!(
        render_outputs(&Scheme::ALL, &outcome.outputs),
        local,
        "pull-phase reset diverged from the clean reference"
    );
    assert!(outcome.daemons[0].dead.is_none());
    shutdown_daemon(&addr, handle);
}

#[test]
fn daemon_restarted_on_its_journal_midstream_finalizes_identically() {
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dap-chaos-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let serve = spec.serve;
    let spawn_durable = |dir: PathBuf| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            serve.serve_durable(listener, &dir, 0, false).expect("durable daemon serves")
        });
        (addr, handle)
    };
    let (addr, handle) = spawn_durable(dir.clone());
    let proxy = ChaosProxy::start(addr.clone(), ChaosSchedule::clean()).expect("proxy starts");

    // Mid-submit, a watchdog stops the daemon (its journal survives),
    // brings up a fresh one on the same journal at a new address, and
    // re-points the proxy — the coordinator must ride through on
    // reconnect + sequenced resume.
    let watchdog = {
        let direct = addr.clone();
        let proxy = &proxy;
        let dir = dir.clone();
        std::thread::scope(|scope| {
            let wd = scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                let mut c = WireClient::connect_retry(&direct, 20, Duration::from_millis(10))
                    .expect("daemon reachable for the kill");
                c.shutdown().expect("shutdown accepted");
                let (fresh_addr, fresh_handle) = spawn_durable(dir);
                proxy.set_upstream(&fresh_addr);
                (fresh_addr, fresh_handle)
            });

            let opts = SubmitOptions {
                retry: RetryPolicy {
                    attempts: 10,
                    base: Duration::from_millis(20),
                    ..RetryPolicy::default()
                },
                deadlines: Deadlines::all(Duration::from_millis(500)),
                ..SubmitOptions::default()
            };
            let outcome = spec
                .submit(&[proxy.addr()], &Scheme::ALL, opts)
                .expect("submit across the restart");
            assert_eq!(
                render_outputs(&Scheme::ALL, &outcome.outputs),
                local,
                "restart-on-journal diverged from the clean reference"
            );
            wd.join().expect("watchdog")
        })
    };
    handle.join().expect("first daemon thread");
    let (fresh_addr, fresh_handle) = watchdog;
    shutdown_daemon(&fresh_addr, fresh_handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreachable_daemon_reroutes_its_groups_to_a_survivor() {
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));

    let (alive_addr, alive_handle) = spawn_daemon(&spec.serve);
    let (dead_addr, dead_handle) = spawn_daemon(&spec.serve);
    // The second daemon is healthy but unreachable: its proxy drops every
    // connection at accept, so each attempt fails fast and typed.
    let alive_proxy =
        ChaosProxy::start(alive_addr.clone(), ChaosSchedule::clean()).expect("proxy starts");
    let dead_proxy =
        ChaosProxy::start(dead_addr.clone(), ChaosSchedule::of(vec![Fault::DropAtConnect; 64]))
            .expect("proxy starts");

    let opts = SubmitOptions {
        retry: RetryPolicy { attempts: 3, base: Duration::from_millis(5), ..RetryPolicy::default() },
        deadlines: Deadlines::all(Duration::from_millis(500)),
        ..SubmitOptions::default()
    };
    let outcome = spec
        .submit(&[alive_proxy.addr(), dead_proxy.addr()], &Scheme::ALL, opts)
        .expect("failover submit");
    assert_eq!(
        render_outputs(&Scheme::ALL, &outcome.outputs),
        local,
        "failover diverged from the clean reference"
    );
    let (survivor, dead) = (&outcome.daemons[0], &outcome.daemons[1]);
    assert!(dead.dead.is_some(), "the unreachable daemon must be declared dead");
    assert!(dead.groups.is_empty(), "a dead daemon must own no groups at finalize");
    assert!(!survivor.groups.is_empty(), "the survivor must own the rerouted groups");
    assert!(dead.render().contains("DEAD"), "the summary must name the death: {}", dead.render());

    shutdown_daemon(&alive_addr, alive_handle);
    shutdown_daemon(&dead_addr, dead_handle);
}

#[test]
fn every_daemon_dead_is_a_typed_failure_not_divergence() {
    let spec = spec();
    // One daemon, never reachable through its proxy, and no survivor to
    // reroute to: the submit must fail with an error naming the daemon
    // and its retry history — not hang, not return partial outputs.
    let (addr, handle) = spawn_daemon(&spec.serve);
    let proxy = ChaosProxy::start(addr.clone(), ChaosSchedule::of(vec![Fault::DropAtConnect; 64]))
        .expect("proxy starts");
    let proxy_addr = proxy.addr();

    let opts = SubmitOptions {
        retry: RetryPolicy { attempts: 2, base: Duration::from_millis(5), ..RetryPolicy::default() },
        deadlines: Deadlines::all(Duration::from_millis(500)),
        ..SubmitOptions::default()
    };
    let err =
        spec.submit(std::slice::from_ref(&proxy_addr), &Scheme::ALL, opts).expect_err("must fail");
    assert!(err.contains(&proxy_addr), "the error must name the dead daemon: {err}");
    assert!(err.contains("DEAD"), "the error must carry the daemon summary: {err}");

    shutdown_daemon(&addr, handle);
}

#[test]
fn secagg_fleet_survives_faults_and_a_journaled_restart() {
    // The masked tier under fire: both share servers are journaled, sit
    // behind seeded fault proxies, and share server 0 is stopped and
    // restarted on its journal mid-submit. The reconnect handshake must
    // re-announce the dealer's seed commitment, the replay guard must
    // dedup re-sent share batches, and the finalized outputs must still
    // be bit-identical to the plaintext local reference.
    use dap_core::SecaggRole;
    let spec = spec();
    let local = render_outputs(&Scheme::ALL, &spec.run_local(&Scheme::ALL).expect("reference"));
    let base: PathBuf =
        std::env::temp_dir().join(format!("dap-chaos-secagg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    const K: usize = 2;
    let serve = spec.serve;
    let spawn_durable = |i: usize| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let serve = ServeSpec { secagg: Some(SecaggRole { k: K, index: i }), ..serve };
        let dir = base.join(format!("daemon-{i}"));
        let handle = std::thread::spawn(move || {
            serve.serve_durable(listener, &dir, 0, false).expect("durable masked daemon")
        });
        (addr, handle)
    };

    let (addr0, handle0) = spawn_durable(0);
    let (addr1, handle1) = spawn_durable(1);
    let proxy0 = ChaosProxy::start(addr0.clone(), ChaosSchedule::seeded(41, 4))
        .expect("proxy starts");
    let proxy1 = ChaosProxy::start(addr1.clone(), ChaosSchedule::seeded(42, 4))
        .expect("proxy starts");

    let restarted = std::thread::scope(|scope| {
        let wd = {
            let direct = addr0.clone();
            let proxy0 = &proxy0;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                let mut c = WireClient::connect_retry(&direct, 20, Duration::from_millis(10))
                    .expect("share server reachable for the stop");
                c.shutdown().expect("shutdown accepted");
                let (fresh_addr, fresh_handle) = spawn_durable(0);
                proxy0.set_upstream(&fresh_addr);
                (fresh_addr, fresh_handle)
            })
        };
        let opts = SubmitOptions {
            secagg: Some(K),
            retry: RetryPolicy {
                attempts: 10,
                base: Duration::from_millis(20),
                ..RetryPolicy::default()
            },
            deadlines: Deadlines::all(Duration::from_millis(500)),
            ..SubmitOptions::default()
        };
        let outcome = spec
            .submit(&[proxy0.addr(), proxy1.addr()], &Scheme::ALL, opts)
            .expect("masked submit across faults and the restart");
        assert_eq!(
            render_outputs(&Scheme::ALL, &outcome.outputs),
            local,
            "masked chaos run diverged from the plaintext reference"
        );
        for summary in &outcome.daemons {
            assert!(summary.dead.is_none(), "no share server should die: {}", summary.render());
        }
        wd.join().expect("watchdog")
    });
    handle0.join().expect("first share server thread");
    let (fresh_addr, fresh_handle) = restarted;
    shutdown_daemon(&fresh_addr, fresh_handle);
    shutdown_daemon(&addr1, handle1);
    let _ = std::fs::remove_dir_all(&base);
}
