//! Bit-for-bit thread-count independence of the parallel execution layer.
//!
//! The perf work fans trials (bench) and groups (protocol) out over
//! `dap_core::parallel_map`; the contract is that results are *identical* —
//! not just statistically equivalent — whether the fleet runs on one thread
//! or many, because every work item derives its own RNG stream and the fold
//! order is fixed.

use dap_bench::common::{mse_over_trials, mses_over_trials, ExpOptions, PoiRange};
use dap_bench::fig7;
use dap_core::parallel::set_thread_override;
use dap_core::{Dap, DapConfig, Population, Scheme};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;
use rand::Rng;

fn small_opts() -> ExpOptions {
    ExpOptions { n: 3_000, trials: 3, seed: 11, max_d_out: 32 }
}

// The thread override is process-global, so every assertion that toggles it
// lives in ONE #[test] — concurrent tests would otherwise race on it and
// check 5-threads-vs-6-threads instead of serial-vs-threaded.
#[test]
fn fanout_is_bit_identical_across_thread_counts() {
    trial_loops_case();
    protocol_group_case();
}

fn trial_loops_case() {
    let opts = small_opts();
    let run = |threads: usize| {
        set_thread_override(Some(threads));
        let single = mse_over_trials(&opts, 91, |rng| {
            let (population, truth) =
                dap_bench::common::build_population(Dataset::Taxi, opts.n, 0.2, rng);
            let cfg = DapConfig { max_d_out: opts.max_d_out, ..DapConfig::paper_default(0.5, Scheme::EmfStar) };
            let out = Dap::new(cfg, PiecewiseMechanism::new)
                .expect("valid config")
                .run(&population, &PoiRange::TopHalf.attack(), rng)
                .expect("valid run");
            (out.mean, truth)
        });
        let multi = mses_over_trials(&opts, 92, 2, |rng| {
            let x: f64 = rng.gen();
            (vec![x, x * 0.5], 0.25)
        });
        set_thread_override(None);
        (single.to_bits(), multi.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
    };
    let serial = run(1);
    let threaded = run(6);
    assert_eq!(serial, threaded, "trial fan-out changed results");
}

fn protocol_group_case() {
    let honest: Vec<f64> = {
        let mut rng = seeded(3);
        (0..4_000).map(|_| (rng.gen::<f64>() * 1.6 - 0.9).clamp(-1.0, 1.0)).collect()
    };
    let pop = Population::with_gamma(honest, 0.25);
    let attack = PoiRange::TopHalf.attack();
    let run = |threads: usize| {
        set_thread_override(Some(threads));
        let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.5, Scheme::Emf) };
        let outs = Dap::new(cfg, PiecewiseMechanism::new)
            .expect("valid config")
            .run_schemes(&pop, &attack, &Scheme::ALL, &mut seeded(4))
            .expect("valid run");
        set_thread_override(None);
        outs.iter()
            .map(|o| (o.mean.to_bits(), o.gamma.to_bits(), o.side))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(5), "group fan-out changed results");
}

#[test]
fn shared_scheme_runs_match_individual_runs() {
    // `run_schemes` must agree exactly with three separate `run` calls on
    // the same RNG stream prefix? No — separate runs consume the stream
    // differently. What must hold: the outputs of one shared execution, per
    // scheme, equal a single-scheme `run_schemes` over the same stream.
    let honest: Vec<f64> = {
        let mut rng = seeded(8);
        (0..3_000).map(|_| (rng.gen::<f64>() - 0.3).clamp(-1.0, 1.0)).collect()
    };
    let pop = Population::with_gamma(honest, 0.2);
    let attack = PoiRange::TopQuarter.attack();
    let cfg = DapConfig { max_d_out: 32, ..DapConfig::paper_default(0.25, Scheme::Emf) };
    let dap = Dap::new(cfg, PiecewiseMechanism::new).expect("valid config");

    let all = dap.run_schemes(&pop, &attack, &Scheme::ALL, &mut seeded(9)).expect("valid run");
    for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
        let solo = dap.run_schemes(&pop, &attack, &[scheme], &mut seeded(9)).expect("valid run");
        assert_eq!(
            solo[0].mean.to_bits(),
            all[i].mean.to_bits(),
            "{}: shared vs solo run diverged",
            scheme.label()
        );
    }
}

#[test]
fn fig7_smoke_runs_fast_config() {
    // The perf-tracked driver itself must keep functioning end to end at a
    // tiny config (CI runs the bigger version in release).
    let opts = ExpOptions { n: 1_500, trials: 1, seed: 2, max_d_out: 16 };
    fig7::run(&opts);
}
