//! Golden loopback equivalence for the serving stack: a coordinator
//! streaming to real TCP daemons must finalize **bit-identically** to the
//! single-process `Dap::run_schemes` / `SwDap::run_schemes` reference —
//! for PM and SW, ε ∈ {1/4, 1/2, 1}, all schemes, and several worker
//! counts — and the remote shard driver (`dispatch`) must reproduce a
//! local cell run exactly. The same properties are exercised
//! end-to-end (separate processes, byte-diffed stdout) by CI's
//! `serve-smoke` job.

use dap_bench::cell::ExperimentId;
use dap_bench::common::ExpOptions;
use dap_bench::engine::run_cells;
use dap_bench::results::ResultSet;
use dap_bench::serve::{
    dispatch, ServeSpec, SubmitOptions, SubmitSpec, WireMech,
};
use dap_core::net::WireClient;
use dap_core::{DapError, DapOutput, Scheme, SwDap, SwDapConfig, WireError};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use std::net::TcpListener;
use std::thread::JoinHandle;
use std::time::Duration;

fn spawn_daemons(spec: &ServeSpec, count: usize) -> (Vec<String>, Vec<JoinHandle<()>>) {
    (0..count)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr").to_string();
            let spec = *spec;
            let handle =
                std::thread::spawn(move || spec.serve(listener).expect("daemon serves"));
            (addr, handle)
        })
        .unzip()
}

fn shutdown_all(addrs: &[String], handles: Vec<JoinHandle<()>>) {
    for addr in addrs {
        let mut c = WireClient::connect_retry(addr, 50, Duration::from_millis(20))
            .expect("daemon reachable");
        c.shutdown().expect("shutdown accepted");
    }
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

/// Bitwise comparison of output vectors — stricter than `PartialEq`
/// (distinguishes -0.0 from 0.0, compares NaN bit patterns).
fn assert_outputs_bit_identical(a: &[DapOutput], b: &[DapOutput], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: output count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "{context}: mean of output {i}");
        assert_eq!(x.side, y.side, "{context}: side of output {i}");
        assert_eq!(x.gamma.to_bits(), y.gamma.to_bits(), "{context}: gamma of output {i}");
        assert_eq!(
            x.min_variance.to_bits(),
            y.min_variance.to_bits(),
            "{context}: min_variance of output {i}"
        );
        assert_eq!(x.groups.len(), y.groups.len(), "{context}: groups of output {i}");
        for (g, (gx, gy)) in x.groups.iter().zip(&y.groups).enumerate() {
            assert_eq!(gx.n_reports, gy.n_reports, "{context}: output {i} group {g}");
            for (fx, fy) in [
                (gx.eps_t, gy.eps_t),
                (gx.mean_t, gy.mean_t),
                (gx.m_hat, gy.m_hat),
                (gx.n_hat, gy.n_hat),
                (gx.weight, gy.weight),
            ] {
                assert_eq!(fx.to_bits(), fy.to_bits(), "{context}: output {i} group {g}");
            }
        }
    }
}

#[test]
fn coordinator_over_tcp_matches_in_process_run_bit_for_bit() {
    for (mech, dataset) in [(WireMech::Pm, Dataset::Taxi), (WireMech::Sw, Dataset::Beta25)] {
        for (e, eps) in [0.25, 0.5, 1.0].into_iter().enumerate() {
            let spec = SubmitSpec {
                serve: ServeSpec {
                    mech,
                    eps,
                    eps0: 1.0 / 16.0,
                    users: 900,
                    seed: 40 + e as u64,
                    max_d_out: 24,
                },
                dataset,
                gamma: 0.2,
                data_seed: 5,
            };
            let local = spec.run_local(&Scheme::ALL).expect("local reference");

            // Several worker counts, including a single daemon and more
            // daemons than some groups have peers.
            let worker_counts: &[usize] = if eps == 0.5 { &[2] } else { &[1, 3] };
            for &workers in worker_counts {
                let (addrs, handles) = spawn_daemons(&spec.serve, workers);
                let outcome = spec
                    .submit(&addrs, &Scheme::ALL, SubmitOptions::default())
                    .expect("served run");
                assert_outputs_bit_identical(
                    &outcome.outputs,
                    &local,
                    &format!("{mech:?} eps={eps} workers={workers}"),
                );
                shutdown_all(&addrs, handles);
            }
        }
    }
}

#[test]
fn sw_submit_matches_the_swdap_driver_bitwise() {
    // `run_local` drives `Dap<SquareWave>` in band mode; `SwDap` is the
    // public driver for the same deployment. Pin the serving stack to the
    // *public* reference too, not just to the internal one.
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Sw,
            eps: 0.5,
            eps0: 1.0 / 16.0,
            users: 900,
            seed: 77,
            max_d_out: 24,
        },
        dataset: Dataset::Beta25,
        gamma: 0.2,
        data_seed: 5,
    };
    let local = spec.run_local(&Scheme::ALL).expect("local reference");

    let m = (900.0f64 * 0.2).round() as usize;
    let honest = Dataset::Beta25.generate_unit(900 - m, &mut seeded(5));
    let sw = SwDap::new(SwDapConfig {
        max_d_out: 24,
        ..SwDapConfig::paper_default(0.5, Scheme::Emf)
    })
    .expect("valid config");
    let attack = dap_attack::UniformAttack::new(
        dap_attack::Anchor::AboveInputMax(0.5),
        dap_attack::Anchor::AboveInputMax(1.0),
    );
    let reference = sw
        .run_schemes_on(&honest, m, &attack, &Scheme::ALL, &mut seeded(77))
        .expect("SwDap reference");
    for (a, b) in local.iter().zip(&reference) {
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.gamma.to_bits(), b.gamma.to_bits());
        assert_eq!(a.side, b.side);
    }
}

#[test]
fn over_quota_probe_returns_the_typed_wire_rejection() {
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 300,
            seed: 9,
            max_d_out: 16,
        },
        dataset: Dataset::Taxi,
        gamma: 0.1,
        data_seed: 2,
    };
    let (addrs, handles) = spawn_daemons(&spec.serve, 2);
    let outcome = spec
        .submit(
            &addrs,
            &[Scheme::EmfStar],
            SubmitOptions { probe_rejection: true, shutdown: true, ..Default::default() },
        )
        .expect("served run with probe");
    match outcome.rejection {
        Some(WireError::Rejected(DapError::QuotaExceeded { group: 0, attempted: 1, .. })) => {}
        other => panic!("expected typed over-quota rejection, got {other:?}"),
    }
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

#[test]
fn mismatched_deployments_fail_the_handshake() {
    let daemon_spec = ServeSpec {
        mech: WireMech::Pm,
        eps: 0.25,
        eps0: 1.0 / 16.0,
        users: 300,
        seed: 9,
        max_d_out: 16,
    };
    let (addrs, handles) = spawn_daemons(&daemon_spec, 1);
    // The coordinator believes the deployment has one more user — its plan
    // (and digest) differ, and the handshake must say so before any report
    // flows.
    let spec = SubmitSpec {
        serve: ServeSpec { users: 301, ..daemon_spec },
        dataset: Dataset::Taxi,
        gamma: 0.1,
        data_seed: 2,
    };
    let err = spec
        .submit(&addrs, &[Scheme::Emf], SubmitOptions::default())
        .expect_err("digest mismatch");
    assert!(err.contains("digest mismatch"), "unhelpful error: {err}");
    shutdown_all(&addrs, handles);
}

#[test]
fn journaled_daemons_resume_across_restart_and_finalize_identically() {
    let dir = std::env::temp_dir()
        .join(format!("dap-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 400,
            seed: 11,
            max_d_out: 16,
        },
        dataset: Dataset::Taxi,
        gamma: 0.2,
        data_seed: 3,
    };
    let local = spec.run_local(&Scheme::ALL).expect("local reference");

    // Generation 1: a journaled daemon ingests the full population, then
    // stops (the journal now holds every accepted record).
    let serve_spec = spec.serve;
    let spawn = |dir: std::path::PathBuf| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            serve_spec.serve_durable(listener, &dir, 0, false).expect("durable daemon serves")
        });
        (addr, handle)
    };
    let (addr, handle) = spawn(dir.clone());
    let first = spec
        .submit(std::slice::from_ref(&addr), &Scheme::ALL, SubmitOptions::default())
        .expect("journaled run");
    assert_outputs_bit_identical(&first.outputs, &local, "journaled gen-1");
    shutdown_all(std::slice::from_ref(&addr), vec![handle]);

    // Generation 2: a fresh daemon on the same journal recovers the
    // session; a pull-only submit (no re-streaming) finalizes
    // bit-identically to the uninterrupted reference.
    let (addr, handle) = spawn(dir.clone());
    let second = spec
        .submit(
            std::slice::from_ref(&addr),
            &Scheme::ALL,
            SubmitOptions { pull_only: true, shutdown: true, ..Default::default() },
        )
        .expect("pull-only run after restart");
    assert_outputs_bit_identical(&second.outputs, &local, "journaled gen-2 (recovered)");
    handle.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_shard_dispatch_matches_local_cells_bit_for_bit() {
    let spec = ServeSpec {
        mech: WireMech::Pm,
        eps: 0.25,
        eps0: 1.0 / 16.0,
        users: 120,
        seed: 3,
        max_d_out: 16,
    };
    let (addrs, handles) = spawn_daemons(&spec, 2);

    let opts = ExpOptions { n: 1_200, trials: 1, seed: 13, max_d_out: 16 };
    let merged = dispatch("table1", &opts, &addrs).expect("wire dispatch");

    let cells = ExperimentId::Table1.cells(&opts);
    let results = run_cells(&opts, &cells);
    let local = ResultSet::build("table1", &opts, None, &cells, &results);

    assert_eq!(merged.experiment, local.experiment);
    assert_eq!(merged.cells.len(), local.cells.len());
    for (a, b) in merged.cells.iter().zip(&local.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.stream, b.stream);
        let abits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
        let bbits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(abits, bbits, "cell {} diverged over the wire", a.index);
    }
    // The rendered tables are identical too.
    assert_eq!(
        ExperimentId::Table1.render(&opts, &merged.result_map()),
        ExperimentId::Table1.render(&opts, &local.result_map()),
    );
    shutdown_all(&addrs, handles);
}
