//! Golden loopback equivalence for the serving stack: a coordinator
//! streaming to real TCP daemons must finalize **bit-identically** to the
//! single-process `Dap::run_schemes` / `SwDap::run_schemes` reference —
//! for PM and SW, ε ∈ {1/4, 1/2, 1}, all schemes, and several worker
//! counts — and the remote shard driver (`dispatch`) must reproduce a
//! local cell run exactly. The same properties are exercised
//! end-to-end (separate processes, byte-diffed stdout) by CI's
//! `serve-smoke` job.

use dap_bench::cell::ExperimentId;
use dap_bench::common::ExpOptions;
use dap_bench::engine::run_cells;
use dap_bench::results::ResultSet;
use dap_bench::serve::{
    dispatch, ServeSpec, SubmitOptions, SubmitSpec, WireMech,
};
use dap_core::net::{Deadlines, RetryPolicy, ServeOptions, WireClient};
use dap_core::secagg::reconstruct;
use dap_core::{DapError, DapOutput, Scheme, SecaggRole, ShareSplitter, SwDap, SwDapConfig, WireError};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use std::net::TcpListener;
use std::thread::JoinHandle;
use std::time::Duration;

fn spawn_daemons(spec: &ServeSpec, count: usize) -> (Vec<String>, Vec<JoinHandle<()>>) {
    (0..count)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr").to_string();
            let spec = *spec;
            let handle =
                std::thread::spawn(move || spec.serve(listener).expect("daemon serves"));
            (addr, handle)
        })
        .unzip()
}

fn shutdown_all(addrs: &[String], handles: Vec<JoinHandle<()>>) {
    for addr in addrs {
        let mut c = WireClient::connect_retry(addr, 50, Duration::from_millis(20))
            .expect("daemon reachable");
        c.shutdown().expect("shutdown accepted");
    }
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

/// Bitwise comparison of output vectors — stricter than `PartialEq`
/// (distinguishes -0.0 from 0.0, compares NaN bit patterns).
fn assert_outputs_bit_identical(a: &[DapOutput], b: &[DapOutput], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: output count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "{context}: mean of output {i}");
        assert_eq!(x.side, y.side, "{context}: side of output {i}");
        assert_eq!(x.gamma.to_bits(), y.gamma.to_bits(), "{context}: gamma of output {i}");
        assert_eq!(
            x.min_variance.to_bits(),
            y.min_variance.to_bits(),
            "{context}: min_variance of output {i}"
        );
        assert_eq!(x.groups.len(), y.groups.len(), "{context}: groups of output {i}");
        for (g, (gx, gy)) in x.groups.iter().zip(&y.groups).enumerate() {
            assert_eq!(gx.n_reports, gy.n_reports, "{context}: output {i} group {g}");
            for (fx, fy) in [
                (gx.eps_t, gy.eps_t),
                (gx.mean_t, gy.mean_t),
                (gx.m_hat, gy.m_hat),
                (gx.n_hat, gy.n_hat),
                (gx.weight, gy.weight),
            ] {
                assert_eq!(fx.to_bits(), fy.to_bits(), "{context}: output {i} group {g}");
            }
        }
    }
}

#[test]
fn coordinator_over_tcp_matches_in_process_run_bit_for_bit() {
    for (mech, dataset) in [(WireMech::Pm, Dataset::Taxi), (WireMech::Sw, Dataset::Beta25)] {
        for (e, eps) in [0.25, 0.5, 1.0].into_iter().enumerate() {
            let spec = SubmitSpec {
                serve: ServeSpec {
                    mech,
                    eps,
                    eps0: 1.0 / 16.0,
                    users: 900,
                    seed: 40 + e as u64,
                    max_d_out: 24,
                    secagg: None,
                },
                dataset,
                gamma: 0.2,
                data_seed: 5,
            };
            let local = spec.run_local(&Scheme::ALL).expect("local reference");

            // Several worker counts, including a single daemon and more
            // daemons than some groups have peers.
            let worker_counts: &[usize] = if eps == 0.5 { &[2] } else { &[1, 3] };
            for &workers in worker_counts {
                let (addrs, handles) = spawn_daemons(&spec.serve, workers);
                let outcome = spec
                    .submit(&addrs, &Scheme::ALL, SubmitOptions::default())
                    .expect("served run");
                assert_outputs_bit_identical(
                    &outcome.outputs,
                    &local,
                    &format!("{mech:?} eps={eps} workers={workers}"),
                );
                shutdown_all(&addrs, handles);
            }
        }
    }
}

#[test]
fn sw_submit_matches_the_swdap_driver_bitwise() {
    // `run_local` drives `Dap<SquareWave>` in band mode; `SwDap` is the
    // public driver for the same deployment. Pin the serving stack to the
    // *public* reference too, not just to the internal one.
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Sw,
            eps: 0.5,
            eps0: 1.0 / 16.0,
            users: 900,
            seed: 77,
            max_d_out: 24,
            secagg: None,
        },
        dataset: Dataset::Beta25,
        gamma: 0.2,
        data_seed: 5,
    };
    let local = spec.run_local(&Scheme::ALL).expect("local reference");

    let m = (900.0f64 * 0.2).round() as usize;
    let honest = Dataset::Beta25.generate_unit(900 - m, &mut seeded(5));
    let sw = SwDap::new(SwDapConfig {
        max_d_out: 24,
        ..SwDapConfig::paper_default(0.5, Scheme::Emf)
    })
    .expect("valid config");
    let attack = dap_attack::UniformAttack::new(
        dap_attack::Anchor::AboveInputMax(0.5),
        dap_attack::Anchor::AboveInputMax(1.0),
    );
    let reference = sw
        .run_schemes_on(&honest, m, &attack, &Scheme::ALL, &mut seeded(77))
        .expect("SwDap reference");
    for (a, b) in local.iter().zip(&reference) {
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.gamma.to_bits(), b.gamma.to_bits());
        assert_eq!(a.side, b.side);
    }
}

#[test]
fn over_quota_probe_returns_the_typed_wire_rejection() {
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 300,
            seed: 9,
            max_d_out: 16,
            secagg: None,
        },
        dataset: Dataset::Taxi,
        gamma: 0.1,
        data_seed: 2,
    };
    let (addrs, handles) = spawn_daemons(&spec.serve, 2);
    let outcome = spec
        .submit(
            &addrs,
            &[Scheme::EmfStar],
            SubmitOptions { probe_rejection: true, shutdown: true, ..Default::default() },
        )
        .expect("served run with probe");
    match outcome.rejection {
        Some(WireError::Rejected(DapError::QuotaExceeded { group: 0, attempted: 1, .. })) => {}
        other => panic!("expected typed over-quota rejection, got {other:?}"),
    }
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

#[test]
fn mismatched_deployments_fail_the_handshake() {
    let daemon_spec = ServeSpec {
        mech: WireMech::Pm,
        eps: 0.25,
        eps0: 1.0 / 16.0,
        users: 300,
        seed: 9,
        max_d_out: 16,
        secagg: None,
    };
    let (addrs, handles) = spawn_daemons(&daemon_spec, 1);
    // The coordinator believes the deployment has one more user — its plan
    // (and digest) differ, and the handshake must say so before any report
    // flows.
    let spec = SubmitSpec {
        serve: ServeSpec { users: 301, ..daemon_spec },
        dataset: Dataset::Taxi,
        gamma: 0.1,
        data_seed: 2,
    };
    let err = spec
        .submit(&addrs, &[Scheme::Emf], SubmitOptions::default())
        .expect_err("digest mismatch");
    assert!(err.contains("digest mismatch"), "unhelpful error: {err}");
    shutdown_all(&addrs, handles);
}

#[test]
fn journaled_daemons_resume_across_restart_and_finalize_identically() {
    let dir = std::env::temp_dir()
        .join(format!("dap-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 400,
            seed: 11,
            max_d_out: 16,
            secagg: None,
        },
        dataset: Dataset::Taxi,
        gamma: 0.2,
        data_seed: 3,
    };
    let local = spec.run_local(&Scheme::ALL).expect("local reference");

    // Generation 1: a journaled daemon ingests the full population, then
    // stops (the journal now holds every accepted record).
    let serve_spec = spec.serve;
    let spawn = |dir: std::path::PathBuf| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            serve_spec.serve_durable(listener, &dir, 0, false).expect("durable daemon serves")
        });
        (addr, handle)
    };
    let (addr, handle) = spawn(dir.clone());
    let first = spec
        .submit(std::slice::from_ref(&addr), &Scheme::ALL, SubmitOptions::default())
        .expect("journaled run");
    assert_outputs_bit_identical(&first.outputs, &local, "journaled gen-1");
    shutdown_all(std::slice::from_ref(&addr), vec![handle]);

    // Generation 2: a fresh daemon on the same journal recovers the
    // session; a pull-only submit (no re-streaming) finalizes
    // bit-identically to the uninterrupted reference.
    let (addr, handle) = spawn(dir.clone());
    let second = spec
        .submit(
            std::slice::from_ref(&addr),
            &Scheme::ALL,
            SubmitOptions { pull_only: true, shutdown: true, ..Default::default() },
        )
        .expect("pull-only run after restart");
    assert_outputs_bit_identical(&second.outputs, &local, "journaled gen-2 (recovered)");
    handle.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_shard_dispatch_matches_local_cells_bit_for_bit() {
    let spec = ServeSpec {
        mech: WireMech::Pm,
        eps: 0.25,
        eps0: 1.0 / 16.0,
        users: 120,
        seed: 3,
        max_d_out: 16,
        secagg: None,
    };
    let (addrs, handles) = spawn_daemons(&spec, 2);

    let opts = ExpOptions { n: 1_200, trials: 1, seed: 13, max_d_out: 16 };
    let merged = dispatch("table1", &opts, &addrs).expect("wire dispatch");

    let cells = ExperimentId::Table1.cells(&opts);
    let results = run_cells(&opts, &cells);
    let local = ResultSet::build("table1", &opts, None, &cells, &results);

    assert_eq!(merged.experiment, local.experiment);
    assert_eq!(merged.cells.len(), local.cells.len());
    for (a, b) in merged.cells.iter().zip(&local.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.stream, b.stream);
        let abits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
        let bbits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(abits, bbits, "cell {} diverged over the wire", a.index);
    }
    // The rendered tables are identical too.
    assert_eq!(
        ExperimentId::Table1.render(&opts, &merged.result_map()),
        ExperimentId::Table1.render(&opts, &local.result_map()),
    );
    shutdown_all(&addrs, handles);
}

// ---------------------------------------------------------------------------
// Secret-shared multi-aggregator tier (secagg)
// ---------------------------------------------------------------------------

fn masked_spec() -> SubmitSpec {
    SubmitSpec {
        serve: ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 400,
            seed: 21,
            max_d_out: 16,
            secagg: None,
        },
        dataset: Dataset::Taxi,
        gamma: 0.2,
        data_seed: 7,
    }
}

/// Spawns the share-server fleet: daemon `i` serves share `i` of `k`,
/// optionally behind an auth allowlist.
fn spawn_masked_daemons(
    spec: &ServeSpec,
    k: usize,
    auth_tokens: Vec<u64>,
) -> (Vec<String>, Vec<JoinHandle<()>>) {
    (0..k)
        .map(|i| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr").to_string();
            let spec = ServeSpec {
                secagg: Some(SecaggRole { k, index: i }),
                ..*spec
            };
            let options =
                ServeOptions { idle_timeout: None, auth_tokens: auth_tokens.clone(), ..ServeOptions::default() };
            let handle = std::thread::spawn(move || {
                spec.serve_with(listener, options).expect("masked daemon serves")
            });
            (addr, handle)
        })
        .unzip()
}

#[test]
fn secagg_submit_matches_local_bit_for_bit() {
    // The masked tier changes trust, not output: a k-daemon secret-shared
    // deployment must finalize bit-identically to the plaintext local
    // reference, for several k and both mechanisms. Along the way, the
    // probe must observe the typed plaintext-mode rejection and every
    // share server must report masked counters.
    for (mech, dataset, ks) in [
        (WireMech::Pm, Dataset::Taxi, &[2usize, 3][..]),
        (WireMech::Sw, Dataset::Beta25, &[2usize][..]),
    ] {
        let spec = SubmitSpec {
            serve: ServeSpec { mech, ..masked_spec().serve },
            dataset,
            ..masked_spec()
        };
        let local = spec.run_local(&Scheme::ALL).expect("local reference");
        for &k in ks {
            let (addrs, handles) = spawn_masked_daemons(&spec.serve, k, Vec::new());
            let outcome = spec
                .submit(
                    &addrs,
                    &Scheme::ALL,
                    SubmitOptions {
                        secagg: Some(k),
                        probe_rejection: true,
                        shutdown: true,
                        ..Default::default()
                    },
                )
                .expect("masked run");
            assert_outputs_bit_identical(
                &outcome.outputs,
                &local,
                &format!("{mech:?} secagg k={k}"),
            );
            match outcome.rejection {
                Some(WireError::Rejected(DapError::ModeMismatch { masked: true })) => {}
                other => panic!("expected the typed plaintext-mode rejection, got {other:?}"),
            }
            for summary in &outcome.daemons {
                assert!(summary.dead.is_none(), "no daemon should die: {}", summary.render());
                let counters = summary.counters.expect("counters captured");
                assert!(counters.masked, "share server must report masked mode");
                assert!(counters.shares > 0, "share server accepted no share batches");
            }
            for handle in handles {
                handle.join().expect("daemon thread");
            }
        }
    }
}

#[test]
fn secagg_dead_share_server_is_rebuilt_by_seed_reveal() {
    // Daemon 1 of 3 is never reachable. There is no failover target for a
    // share (share `j` only cancels against the other masks), so the
    // dealer re-derives the dead daemon's full intended share from the
    // mask seed and the run still finalizes bit-identically.
    let spec = masked_spec();
    let local = spec.run_local(&Scheme::ALL).expect("local reference");

    let (mut addrs, handles) = spawn_masked_daemons(&spec.serve, 3, Vec::new());
    let dead_addr = {
        // A bound-then-dropped listener: connects are refused immediately.
        let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        l.local_addr().expect("local addr").to_string()
    };
    // The fleet was spawned with roles 0..3; silence daemon 1 by pointing
    // the dealer at the dead port instead.
    let mut live1 = WireClient::connect_retry(&addrs[1], 50, Duration::from_millis(20))
        .expect("daemon reachable");
    live1.shutdown().expect("shutdown accepted");
    addrs[1] = dead_addr;

    let outcome = spec
        .submit(
            &addrs,
            &Scheme::ALL,
            SubmitOptions {
                secagg: Some(3),
                shutdown: true,
                retry: RetryPolicy {
                    attempts: 2,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(10),
                    ..RetryPolicy::default()
                },
                deadlines: Deadlines::all(Duration::from_millis(500)),
                ..Default::default()
            },
        )
        .expect("masked run with a dead share server");
    assert_outputs_bit_identical(&outcome.outputs, &local, "secagg k=3 with daemon 1 dead");
    assert!(outcome.daemons[1].dead.is_some(), "daemon 1 must be declared dead");
    assert!(
        outcome.daemons[1].rebuilt_locally,
        "the dead daemon's share must be re-derived from the seed"
    );
    assert!(outcome.daemons[0].dead.is_none());
    assert!(outcome.daemons[2].dead.is_none());
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

#[test]
fn secagg_topology_mismatch_fails_the_handshake() {
    // The dealer addresses daemon j with share j. If the fleet is wired up
    // in the wrong order the handshake must say so — before any share
    // flows — because share j applied at index i never cancels.
    let spec = masked_spec();
    let (mut addrs, handles) = spawn_masked_daemons(&spec.serve, 2, Vec::new());
    addrs.swap(0, 1);
    let err = spec
        .submit(
            &addrs,
            &Scheme::ALL,
            SubmitOptions { secagg: Some(2), ..Default::default() },
        )
        .expect_err("swapped share servers must fail the handshake");
    assert!(err.contains("secagg role"), "unhelpful error: {err}");
    addrs.swap(0, 1);
    shutdown_all(&addrs, handles);
}

#[test]
fn auth_allowlist_gates_every_frame() {
    const TOKEN: u64 = 0xfeed_beef_cafe;
    let spec = masked_spec();
    let digest = spec.serve.state_digest().expect("digest");

    // One plaintext daemon behind an allowlist.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_spec = spec.serve;
    let handle = std::thread::spawn(move || {
        serve_spec
            .serve_with(
                listener,
                ServeOptions { idle_timeout: None, auth_tokens: vec![TOKEN], ..ServeOptions::default() },
            )
            .expect("daemon serves")
    });

    // No token: every frame — even the status liveness probe — is refused
    // with the typed error, and nothing mutates.
    let mut c = WireClient::connect_retry(&addr, 50, Duration::from_millis(20))
        .expect("daemon reachable");
    assert!(matches!(c.hello(digest), Err(WireError::Unauthorized { .. })));
    assert!(matches!(c.status(), Err(WireError::Unauthorized { .. })));
    assert!(matches!(c.ingest(0, 0.0), Err(WireError::Unauthorized { .. })));
    // Wrong token: same refusal.
    c.set_auth(Some(TOKEN ^ 1));
    assert!(matches!(c.hello(digest), Err(WireError::Unauthorized { .. })));
    // The right token authenticates the connection for all later frames.
    c.set_auth(Some(TOKEN));
    c.hello(digest).expect("authenticated handshake");
    c.ingest(0, 0.25).expect("authenticated ingest");
    drop(c);

    // An authenticated coordinator run over the same daemon works end to
    // end (pull-only merges the one report we just streamed, so use a
    // fresh reference: just prove the wire path, then shut down).
    let mut c = WireClient::connect_retry(&addr, 50, Duration::from_millis(20))
        .expect("daemon reachable");
    c.set_auth(Some(TOKEN));
    c.hello(digest).expect("authenticated handshake");
    c.shutdown().expect("authenticated shutdown");
    handle.join().expect("daemon thread");

    // And the full submit path presents the token on every hello: a
    // fresh authenticated fleet finalizes bit-identically.
    let local = spec.run_local(&Scheme::ALL).expect("local reference");
    let (addrs, handles) = spawn_masked_daemons(&spec.serve, 2, vec![TOKEN]);
    let outcome = spec
        .submit(
            &addrs,
            &Scheme::ALL,
            SubmitOptions {
                secagg: Some(2),
                auth_token: Some(TOKEN),
                shutdown: true,
                ..Default::default()
            },
        )
        .expect("authenticated masked run");
    assert_outputs_bit_identical(&outcome.outputs, &local, "authenticated secagg");
    for handle in handles {
        handle.join().expect("daemon thread");
    }
}

#[test]
fn masked_journal_holds_no_plaintext_and_recovers_across_restart() {
    // The privacy claim, asserted against the bytes on disk: after a
    // masked run, a share server's write-ahead journal contains only
    // share batches — no plaintext report frame of any kind — and a
    // single daemon's masked part does not reveal the histogram. A
    // restarted daemon recovers its masked state from that journal.
    let base = std::env::temp_dir().join(format!("dap-secagg-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let spec = masked_spec();
    let local = spec.run_local(&Scheme::ALL).expect("local reference");
    const K: usize = 2;
    const SEED: u64 = 0xda5e_ed11;

    let spawn_durable = |i: usize| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let spec = ServeSpec { secagg: Some(SecaggRole { k: K, index: i }), ..spec.serve };
        let dir = base.join(format!("daemon-{i}"));
        let handle = std::thread::spawn(move || {
            spec.serve_durable(listener, &dir, 0, false).expect("durable masked daemon")
        });
        (addr, handle)
    };
    let (addrs, handles): (Vec<String>, Vec<JoinHandle<()>>) = (0..K).map(spawn_durable).unzip();
    let outcome = spec
        .submit(
            &addrs,
            &Scheme::ALL,
            SubmitOptions {
                secagg: Some(K),
                secagg_seed: SEED,
                shutdown: true,
                ..Default::default()
            },
        )
        .expect("journaled masked run");
    assert_outputs_bit_identical(&outcome.outputs, &local, "journaled secagg");
    for summary in &outcome.daemons {
        let counters = summary.counters.expect("counters captured");
        assert!(counters.journal_records > 0, "nothing was journaled");
    }
    for handle in handles {
        handle.join().expect("daemon thread");
    }

    // The bytes on disk: share batches only, never a plaintext report
    // frame (`ingest`, `ingest-batch`, `seq-batch`).
    for i in 0..K {
        let journal = std::fs::read(base.join(format!("daemon-{i}")).join("journal.log"))
            .expect("journal exists");
        let text = String::from_utf8_lossy(&journal);
        assert!(text.contains("share-batch"), "daemon {i} journaled no share batches");
        assert!(!text.contains("ingest"), "daemon {i} journaled a plaintext report frame");
        assert!(!text.contains("seq-batch"), "daemon {i} journaled a plaintext seq batch");
    }

    // Generation 2: fresh daemons on the same journals. Their recovered
    // masked parts must still reconstruct the exact integer histogram —
    // and any single part alone must differ from it (the mask hides it).
    let commit = ShareSplitter::new(K, SEED).expect("splitter").commitment().digest();
    let digest = spec.serve.state_digest().expect("digest");
    let mut parts = Vec::with_capacity(K);
    for i in 0..K {
        let (addr, handle) = spawn_durable(i);
        let mut c = WireClient::connect_retry(&addr, 50, Duration::from_millis(20))
            .expect("daemon reachable");
        let (_, _, secagg) = c.hello_masked(digest, None, commit).expect("masked handshake");
        assert_eq!(secagg, Some((K, i)), "recovered daemon advertises its role");
        parts.push(c.pull_masked().expect("recovered masked part"));
        c.shutdown().expect("shutdown");
        handle.join().expect("daemon thread");
    }
    let totals = reconstruct(&parts).expect("reconstruct from recovered parts");
    let expected: Vec<u64> =
        local[0].groups.iter().map(|g| g.n_reports as u64).collect();
    let got: Vec<u64> = totals.iter().map(|c| c.iter().sum()).collect();
    assert_eq!(got, expected, "recovered shares lost or doubled reports");
    for (i, part) in parts.iter().enumerate() {
        let masked: Vec<Vec<u64>> = part.groups.iter().map(|g| g.counts.clone()).collect();
        assert_ne!(
            masked, totals,
            "daemon {i}'s lone part equals the plaintext histogram — the mask hides nothing"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
