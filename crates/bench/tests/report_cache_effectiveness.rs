//! Golden guarantees of the report cache in the engine: a warm re-run is
//! **bit-identical** to the cold run that populated the cache (values and
//! rendered stdout), the warm run actually hits (nonzero hit delta — the
//! cache is load-bearing, not decorative), and a sharded subset executed
//! against a warm cache still reproduces the full run's bits. Together
//! these pin the cache's determinism contract: entry values are pure
//! functions of the key, so warmth can change speed but never bytes.

use dap_bench::cell::ExperimentId;
use dap_bench::common::ExpOptions;
use dap_bench::engine::{cache_stats, run_cells, run_cells_subset, CellResult, ResultMap};
use dap_bench::report_cache::ReportCache;
use dap_datasets::PopulationCache;
use std::sync::Mutex;

/// The process-wide caches are shared by every test thread; serialize the
/// tests so hit/miss deltas are attributable.
static CACHES: Mutex<()> = Mutex::new(());

fn opts() -> ExpOptions {
    ExpOptions { n: 1_000, trials: 2, seed: 7, max_d_out: 16 }
}

fn value_bits(results: &[CellResult]) -> Vec<(usize, Vec<u64>)> {
    results
        .iter()
        .map(|r| (r.index, r.values.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

#[test]
fn warm_rerun_is_bit_identical_and_actually_hits() {
    let _guard = CACHES.lock().unwrap();
    let opts = opts();
    // fig7 is the perf-tracked experiment: protocol cells (grouped
    // prepared-report entries) and defense cells (flat batches) both ride
    // the report cache.
    let experiment = ExperimentId::Fig7;
    let cells = experiment.cells(&opts);

    PopulationCache::global().clear();
    ReportCache::global().clear();
    let before_cold = cache_stats().1;
    let cold = run_cells(&opts, &cells);
    let after_cold = cache_stats().1;
    assert!(
        after_cold.misses > before_cold.misses,
        "the cold run must populate the report cache"
    );

    let before_warm = after_cold;
    let warm = run_cells(&opts, &cells);
    let after_warm = cache_stats().1;
    assert!(
        after_warm.hits > before_warm.hits,
        "the warm run must be served from the report cache"
    );
    assert_eq!(
        after_warm.misses, before_warm.misses,
        "a warm re-run of identical coordinates must not re-perturb"
    );

    assert_eq!(
        value_bits(&cold),
        value_bits(&warm),
        "warm values diverged from the cold run at the bit level"
    );
    let cold_render = experiment.render(&opts, &ResultMap::from_results(&cold));
    let warm_render = experiment.render(&opts, &ResultMap::from_results(&warm));
    assert_eq!(cold_render, warm_render, "rendered stdout diverged under a warm cache");
}

#[test]
fn warm_shard_subset_matches_the_full_runs_bits() {
    let _guard = CACHES.lock().unwrap();
    let opts = opts();
    let experiment = ExperimentId::Fig7;
    let cells = experiment.cells(&opts);

    PopulationCache::global().clear();
    ReportCache::global().clear();
    let full = run_cells(&opts, &cells);
    let full_bits = value_bits(&full);

    // Shard 1/2 against the cache the full run just warmed: entries are
    // keyed by coordinate alone, so serving a subset from warm memory must
    // reproduce the corresponding full-run cells bit for bit.
    let before = cache_stats().1;
    let indices: Vec<usize> = (0..cells.len()).filter(|i| i % 2 == 1).collect();
    let shard = run_cells_subset(&opts, &cells, &indices);
    let after = cache_stats().1;
    assert!(after.hits > before.hits, "the warm shard must hit the report cache");

    let shard_bits = value_bits(&shard);
    let expected: Vec<(usize, Vec<u64>)> =
        full_bits.into_iter().filter(|(i, _)| i % 2 == 1).collect();
    assert_eq!(shard_bits, expected, "warm shard diverged from the full run");

    // And a *cold* shard (caches dropped) still lands on the same bits:
    // cache warmth is a pure speed effect in both directions.
    PopulationCache::global().clear();
    ReportCache::global().clear();
    let cold_shard = run_cells_subset(&opts, &cells, &indices);
    assert_eq!(
        value_bits(&cold_shard),
        shard_bits,
        "cold shard diverged from the warm shard"
    );
}
