//! Smoke coverage over the declarative cell enumeration: pinned cell
//! counts, finite and sane cell results, and renderers that consume every
//! cell — for all eleven experiments (fig4/fig5/fig10/table1 landed with
//! the engine; fig6–fig9 and the ablations here).

use dap_bench::cell::{CellKind, ExperimentId};
use dap_bench::common::ExpOptions;
use dap_bench::engine::{run_cells, ResultMap};
use dap_datasets::PopulationCache;
use std::collections::HashSet;

fn tiny() -> ExpOptions {
    ExpOptions { n: 1_200, trials: 1, seed: 9, max_d_out: 16 }
}

/// Even smaller populations for the protocol-heavy enumerations (fig6 runs
/// 80 full DAP executions).
fn minute() -> ExpOptions {
    ExpOptions { n: 600, trials: 1, seed: 9, max_d_out: 16 }
}

#[test]
fn fig4_cells_produce_normalized_histograms() {
    let opts = tiny();
    let cells = ExperimentId::Fig4.cells(&opts);
    assert_eq!(cells.len(), 4, "one cell per dataset");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 21, "mean + 20 buckets");
        let (mean, freqs) = (r.values[0], &r.values[1..]);
        assert!((-1.0..=1.0).contains(&mean), "mean {mean} outside the signed domain");
        let total: f64 = freqs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "frequencies sum to {total}");
        assert!(freqs.iter().all(|f| f.is_finite() && *f >= 0.0));
    }
    let rendered = ExperimentId::Fig4.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("== Fig. 4"), "render lost its header:\n{rendered}");
}

#[test]
fn fig5_cells_estimate_gamma_within_bounds() {
    let opts = tiny();
    let cells = ExperimentId::Fig5.cells(&opts);
    // Panels a, b: 2 γ × 4 ranges × 6 ε; panels c, d: 4 datasets × 6 ε each.
    assert_eq!(cells.len(), 2 * 4 * 6 + 4 * 6 + 4 * 6);
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 1);
        let v = r.values[0];
        // γ̂ and |γ̂ − γ| both live in [0, 1].
        assert!((0.0..=1.0).contains(&v), "gamma statistic {v} out of range");
    }
    let rendered = ExperimentId::Fig5.render(&opts, &ResultMap::from_results(&results));
    for header in ["Fig. 5(a)", "Fig. 5(b)", "Fig. 5(c)", "Fig. 5(d)"] {
        assert!(rendered.contains(header), "missing {header}");
    }
}

#[test]
fn fig10_cells_yield_finite_mses_for_all_schemes() {
    let opts = tiny();
    let cells = ExperimentId::Fig10.cells(&opts);
    assert_eq!(cells.len(), 4 * 6, "datasets × evasive fractions");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 3, "one MSE per DAP scheme");
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "MSE {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig10.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("Eq.20 bound"), "bound row must render");
}

#[test]
fn table1_cells_yield_positive_variances() {
    let opts = tiny();
    let cells = ExperimentId::Table1.cells(&opts);
    assert_eq!(cells.len(), 4 * 5, "ranges × budgets");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 2, "[Var|L, Var|R]");
        for v in &r.values {
            assert!(v.is_finite() && *v > 0.0, "variance {v} not positive");
        }
    }
    let rendered = ExperimentId::Table1.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("== Table I"), "render lost its header");
}

#[test]
fn fig6_cells_yield_finite_mses_for_schemes_and_defenses() {
    let opts = minute();
    let cells = ExperimentId::Fig6.cells(&opts);
    assert_eq!(cells.len(), 4 * 4 * 5, "datasets × poison ranges × budgets");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 5, "3 schemes + Ostrich + Trimming");
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "MSE {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig6.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("== Fig. 6"), "render lost its header:\n{rendered}");
    assert!(rendered.contains("Poi[C/2,C]"), "panel captions must render");
}

#[test]
fn fig7_cells_yield_finite_mses_across_gamma_and_shape_axes() {
    let opts = tiny();
    let cells = ExperimentId::Fig7.cells(&opts);
    assert_eq!(cells.len(), 2 * 4 + 2 * 4, "γ panels + shape panels");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 5, "3 schemes + Ostrich + Trimming");
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "MSE {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig7.render(&opts, &ResultMap::from_results(&results));
    for header in ["Fig. 7(a)", "Fig. 7(b)", "Fig. 7(c)", "Fig. 7(d)"] {
        assert!(rendered.contains(header), "missing {header}");
    }
}

#[test]
fn fig8_cells_cover_all_four_sw_panels() {
    let opts = tiny();
    let cells = ExperimentId::Fig8.cells(&opts);
    // (a) 6 budgets; (b) 2 datasets × 6; (c)(d) 2 datasets × (5 scheme
    // columns + 5 defense columns).
    assert_eq!(cells.len(), 6 + 2 * 6 + 2 * (5 + 5));
    let results = run_cells(&opts, &cells);
    for (cell, r) in cells.iter().zip(&results) {
        let expected = match &cell.kind {
            CellKind::SwWasserstein { .. } => 4,
            CellKind::SwGammaErr { .. } => 1,
            CellKind::SwMse { .. } => 3,
            CellKind::SwDefense { .. } => 2,
            other => panic!("unexpected fig8 cell kind {other:?}"),
        };
        assert_eq!(r.values.len(), expected);
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "statistic {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig8.render(&opts, &ResultMap::from_results(&results));
    for header in ["Fig. 8(a)", "Fig. 8(b)", "Fig. 8(c)", "Fig. 8(d)"] {
        assert!(rendered.contains(header), "missing {header}");
    }
}

#[test]
fn fig9_cells_cover_kmeans_ima_and_categorical_panels() {
    let opts = minute();
    let cells = ExperimentId::Fig9.cells(&opts);
    // (a) 5 budgets × (1 scheme row-set + 5 β k-means rows); (b) 3 IMA
    // targets × (EMF + 5 β); (c)(d) per poison set: 3 schemes × 5 budgets
    // + 5 Ostrich columns.
    assert_eq!(cells.len(), 5 + 5 * 5 + 3 * (1 + 5) + 2 * (3 * 5 + 5));
    let results = run_cells(&opts, &cells);
    for r in &results {
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "MSE {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig9.render(&opts, &ResultMap::from_results(&results));
    for header in ["Fig. 9(a)", "Fig. 9(b)", "Fig. 9(c)", "Fig. 9(d)"] {
        assert!(rendered.contains(header), "missing {header}");
    }
}

#[test]
fn ablation_cells_have_pinned_counts_and_sane_values() {
    let opts = minute();
    for (id, expected, header) in [
        (ExperimentId::AblationWeights, 3 * 4, "weighting rule"),
        (ExperimentId::AblationSplit, 2 * 4, "budget split"),
        (ExperimentId::AblationMechanism, 2 * 4 + 2 * 4, "underlying mechanism"),
    ] {
        let cells = id.cells(&opts);
        assert_eq!(cells.len(), expected, "{}", id.name());
        let results = run_cells(&opts, &cells);
        for r in &results {
            assert_eq!(r.values.len(), 1, "{}: single-estimator cells", id.name());
            assert!(
                r.values[0].is_finite() && r.values[0] >= 0.0,
                "{}: MSE {} not finite/non-negative",
                id.name(),
                r.values[0]
            );
        }
        let rendered = id.render(&opts, &ResultMap::from_results(&results));
        assert!(rendered.contains(header), "{}: missing '{header}':\n{rendered}", id.name());
    }
}

#[test]
fn cell_streams_are_unique_across_experiments() {
    let opts = tiny();
    let mut streams = HashSet::new();
    let mut total = 0usize;
    for e in ExperimentId::ALL {
        for cell in e.cells(&opts) {
            assert!(streams.insert(cell.stream()), "stream collision at {cell:?}");
            total += 1;
        }
    }
    assert!(total > 300, "the full enumeration shrank suspiciously ({total} cells)");
}

#[test]
fn population_cache_reuses_populations_across_cells() {
    // 24 fig10 cells at one trial consume only 4 distinct populations
    // (one per dataset at γ = 0.25) — the cache must serve the other 20+
    // requests from memory. A distinct seed keeps this run's keys disjoint
    // from other tests'; concurrent tests can only *increase* the hit
    // delta, never decrease it.
    let opts = ExpOptions { n: 900, trials: 1, seed: 20_260_727, max_d_out: 16 };
    let cells = ExperimentId::Fig10.cells(&opts);
    let before = PopulationCache::global().stats();
    let _ = run_cells(&opts, &cells);
    let after = PopulationCache::global().stats();
    assert!(
        after.hits - before.hits >= 20,
        "expected ≥20 cache hits, got {} (misses {} -> {})",
        after.hits - before.hits,
        before.misses,
        after.misses
    );
}
