//! Smoke coverage over the declarative cell enumeration for the drivers
//! that previously had none (fig4, fig5, fig10, table1): pinned cell
//! counts, finite and sane cell results, and renderers that consume every
//! cell.

use dap_bench::cell::ExperimentId;
use dap_bench::common::ExpOptions;
use dap_bench::engine::{run_cells, ResultMap};
use dap_datasets::PopulationCache;
use std::collections::HashSet;

fn tiny() -> ExpOptions {
    ExpOptions { n: 1_200, trials: 1, seed: 9, max_d_out: 16 }
}

#[test]
fn fig4_cells_produce_normalized_histograms() {
    let opts = tiny();
    let cells = ExperimentId::Fig4.cells(&opts);
    assert_eq!(cells.len(), 4, "one cell per dataset");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 21, "mean + 20 buckets");
        let (mean, freqs) = (r.values[0], &r.values[1..]);
        assert!((-1.0..=1.0).contains(&mean), "mean {mean} outside the signed domain");
        let total: f64 = freqs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "frequencies sum to {total}");
        assert!(freqs.iter().all(|f| f.is_finite() && *f >= 0.0));
    }
    let rendered = ExperimentId::Fig4.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("== Fig. 4"), "render lost its header:\n{rendered}");
}

#[test]
fn fig5_cells_estimate_gamma_within_bounds() {
    let opts = tiny();
    let cells = ExperimentId::Fig5.cells(&opts);
    // Panels a, b: 2 γ × 4 ranges × 6 ε; panels c, d: 4 datasets × 6 ε each.
    assert_eq!(cells.len(), 2 * 4 * 6 + 4 * 6 + 4 * 6);
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 1);
        let v = r.values[0];
        // γ̂ and |γ̂ − γ| both live in [0, 1].
        assert!((0.0..=1.0).contains(&v), "gamma statistic {v} out of range");
    }
    let rendered = ExperimentId::Fig5.render(&opts, &ResultMap::from_results(&results));
    for header in ["Fig. 5(a)", "Fig. 5(b)", "Fig. 5(c)", "Fig. 5(d)"] {
        assert!(rendered.contains(header), "missing {header}");
    }
}

#[test]
fn fig10_cells_yield_finite_mses_for_all_schemes() {
    let opts = tiny();
    let cells = ExperimentId::Fig10.cells(&opts);
    assert_eq!(cells.len(), 4 * 6, "datasets × evasive fractions");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 3, "one MSE per DAP scheme");
        for v in &r.values {
            assert!(v.is_finite() && *v >= 0.0, "MSE {v} not finite/non-negative");
        }
    }
    let rendered = ExperimentId::Fig10.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("Eq.20 bound"), "bound row must render");
}

#[test]
fn table1_cells_yield_positive_variances() {
    let opts = tiny();
    let cells = ExperimentId::Table1.cells(&opts);
    assert_eq!(cells.len(), 4 * 5, "ranges × budgets");
    let results = run_cells(&opts, &cells);
    for r in &results {
        assert_eq!(r.values.len(), 2, "[Var|L, Var|R]");
        for v in &r.values {
            assert!(v.is_finite() && *v > 0.0, "variance {v} not positive");
        }
    }
    let rendered = ExperimentId::Table1.render(&opts, &ResultMap::from_results(&results));
    assert!(rendered.contains("== Table I"), "render lost its header");
}

#[test]
fn cell_streams_are_unique_across_experiments() {
    let opts = tiny();
    let mut streams = HashSet::new();
    let mut total = 0usize;
    for e in ExperimentId::ALL {
        for cell in e.cells(&opts) {
            assert!(streams.insert(cell.stream()), "stream collision at {cell:?}");
            total += 1;
        }
    }
    assert!(total > 300, "the full enumeration shrank suspiciously ({total} cells)");
}

#[test]
fn population_cache_reuses_populations_across_cells() {
    // 24 fig10 cells at one trial consume only 4 distinct populations
    // (one per dataset at γ = 0.25) — the cache must serve the other 20+
    // requests from memory. A distinct seed keeps this run's keys disjoint
    // from other tests'; concurrent tests can only *increase* the hit
    // delta, never decrease it.
    let opts = ExpOptions { n: 900, trials: 1, seed: 20_260_727, max_d_out: 16 };
    let cells = ExperimentId::Fig10.cells(&opts);
    let before = PopulationCache::global().stats();
    let _ = run_cells(&opts, &cells);
    let after = PopulationCache::global().stats();
    assert!(
        after.hits - before.hits >= 20,
        "expected ≥20 cache hits, got {} (misses {} -> {})",
        after.hits - before.hits,
        before.misses,
        after.misses
    );
}
