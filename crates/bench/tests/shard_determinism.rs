//! Golden guarantees of the shard layer: `--shard 0/2` + `--shard 1/2` +
//! `merge` equals the unsharded run **bit for bit** (f64 bit patterns and
//! rendered stdout), including an uneven 3-way split; shard JSONs
//! round-trip exactly; merge rejects incompatible inputs.

use dap_bench::cell::ExperimentId;
use dap_bench::common::ExpOptions;
use dap_bench::engine::{run_cells, run_cells_subset, CellResult};
use dap_bench::results::{ResultSet, ShardInfo};

fn opts() -> ExpOptions {
    ExpOptions { n: 1_000, trials: 2, seed: 7, max_d_out: 16 }
}

fn value_bits(results: &[CellResult]) -> Vec<(usize, Vec<u64>)> {
    results
        .iter()
        .map(|r| (r.index, r.values.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// Runs `experiment` unsharded and as an `n_shards`-way partition through
/// the full JSON round trip, and asserts bit-identical values *and*
/// byte-identical rendered tables.
fn assert_shards_match_full(experiment: ExperimentId, n_shards: usize) {
    let opts = opts();
    let cells = experiment.cells(&opts);
    let full = run_cells(&opts, &cells);
    let full_set = ResultSet::build(experiment.name(), &opts, None, &cells, &full);
    full_set.verify_against(&cells).expect("full set verifies");

    let mut shard_sets = Vec::new();
    for s in 0..n_shards {
        let indices: Vec<usize> = (0..cells.len()).filter(|i| i % n_shards == s).collect();
        let results = run_cells_subset(&opts, &cells, &indices);
        let set = ResultSet::build(
            experiment.name(),
            &opts,
            Some(ShardInfo { index: s, count: n_shards, cells_total: cells.len() }),
            &cells,
            &results,
        );
        // Through the serialized form, exactly as the binary does it.
        let reparsed = ResultSet::from_json(&set.to_json()).expect("shard JSON parses");
        assert_eq!(reparsed, set, "shard JSON round trip drifted");
        shard_sets.push(reparsed);
    }

    let merged = ResultSet::merge(shard_sets).expect("compatible shards");
    merged.verify_against(&cells).expect("merged set verifies");

    let full_bits = value_bits(&full);
    let merged_bits: Vec<(usize, Vec<u64>)> = merged
        .cells
        .iter()
        .map(|c| (c.index, c.values.iter().map(|v| v.to_bits()).collect()))
        .collect();
    assert_eq!(
        full_bits,
        merged_bits,
        "{}: {n_shards}-way sharded values diverged from the unsharded run",
        experiment.name()
    );

    let full_render = experiment.render(&opts, &full_set.result_map());
    let merged_render = experiment.render(&opts, &merged.result_map());
    assert_eq!(
        full_render,
        merged_render,
        "{}: rendered tables diverged",
        experiment.name()
    );
}

#[test]
fn table1_two_way_shards_are_bit_identical() {
    assert_shards_match_full(ExperimentId::Table1, 2);
}

#[test]
fn table1_uneven_three_way_shards_are_bit_identical() {
    // 20 cells over 3 shards → 7/7/6: the uneven split must still cover
    // exactly.
    assert_shards_match_full(ExperimentId::Table1, 3);
}

#[test]
fn fig10_protocol_cells_shard_bit_identically() {
    // A trials-folded protocol experiment (full DAP runs, MSE fold), not
    // just the single-rep probe table.
    assert_shards_match_full(ExperimentId::Fig10, 2);
}

#[test]
fn merge_rejects_mismatched_options_and_partitions() {
    let opts = opts();
    let cells = ExperimentId::Table1.cells(&opts);
    let build_shard = |s: usize, n: usize, o: &ExpOptions| {
        let indices: Vec<usize> = (0..cells.len()).filter(|i| i % n == s).collect();
        let results = run_cells_subset(o, &cells, &indices);
        ResultSet::build(
            "table1",
            o,
            Some(ShardInfo { index: s, count: n, cells_total: cells.len() }),
            &cells,
            &results,
        )
    };
    let s0 = build_shard(0, 2, &opts);
    let s1 = build_shard(1, 2, &opts);

    // Seed mismatch is named in the error.
    let mut other_seed = s1.clone();
    other_seed.options.seed = 8;
    let err = ResultSet::merge(vec![s0.clone(), other_seed]).expect_err("seed mismatch");
    assert!(err.contains("seed"), "unhelpful error: {err}");

    // Same shard twice: overlap.
    let err = ResultSet::merge(vec![s0.clone(), s0.clone()]).expect_err("overlap");
    assert!(err.contains("twice") || err.contains("incomplete"), "unhelpful error: {err}");

    // Missing shard: incomplete, with indices listed.
    let err = ResultSet::merge(vec![s0.clone()]).expect_err("incomplete");
    assert!(err.contains("incomplete"), "unhelpful error: {err}");

    // A set from different *options* also fails verify_against through the
    // coordinate digest: same streams but the checker compares counts.
    let mut wrong_total = s1.clone();
    wrong_total.shard = Some(ShardInfo { index: 1, count: 2, cells_total: 19 });
    let err = ResultSet::merge(vec![s0.clone(), wrong_total]).expect_err("partition mismatch");
    assert!(err.contains("partition"), "unhelpful error: {err}");

    // A record whose stream disagrees with the re-enumerated cell at its
    // index names the coordinate digest — the shard-set diagnosis the
    // `experiments merge` CLI surfaces.
    let mut forged = ResultSet::merge(vec![s0, s1]).expect("compatible shards");
    forged.cells[0].stream ^= 1;
    let err = forged.verify_against(&cells).expect_err("stream forgery");
    assert!(err.contains("coordinate digest"), "unhelpful error: {err}");
}
