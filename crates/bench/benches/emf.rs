//! Benchmarks for the EMF engine: one E/M iteration cost scaling with the
//! bucket counts, and full convergence at the paper's probing budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dap_attack::Attack;
use dap_emf::{emf, emf_star, probe_side};
use dap_estimation::em::EmOptions;
use dap_estimation::rng::seeded;
use dap_estimation::{Grid, PoisonRegion, TransformMatrix};
use dap_ldp::{NumericMechanism, PiecewiseMechanism};

fn poisoned_counts(eps: f64, n: usize, d_out: usize) -> (Vec<f64>, PiecewiseMechanism) {
    let mech = PiecewiseMechanism::with_epsilon(eps).unwrap();
    let mut rng = seeded(11);
    use rand::Rng;
    let mut reports: Vec<f64> = (0..(n as f64 * 0.75) as usize)
        .map(|_| mech.perturb(rng.gen_range(-0.8..0.4), &mut rng))
        .collect();
    let attack = dap_attack::UniformAttack::of_upper(0.5, 1.0);
    reports.extend(attack.reports(n - reports.len(), &mech, &mut rng));
    let (olo, ohi) = mech.output_range();
    (Grid::new(olo, ohi, d_out).counts(&reports), mech)
}

fn bench_emf_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("emf_converge");
    group.sample_size(10);
    for d_out in [64usize, 128, 256] {
        let (counts, mech) = poisoned_counts(0.25, 50_000, d_out);
        let d_in = (d_out / 4).max(8);
        let matrix =
            TransformMatrix::for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
        let opts = EmOptions::paper_default(0.25);
        group.bench_with_input(BenchmarkId::new("emf", d_out), &d_out, |b, _| {
            b.iter(|| std::hint::black_box(emf(&matrix, &counts, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("emf_star", d_out), &d_out, |b, _| {
            b.iter(|| std::hint::black_box(emf_star(&matrix, &counts, 0.25, &opts)))
        });
    }
    group.finish();
}

fn bench_side_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("side_probe");
    group.sample_size(10);
    let (counts, mech) = poisoned_counts(0.0625, 50_000, 128);
    group.bench_function("probe_128", |b| {
        b.iter(|| {
            std::hint::black_box(probe_side(
                &mech,
                &counts,
                16,
                0.0,
                &EmOptions::paper_default(0.0625),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_emf_convergence, bench_side_probe);
criterion_main!(benches);
