//! End-to-end protocol benchmarks: a full DAP run (grouping, perturbation,
//! probing, estimation, aggregation) and the baseline protocol, at several
//! population sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dap_attack::UniformAttack;
use dap_core::baseline::{BaselineConfig, BaselineProtocol};
use dap_core::{Dap, DapConfig, Population, Scheme};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use dap_ldp::PiecewiseMechanism;

fn bench_dap(c: &mut Criterion) {
    let mut group = c.benchmark_group("dap_run");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        group.throughput(Throughput::Elements(n as u64));
        let mut rng = seeded(3);
        let honest = Dataset::Taxi.generate_signed((n as f64 * 0.75) as usize, &mut rng);
        let population = Population { honest, byzantine: n / 4 };
        let attack = UniformAttack::of_upper(0.5, 1.0);
        for scheme in Scheme::ALL {
            let cfg = DapConfig { max_d_out: 128, ..DapConfig::paper_default(1.0, scheme) };
            let dap = Dap::new(cfg, PiecewiseMechanism::new).expect("valid config");
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), n),
                &n,
                |b, _| {
                    let mut rng = seeded(4);
                    b.iter(|| std::hint::black_box(dap.run(&population, &attack, &mut rng)))
                },
            );
        }
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_run");
    group.sample_size(10);
    let n = 20_000usize;
    let mut rng = seeded(5);
    let honest = Dataset::Taxi.generate_signed((n as f64 * 0.75) as usize, &mut rng);
    let population = Population { honest, byzantine: n / 4 };
    let attack = UniformAttack::of_upper(0.5, 1.0);
    let cfg = BaselineConfig { max_d_out: 128, ..BaselineConfig::with_eps(1.0) };
    let proto = BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config");
    group.bench_function("baseline_20k", |b| {
        let mut rng = seeded(6);
        b.iter(|| std::hint::black_box(proto.run(&population, &attack, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_dap, bench_baseline);
criterion_main!(benches);
