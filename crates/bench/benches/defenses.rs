//! Benchmarks for the baseline defenses on a poisoned 50k-report batch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dap_attack::Attack;
use dap_defenses::{BoxplotFilter, IsolationForest, KMeansDefense, MeanDefense, Ostrich, Trimming};
use dap_estimation::rng::seeded;
use dap_ldp::{NumericMechanism, PiecewiseMechanism};

fn poisoned_reports(n: usize) -> Vec<f64> {
    let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
    let mut rng = seeded(21);
    use rand::Rng;
    let mut reports: Vec<f64> = (0..(n as f64 * 0.75) as usize)
        .map(|_| mech.perturb(rng.gen_range(-0.8..0.4), &mut rng))
        .collect();
    let attack = dap_attack::UniformAttack::of_upper(0.5, 1.0);
    reports.extend(attack.reports(n - reports.len(), &mech, &mut rng));
    reports
}

fn bench_defenses(c: &mut Criterion) {
    let mut group = c.benchmark_group("defenses_50k");
    group.sample_size(10);
    let reports = poisoned_reports(50_000);
    group.throughput(Throughput::Elements(reports.len() as u64));

    let cases: Vec<(&str, Box<dyn MeanDefense>)> = vec![
        ("ostrich", Box::new(Ostrich)),
        ("trimming", Box::new(Trimming::paper_default(dap_attack::Side::Right))),
        ("boxplot", Box::new(BoxplotFilter::default())),
        ("kmeans_2k_subsets", Box::new(KMeansDefense::new(0.01, 2_000))),
        (
            "iforest_50_trees",
            Box::new(IsolationForest { trees: 50, subsample: 256, score_threshold: 0.6 }),
        ),
    ];
    for (name, defense) in cases {
        group.bench_function(name, |b| {
            let mut rng = seeded(22);
            b.iter(|| std::hint::black_box(defense.estimate_mean(&reports, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defenses);
criterion_main!(benches);
