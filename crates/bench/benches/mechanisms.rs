//! Microbenchmarks for the LDP mechanisms: perturbation throughput and
//! transform-matrix construction (the per-report and per-EMF-setup costs
//! behind every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dap_estimation::rng::seeded;
use dap_estimation::{PoisonRegion, TransformMatrix};
use dap_ldp::{
    CategoricalMechanism, Duchi, Epsilon, KRandomizedResponse, NumericMechanism,
    PiecewiseMechanism, SquareWave,
};

fn bench_perturbation(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb");
    group.throughput(Throughput::Elements(1));
    let eps = Epsilon::of(1.0);
    let pm = PiecewiseMechanism::new(eps);
    let sw = SquareWave::new(eps);
    let duchi = Duchi::new(eps);
    let krr = KRandomizedResponse::new(eps, 15).unwrap();

    group.bench_function("pm", |b| {
        let mut rng = seeded(1);
        let mut v = -1.0;
        b.iter(|| {
            v = if v >= 1.0 { -1.0 } else { v + 1e-4 };
            std::hint::black_box(pm.perturb(v, &mut rng))
        })
    });
    group.bench_function("sw", |b| {
        let mut rng = seeded(2);
        let mut v = 0.0;
        b.iter(|| {
            v = if v >= 1.0 { 0.0 } else { v + 1e-4 };
            std::hint::black_box(NumericMechanism::perturb(&sw, v, &mut rng))
        })
    });
    group.bench_function("duchi", |b| {
        let mut rng = seeded(3);
        b.iter(|| std::hint::black_box(duchi.perturb(0.3, &mut rng)))
    });
    group.bench_function("krr", |b| {
        let mut rng = seeded(4);
        b.iter(|| std::hint::black_box(CategoricalMechanism::perturb(&krr, 7, &mut rng)))
    });
    group.finish();
}

fn bench_transform_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_matrix");
    for d_out in [64usize, 256, 1000] {
        let d_in = (d_out as f64 * 0.25) as usize;
        group.bench_with_input(BenchmarkId::new("pm", d_out), &d_out, |b, &d_out| {
            let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
            b.iter(|| {
                std::hint::black_box(TransformMatrix::for_numeric(
                    &mech,
                    d_in,
                    d_out,
                    &PoisonRegion::RightOf(0.0),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_perturbation, bench_transform_matrix);
criterion_main!(benches);
