//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI), plus ablations for the design decisions DESIGN.md
//! calls out.
//!
//! Each module corresponds to one paper artifact and prints the same
//! rows/series the paper reports. The binary `experiments` dispatches on a
//! subcommand; see `experiments help`.

pub mod ablations;
pub mod common;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
