//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI), plus ablations for the design decisions DESIGN.md
//! calls out.
//!
//! The harness is a declarative cell engine in four layers:
//!
//! * **spec** ([`cell`]) — each experiment module enumerates typed
//!   [`cell::Cell`] coordinates; RNG streams derive from the coordinate,
//!   never from execution order;
//! * **engine** ([`engine`]) — one shared runner executes any cell list
//!   over [`dap_core::parallel_map`] with a process-wide population cache,
//!   emitting typed [`engine::CellResult`] records;
//! * **render/IO** (per-module `render` + [`results`]) — results become
//!   the paper's stdout tables and a stable machine-readable JSON schema;
//! * **shard** — `experiments <id> --shard i/n` runs a deterministic
//!   partition of the cell list; `experiments merge` reassembles, and the
//!   result is bit-identical to a single-process run. With
//!   `--journal <dir>` the partition is also *resumable*: each finished
//!   cell is appended to a write-ahead journal ([`journal`]) and a re-run
//!   skips everything already recorded.
//!
//! Each experiment module corresponds to one paper artifact and prints the
//! same rows/series the paper reports. The binary `experiments` dispatches
//! on a subcommand; see `experiments help`.

pub mod ablations;
pub mod cell;
pub mod chaos;
pub mod common;
pub mod engine;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod journal;
pub mod report_cache;
pub mod results;
pub mod serve;
pub mod storm;
pub mod table1;

/// Appends a formatted line to a `String` render buffer (renderers build
/// their stdout tables as strings so merge and golden tests can compare
/// them byte for byte).
#[macro_export]
macro_rules! outln {
    ($buf:expr) => {
        $buf.push('\n')
    };
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf, $($arg)*);
    }};
}

/// [`outln!`] without the trailing newline.
#[macro_export]
macro_rules! out {
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($buf, $($arg)*);
    }};
}
