//! Table I: variance of the reconstructed normal histogram `x̂` under the
//! left and right poison hypotheses, on Taxi, across poison ranges and
//! budgets. The right side (the true poisoned side) must always have the
//! smaller variance — that is what validates Algorithm 3.

use crate::common::{simulate_batch, ExpOptions, PoiRange};
use dap_datasets::Dataset;
use dap_emf::{probe_side, EmfConfig};
use dap_estimation::rng::derive;
use dap_estimation::Grid;
use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism};

/// The paper's Table I budget columns.
pub const EPSILONS: [f64; 5] = [2.0, 0.5, 0.25, 0.125, 0.0625];

/// Runs the table; γ = 0.25, right-side uniform attacks.
pub fn run(opts: &ExpOptions) {
    println!("== Table I: Var(x̂) under L/R hypotheses (Taxi, gamma = 0.25) ==");
    print!("{:<10} {:<5}", "Poi", "Side");
    for eps in EPSILONS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();

    for (ri, range) in PoiRange::ALL.into_iter().enumerate() {
        let mut rows = [Vec::new(), Vec::new()]; // L, R
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            let mut rng = derive(opts.seed, 100 + (ri * 10 + ei) as u64);
            let attack = range.attack();
            let (reports, _) =
                simulate_batch(Dataset::Taxi, opts.n, 0.25, eps, &attack, &mut rng);
            let mech = PiecewiseMechanism::new(Epsilon::of(eps));
            let cfg = EmfConfig::capped(reports.len(), eps, opts.max_d_out);
            let (olo, ohi) = mech.output_range();
            let counts = Grid::new(olo, ohi, cfg.d_out).counts(&reports);
            let probe = probe_side(&mech, &counts, cfg.d_in, 0.0, &cfg.em);
            rows[0].push(probe.var_left);
            rows[1].push(probe.var_right);
        }
        for (side, row) in ["L", "R"].iter().zip(&rows) {
            print!("{:<10} {:<5}", range.label(), side);
            for v in row {
                print!(" {:>10.1e}", v);
            }
            println!();
        }
    }
    println!("\nexpected shape: every R entry below its L counterpart.\n");
}
