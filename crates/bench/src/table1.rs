//! Table I: variance of the reconstructed normal histogram `x̂` under the
//! left and right poison hypotheses, on Taxi, across poison ranges and
//! budgets. The right side (the true poisoned side) must always have the
//! smaller variance — that is what validates Algorithm 3.

use crate::cell::{Cell, CellKind, ExperimentId};
use crate::common::{ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_datasets::Dataset;

/// The paper's Table I budget columns.
pub const EPSILONS: [f64; 5] = [2.0, 0.5, 0.25, 0.125, 0.0625];

fn cell(range: PoiRange, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Table1,
        "",
        CellKind::ProbeVariance { dataset: Dataset::Taxi, range, gamma: 0.25, eps },
    )
}

/// One cell per (range, ε); each yields `[Var(x̂|L), Var(x̂|R)]`.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    PoiRange::ALL
        .into_iter()
        .flat_map(|range| EPSILONS.into_iter().map(move |eps| cell(range, eps)))
        .collect()
}

/// Renders the table; γ = 0.25, right-side uniform attacks.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Table I: Var(x̂) under L/R hypotheses (Taxi, gamma = 0.25) ==");
    out!(s, "{:<10} {:<5}", "Poi", "Side");
    for eps in EPSILONS {
        out!(s, " {:>10}", format!("eps={eps}"));
    }
    outln!(s);
    for range in PoiRange::ALL {
        for (side, pick) in [("L", 0usize), ("R", 1usize)] {
            out!(s, "{:<10} {:<5}", range.label(), side);
            for eps in EPSILONS {
                out!(s, " {:>10.1e}", r.get(&cell(range, eps))[pick]);
            }
            outln!(s);
        }
    }
    outln!(s, "\nexpected shape: every R entry below its L counterpart.\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
