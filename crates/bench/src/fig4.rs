//! Fig. 4: normalized frequency histograms and true means of the four
//! evaluation datasets.

use crate::cell::{Cell, CellKind, ExperimentId};
use crate::common::ExpOptions;
use crate::engine::{run_cells, ResultMap};
use crate::outln;
use dap_datasets::Dataset;

/// Sparkline resolution.
pub const BUCKETS: usize = 20;

fn cell(dataset: Dataset) -> Cell {
    Cell::new(ExperimentId::Fig4, "", CellKind::DatasetHist { dataset, buckets: BUCKETS })
}

/// One cell per dataset.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    Dataset::ALL.into_iter().map(cell).collect()
}

/// Renders the sparkline histograms + true means.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Fig. 4: dataset histograms (normalized to [-1, 1]) ==");
    outln!(s, "paper means: Beta(2,5) -0.3994*, Beta(5,2) +0.4136*, Taxi +0.1190, Retirement -0.6240");
    outln!(s, "(* the paper normalizes Beta by sample min/max; we use the theoretical [0,1])");
    outln!(s);
    for ds in Dataset::ALL {
        let values = r.get(&cell(ds));
        let (mean, freqs) = (values[0], &values[1..]);
        let peak = freqs.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let bars: String = freqs
            .iter()
            .map(|&f| {
                const LEVELS: [char; 9] = [' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
                LEVELS[((f / peak) * 8.0).round() as usize]
            })
            .collect();
        outln!(s, "{:<12} O = {:+.4}  |{bars}|", ds.label(), mean);
    }
    outln!(s);
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
