//! Fig. 4: normalized frequency histograms and true means of the four
//! evaluation datasets.

use crate::common::ExpOptions;
use dap_datasets::Dataset;
use dap_estimation::rng::derive;
use dap_estimation::stats::mean;
use dap_estimation::Grid;

/// Prints a 20-bucket sparkline histogram and the true mean per dataset.
pub fn run(opts: &ExpOptions) {
    println!("== Fig. 4: dataset histograms (normalized to [-1, 1]) ==");
    println!("paper means: Beta(2,5) -0.3994*, Beta(5,2) +0.4136*, Taxi +0.1190, Retirement -0.6240");
    println!("(* the paper normalizes Beta by sample min/max; we use the theoretical [0,1])\n");
    let grid = Grid::new(-1.0, 1.0, 20);
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let mut rng = derive(opts.seed, 400 + i as u64);
        let values = ds.generate_signed(opts.n, &mut rng);
        let freqs = grid.frequencies(&values);
        let peak = freqs.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let bars: String = freqs
            .iter()
            .map(|&f| {
                const LEVELS: [char; 9] = [' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
                LEVELS[((f / peak) * 8.0).round() as usize]
            })
            .collect();
        println!("{:<12} O = {:+.4}  |{bars}|", ds.label(), mean(&values));
    }
    println!();
}
