//! Fig. 8: the Square-Wave extension — (a) distribution-estimation accuracy
//! (Wasserstein distance), (b) `|γ̂ − γ|` for SW, (c)(d) MSE of SW-based
//! mean estimation.
//!
//! All rows of a scheme cell share simulated data (common random numbers):
//! the EMF-family reconstructions reuse one batch and one base EMF fit, and
//! the SW-DAP schemes share one protocol execution.

use crate::cell::{Cell, CellKind, ExperimentId};
use crate::common::{sci, ExpOptions};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::Scheme;
use dap_datasets::Dataset;

/// Budget axes.
pub const EPS_SMALL: [f64; 6] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0, 2.0];
pub const EPS_LARGE: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// Panels (c)(d): dataset per panel.
pub const CD_PANELS: [(&str, Dataset); 2] = [("c", Dataset::Beta25), ("d", Dataset::Beta52)];

fn a_cell(eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig8,
        "a",
        CellKind::SwWasserstein { dataset: Dataset::Beta25, gamma: 0.25, eps },
    )
}

fn b_cell(dataset: Dataset, eps: f64) -> Cell {
    Cell::new(ExperimentId::Fig8, "b", CellKind::SwGammaErr { dataset, gamma: 0.25, eps })
}

fn scheme_cell(panel: &'static str, dataset: Dataset, eps: f64) -> Cell {
    Cell::new(ExperimentId::Fig8, panel, CellKind::SwMse { dataset, gamma: 0.25, eps })
}

fn defense_cell(panel: &'static str, dataset: Dataset, eps: f64) -> Cell {
    Cell::new(ExperimentId::Fig8, panel, CellKind::SwDefense { dataset, gamma: 0.25, eps })
}

/// All panels' cells.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for eps in EPS_SMALL {
        cells.push(a_cell(eps));
    }
    for ds in [Dataset::Beta25, Dataset::Beta52] {
        for eps in EPS_SMALL {
            cells.push(b_cell(ds, eps));
        }
    }
    for (panel, ds) in CD_PANELS {
        for eps in EPS_LARGE {
            cells.push(scheme_cell(panel, ds, eps));
        }
        for eps in EPS_LARGE {
            cells.push(defense_cell(panel, ds, eps));
        }
    }
    cells
}

/// Renders all panels.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();

    // Panel (a).
    outln!(s, "== Fig. 8(a): Wasserstein distance of distribution estimation (Beta(2,5), SW, gamma = 0.25) ==");
    out!(s, "{:<10}", "scheme");
    for eps in EPS_SMALL {
        out!(s, " {:>10}", format!("{eps:.4}"));
    }
    outln!(s);
    for (li, label) in ["EMF", "EMF*", "CEMF*", "Ostrich"].into_iter().enumerate() {
        out!(s, "{:<10}", label);
        for eps in EPS_SMALL {
            out!(s, " {:>10.4}", r.get(&a_cell(eps))[li]);
        }
        outln!(s);
    }
    outln!(s, "expected shape: EMF family at least ~10% below Ostrich.\n");

    // Panel (b).
    outln!(s, "== Fig. 8(b): |gamma_hat - gamma| for SW (gamma = 0.25, Poi[1+b/2, 1+b]) ==");
    out!(s, "{:<12}", "dataset");
    for eps in EPS_SMALL {
        out!(s, " {:>10}", format!("{eps:.4}"));
    }
    outln!(s);
    for ds in [Dataset::Beta25, Dataset::Beta52] {
        out!(s, "{:<12}", ds.label());
        for eps in EPS_SMALL {
            out!(s, " {:>10.4}", r.get(&b_cell(ds, eps))[0]);
        }
        outln!(s);
    }
    outln!(s, "expected shape: error shrinks as eps -> 0.\n");

    // Panels (c)(d).
    for (panel, ds) in CD_PANELS {
        outln!(s, "== Fig. 8({panel}): SW MSE ({}, gamma = 0.25, Poi[1+b/2, 1+b]) ==", ds.label());
        out!(s, "{:<10}", "scheme");
        for eps in EPS_LARGE {
            out!(s, " {:>10}", format!("eps={eps}"));
        }
        outln!(s);
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            out!(s, "{:<10}", format!("SW_{}", scheme.label().trim_start_matches("DAP_")));
            for eps in EPS_LARGE {
                out!(s, " {:>10}", sci(r.get(&scheme_cell(panel, ds, eps))[si]));
            }
            outln!(s);
        }
        for (di, label) in ["Ostrich", "Trimming"].into_iter().enumerate() {
            out!(s, "{:<10}", label);
            for eps in EPS_LARGE {
                out!(s, " {:>10}", sci(r.get(&defense_cell(panel, ds, eps))[di]));
            }
            outln!(s);
        }
        outln!(s);
    }
    outln!(s, "expected shape: SW_EMF family lowest in most cells; Ostrich competitive on Beta(5,2) (paper's own caveat).\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
