//! Fig. 8: the Square-Wave extension — (a) distribution-estimation accuracy
//! (Wasserstein distance), (b) `|γ̂ − γ|` for SW, (c)(d) MSE of SW-based
//! mean estimation.
//!
//! All rows of a column share simulated data (common random numbers): the
//! EMF-family reconstructions reuse one batch and one base EMF fit, and the
//! SW-DAP schemes share one protocol execution via
//! [`SwDap::run_schemes`].

use crate::common::{
    emf_setup, means_over_trials, mses_over_trials, sci, stream_id, ExpOptions,
};
use dap_attack::{Anchor, Attack, UniformAttack};
use dap_core::sw::{SwDap, SwDapConfig};
use dap_core::{Population, Scheme};
use dap_datasets::Dataset;
use dap_emf::{cemf_star, cemf_star_threshold, emf, emf_star};
use dap_estimation::stats::{mean, wasserstein_1};
use dap_estimation::{ems, Grid, PoisonRegion};
use dap_ldp::{Epsilon, NumericMechanism, SquareWave};
use rand::RngCore;

/// Budget axes.
pub const EPS_SMALL: [f64; 6] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0, 2.0];
pub const EPS_LARGE: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// The paper's SW attack: poison uniform on `[1 + b/2, 1 + b]`.
pub fn sw_attack() -> UniformAttack {
    UniformAttack::new(Anchor::AboveInputMax(0.5), Anchor::AboveInputMax(1.0))
}

/// Simulates one SW batch. Returns `(reports, honest_values)`.
fn simulate_sw(
    dataset: Dataset,
    n: usize,
    gamma: f64,
    eps: f64,
    rng: &mut dyn RngCore,
) -> (Vec<f64>, Vec<f64>) {
    let m = (n as f64 * gamma).round() as usize;
    let honest = dataset.generate_unit(n - m, rng);
    let mech = SquareWave::new(Epsilon::of(eps));
    let mut reports: Vec<f64> = honest.iter().map(|&v| mech.perturb(v, rng)).collect();
    reports.extend(sw_attack().reports(m, &mech, rng));
    (reports, honest)
}

/// Panel (a): Wasserstein distance of the reconstructed honest distribution,
/// Beta(2,5), γ = 0.25. All four estimators read one shared batch per trial;
/// the EMF-family rows share one base EMF fit.
fn panel_a(opts: &ExpOptions) {
    println!("== Fig. 8(a): Wasserstein distance of distribution estimation (Beta(2,5), SW, gamma = 0.25) ==");
    let labels = ["EMF", "EMF*", "CEMF*", "Ostrich"];
    let columns: Vec<Vec<f64>> = EPS_SMALL
        .into_iter()
        .enumerate()
        .map(|(ei, eps)| {
            means_over_trials(opts, stream_id(&[800, ei]), labels.len(), |rng| {
                let (reports, honest) = simulate_sw(Dataset::Beta25, opts.n, 0.25, eps, rng);
                let mech = SquareWave::new(Epsilon::of(eps));
                let (cfg, counts, matrix) = emf_setup(
                    &mech,
                    &reports,
                    eps,
                    opts.max_d_out,
                    &PoisonRegion::RightOf(1.0),
                );
                let truth_hist = Grid::new(0.0, 1.0, cfg.d_in).frequencies(&honest);
                let spacing = 1.0 / cfg.d_in as f64;
                let normalized = |hist: &[f64]| -> Vec<f64> {
                    let total: f64 = hist.iter().sum();
                    hist.iter().map(|&v| if total > 0.0 { v / total } else { v }).collect()
                };

                let base = emf(&matrix, &counts, &cfg.em);
                let gamma = base.poison_mass();
                let star = emf_star(&matrix, &counts, gamma, &cfg.em);
                let thr = cemf_star_threshold(gamma, matrix.poison_buckets().len());
                let cemf = cemf_star(&matrix, &counts, gamma, thr, &base, &cfg.em);
                // Same histogram, poison-free matrix: only the matrix
                // differs for the Ostrich/EMS row.
                let ems_matrix = dap_estimation::cached_for_numeric(
                    &mech,
                    cfg.d_in,
                    cfg.d_out,
                    &PoisonRegion::None,
                );
                let ostrich = ems::solve(&ems_matrix, &counts, &cfg.em).histogram;

                let dists = vec![
                    wasserstein_1(&normalized(&base.normal), &truth_hist, spacing),
                    wasserstein_1(&normalized(&star.normal), &truth_hist, spacing),
                    wasserstein_1(&normalized(&cemf.normal), &truth_hist, spacing),
                    wasserstein_1(&ostrich, &truth_hist, spacing),
                ];
                dists
            })
        })
        .collect();

    print!("{:<10}", "scheme");
    for eps in EPS_SMALL {
        print!(" {:>10}", format!("{eps:.4}"));
    }
    println!();
    for (li, label) in labels.into_iter().enumerate() {
        print!("{:<10}", label);
        for col in &columns {
            print!(" {:>10.4}", col[li]);
        }
        println!();
    }
    println!("expected shape: EMF family at least ~10% below Ostrich.\n");
}

/// Panel (b): `|γ̂ − γ|` for SW across budgets and the two Beta datasets.
fn panel_b(opts: &ExpOptions) {
    println!("== Fig. 8(b): |gamma_hat - gamma| for SW (gamma = 0.25, Poi[1+b/2, 1+b]) ==");
    print!("{:<12}", "dataset");
    for eps in EPS_SMALL {
        print!(" {:>10}", format!("{eps:.4}"));
    }
    println!();
    for (di, ds) in [Dataset::Beta25, Dataset::Beta52].into_iter().enumerate() {
        print!("{:<12}", ds.label());
        for (ei, eps) in EPS_SMALL.into_iter().enumerate() {
            let err = means_over_trials(opts, stream_id(&[810, di, ei]), 1, |rng| {
                let (reports, _) = simulate_sw(ds, opts.n, 0.25, eps, rng);
                let mech = SquareWave::new(Epsilon::of(eps));
                let (cfg, counts, matrix) = emf_setup(
                    &mech,
                    &reports,
                    eps,
                    opts.max_d_out,
                    &PoisonRegion::RightOf(1.0),
                );
                vec![(emf(&matrix, &counts, &cfg.em).poison_mass() - 0.25).abs()]
            });
            print!(" {:>10.4}", err[0]);
        }
        println!();
    }
    println!("expected shape: error shrinks as eps -> 0.\n");
}

/// Panels (c)(d): MSE of SW mean estimation. The three SW-DAP rows of a
/// column share one protocol execution; Ostrich and Trimming share one
/// batch.
fn panel_cd(opts: &ExpOptions) {
    for (pi, (panel, ds)) in [("c", Dataset::Beta25), ("d", Dataset::Beta52)].into_iter().enumerate() {
        println!("== Fig. 8({panel}): SW MSE ({}, gamma = 0.25, Poi[1+b/2, 1+b]) ==", ds.label());
        let scheme_columns: Vec<Vec<f64>> = EPS_LARGE
            .into_iter()
            .enumerate()
            .map(|(ei, eps)| {
                mses_over_trials(
                    opts,
                    stream_id(&[820, ei, pi]),
                    Scheme::ALL.len(),
                    |rng| {
                        let m_count = (opts.n as f64 * 0.25).round() as usize;
                        let honest = ds.generate_unit(opts.n - m_count, rng);
                        let truth = mean(&honest);
                        let population = Population { honest, byzantine: m_count };
                        let cfg = SwDapConfig {
                            max_d_out: opts.max_d_out,
                            ..SwDapConfig::paper_default(eps, Scheme::Emf)
                        };
                        let outs =
                            SwDap::new(cfg)
                            .expect("valid config")
                            .run_schemes(&population, &sw_attack(), &Scheme::ALL, rng)
                            .expect("valid run");
                        (outs.into_iter().map(|o| o.mean).collect(), truth)
                    },
                )
            })
            .collect();
        let defense_columns: Vec<Vec<f64>> = EPS_LARGE
            .into_iter()
            .enumerate()
            .map(|(ei, eps)| {
                mses_over_trials(opts, stream_id(&[830, ei, pi]), 2, |rng| {
                    let (reports, honest) = simulate_sw(ds, opts.n, 0.25, eps, rng);
                    let truth = mean(&honest);
                    let ostrich = mean(&reports);
                    let mut sorted = reports;
                    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                    sorted.truncate(sorted.len() / 2);
                    (vec![ostrich, mean(&sorted)], truth)
                })
            })
            .collect();

        print!("{:<10}", "scheme");
        for eps in EPS_LARGE {
            print!(" {:>10}", format!("eps={eps}"));
        }
        println!();
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            print!("{:<10}", format!("SW_{}", scheme.label().trim_start_matches("DAP_")));
            for col in &scheme_columns {
                print!(" {:>10}", sci(col[si]));
            }
            println!();
        }
        for (di, label) in ["Ostrich", "Trimming"].into_iter().enumerate() {
            print!("{:<10}", label);
            for col in &defense_columns {
                print!(" {:>10}", sci(col[di]));
            }
            println!();
        }
        println!();
    }
    println!("expected shape: SW_EMF family lowest in most cells; Ostrich competitive on Beta(5,2) (paper's own caveat).\n");
}

/// Runs all panels.
pub fn run(opts: &ExpOptions) {
    panel_a(opts);
    panel_b(opts);
    panel_cd(opts);
}
